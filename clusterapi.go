package qosrma

import (
	"errors"
	"io"

	"qosrma/internal/cluster"
	"qosrma/internal/core"
	"qosrma/internal/workload"
)

// Cluster-facing re-exports.
type (
	// Arrival is one job of an open-system workload: a benchmark entering
	// the cluster at an absolute time.
	Arrival = workload.Arrival
	// ClusterResult is the outcome of one fleet scenario.
	ClusterResult = cluster.Result
	// ClusterJobResult is one job's scored outcome.
	ClusterJobResult = cluster.JobResult
	// ClusterRow is one job's flattened emitter record.
	ClusterRow = cluster.Row
	// ClusterEmitter streams per-job rows in global departure order.
	ClusterEmitter = cluster.Emitter
	// ClusterPlacement selects the online placement policy.
	ClusterPlacement = cluster.Placement
)

// Placement policies.
//
//	scored       greedy: the arrival joins the machine the collocation
//	             scorer rates highest (the default)
//	first-fit    the arrival joins the lowest-numbered free machine
//	equilibrium  the arrival joins the machine it occupies in a certified
//	             pure Nash equilibrium of the collocation game
//	             (internal/equilibrium: best-response dynamics on the
//	             scorer oracle, best-of-K seeded starts)
const (
	// PlaceScored places each arrival where the collocation scorer
	// predicts the largest energy savings (the default).
	PlaceScored = cluster.PlaceScored
	// PlaceFirstFit places each arrival on the first free machine.
	PlaceFirstFit = cluster.PlaceFirstFit
	// PlaceEquilibrium places each arrival at its slot in a certified
	// pure Nash equilibrium computed over the current tenants plus the
	// arrival; it falls back to scored placement when no certified
	// equilibrium (or no physically free equilibrium slot) exists.
	PlaceEquilibrium = cluster.PlaceEquilibrium
)

// ClusterSpec declares an open-system fleet scenario: machines of this
// System's configuration, jobs arriving from a deterministic trace, placed
// online by the collocation scorer, run under per-machine resource
// managers, departing on completion. Scenarios are fully deterministic: a
// fixed spec reproduces identical results bit for bit.
type ClusterSpec struct {
	// Machines is the fleet size (each machine has this System's cores).
	Machines int
	// Scheme is the per-machine resource-management algorithm.
	Scheme Scheme
	// Model selects the analytical predictor. The zero value picks the
	// scheme default (Model2, or Model3 for RM3). Because Model1 — the
	// strawman predictor of the P2.MD comparison — is the zero value of
	// ModelKind, it is not selectable through this API; drive
	// internal/cluster directly if a fleet-scale Model1 run is ever
	// needed.
	Model ModelKind
	// Slack is the uniform QoS relaxation granted to every job.
	Slack float64

	// Jobs is an explicit arrival trace. When nil, a Poisson trace is
	// drawn deterministically from the fields below.
	Jobs []Arrival
	// NumJobs, MeanInterarrivalSec and Seed configure the generated trace
	// (used only when Jobs is nil).
	NumJobs             int
	MeanInterarrivalSec float64
	Seed                uint64
	// Benches restricts the generated trace's benchmark population
	// (default: every benchmark in the suite).
	Benches []string

	// Placement selects the online placement policy (default: scored).
	Placement ClusterPlacement
	// Timeline records every machine's allocation time-series.
	Timeline bool
	// Workers bounds the parallel machine advance (default: GOMAXPROCS).
	Workers int
	// Emitter, when set, receives one row per job in departure order as
	// the scenario executes (see NewClusterEmitter).
	Emitter ClusterEmitter
}

// Cluster executes the fleet scenario against this system's database.
func (s *System) Cluster(spec ClusterSpec) (*ClusterResult, error) {
	jobs := spec.Jobs
	if jobs == nil {
		benches := spec.Benches
		if benches == nil {
			benches = s.db.BenchNames()
		}
		if spec.NumJobs <= 0 || spec.MeanInterarrivalSec <= 0 {
			return nil, errors.New("qosrma: cluster spec needs Jobs, or NumJobs and MeanInterarrivalSec")
		}
		jobs = workload.PoissonArrivals(benches, workload.ArrivalOptions{
			Jobs:                spec.NumJobs,
			MeanInterarrivalSec: spec.MeanInterarrivalSec,
			Seed:                spec.Seed,
		})
	}
	model := spec.Model
	if model == core.Model1 {
		model = core.Model2
		if spec.Scheme == RM3 {
			model = core.Model3
		}
	}
	return cluster.Run(s.db, cluster.Spec{
		Machines:  spec.Machines,
		Scheme:    spec.Scheme,
		Model:     model,
		Slack:     spec.Slack,
		Jobs:      jobs,
		Placement: spec.Placement,
		Timeline:  spec.Timeline,
		Workers:   spec.Workers,
		Emitter:   spec.Emitter,
	})
}

// NewClusterEmitter builds a streaming per-job emitter by format name
// ("csv" or "json") over the writer.
func NewClusterEmitter(format string, w io.Writer) (ClusterEmitter, error) {
	return cluster.NewEmitter(format, w)
}

// WriteClusterCSV renders a cluster result's jobs as CSV (arrival order).
func WriteClusterCSV(w io.Writer, res *ClusterResult) error {
	return cluster.WriteCSV(w, res.Jobs)
}

// WriteClusterJSON renders a cluster result's jobs as JSON lines.
func WriteClusterJSON(w io.Writer, res *ClusterResult) error {
	return cluster.WriteJSON(w, res.Jobs)
}
