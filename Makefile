# Shared entry points for CI (.github/workflows/ci.yml) and local
# development — keep the two in sync by only ever invoking make from CI.

GO ?= go
BENCH_OUT ?= bench.txt

.PHONY: all build test lint bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# One iteration per benchmark: a smoke run that still reports the paper
# metrics (avgSavings% etc.), captured for the perf trajectory artifact.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./... | tee $(BENCH_OUT)

clean:
	rm -f $(BENCH_OUT)
	$(GO) clean ./...
