# Shared entry points for CI (.github/workflows/ci.yml) and local
# development — keep the two in sync by only ever invoking make from CI.

# The bench targets pipe `go test` through tee; without pipefail a failed
# benchmark run would leave the pipeline (and CI) green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO ?= go
BENCH_OUT ?= bench.txt
BENCH_BASE ?= benchbase.txt
BENCH_NEW ?= bench.new.txt
BENCH_DIFF ?= benchdiff.txt

# Micro-benchmarks of the hot kernels (excludes the full experiment
# regenerations): the set benchdiff tracks against the committed baseline.
# Query side: SimDBLookup/RMASimRun/... Build side: StackDistances,
# LeadingMissSurface (fused all-(c,w) profile), SimulatePhase (per-phase
# kernel) and EnvBuild (cold full environment — the headline build-side
# wall time, also recorded in the CI bench artifact).
MICRO_BENCH ?= ATDAccess|StackDistances|MLPAnalysis|LeadingMissSurface|SimulatePhase|CurveReduction|TreeReduction16Core|SimDBLookup|SimDBReferenceEval|RMASimRun|RMASimStep|ClusterRun|RMAOverhead|RM3Overhead|EnvBuild|WireEncode|WireDecode|Equilibrium|ScorerCold
# benchbase and benchdiff must measure under identical flags, or the
# benchstat comparison is noise.
MICRO_FLAGS ?= -benchtime=0.2s -count=5

.PHONY: all build test test-short lint shlint vet-suite escape-check escape-baseline \
	bench benchbase benchdiff pprof example-cluster \
	loadtest loadtest-wire chaos determinism golden cover cover-check fuzz-smoke docs-check clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Fast verification: multi-second environment builds are skipped via
# testing.Short; CI uses this for the per-push test step.
test-short:
	$(GO) test -short -race ./...

lint: shlint vet-suite
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The repo-specific analyzer suite (cmd/qosrmavet, docs/analysis.md):
# determinism, noalloc, shardowned, ctxdeadline and exhaustive over the
# whole module, at a zero-finding baseline. Findings land in
# qosrmavet.txt (uploaded as a CI artifact on failure).
vet-suite:
	$(GO) run ./cmd/qosrmavet ./... 2>&1 | tee qosrmavet.txt

# Shell hygiene for scripts/*.sh: bash shebang, set -euo pipefail, bash -n.
shlint:
	./scripts/shlint.sh

# Compiler escape analysis over every //qosrma:noalloc function, diffed
# against the committed baseline (internal/analysis/escape.baseline). A
# new escape in a hot function fails here even when no AllocsPerRun pin
# happens to cross it. Diff lands in escape.diff.txt for CI artifacts.
escape-check:
	$(GO) run ./cmd/qosrmavet -escape 2>&1 | tee escape.diff.txt

# Rewrite the escape baseline from the current tree (review the diff
# before committing: every new line is a new hot-path heap escape).
escape-baseline:
	$(GO) run ./cmd/qosrmavet -escape -update

# One iteration per benchmark: a smoke run that still reports the paper
# metrics (avgSavings% etc.), captured for the perf trajectory artifact.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./... | tee $(BENCH_OUT)

# Regenerate the committed micro-benchmark baseline (same flags as
# benchdiff, so benchstat compares like with like).
benchbase:
	$(GO) test -bench='$(MICRO_BENCH)' $(MICRO_FLAGS) -run '^$$' . | tee $(BENCH_BASE)

# Run the micro-benchmarks and compare against the committed baseline with
# benchstat; the diff lands in $(BENCH_DIFF) (uploaded as a CI artifact).
benchdiff:
	$(GO) test -bench='$(MICRO_BENCH)' $(MICRO_FLAGS) -run '^$$' . | tee $(BENCH_NEW)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASE) $(BENCH_NEW) | tee $(BENCH_DIFF); \
	else \
		$(GO) run golang.org/x/perf/cmd/benchstat@latest $(BENCH_BASE) $(BENCH_NEW) | tee $(BENCH_DIFF); \
	fi

# Smoke-run the open-system cluster walkthrough in its short shape (the
# CI build job runs this so the fleet engine stays demonstrably working).
example-cluster:
	$(GO) run ./examples/cluster -short

# Serving-layer smoke: start qosrmad, drive it with the deterministic
# loadgen trace, enforce the 100k decide-requests/sec floor and leave the
# report in loadgen.txt (uploaded with the CI bench artifacts).
loadtest:
	./scripts/loadtest.sh

# Same smoke over the binary decide protocol (qosrmad -wire-addr +
# loadgen -wire): the zero-copy path must clear a floor well above the
# JSON one. Report lands in loadgen.wire.txt.
loadtest-wire:
	WIRE=1 MIN_QPS=250000 OUT=loadgen.wire.txt ./scripts/loadtest.sh

# The chaos wall: the seeded in-process fault-injection suite (real
# servers behind deterministic fault proxies, routed on both codecs —
# bit-identical answers under faults, bounded errors, eject/readmit on
# kill/heal) plus a multi-process drill on this runner: four qosrmad
# replicas behind a qosrmad -route tier, loadgen driving JSON and wire
# through it while a backend is kill -9'd and restarted. Also the
# ROADMAP's multi-process distributed loadtest target. Report: chaos.txt.
chaos:
	./scripts/chaos.sh

# The byte-determinism wall, promoted to the per-push CI lane: the cluster
# engine's emitter output across worker counts {1,4,GOMAXPROCS} (scored
# and equilibrium placement), database builds across worker counts,
# concurrent service batches vs sequential library calls, the binary
# decide path vs the JSON one on the same seeded trace, the binary
# response stream hash across shard/cache layouts, and the Nash solver's
# equilibrium across solver worker counts and repeated runs.
# Run without -short (these need real database builds) and without caching.
determinism:
	$(GO) test -count=1 -run \
		'TestClusterDeterministic|TestEquilibriumPlacementDeterministic|TestSolveDeterministic|TestBuildDeterministicAcrossWorkerCounts|TestConcurrentDecideDeterministic|TestDecideMatchesLibrary|TestWireMatchesJSON|TestWireStreamDeterministic' \
		./internal/cluster ./internal/equilibrium ./internal/simdb ./internal/service

# Golden-table regression: regenerate the committed paper tables (via
# System.Sweep) and the small-fleet placement comparison, and fail on any
# byte drift (refresh intentionally with `go test -run TestGolden -update .`).
golden:
	$(GO) test -count=1 -run 'TestGolden' .

# Fuzz regression: run every fuzz target over its seed corpus only (no
# fuzzing time), so corpus regressions fail fast in CI; `go test -fuzz`
# explores further locally.
fuzz-smoke:
	$(GO) test -count=1 -run 'Fuzz' ./internal/simdb ./internal/service ./internal/cache ./internal/core ./internal/wire

# Docs consistency wall: every relative link in README.md and docs/
# resolves, and the server's registered route table matches docs/api.md
# in both directions (no undocumented routes, no phantom docs).
docs-check:
	./scripts/docscheck.sh

# Coverage report: cover/cover.out + per-package HTML + cover/func.txt.
cover:
	./scripts/cover.sh

# Ratcheting CI floor: fail when total coverage drops below
# .coverage-floor (kept at measured% - 1; raise it as coverage grows).
cover-check:
	./scripts/cover.sh check

# CPU-profile the build side: one cold SharedEnv construction plus the hot
# profiling kernels, then print the top consumers. cpu.prof stays on disk
# for `go tool pprof` drill-down (web/peek/list).
pprof:
	$(GO) test -run '^$$' -bench 'EnvBuild|SimulatePhase|LeadingMissSurface|StackDistances' \
		-benchtime=0.5s -count=1 -cpuprofile cpu.prof -o qosrma.test .
	$(GO) tool pprof -top -nodecount=25 qosrma.test cpu.prof | tee pprof.txt

clean:
	rm -f $(BENCH_OUT) $(BENCH_NEW) $(BENCH_DIFF) cpu.prof pprof.txt qosrma.test loadgen.txt loadgen.wire.txt chaos.txt qosrmavet.txt escape.diff.txt
	rm -rf cover bin
	$(GO) clean ./...
