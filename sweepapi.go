package qosrma

import (
	"fmt"
	"io"

	"qosrma/internal/sweep"
	"qosrma/internal/workload"
)

// SweepSpec declares a scenario grid over a System: the cartesian product
// of every non-empty axis, in the fixed order Mixes (outermost), Schemes,
// Models, slack levels (Slacks before SlackVectors), Oracle, baseline
// frequencies, SwitchScales, BandwidthGBps, Feedback (innermost). Axes
// left nil default to a single neutral value, so the minimal sweep names
// only workloads and schemes.
type SweepSpec struct {
	// Name labels the sweep in emitted rows.
	Name string
	// Mixes are the workloads to sweep; Workloads is a shorthand that
	// wraps bare app lists (one benchmark per core) into anonymous mixes.
	Mixes     []Mix
	Workloads [][]string

	Schemes []Scheme
	// Models defaults to {Model2}.
	Models []ModelKind
	// Slacks are uniform QoS relaxations; SlackVectors relax per core.
	Slacks       []float64
	SlackVectors [][]float64
	// Oracle sweeps realistic vs perfect statistics.
	Oracle []bool
	// BaselineFreqsGHz sweeps the baseline VF choice (values snap to the
	// nearest DVFS step).
	BaselineFreqsGHz []float64
	// SwitchScales scales every reconfiguration overhead (1 = paper).
	SwitchScales []float64
	// BandwidthGBps caps the per-core memory bandwidth (0 = unconstrained).
	BandwidthGBps []float64
	// Feedback toggles the phase-history MLP table extension.
	Feedback []bool
}

// SweepResult is the outcome of a sweep: compiled points and their
// simulation results, index-aligned in the deterministic grid order.
type SweepResult = sweep.Result

// SweepRow is one aggregated record of a sweep result.
type SweepRow = sweep.Row

// Sweep compiles and executes the scenario grid on the system's sweep
// engine. Results come back in the deterministic grid order; repeated or
// overlapping sweeps on the same System reuse the engine's result cache,
// so a point is never simulated twice per System.
func (s *System) Sweep(spec SweepSpec) (*SweepResult, error) {
	mixes := append([]Mix(nil), spec.Mixes...)
	for i, apps := range spec.Workloads {
		mixes = append(mixes, workload.Mix{
			Name: fmt.Sprintf("workload%02d", i),
			Apps: append([]string(nil), apps...),
		})
	}
	models := spec.Models
	if len(models) == 0 {
		models = []ModelKind{Model2}
	}
	var baselines []int
	for _, f := range spec.BaselineFreqsGHz {
		baselines = append(baselines, s.db.Sys.DVFS.ClosestIndex(f))
	}
	return s.engine.Run(sweep.Spec{
		Name:             spec.Name,
		DB:               s.db,
		Mixes:            mixes,
		Schemes:          spec.Schemes,
		Models:           models,
		Slacks:           spec.Slacks,
		SlackVectors:     spec.SlackVectors,
		Oracle:           spec.Oracle,
		BaselineFreqIdxs: baselines,
		SwitchScales:     spec.SwitchScales,
		BandwidthGBps:    spec.BandwidthGBps,
		Feedback:         spec.Feedback,
	})
}

// SweepCacheStats reports the system's sweep-cache lookups: misses are
// simulated points, hits were served from the cache.
func (s *System) SweepCacheStats() (hits, misses int64) {
	return s.engine.Cache().Stats()
}

// WriteSweepCSV renders a sweep result as CSV.
func WriteSweepCSV(w io.Writer, res *SweepResult) error {
	return sweep.WriteCSV(w, res.Rows())
}

// WriteSweepJSON renders a sweep result as JSON lines.
func WriteSweepJSON(w io.Writer, res *SweepResult) error {
	return sweep.WriteJSON(w, res.Rows())
}
