// Command qosrma simulates one multi-programmed workload under a selected
// resource-management scheme and prints a per-application report.
//
// Examples:
//
//	qosrma -apps mcf,soplex,hmmer,namd -scheme rm2
//	qosrma -apps mcf,soplex,hmmer,namd -scheme rm3 -model 3 -slack 0.4
//	qosrma -cores 8 -apps mcf,soplex,hmmer,namd,gcc,lbm,povray,sjeng -scheme rm2 -oracle
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qosrma: ")

	var (
		cores    = flag.Int("cores", 4, "number of cores")
		apps     = flag.String("apps", "mcf,soplex,hmmer,namd", "comma-separated benchmarks, one per core")
		scheme   = flag.String("scheme", "rm2", "static | dvfs | rm1 | rm2 | rm3")
		model    = flag.Int("model", 0, "analytical model 1..3 (0 = scheme default)")
		slack    = flag.Float64("slack", 0, "QoS relaxation, e.g. 0.4 = tolerate 40% slowdown")
		oracle   = flag.Bool("oracle", false, "use perfect (oracle) statistics")
		dbPath   = flag.String("db", "", "load the simulation database from this file instead of building it")
		listApps = flag.Bool("list", false, "list available benchmarks and exit")
		timeline = flag.Int("timeline", 0, "print the first N allocation changes")
	)
	flag.Parse()

	if *listApps {
		fmt.Println(strings.Join(qosrma.Benchmarks(), "\n"))
		return
	}

	var (
		sys *qosrma.System
		err error
	)
	if *dbPath != "" {
		sys, err = qosrma.LoadSystem(*dbPath)
	} else {
		log.Printf("building %d-core simulation database...", *cores)
		sys, err = qosrma.NewSystem(*cores)
	}
	if err != nil {
		log.Fatal(err)
	}

	var sc qosrma.Scheme
	switch strings.ToLower(*scheme) {
	case "static":
		sc = qosrma.Static
	case "dvfs":
		sc = qosrma.DVFSOnly
	case "rm1":
		sc = qosrma.RM1
	case "rm2":
		sc = qosrma.RM2
	case "rm3":
		sc = qosrma.RM3
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}

	opts := []qosrma.Option{}
	switch *model {
	case 0:
	case 1:
		opts = append(opts, qosrma.WithModel(qosrma.Model1))
	case 2:
		opts = append(opts, qosrma.WithModel(qosrma.Model2))
	case 3:
		opts = append(opts, qosrma.WithModel(qosrma.Model3))
	default:
		log.Fatalf("unknown model %d", *model)
	}
	if *slack > 0 {
		opts = append(opts, qosrma.WithSlack(*slack))
	}
	if *oracle {
		opts = append(opts, qosrma.WithOracle())
	}

	workload := strings.Split(*apps, ",")
	if *timeline > 0 {
		opts = append(opts, qosrma.WithTimeline())
	}
	res, err := sys.Run(workload, sc, opts...)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "core\tapp\ttime\tbaseline\texcess\tenergy\tbaseline\tsaved\tavg alloc\tQoS\n")
	for _, a := range res.Apps {
		status := "ok"
		if a.Violated() {
			status = "VIOLATED"
		}
		fmt.Fprintf(w, "%d\t%s\t%.1fs\t%.1fs\t%+.1f%%\t%.1fJ\t%.1fJ\t%+.1f%%\t%.2fGHz/%.1fw\t%s\n",
			a.Core, a.Bench, a.Time, a.BaselineTime, a.ExcessTime*100,
			a.Energy, a.BaselineEnergy, (1-a.Energy/a.BaselineEnergy)*100,
			a.MeanFreqGHz, a.MeanWays, status)
	}
	w.Flush()
	fmt.Printf("\nscheme %s: system energy savings %.2f%%, %d QoS violations, %d RMA invocations\n",
		res.Scheme, res.EnergySavings*100, res.Violations, res.Invocations)
	fmt.Printf("interval QoS audit: %d/%d intervals violated (%.2f%%), mean magnitude %.2f%%\n",
		res.IntervalViolations, res.Intervals,
		float64(res.IntervalViolations)/float64(max(res.Intervals, 1))*100, res.ViolationMeanPct)

	if *timeline > 0 {
		fmt.Printf("\nallocation timeline (%d changes total, showing up to %d):\n",
			len(res.Timeline), *timeline)
		for i, ev := range res.Timeline {
			if i >= *timeline {
				break
			}
			fmt.Printf("  t=%8.3fs core %d -> %s %.1fGHz %dw\n",
				ev.TimeSec, ev.Core, ev.Setting.Size,
				sys.Config().DVFS[ev.Setting.FreqIdx].FreqGHz, ev.Setting.Ways)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
