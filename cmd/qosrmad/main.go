// Command qosrmad is the long-running QoS-RMA decision service: it builds
// (or loads) a compiled simulation database once at startup and then
// serves resource-management decisions, collocation scores and scenario
// sweeps over HTTP/JSON, with a live-ops control plane for production
// runs (Prometheus metrics, hot reload, graceful drain, self-audit).
//
// Endpoints (full reference in docs/api.md):
//
//	POST /v1/decide           per-machine RMA settings for co-phase vectors
//	POST /v1/score            collocation scoring / online placement
//	POST /v1/sweep            submit an async scenario sweep
//	GET  /v1/sweep/{id}       sweep job status
//	GET  /v1/sweep/{id}/result?format=csv|json
//	GET  /v1/meta             servable benchmarks, phases, schemes, version
//	GET  /v1/healthz          liveness (degrades on failed self-audit)
//	GET  /metrics             Prometheus text exposition
//	GET  /admin/status        operator status page
//	POST /admin/reload        hot-swap the database (SIGHUP does the same)
//	POST /admin/check         run a self-audit now
//
// Signals:
//
//	SIGHUP             reload the database (from -db, or a rebuild) and
//	                   swap it in atomically; in-flight requests finish on
//	                   the old snapshot
//	SIGTERM / SIGINT   graceful drain: stop accepting, finish in-flight
//	                   work and running sweep jobs, exit (bounded by
//	                   -drain-timeout)
//
// Besides HTTP/JSON, two scale-out modes:
//
//	-wire-addr :7744   also serve the compact binary decide protocol
//	                   (internal/wire; spec in docs/api.md) on a raw TCP
//	                   listener — the same shard channels, bit-identical
//	                   answers, several times the JSON throughput
//	-route SPEC        routing-tier mode: serve no decisions locally, but
//	                   consistent-hash decide batches across replicated
//	                   backend groups ("a:7743,b:7743;c:7743" = two
//	                   groups, the first with two replicas) and forward
//	                   everything else to a rotating replica — with
//	                   bounded retries, per-replica circuit breakers and
//	                   active health probing (-route-retries,
//	                   -route-timeout, -route-probe-interval,
//	                   -route-hedge-after). Replicas may declare a wire
//	                   address ("a:7743|a:7744"); combined with
//	                   -wire-addr the tier then proxies the binary
//	                   decide protocol too, with the same failover
//	                   semantics over per-backend connection pools
//
// Usage:
//
//	qosrmad -addr :7743 -cores 4
//	qosrmad -addr :7743 -db db.gob.gz -audit-interval 30s
//	qosrmad -addr :7743 -wire-addr :7744
//	qosrmad -addr :7700 -route "10.0.0.1:7743;10.0.0.2:7743"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qosrma"
	"qosrma/internal/route"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7743", "listen address")
		wireAddr     = flag.String("wire-addr", "", "also serve the binary decide protocol on this raw-TCP address")
		routeSpec    = flag.String("route", "", "routing-tier mode: consistent-hash decide traffic across backend groups (groups ';'-separated, replicas ','-separated, optional 'http|wire' per replica)")
		vnodes       = flag.Int("vnodes", 0, "routing-tier virtual nodes per group (0 = default)")
		routeRetries = flag.Int("route-retries", 2, "routing-tier extra attempts for idempotent requests (negative disables)")
		routeTimeout = flag.Duration("route-timeout", 2*time.Second, "routing-tier per-attempt deadline (negative disables)")
		routeProbe   = flag.Duration("route-probe-interval", 2*time.Second, "routing-tier health-probe period (0 disables active probing)")
		routeHedge   = flag.Duration("route-hedge-after", 0, "routing-tier decide hedging delay (0 disables hedged requests)")
		routeSeed    = flag.Uint64("route-seed", 1, "routing-tier backoff-jitter seed")
		maxInflight  = flag.Int("max-inflight", 0, "decide/score load-shed gate (0 = default 1024, negative disables)")
		cores        = flag.Int("cores", 4, "cores per machine (when building the database)")
		dbPath       = flag.String("db", "", "load a compiled database instead of building one (also the SIGHUP reload source)")
		shards       = flag.Int("shards", 0, "decision shards (0 = GOMAXPROCS, capped at 16)")
		batch        = flag.Int("batch", 0, "shard micro-batch size (0 = default 64)")
		cache        = flag.Int("cache", 0, "per-shard decision-LRU entries (0 = default 4096, negative disables)")
		auditEvery   = flag.Duration("audit-interval", time.Minute, "self-checker period (0 disables periodic audits)")
		auditSamples = flag.Int("audit-samples", 0, "cached decisions re-verified per audit (0 = default 16)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline on SIGTERM/SIGINT")
	)
	flag.Parse()

	if *routeSpec != "" {
		runRouter(routerConfig{
			addr:          *addr,
			wireAddr:      *wireAddr,
			spec:          *routeSpec,
			vnodes:        *vnodes,
			retries:       *routeRetries,
			timeout:       *routeTimeout,
			probeInterval: *routeProbe,
			hedgeAfter:    *routeHedge,
			seed:          *routeSeed,
			drainTimeout:  *drainTimeout,
		})
		return
	}

	start := time.Now()
	var (
		sys *qosrma.System
		err error
	)
	if *dbPath != "" {
		sys, err = qosrma.LoadSystem(*dbPath)
	} else {
		sys, err = qosrma.NewSystem(*cores)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
		os.Exit(1)
	}

	srv := sys.NewServer(qosrma.ServeSpec{
		Shards:        *shards,
		Batch:         *batch,
		CacheSize:     *cache,
		ReloadPath:    *dbPath,
		AuditInterval: *auditEvery,
		AuditSamples:  *auditSamples,
		MaxInflight:   *maxInflight,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	hash, _, _, _ := srv.Snapshot()
	log.Printf("qosrmad: database ready in %.2fs (%d cores, %d benchmarks, hash %s); listening on %s",
		time.Since(start).Seconds(), sys.Config().NumCores, sys.DB().NumBenches(), hash, *addr)

	// The binary listener rides beside the HTTP one: same shard channels,
	// bit-identical answers, and Close/Shutdown tear it down with the rest
	// of the server.
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosrmad: wire listener: %v\n", err)
			os.Exit(1)
		}
		log.Printf("qosrmad: binary decide protocol on %s", *wireAddr)
		go func() {
			if err := srv.ServeWire(ln); err != nil {
				log.Printf("qosrmad: wire serving stopped: %v", err)
			}
		}()
	}

	// SIGHUP → hot reload; SIGTERM/SIGINT → graceful drain. The signal
	// loop owns process lifetime; the serve goroutine just reports.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	for {
		select {
		case err := <-serveErr:
			if !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
				os.Exit(1)
			}
			return
		case sig := <-sigs:
			switch sig {
			case syscall.SIGHUP:
				t := time.Now()
				hash, gen, err := srv.Reload()
				if err != nil {
					log.Printf("qosrmad: reload failed: %v (still serving the previous database)", err)
					continue
				}
				log.Printf("qosrmad: reloaded in %.2fs (generation %d, hash %s)", time.Since(t).Seconds(), gen, hash)
			default:
				log.Printf("qosrmad: %v: draining (deadline %s)", sig, *drainTimeout)
				ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
				// Stop accepting connections first, then drain the
				// service's own queues and jobs.
				httpErr := httpSrv.Shutdown(ctx)
				svcErr := srv.Shutdown(ctx)
				cancel()
				if httpErr != nil || svcErr != nil {
					log.Printf("qosrmad: drain incomplete at deadline (http: %v, service: %v)", httpErr, svcErr)
					os.Exit(1)
				}
				log.Printf("qosrmad: drained cleanly")
				return
			}
		}
	}
}

// routerConfig carries the -route mode knobs from flag parsing.
type routerConfig struct {
	addr          string
	wireAddr      string
	spec          string
	vnodes        int
	retries       int
	timeout       time.Duration
	probeInterval time.Duration
	hedgeAfter    time.Duration
	seed          uint64
	drainTimeout  time.Duration
}

// runRouter is -route mode: a stateless consistent-hash tier over
// replicated backend groups. It builds no database — decide batches are
// split by the ring and merged with bounded retries, per-replica circuit
// breakers and active health probing; everything else is forwarded
// whole. With -wire-addr the tier also proxies the binary decide
// protocol over per-backend connection pools.
func runRouter(cfg routerConfig) {
	groups, err := route.ParseGroups(cfg.spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
		os.Exit(1)
	}
	ring, err := route.New(groups, cfg.vnodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
		os.Exit(1)
	}
	proxy := route.NewProxyWithOptions(ring, nil, route.Options{
		AttemptTimeout: cfg.timeout,
		Retries:        cfg.retries,
		HedgeAfter:     cfg.hedgeAfter,
		ProbeInterval:  cfg.probeInterval,
		Seed:           cfg.seed,
	})
	httpSrv := &http.Server{Addr: cfg.addr, Handler: proxy}

	var desc []string
	for _, g := range groups {
		desc = append(desc, fmt.Sprintf("%s[%d replicas]", g.Name, len(g.Addrs)))
	}
	log.Printf("qosrmad: routing tier on %s over %d groups: %s", cfg.addr, len(groups), strings.Join(desc, " "))

	if cfg.wireAddr != "" {
		ln, err := net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosrmad: wire listener: %v\n", err)
			os.Exit(1)
		}
		proxy.ServeWire(ln)
		log.Printf("qosrmad: routing binary decide protocol on %s", cfg.wireAddr)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigs:
		log.Printf("qosrmad: %v: draining routing tier (deadline %s)", sig, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		err := httpSrv.Shutdown(ctx)
		cancel()
		proxy.Close()
		if err != nil {
			log.Printf("qosrmad: drain incomplete at deadline: %v", err)
			os.Exit(1)
		}
		requests, splits, failures := proxy.Stats()
		log.Printf("qosrmad: routing tier drained cleanly (%d decide requests, %d split, %d forward failures)",
			requests, splits, failures)
	}
}
