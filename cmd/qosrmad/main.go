// Command qosrmad is the long-running QoS-RMA decision service: it builds
// (or loads) a compiled simulation database once at startup and then
// serves resource-management decisions, collocation scores and scenario
// sweeps over HTTP/JSON.
//
// Endpoints (see internal/service):
//
//	POST /v1/decide           per-machine RMA settings for co-phase vectors
//	POST /v1/score            collocation scoring / online placement
//	POST /v1/sweep            submit an async scenario sweep
//	GET  /v1/sweep/{id}       sweep job status
//	GET  /v1/sweep/{id}/result?format=csv|json
//	GET  /v1/meta             servable benchmarks, phases, schemes
//	GET  /v1/healthz          liveness + shard/cache statistics
//
// Usage:
//
//	qosrmad -addr :7743 -cores 4
//	qosrmad -addr :7743 -db db.gob.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qosrma"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7743", "listen address")
		cores  = flag.Int("cores", 4, "cores per machine (when building the database)")
		dbPath = flag.String("db", "", "load a compiled database instead of building one")
		shards = flag.Int("shards", 0, "decision shards (0 = GOMAXPROCS, capped at 16)")
		batch  = flag.Int("batch", 0, "shard micro-batch size (0 = default 64)")
		cache  = flag.Int("cache", 0, "per-shard decision-LRU entries (0 = default 4096, negative disables)")
	)
	flag.Parse()

	start := time.Now()
	var (
		sys *qosrma.System
		err error
	)
	if *dbPath != "" {
		sys, err = qosrma.LoadSystem(*dbPath)
	} else {
		sys, err = qosrma.NewSystem(*cores)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
		os.Exit(1)
	}
	log.Printf("qosrmad: database ready in %.2fs (%d cores, %d benchmarks); listening on %s",
		time.Since(start).Seconds(), sys.Config().NumCores, sys.DB().NumBenches(), *addr)
	if err := sys.Serve(qosrma.ServeSpec{
		Addr: *addr, Shards: *shards, Batch: *batch, CacheSize: *cache,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "qosrmad: %v\n", err)
		os.Exit(1)
	}
}
