// Command qosrmavet runs the repo-specific static-analysis suite over
// the whole module: determinism, noalloc, shardowned, ctxdeadline and
// exhaustive checks (see internal/analysis and docs/analysis.md).
//
// Usage:
//
//	qosrmavet [flags] [packages]
//
// The package arguments are accepted for symmetry with go vet but the
// suite always analyses the entire module containing -C (the checks are
// whole-module invariants; analysing a subset would silently weaken
// them).
//
// Flags:
//
//	-C dir        directory inside the target module (default ".")
//	-checks list  comma-separated subset of checks to run (default all)
//	-escape       diff compiler escape analysis for //qosrma:noalloc
//	              functions against the committed baseline instead of
//	              running the analyzers
//	-baseline f   escape baseline file (default internal/analysis/escape.baseline)
//	-update       with -escape: rewrite the baseline from the current tree
//
// Exit status is 1 when any unsuppressed finding (or escape diff)
// remains, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qosrma/internal/analysis"
)

func main() {
	var (
		dir      = flag.String("C", ".", "directory inside the target module")
		checks   = flag.String("checks", "", "comma-separated subset of checks (default all)")
		escape   = flag.Bool("escape", false, "diff escape analysis against the baseline")
		baseline = flag.String("baseline", "internal/analysis/escape.baseline", "escape baseline file, relative to the module root")
		update   = flag.Bool("update", false, "with -escape: rewrite the baseline")
	)
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	if *escape {
		diff, err := analysis.EscapeDiff(root, pkgs, filepath.Join(root, *baseline), *update)
		if err != nil {
			fatal(err)
		}
		if *update {
			fmt.Fprintf(os.Stderr, "qosrmavet: escape baseline updated\n")
			return
		}
		if len(diff) > 0 {
			fmt.Fprintf(os.Stderr, "qosrmavet: escape analysis drifted from %s (re-run with -update if intended):\n", *baseline)
			for _, d := range diff {
				fmt.Println(d)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qosrmavet: escape analysis matches baseline\n")
		return
	}

	var sel []string
	if *checks != "" {
		sel = strings.Split(*checks, ",")
	}
	diags := analysis.Run(pkgs, sel)
	for _, d := range diags {
		// Print positions relative to the module root so output is
		// stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qosrmavet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qosrmavet: %d packages clean\n", len(pkgs))
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qosrmavet: %v\n", err)
	os.Exit(2)
}
