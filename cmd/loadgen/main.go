// Command loadgen drives a running qosrmad with a deterministic co-phase
// decision workload and reports throughput and latency percentiles.
//
// The query population is drawn once from a seeded RNG (same seed, same
// queries — byte for byte), so runs are reproducible and the server's
// cache behaviour is controlled by -population: with the default the
// working set fits the decision LRUs and the run measures the cached hot
// path; raise it beyond shards x cache to measure compute throughput.
//
// Two driving modes:
//
//	-mode closed   -conns workers send batches back-to-back (throughput)
//	-mode open     batches are launched on a Poisson arrival schedule
//	               drawn from the workload arrival generator at -rate
//	               queries/sec; latency is measured from the scheduled
//	               arrival, so queueing delay is included (no coordinated
//	               omission)
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7743 -duration 2s -conns 4 -batch 64
//	loadgen -mode open -rate 50000 -duration 5s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/stats"
	"qosrma/internal/workload"
)

type metaBench struct {
	Name   string `json:"name"`
	Phases int    `json:"phases"`
}

type meta struct {
	NumCores int         `json:"num_cores"`
	Benches  []metaBench `json:"benches"`
}

type appQuery struct {
	Bench string `json:"bench"`
	Phase int    `json:"phase"`
}

type decideQuery struct {
	Scheme string     `json:"scheme,omitempty"`
	Slack  float64    `json:"slack,omitempty"`
	Apps   []appQuery `json:"apps"`
}

type decideRequest struct {
	Queries []decideQuery `json:"queries"`
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7743", "qosrmad address")
		duration   = flag.Duration("duration", 2*time.Second, "run length")
		conns      = flag.Int("conns", 4, "concurrent connections (closed mode) / max in flight (open mode)")
		batch      = flag.Int("batch", 64, "decide queries per HTTP request")
		mode       = flag.String("mode", "closed", "closed (back-to-back) or open (Poisson arrivals)")
		rate       = flag.Float64("rate", 50000, "open mode: offered load in queries/sec")
		seed       = flag.Uint64("seed", 1, "trace seed (same seed, same queries)")
		scheme     = flag.String("scheme", "rm2", "decide scheme")
		slack      = flag.Float64("slack", 0.2, "uniform QoS slack")
		population = flag.Int("population", 512, "distinct co-phase queries in the trace")
		out        = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conns * 2,
		MaxIdleConnsPerHost: *conns * 2,
	}}

	m, err := fetchMeta(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	// Draw the deterministic query population: every query is a full
	// co-phase vector (one (bench, phase) per core).
	rng := stats.NewRNG(stats.SeedFrom(*seed, "loadgen/queries"))
	queries := make([]decideQuery, *population)
	for i := range queries {
		apps := make([]appQuery, m.NumCores)
		for c := range apps {
			b := m.Benches[rng.Intn(len(m.Benches))]
			apps[c] = appQuery{Bench: b.Name, Phase: rng.Intn(b.Phases)}
		}
		queries[i] = decideQuery{Scheme: *scheme, Slack: *slack, Apps: apps}
	}
	// Pre-encode one request body per distinct batch window so the send
	// loops measure the server, not the client's JSON encoder.
	numBodies := (*population + *batch - 1) / *batch
	bodies := make([][]byte, numBodies)
	for i := range bodies {
		lo := i * *batch
		hi := lo + *batch
		var win []decideQuery
		for j := lo; j < hi; j++ {
			win = append(win, queries[j%*population])
		}
		b, err := json.Marshal(decideRequest{Queries: win})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	var (
		sent     atomic.Int64 // batches completed
		errs     atomic.Int64
		drained  atomic.Int64 // batches refused because the server is draining
		latMu    sync.Mutex
		lats     []time.Duration
		deadline = time.Now().Add(*duration)
	)
	record := func(d time.Duration) {
		latMu.Lock()
		lats = append(lats, d)
		latMu.Unlock()
	}
	// errDrained marks the server's drain signature (503 + Retry-After):
	// the worker stops cleanly instead of counting failures against a
	// server that is shutting down exactly as designed.
	errDrained := fmt.Errorf("server draining")
	post := func(body []byte) error {
		resp, err := client.Post(base+"/v1/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
			return errDrained
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	start := time.Now()
	switch *mode {
	case "closed":
		var wg sync.WaitGroup
		for c := 0; c < *conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; time.Now().Before(deadline); i++ {
					t0 := time.Now()
					if err := post(bodies[i%len(bodies)]); err != nil {
						if err == errDrained {
							drained.Add(1)
							return
						}
						errs.Add(1)
						continue
					}
					record(time.Since(t0))
					sent.Add(1)
				}
			}(c)
		}
		wg.Wait()
	case "open":
		// The arrival schedule comes from the deterministic workload
		// arrival generator: one arrival per batch at rate/batch batches
		// per second.
		numBatches := int(*rate * duration.Seconds() / float64(*batch))
		sched := workload.PoissonArrivals([]string{"batch"}, workload.ArrivalOptions{
			Jobs:                numBatches,
			MeanInterarrivalSec: float64(*batch) / *rate,
			Seed:                *seed,
		})
		sem := make(chan struct{}, *conns)
		var wg sync.WaitGroup
		for i, a := range sched {
			due := start.Add(time.Duration(a.TimeSec * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, due time.Time) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := post(bodies[i%len(bodies)]); err != nil {
					if err == errDrained {
						drained.Add(1)
					} else {
						errs.Add(1)
					}
					return
				}
				record(time.Since(due)) // from scheduled arrival: includes queueing
				sent.Add(1)
			}(i, due)
		}
		wg.Wait()
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i].Seconds() * 1e3
	}
	batches := sent.Load()
	qps := float64(batches) * float64(*batch) / elapsed.Seconds()
	report := fmt.Sprintf(
		"loadgen: mode=%s conns=%d batch=%d population=%d seed=%d duration=%.2fs\n"+
			"queries=%d qps=%.0f batches=%d errors=%d drained=%d\n"+
			"batch latency ms: p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f\n",
		*mode, *conns, *batch, *population, *seed, elapsed.Seconds(),
		batches*int64(*batch), qps, batches, errs.Load(), drained.Load(),
		pct(0.50), pct(0.90), pct(0.99), pct(0.999), pct(1.0))
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if errs.Load() > 0 {
		os.Exit(1)
	}
}

// fetchMeta reads /v1/meta, retrying briefly so loadgen can be launched
// alongside a still-starting server.
func fetchMeta(client *http.Client, base string) (*meta, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := client.Get(base + "/v1/meta")
		if err == nil && resp.StatusCode == http.StatusOK {
			var m meta
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if m.NumCores <= 0 || len(m.Benches) == 0 {
				return nil, fmt.Errorf("meta is degenerate: %+v", m)
			}
			return &m, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("meta status %d", resp.StatusCode)
			resp.Body.Close()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("server not reachable: %w", lastErr)
}
