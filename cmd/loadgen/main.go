// Command loadgen drives a running qosrmad with a deterministic co-phase
// decision workload and reports throughput and latency percentiles.
//
// The query population is drawn once from a seeded RNG (same seed, same
// queries — byte for byte), so runs are reproducible and the server's
// cache behaviour is controlled by -population: with the default the
// working set fits the decision LRUs and the run measures the cached hot
// path; raise it beyond shards x cache to measure compute throughput.
//
// Two driving modes:
//
//	-mode closed   -conns workers send batches back-to-back (throughput)
//	-mode open     batches are launched on a Poisson arrival schedule
//	               drawn from the workload arrival generator at -rate
//	               queries/sec; latency is measured from the scheduled
//	               arrival, so queueing delay is included (no coordinated
//	               omission)
//
// Two protocols:
//
//	default        HTTP/JSON against /v1/decide
//	-wire          the compact binary protocol (internal/wire) against a
//	               qosrmad -wire-addr listener: one multiplexed TCP
//	               connection per worker, queries interned against the
//	               server's Meta frame (closed mode only); lost
//	               connections are re-dialled with jittered backoff and
//	               the report counts them (reconnects=N)
//
// And multi-backend fan-out: -addrs takes a comma-separated server list;
// workers are spread across the backends round-robin and the report
// aggregates throughput and latency over the whole fleet — the client
// side of the consistent-hash routing tier (see docs/operations.md).
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7743 -duration 2s -conns 4 -batch 64
//	loadgen -mode open -rate 50000 -duration 5s
//	loadgen -wire -addr 127.0.0.1:7744
//	loadgen -addrs 10.0.0.1:7743,10.0.0.2:7743 -conns 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/resilience"
	"qosrma/internal/stats"
	"qosrma/internal/wire"
	"qosrma/internal/workload"
)

type metaBench struct {
	Name   string `json:"name"`
	Phases int    `json:"phases"`
}

type meta struct {
	NumCores int         `json:"num_cores"`
	Benches  []metaBench `json:"benches"`
	DBHash   string      `json:"db_hash"`
}

type appQuery struct {
	Bench string `json:"bench"`
	Phase int    `json:"phase"`
}

type decideQuery struct {
	Scheme string     `json:"scheme,omitempty"`
	Slack  float64    `json:"slack,omitempty"`
	Apps   []appQuery `json:"apps"`
}

type decideRequest struct {
	Queries []decideQuery `json:"queries"`
}

// schemeIDs maps the -scheme flag to the binary protocol's interned
// scheme ID (core.Scheme's numeric value).
var schemeIDs = map[string]uint8{
	"static": 0, "dvfs": 1, "rm1": 2, "rm2": 3, "rm3": 4, "ucp": 5,
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7743", "qosrmad address")
		addrs      = flag.String("addrs", "", "comma-separated qosrmad addresses for multi-backend fan-out (overrides -addr)")
		wireProto  = flag.Bool("wire", false, "drive the binary decide protocol (server's -wire-addr listener) instead of HTTP/JSON")
		duration   = flag.Duration("duration", 2*time.Second, "run length")
		conns      = flag.Int("conns", 4, "concurrent connections (closed mode) / max in flight (open mode)")
		batch      = flag.Int("batch", 64, "decide queries per request")
		mode       = flag.String("mode", "closed", "closed (back-to-back) or open (Poisson arrivals)")
		rate       = flag.Float64("rate", 50000, "open mode: offered load in queries/sec")
		seed       = flag.Uint64("seed", 1, "trace seed (same seed, same queries)")
		scheme     = flag.String("scheme", "rm2", "decide scheme")
		slack      = flag.Float64("slack", 0.2, "uniform QoS slack")
		population = flag.Int("population", 512, "distinct co-phase queries in the trace")
		out        = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()

	targets := []string{*addr}
	if *addrs != "" {
		targets = targets[:0]
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targets = append(targets, a)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: -addrs names no servers\n")
			os.Exit(1)
		}
	}

	var (
		sent       atomic.Int64 // batches completed
		errs       atomic.Int64
		drained    atomic.Int64 // batches refused because the server is draining
		reconnects atomic.Int64 // wire connections re-established after a failure
		latMu      sync.Mutex
		lats       []time.Duration
	)
	record := func(d time.Duration) {
		latMu.Lock()
		lats = append(lats, d)
		latMu.Unlock()
	}

	proto := "json"
	var elapsed time.Duration
	if *wireProto {
		proto = "wire"
		if *mode != "closed" {
			fmt.Fprintf(os.Stderr, "loadgen: -wire supports -mode closed only\n")
			os.Exit(1)
		}
		elapsed = runWire(targets, *duration, *conns, *batch, *seed, *scheme, *slack,
			*population, &sent, &errs, &drained, &reconnects, record)
	} else {
		elapsed = runJSON(targets, *mode, *duration, *conns, *batch, *rate, *seed,
			*scheme, *slack, *population, &sent, &errs, &drained, record)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i].Seconds() * 1e3
	}
	batches := sent.Load()
	qps := float64(batches) * float64(*batch) / elapsed.Seconds()
	report := fmt.Sprintf(
		"loadgen: proto=%s mode=%s backends=%d conns=%d batch=%d population=%d seed=%d duration=%.2fs\n"+
			"queries=%d qps=%.0f batches=%d errors=%d drained=%d reconnects=%d\n"+
			"batch latency ms: p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f\n",
		proto, *mode, len(targets), *conns, *batch, *population, *seed, elapsed.Seconds(),
		batches*int64(*batch), qps, batches, errs.Load(), drained.Load(), reconnects.Load(),
		pct(0.50), pct(0.90), pct(0.99), pct(0.999), pct(1.0))
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if errs.Load() > 0 {
		os.Exit(1)
	}
}

// runJSON drives the HTTP/JSON path, spreading workers (closed mode) or
// arrivals (open mode) round-robin over the target servers.
func runJSON(targets []string, mode string, duration time.Duration, conns, batch int,
	rate float64, seed uint64, scheme string, slack float64, population int,
	sent, errs, drained *atomic.Int64, record func(time.Duration)) time.Duration {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conns * 2,
		MaxIdleConnsPerHost: conns * 2,
	}}

	// All backends must serve the same database, or the fan-out would mix
	// incomparable answers; the meta content hash is the check.
	m, err := fetchMeta(client, "http://"+targets[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	for _, target := range targets[1:] {
		mb, err := fetchMeta(client, "http://"+target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", target, err)
			os.Exit(1)
		}
		if mb.DBHash != m.DBHash {
			fmt.Fprintf(os.Stderr, "loadgen: backend databases differ (%s serves %s, %s serves %s)\n",
				targets[0], m.DBHash, target, mb.DBHash)
			os.Exit(1)
		}
	}

	// Draw the deterministic query population: every query is a full
	// co-phase vector (one (bench, phase) per core).
	rng := stats.NewRNG(stats.SeedFrom(seed, "loadgen/queries"))
	queries := make([]decideQuery, population)
	for i := range queries {
		apps := make([]appQuery, m.NumCores)
		for c := range apps {
			b := m.Benches[rng.Intn(len(m.Benches))]
			apps[c] = appQuery{Bench: b.Name, Phase: rng.Intn(b.Phases)}
		}
		queries[i] = decideQuery{Scheme: scheme, Slack: slack, Apps: apps}
	}
	// Pre-encode one request body per distinct batch window so the send
	// loops measure the server, not the client's JSON encoder.
	numBodies := (population + batch - 1) / batch
	bodies := make([][]byte, numBodies)
	for i := range bodies {
		lo := i * batch
		hi := lo + batch
		var win []decideQuery
		for j := lo; j < hi; j++ {
			win = append(win, queries[j%population])
		}
		b, err := json.Marshal(decideRequest{Queries: win})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	deadline := time.Now().Add(duration)
	// errDrained marks the server's drain signature (503 + Retry-After):
	// the worker stops cleanly instead of counting failures against a
	// server that is shutting down exactly as designed.
	errDrained := fmt.Errorf("server draining")
	post := func(target string, body []byte) error {
		resp, err := client.Post("http://"+target+"/v1/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
			return errDrained
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	start := time.Now()
	switch mode {
	case "closed":
		var wg sync.WaitGroup
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				target := targets[c%len(targets)]
				for i := c; time.Now().Before(deadline); i++ {
					t0 := time.Now()
					if err := post(target, bodies[i%len(bodies)]); err != nil {
						if err == errDrained {
							drained.Add(1)
							return
						}
						errs.Add(1)
						continue
					}
					record(time.Since(t0))
					sent.Add(1)
				}
			}(c)
		}
		wg.Wait()
	case "open":
		// The arrival schedule comes from the deterministic workload
		// arrival generator: one arrival per batch at rate/batch batches
		// per second.
		numBatches := int(rate * duration.Seconds() / float64(batch))
		sched := workload.PoissonArrivals([]string{"batch"}, workload.ArrivalOptions{
			Jobs:                numBatches,
			MeanInterarrivalSec: float64(batch) / rate,
			Seed:                seed,
		})
		sem := make(chan struct{}, conns)
		var wg sync.WaitGroup
		for i, a := range sched {
			due := start.Add(time.Duration(a.TimeSec * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, due time.Time) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := post(targets[i%len(targets)], bodies[i%len(bodies)]); err != nil {
					if err == errDrained {
						drained.Add(1)
					} else {
						errs.Add(1)
					}
					return
				}
				record(time.Since(due)) // from scheduled arrival: includes queueing
				sent.Add(1)
			}(i, due)
		}
		wg.Wait()
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown mode %q\n", mode)
		os.Exit(1)
	}
	return time.Since(start)
}

// runWire drives the binary protocol: each worker owns one TCP connection
// to its round-robin backend and pipelines pre-encoded DecideRequest
// frames back to back. Queries are interned against the server's Meta
// frame (the explicit BenchID table), drawn from the same seeded trace
// stream as the JSON path.
func runWire(targets []string, duration time.Duration, conns, batch int,
	seed uint64, scheme string, slack float64, population int,
	sent, errs, drained, reconnects *atomic.Int64, record func(time.Duration)) time.Duration {
	schemeID, ok := schemeIDs[strings.ToLower(scheme)]
	if !ok {
		fmt.Fprintf(os.Stderr, "loadgen: -wire needs a canonical scheme name (static, dvfs, rm1, rm2, rm3, ucp), got %q\n", scheme)
		os.Exit(1)
	}
	m, err := fetchWireMeta(targets[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	for _, target := range targets[1:] {
		mb, err := fetchWireMeta(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", target, err)
			os.Exit(1)
		}
		if mb.DBHash != m.DBHash {
			fmt.Fprintf(os.Stderr, "loadgen: backend databases differ (%s serves %016x, %s serves %016x)\n",
				targets[0], m.DBHash, target, mb.DBHash)
			os.Exit(1)
		}
	}
	if len(m.Benches) == 0 || m.NCores == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: wire meta is degenerate: %+v\n", m)
		os.Exit(1)
	}

	// Same trace stream as the JSON path: the n-th draw picks the same
	// (bench, phase), here interned to wire IDs.
	n := int(m.NCores)
	rng := stats.NewRNG(stats.SeedFrom(seed, "loadgen/queries"))
	apps := make([]wire.App, population*n)
	for i := 0; i < population; i++ {
		for c := 0; c < n; c++ {
			b := m.Benches[rng.Intn(len(m.Benches))]
			apps[i*n+c] = wire.App{Bench: b.ID, Phase: uint16(rng.Intn(int(b.Phases)))}
		}
	}
	numBodies := (population + batch - 1) / batch
	frames := make([][]byte, numBodies)
	for i := range frames {
		req := wire.DecideRequest{
			Seq:    uint32(i),
			DBHash: m.DBHash,
			Scheme: schemeID,
			NCores: m.NCores,
		}
		if slack != 0 {
			req.Flags = wire.FlagSlackUniform
			req.Slack = slack
		}
		for j := i * batch; j < i*batch+batch; j++ {
			q := j % population
			req.Apps = append(req.Apps, apps[q*n:(q+1)*n]...)
		}
		frames[i] = wire.AppendDecideRequest(nil, &req)
	}

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			target := targets[c%len(targets)]
			// Connection loss is a normal event when the server restarts or
			// a chaos proxy resets the link: the worker reconnects with
			// seeded jittered backoff and the run reports the count, rather
			// than abandoning the worker on the first broken pipe.
			bo := resilience.Backoff{Base: 20 * time.Millisecond, Max: 500 * time.Millisecond}
			rnd := stats.NewRNG(stats.SeedFrom(seed, fmt.Sprintf("loadgen/reconnect/%d", c)))
			var conn net.Conn
			var r *wire.Reader
			fails := 0
			lose := func() {
				if conn != nil {
					conn.Close()
					conn = nil
				}
				reconnects.Add(1)
				fails++
			}
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			var resp wire.DecideResponse
			for i := c; time.Now().Before(deadline); i++ {
				if conn == nil {
					if fails > 0 {
						time.Sleep(bo.Delay(fails-1, rnd.Float64))
						if !time.Now().Before(deadline) {
							return
						}
					}
					nc, err := net.DialTimeout("tcp", target, time.Second)
					if err != nil {
						lose()
						continue
					}
					conn, r = nc, wire.NewReader(nc)
				}
				frame := frames[i%len(frames)]
				t0 := time.Now()
				if _, err := conn.Write(frame); err != nil {
					lose()
					continue
				}
				typ, payload, err := r.Next()
				if err != nil {
					lose()
					continue
				}
				switch typ {
				case wire.TypeDecideResponse:
					if err := wire.ParseDecideResponse(payload, &resp); err != nil {
						errs.Add(1)
						lose()
						continue
					}
					record(time.Since(t0))
					sent.Add(1)
					fails = 0
				case wire.TypeError:
					_, code, _, perr := wire.ParseError(payload)
					if perr == nil && code == wire.ErrCodeUnavailable {
						// Drain goaway: this backend is leaving for good, so
						// a clean stop beats hammering its closed port.
						drained.Add(1)
						return
					}
					errs.Add(1)
					lose()
					continue
				default:
					errs.Add(1)
					lose()
					continue
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start)
}

// fetchWireMeta dials the binary port and runs the Hello → Meta
// handshake, retrying briefly so loadgen can be launched alongside a
// still-starting server.
func fetchWireMeta(target string) (*wire.Meta, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		m, err := tryWireMeta(target)
		if err == nil {
			return m, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("wire port not reachable: %w", lastErr)
}

func tryWireMeta(target string) (*wire.Meta, error) {
	conn, err := net.DialTimeout("tcp", target, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // best effort
	if _, err := conn.Write(wire.AppendHello(nil)); err != nil {
		return nil, err
	}
	r := wire.NewReader(conn)
	typ, payload, err := r.Next()
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeMeta {
		return nil, fmt.Errorf("hello answered frame type %#x", typ)
	}
	var m wire.Meta
	if err := wire.ParseMeta(payload, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// fetchMeta reads /v1/meta, retrying briefly so loadgen can be launched
// alongside a still-starting server.
func fetchMeta(client *http.Client, base string) (*meta, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := client.Get(base + "/v1/meta")
		if err == nil && resp.StatusCode == http.StatusOK {
			var m meta
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if m.NumCores <= 0 || len(m.Benches) == 0 {
				return nil, fmt.Errorf("meta is degenerate: %+v", m)
			}
			return &m, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("meta status %d", resp.StatusCode)
			resp.Body.Close()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("server not reachable: %w", lastErr)
}
