// Command simdbtool builds, saves and inspects the simulation-results
// database — the offline detailed-simulation step of the methodology
// (thesis Figure 2.1).
//
// Examples:
//
//	simdbtool -cores 4 -out db4.gob.gz         # build and save
//	simdbtool -in db4.gob.gz -info             # inspect a saved database
//	simdbtool -cores 4 -characterize           # print the categorization
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simdbtool: ")

	var (
		cores        = flag.Int("cores", 4, "number of cores (build mode)")
		out          = flag.String("out", "", "write the database to this file")
		in           = flag.String("in", "", "load the database from this file")
		info         = flag.Bool("info", false, "print per-phase information")
		characterize = flag.Bool("characterize", false, "print the benchmark categorization")
	)
	flag.Parse()

	var (
		db  *simdb.DB
		err error
	)
	if *in != "" {
		db, err = simdb.LoadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d-core database with %d phase records", db.Sys.NumCores, db.NumRecords())
	} else {
		start := time.Now()
		log.Printf("building %d-core database over %d benchmarks...", *cores, len(trace.Suite()))
		db, err = simdb.Build(arch.DefaultSystemConfig(*cores), trace.Suite(), simdb.DefaultBuildOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built %d phase records in %v", db.NumRecords(), time.Since(start).Round(time.Millisecond))
	}

	if *out != "" {
		if err := db.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d bytes)", *out, st.Size())
	}

	if *info {
		printInfo(db)
	}
	if *characterize {
		printCharacterization(db)
	}
}

func printInfo(db *simdb.DB) {
	names := db.BenchNames()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tslices\tphases\tphase\tweight\trep slice\tAPKI\tMPKI@base\tIlpIPC\n")
	base := db.Sys.BaselineWays()
	for _, n := range names {
		an := db.Analysis(n)
		for p := 0; p < an.NumPhases; p++ {
			rec, err := db.Record(n, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%d\t%.1f\t%.2f\t%.2f\n",
				n, an.Bench.NumSlices(), an.NumPhases, p, rec.Weight, rec.RepSlice,
				rec.APKI, rec.Misses[base]/(trace.SliceInstructions/1000), rec.IlpIPC)
		}
	}
	w.Flush()
}

func printCharacterization(db *simdb.DB) {
	profiles, err := workload.CharacterizeAll(db)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tMPKI@base\tMPKI drop\trel drop\tMLP small\tMLP large\tPaper I\tPaper II\n")
	for _, p := range profiles {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%s\t%s\n",
			p.Bench, p.BaselineMPKI, p.MPKIDrop, p.RelDrop,
			p.MLPSmall, p.MLPLarge, p.PaperIClass, p.PaperII())
	}
	w.Flush()
}
