// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as markdown tables (the content recorded in
// EXPERIMENTS.md). Use -only to run a subset, e.g. -only P1.F4,P2.MD.
// With -emit csv -rows rows.csv the underlying sweep points stream to a
// file as they execute; the process-wide sweep cache deduplicates points
// shared between experiments (stats are logged at exit).
//
// With -cluster the command runs the open-system fleet scenario instead:
// jobs arrive from a seeded Poisson trace, are placed online by the
// collocation scorer, and depart on completion (-cluster-* flags shape the
// scenario; -emit/-rows stream per-job rows).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"qosrma/internal/cluster"
	"qosrma/internal/core"
	"qosrma/internal/experiments"
	"qosrma/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	emitFormat := flag.String("emit", "", "stream per-point sweep rows in this format (csv or json)")
	rowsPath := flag.String("rows", "", "destination file for -emit rows (default: stderr)")
	clusterMode := flag.Bool("cluster", false, "run the open-system cluster scenario instead of the paper tables")
	clusterMachines := flag.Int("cluster-machines", 4, "cluster mode: fleet size")
	clusterJobs := flag.Int("cluster-jobs", 32, "cluster mode: number of arriving jobs")
	clusterMean := flag.Float64("cluster-mean", 0.5, "cluster mode: mean interarrival time (seconds)")
	clusterSeed := flag.Uint64("cluster-seed", 1, "cluster mode: arrival-trace seed")
	clusterSlack := flag.Float64("cluster-slack", 0.2, "cluster mode: uniform QoS slack")
	clusterScheme := flag.String("cluster-scheme", "rm2", "cluster mode: rm2 or rm3")
	clusterPlacement := flag.String("cluster-placement", "scored", "cluster mode: scored, firstfit or equilibrium")
	clusterCompare := flag.Bool("cluster-compare", false, "cluster mode: run every placement policy on the same trace and print the comparison (EXT.EQ)")
	flag.Parse()

	if *clusterMode || *clusterCompare {
		runCluster(clusterFlags{
			machines: *clusterMachines, jobs: *clusterJobs, mean: *clusterMean,
			seed: *clusterSeed, slack: *clusterSlack,
			scheme: *clusterScheme, placement: *clusterPlacement,
			emitFormat: *emitFormat, rowsPath: *rowsPath,
			compare: *clusterCompare,
		})
		return
	}

	if *emitFormat != "" {
		w := os.Stderr
		if *rowsPath != "" {
			f, err := os.Create(*rowsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		em, err := sweep.NewEmitter(*emitFormat, w)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := em.Close(); err != nil {
				log.Printf("emit close: %v", err)
			}
		}()
		experiments.Engine().SetEmitter(em)
	}

	selected := func(id string) bool {
		if *only == "" {
			return true
		}
		for _, s := range strings.Split(*only, ",") {
			if strings.EqualFold(strings.TrimSpace(s), id) {
				return true
			}
		}
		return false
	}

	start := time.Now()
	log.Printf("building simulation databases (thesis Fig. 2.1 offline step)...")
	env, err := experiments.BuildEnv()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("databases ready in %v", time.Since(start).Round(time.Millisecond))
	out := os.Stdout

	run := func(id string, f func() error) {
		if !selected(id) {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		log.Printf("%s done in %v", id, time.Since(t0).Round(time.Millisecond))
	}

	schemes := []core.Scheme{
		core.SchemeDVFSOnly,
		core.SchemePartitionOnly,
		core.SchemeCoordDVFSCache,
	}

	run("P1.F4", func() error {
		exp, err := experiments.RunEnergySavings(env.DB4, env.Mixes4, schemes, core.Model2, false)
		if err != nil {
			return err
		}
		_, err = exp.Table("P1.F4 — Energy savings per 4-core workload (realistic Model 2)").WriteTo(out)
		return err
	})

	run("P1.F8", func() error {
		exp, err := experiments.RunEnergySavings(env.DB8, env.Mixes8, schemes, core.Model2, false)
		if err != nil {
			return err
		}
		_, err = exp.Table("P1.F8 — Energy savings per 8-core workload (realistic Model 2)").WriteTo(out)
		return err
	})

	run("P1.PM", func() error {
		cmp, err := experiments.RunPerfectVsRealistic(env.DB4, env.Mixes4, core.SchemeCoordDVFSCache, core.Model2)
		if err != nil {
			return err
		}
		_, err = cmp.Table("P1.PM/P1.QV — Perfect vs realistic models, 4-core (RM2)").WriteTo(out)
		return err
	})

	run("P1.QV8", func() error {
		cmp, err := experiments.RunPerfectVsRealistic(env.DB8, env.Mixes8, core.SchemeCoordDVFSCache, core.Model2)
		if err != nil {
			return err
		}
		_, err = cmp.Table("P1.QV8 — Perfect vs realistic models, 8-core (RM2)").WriteTo(out)
		return err
	})

	run("P1.RX", func() error {
		slacks := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
		points, err := experiments.RunRelaxationSweep(env.DB4, env.Mixes4, core.SchemeCoordDVFSCache, slacks)
		if err != nil {
			return err
		}
		_, err = experiments.RelaxationTable(points,
			"P1.RX — Energy savings vs QoS relaxation (perfect models, RM2)").WriteTo(out)
		return err
	})

	run("P1.SUB", func() error {
		mix := env.Mixes4[4] // the MS+MI+CS+CI heterogeneous mix
		rows, err := experiments.RunSubsetRelaxation(env.DB4, mix, 0.4)
		if err != nil {
			return err
		}
		_, err = experiments.SubsetTable(rows, mix,
			"P1.SUB — Savings when only a subset of the workload is relaxed (40% slack)").WriteTo(out)
		return err
	})

	run("P1.VF", func() error {
		points, err := experiments.RunBaselineVFSensitivity(env.DB4, env.Mixes4, []float64{1.6, 2.0, 2.4})
		if err != nil {
			return err
		}
		_, err = experiments.BaselineVFTable(points,
			"P1.VF — Sensitivity to the baseline VF choice (RM2, perfect models)").WriteTo(out)
		return err
	})

	run("P1.OV", func() error { return overhead(env, out) })

	run("P2.SC", func() error {
		an, err := experiments.RunScenarioAnalysis(env.DB4, env.MixesII, core.Model3)
		if err != nil {
			return err
		}
		if _, err := an.Table("P2.SC — Paper II systematic analysis: 16 category mixes").WriteTo(out); err != nil {
			return err
		}
		_, err = experiments.ScenarioTable(an.Stats(),
			"P2.S1-S4 — RM2 vs RM3 per scenario").WriteTo(out)
		return err
	})

	run("EXT.FB", func() error {
		rows, err := experiments.RunFeedbackAblation(env.DB4, env.Mixes4)
		if err != nil {
			return err
		}
		_, err = experiments.AblationTable(rows,
			"EXT.FB — Phase-history feedback (thesis future work) vs the paper's models").WriteTo(out)
		return err
	})

	run("AB.UNC", func() error {
		rows, err := experiments.RunUncoordinatedAblation(env.DB4, env.Mixes4)
		if err != nil {
			return err
		}
		_, err = experiments.AblationTable(rows,
			"AB.UNC — Uncoordinated UCP+DVFS vs coordinated RM2").WriteTo(out)
		return err
	})

	run("AB.SW", func() error {
		rows, err := experiments.RunSwitchCostAblation(env.DB4, env.Mixes4)
		if err != nil {
			return err
		}
		_, err = experiments.AblationTable(rows,
			"AB.SW — Sensitivity to reconfiguration overheads (RM3)").WriteTo(out)
		return err
	})

	run("AB.BW", func() error {
		rows, err := experiments.RunBandwidthAblation(env.DB4, env.Mixes4)
		if err != nil {
			return err
		}
		_, err = experiments.AblationTable(rows,
			"AB.BW — Per-core memory-bandwidth pressure (unmodeled by the RMA)").WriteTo(out)
		return err
	})

	run("AB.SAMP", func() error {
		rows, err := experiments.RunSamplingAblation(env.DB4.Sys, 8, []int{1, 32, 128})
		if err != nil {
			return err
		}
		_, err = experiments.AblationTable(rows,
			"AB.SAMP — ATD set-sampling density vs model fidelity (RM2)").WriteTo(out)
		return err
	})

	run("EXT.SCHED", func() error {
		apps := []string{"mcf", "omnetpp", "perlbench", "xalancbmk",
			"gamess", "hmmer", "namd", "povray"}
		rows, err := experiments.RunSchedulerGuidance(env.DB4, apps)
		if err != nil {
			return err
		}
		_, err = experiments.SchedTable(rows,
			"EXT.SCHED — Characteristics-guided collocation (thesis future work)").WriteTo(out)
		return err
	})

	run("P2.MD", func() error {
		rows, err := experiments.RunModelComparison(env.DB4, env.Mixes4, core.SchemeCoordCoreDVFSCache)
		if err != nil {
			return err
		}
		_, err = experiments.ModelTable(rows,
			"P2.MD — Model 1/2/3 comparison (RM3, realistic statistics)").WriteTo(out)
		return err
	})

	hits, misses := experiments.Engine().Cache().Stats()
	log.Printf("all selected experiments done in %v (sweep cache: %d simulated, %d deduplicated)",
		time.Since(start).Round(time.Millisecond), misses, hits)
}

// clusterFlags carries the parsed -cluster-* options.
type clusterFlags struct {
	machines, jobs       int
	mean, slack          float64
	seed                 uint64
	scheme, placement    string
	emitFormat, rowsPath string
	compare              bool
}

// runCluster executes the open-system fleet scenario (EXT.CLUSTER).
func runCluster(f clusterFlags) {
	opt := experiments.DefaultClusterOptions()
	opt.Machines = f.machines
	opt.Jobs = f.jobs
	opt.MeanInterarrivalSec = f.mean
	opt.Seed = f.seed
	opt.Slack = f.slack
	switch strings.ToLower(f.scheme) {
	case "rm2":
		opt.Scheme = core.SchemeCoordDVFSCache
	case "rm3":
		opt.Scheme = core.SchemeCoordCoreDVFSCache
	default:
		log.Fatalf("unknown -cluster-scheme %q (want rm2 or rm3)", f.scheme)
	}
	switch strings.ToLower(f.placement) {
	case "scored":
		opt.Placement = cluster.PlaceScored
	case "firstfit", "first-fit":
		opt.Placement = cluster.PlaceFirstFit
	case "equilibrium":
		opt.Placement = cluster.PlaceEquilibrium
	default:
		log.Fatalf("unknown -cluster-placement %q (want scored, firstfit or equilibrium)", f.placement)
	}
	if f.emitFormat != "" {
		w := os.Stderr
		if f.rowsPath != "" {
			file, err := os.Create(f.rowsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer file.Close()
			w = file
		}
		em, err := cluster.NewEmitter(f.emitFormat, w)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := em.Close(); err != nil {
				log.Printf("emit close: %v", err)
			}
		}()
		opt.Emitter = em
	}

	start := time.Now()
	log.Printf("building simulation database...")
	env, err := experiments.BuildEnv()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("database ready in %v", time.Since(start).Round(time.Millisecond))
	if f.compare {
		t0 := time.Now()
		rows, err := experiments.RunClusterComparison(env.DB4, opt)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("EXT.EQ — Placement comparison: %d machines, %d jobs (mean interarrival %.2gs, seed %d)",
			opt.Machines, opt.Jobs, opt.MeanInterarrivalSec, opt.Seed)
		if _, err := experiments.ClusterCompareTable(rows, title).WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		log.Printf("placement comparison done in %v", time.Since(t0).Round(time.Millisecond))
		return
	}
	t0 := time.Now()
	res, err := experiments.RunCluster(env.DB4, opt)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("EXT.CLUSTER — Open-system fleet: %d machines, %d jobs (mean interarrival %.2gs, seed %d)",
		opt.Machines, opt.Jobs, opt.MeanInterarrivalSec, opt.Seed)
	if _, err := experiments.ClusterTable(res, title).WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	log.Printf("cluster scenario done in %v", time.Since(t0).Round(time.Millisecond))
}

// overhead measures the steady-state RMA invocation cost for RM2 (4 cores)
// and RM3 (2/4/8 cores) and relates it to the interval wall time.
func overhead(env *experiments.Env, out *os.File) error {
	var rows [][2]string
	measure := func(name string, probe *experiments.OverheadProbe, db interface {
	}) error {
		const iters = 2000
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			probe.Invoke()
		}
		per := time.Since(t0).Seconds() / iters
		rows = append(rows, [2]string{name, experiments.FormatSeconds(per)})
		return nil
	}
	p4rm2, err := experiments.NewOverheadProbe(env.DB4, core.SchemeCoordDVFSCache, core.Model2)
	if err != nil {
		return err
	}
	if err := measure("RM2, 4 cores", p4rm2, nil); err != nil {
		return err
	}
	for _, n := range []int{4, 8} {
		db := env.DB4
		if n == 8 {
			db = env.DB8
		}
		probe, err := experiments.NewOverheadProbe(db, core.SchemeCoordCoreDVFSCache, core.Model3)
		if err != nil {
			return err
		}
		if err := measure(fmt.Sprintf("RM3, %d cores", n), probe, nil); err != nil {
			return err
		}
	}
	iv, err := experiments.IntervalWallTime(env.DB4)
	if err != nil {
		return err
	}
	t := experiments.OverheadReport("P1.OV/P2.OV — RMA invocation cost", rows)
	t.AddNote("One 100M-instruction interval takes ~%s at the baseline setting.",
		experiments.FormatSeconds(iv))
	_, err = t.WriteTo(out)
	return err
}
