#!/usr/bin/env bash
# Shell hygiene wall, run as part of `make lint`: every script in
# scripts/ must
#
#  1. start with the portable bash shebang (#!/usr/bin/env bash),
#  2. opt into strict mode with `set -euo pipefail` near the top (an
#     unchecked failure in a CI pipeline must fail the pipeline, not
#     scroll past), and
#  3. parse (`bash -n`).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in scripts/*.sh; do
    if [[ "$(head -n1 "$f")" != "#!/usr/bin/env bash" ]]; then
        echo "shlint: $f: first line must be '#!/usr/bin/env bash'" >&2
        fail=1
    fi
    if ! head -n 30 "$f" | grep -q '^set -euo pipefail$'; then
        echo "shlint: $f: missing 'set -euo pipefail' in the first 30 lines" >&2
        fail=1
    fi
    if ! bash -n "$f"; then
        echo "shlint: $f: does not parse" >&2
        fail=1
    fi
done
if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "shlint: $(ls scripts/*.sh | wc -l | tr -d ' ') scripts clean"
