#!/usr/bin/env bash
# Docs consistency wall, run in CI as `make docs-check`:
#
#  1. Every relative markdown link in README.md and docs/*.md must
#     resolve to a file that exists (anchors are stripped; absolute
#     http(s) links are not checked).
#  2. The server's registered route table (the `s.handle("METHOD /path"`
#     lines in internal/service/service.go) and docs/api.md must agree
#     in BOTH directions: every registered route is documented as a
#     `### \`METHOD /path\`` heading, and every documented heading is a
#     registered route. A route cannot be added, renamed or removed
#     without the API reference changing too.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links ------------------------------------------------
for doc in README.md docs/*.md; do
	dir=$(dirname "$doc")
	# Pull out every](target) occurrence; keep relative targets only.
	while IFS= read -r target; do
		target=${target%%#*} # in-page anchors: check the file only
		[ -z "$target" ] && continue
		if [ ! -e "$dir/$target" ]; then
			echo "docs-check: $doc links to missing $dir/$target" >&2
			fail=1
		fi
	done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](\(.*\))$/\1/' |
		grep -v '^https\?://' | grep -v '^#' || true)
done

# --- 2. route coverage, both directions -------------------------------
routes_src=$(mktemp)
routes_doc=$(mktemp)
trap 'rm -f "$routes_src" "$routes_doc"' EXIT

grep -o 's\.handle("[A-Z]* [^"]*"' internal/service/service.go |
	sed 's/^s\.handle("//; s/"$//' | sort >"$routes_src"
grep -o '^### `[A-Z]* [^`]*`' docs/api.md |
	sed 's/^### `//; s/`$//' | sort >"$routes_doc"

if [ ! -s "$routes_src" ]; then
	echo "docs-check: found no route registrations in internal/service/service.go" >&2
	exit 1
fi

undocumented=$(comm -23 "$routes_src" "$routes_doc")
if [ -n "$undocumented" ]; then
	echo "docs-check: registered routes missing from docs/api.md:" >&2
	echo "$undocumented" >&2
	fail=1
fi
phantom=$(comm -13 "$routes_src" "$routes_doc")
if [ -n "$phantom" ]; then
	echo "docs-check: docs/api.md documents routes the server does not register:" >&2
	echo "$phantom" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "docs-check: $(wc -l <"$routes_src") routes documented, all links resolve"
