#!/usr/bin/env bash
# The chaos wall, in two layers:
#
#   1. The in-process seeded fault-injection suite (TestChaosWall): real
#      service.Servers behind deterministic fault-injecting chaos proxies,
#      fronted by the resilient routing tier on both codecs — bit-identical
#      answers under faults, bounded errors, ejection on kill, readmission
#      after heal.
#   2. A multi-process distributed drill on this runner: four qosrmad
#      replicas (two consistent-hash groups) behind a qosrmad -route tier,
#      loadgen driving the tier over HTTP/JSON and the binary wire
#      protocol while one backend is kill -9'd and restarted mid-run. The
#      run must keep its error rate bounded and the tier must readmit the
#      restarted replica (this is the ROADMAP's multi-process distributed
#      loadtest target).
#
# Environment knobs:
#   DURATION   measured window per protocol (default 4s)
#   MIN_QPS    tier throughput floor per protocol (default 0 = disabled;
#              the chaos run measures resilience, not peak throughput)
#   OUT        combined report file (default chaos.txt)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${DURATION:-4s}
MIN_QPS=${MIN_QPS:-0}
OUT=${OUT:-chaos.txt}

echo "chaos: layer 1 — seeded fault-injection suite"
go test -race -count=1 -run 'TestChaosWall' ./internal/route

echo "chaos: layer 2 — multi-process kill/restart drill"
mkdir -p bin
go build -o bin/qosrmad ./cmd/qosrmad
go build -o bin/loadgen ./cmd/loadgen

TIER=127.0.0.1:7800
TIER_WIRE=127.0.0.1:7810
HTTP=(127.0.0.1:7801 127.0.0.1:7802 127.0.0.1:7803 127.0.0.1:7804)
WIRE=(127.0.0.1:7811 127.0.0.1:7812 127.0.0.1:7813 127.0.0.1:7814)
PIDS=()
cleanup() {
	for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

start_backend() { # index
	# Daemon output goes to a log file, not our stdout: a replica restarted
	# mid-run must never hold the caller's pipe open after the script exits.
	bin/qosrmad -addr "${HTTP[$1]}" -wire-addr "${WIRE[$1]}" -audit-interval 0 \
		>"bin/chaos.backend$1.log" 2>&1 &
	PIDS[$1]=$!
}
wait_http_ok() { # url what deadline_s
	local tries=$(( $3 * 10 ))
	for _ in $(seq "$tries"); do
		if curl -fsS -o /dev/null "$1" 2>/dev/null; then return 0; fi
		sleep 0.1
	done
	echo "chaos: $2 not healthy within $3 s" >&2
	return 1
}

for i in 0 1 2 3; do start_backend "$i"; done
for i in 0 1 2 3; do wait_http_ok "http://${HTTP[$i]}/v1/healthz" "backend $i" 90; done

# Two groups of two replicas, each declaring its wire address; fast
# probing so ejection/readmission happens within the run.
SPEC="${HTTP[0]}|${WIRE[0]},${HTTP[1]}|${WIRE[1]};${HTTP[2]}|${WIRE[2]},${HTTP[3]}|${WIRE[3]}"
bin/qosrmad -addr "$TIER" -wire-addr "$TIER_WIRE" -route "$SPEC" \
	-route-probe-interval 250ms -route-retries 3 >bin/chaos.tier.log 2>&1 &
TIER_PID=$!
PIDS+=("$TIER_PID")
wait_http_ok "http://$TIER/v1/healthz" "routing tier" 30

# check_report <file> <what>: the loadgen error rate must stay under 5%
# of completed batches even though a backend died mid-run.
check_report() {
	local batches errors
	batches=$(sed -n 's/.*batches=\([0-9]*\).*/\1/p' "$1")
	errors=$(sed -n 's/.*errors=\([0-9]*\).*/\1/p' "$1")
	if [ -z "$batches" ] || [ -z "$errors" ]; then
		echo "chaos: $2: malformed loadgen report" >&2
		return 1
	fi
	if [ "$batches" -eq 0 ]; then
		echo "chaos: $2: no batches completed" >&2
		return 1
	fi
	if [ $((errors * 20)) -gt $((batches + errors)) ]; then
		echo "chaos: $2: error rate too high ($errors errors over $batches batches)" >&2
		return 1
	fi
	if [ "$MIN_QPS" -gt 0 ]; then
		local qps
		qps=$(sed -n 's/.*qps=\([0-9]*\).*/\1/p' "$1")
		if [ "$qps" -lt "$MIN_QPS" ]; then
			echo "chaos: $2: $qps qps is below the $MIN_QPS floor" >&2
			return 1
		fi
	fi
}

# kill_restart <index> <down_s>: kill -9 one backend mid-run, restart it
# after the outage window. Runs in the parent shell (never backgrounded):
# start_backend's PIDS[] write must reach the cleanup trap, or the
# restarted replica leaks past the run.
kill_restart() {
	sleep 1
	kill -9 "${PIDS[$1]}" 2>/dev/null || true
	sleep "$2"
	start_backend "$1"
}

echo "chaos: driving HTTP/JSON through the tier, killing ${HTTP[3]} mid-run"
bin/loadgen -addr "$TIER" -duration "$DURATION" -conns 4 -batch 64 \
	-out chaos.json.txt &
LG=$!
kill_restart 3 1.5
wait "$LG" || true
check_report chaos.json.txt "json run"

# Readmission: every replica (including the restarted one, which rebuilds
# its database first) must return to available=1 on the tier's metrics.
echo "chaos: waiting for the tier to readmit the restarted replica"
deadline=$((SECONDS + 90))
until ! curl -fsS "http://$TIER/metrics" | grep 'qosrmad_route_replica_available' | grep -q ' 0$'; do
	if [ "$SECONDS" -ge "$deadline" ]; then
		echo "chaos: tier did not readmit the restarted replica" >&2
		curl -fsS "http://$TIER/metrics" | grep qosrmad_route_ >&2 || true
		exit 1
	fi
	sleep 0.25
done
if ! curl -fsS "http://$TIER/metrics" | grep -q '^qosrmad_route_probe_ejections_total [1-9]'; then
	echo "chaos: the kill was never noticed (no probe ejections)" >&2
	exit 1
fi

echo "chaos: driving the binary wire protocol through the tier, killing ${HTTP[1]} mid-run"
bin/loadgen -wire -addr "$TIER_WIRE" -duration "$DURATION" -conns 4 -batch 64 \
	-out chaos.wire.txt &
LG=$!
kill_restart 1 1.5
wait "$LG" || true
check_report chaos.wire.txt "wire run"

{
	echo "chaos wall: multi-process kill/restart drill"
	echo "--- json (killed ${HTTP[3]} mid-run) ---"
	cat chaos.json.txt
	echo "--- wire (killed ${HTTP[1]} mid-run) ---"
	cat chaos.wire.txt
} | tee "$OUT"
rm -f chaos.json.txt chaos.wire.txt
echo "chaos: wall green"
