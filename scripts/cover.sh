#!/usr/bin/env bash
# Coverage reporting and the ratcheting CI floor.
#
#   scripts/cover.sh         writes cover/cover.out, cover/func.txt and one
#                            HTML report per package, then prints the total
#   scripts/cover.sh check   additionally fails if the total drops below
#                            .coverage-floor (ratchet: current% - 1, raised
#                            whenever the suite's coverage grows)
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR=${OUTDIR:-cover}
mkdir -p "$OUTDIR"

go test -coverprofile="$OUTDIR/cover.out" ./...
go tool cover -func="$OUTDIR/cover.out" >"$OUTDIR/func.txt"
total=$(awk '/^total:/ {gsub(/%/, "", $3); print $3}' "$OUTDIR/func.txt")

# Per-package HTML: split the merged profile by import path so each
# package gets a browsable report (cover/<pkg>.html).
mode_line=$(head -1 "$OUTDIR/cover.out")
for pkg in $(go list ./...); do
	name=${pkg#qosrma}
	name=${name#/}
	name=${name//\//_}
	[ -z "$name" ] && name=qosrma
	profile="$OUTDIR/$name.out"
	{
		echo "$mode_line"
		grep "^$pkg/[^/]*\.go:" "$OUTDIR/cover.out" || true
	} >"$profile"
	if [ "$(wc -l <"$profile")" -gt 1 ]; then
		go tool cover -html="$profile" -o "$OUTDIR/$name.html"
	fi
	rm -f "$profile"
done

echo "total coverage: ${total}%"

if [ "${1:-}" = check ]; then
	floor=$(cat .coverage-floor)
	if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t + 0 < f + 0) }'; then
		echo "coverage ${total}% is below the committed floor ${floor}%" >&2
		echo "(raise test coverage, or lower .coverage-floor with justification)" >&2
		exit 1
	fi
	echo "coverage ${total}% meets the floor ${floor}%"
fi
