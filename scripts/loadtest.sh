#!/usr/bin/env bash
# Serving-layer smoke: start qosrmad, replay the deterministic loadgen
# trace against it, and enforce a throughput floor. CI runs this on every
# build and uploads the report (loadgen.txt) with the bench artifacts.
#
# Environment knobs:
#   ADDR       listen address        (default 127.0.0.1:7743)
#   WIRE       1 = drive the binary decide protocol instead of HTTP/JSON
#   WIRE_ADDR  binary listen address (default 127.0.0.1:7744)
#   DURATION   measured window       (default 2s)
#   CONNS      client connections    (default 4)
#   BATCH      queries per request   (default 256)
#   MIN_QPS    throughput floor      (default 100000; 0 disables)
#   OUT        report file           (default loadgen.txt)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7743}
WIRE=${WIRE:-0}
WIRE_ADDR=${WIRE_ADDR:-127.0.0.1:7744}
DURATION=${DURATION:-2s}
CONNS=${CONNS:-4}
BATCH=${BATCH:-256}
MIN_QPS=${MIN_QPS:-100000}
OUT=${OUT:-loadgen.txt}

mkdir -p bin
go build -o bin/qosrmad ./cmd/qosrmad
go build -o bin/loadgen ./cmd/loadgen

SRV_FLAGS=(-addr "$ADDR")
GEN_FLAGS=(-addr "$ADDR")
if [ "$WIRE" = "1" ]; then
	SRV_FLAGS+=(-wire-addr "$WIRE_ADDR")
	GEN_FLAGS=(-addr "$WIRE_ADDR" -wire)
fi

bin/qosrmad "${SRV_FLAGS[@]}" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

# loadgen itself waits for the server's meta (retrying for ~5s on either
# protocol), so no sleep here.
bin/loadgen "${GEN_FLAGS[@]}" -duration "$DURATION" -conns "$CONNS" \
	-batch "$BATCH" -out "$OUT"

# The measurement is only valid against the server we just started: if it
# died (e.g. the port was taken by a stale instance), fail loudly rather
# than report numbers from whatever answered.
if ! kill -0 "$SRV" 2>/dev/null; then
	echo "loadtest: qosrmad exited during the run" >&2
	exit 1
fi

qps=$(sed -n 's/.*qps=\([0-9]*\).*/\1/p' "$OUT")
if [ -z "$qps" ]; then
	echo "loadtest: no qps in report" >&2
	exit 1
fi
if [ "$MIN_QPS" -gt 0 ] && [ "$qps" -lt "$MIN_QPS" ]; then
	echo "loadtest: $qps decide-requests/sec is below the $MIN_QPS floor" >&2
	exit 1
fi
echo "loadtest: sustained $qps decide-requests/sec (floor $MIN_QPS)"
