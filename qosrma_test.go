package qosrma

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

func testSystem(t *testing.T) *System {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second system build in -short mode")
	}
	sysOnce.Do(func() { sysInst, sysErr = NewSystem(4) })
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 20 {
		t.Fatalf("suite size %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate %s", n)
		}
		seen[n] = true
	}
	if !seen["mcf"] || !seen["libquantum"] {
		t.Fatal("expected benchmarks missing")
	}
}

func TestFacadeRunRM2(t *testing.T) {
	s := testSystem(t)
	res, err := s.Run([]string{"soplex", "sphinx3", "gamess", "hmmer"}, RM2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings < 0.03 {
		t.Fatalf("RM2 savings %.3f on a favourable mix", res.EnergySavings)
	}
	if len(res.Apps) != 4 {
		t.Fatalf("apps: %d", len(res.Apps))
	}
}

func TestFacadeRunRM3DefaultsToModel3(t *testing.T) {
	s := testSystem(t)
	res, err := s.Run([]string{"mcf", "omnetpp", "perlbench", "xalancbmk"}, RM3)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings <= 0.05 {
		t.Fatalf("RM3 savings %.3f", res.EnergySavings)
	}
}

func TestFacadeStaticIsReference(t *testing.T) {
	s := testSystem(t)
	res, err := s.Run([]string{"mcf", "soplex", "hmmer", "namd"}, Static)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings > 1e-6 || res.EnergySavings < -1e-6 {
		t.Fatalf("static savings %.6f, want 0", res.EnergySavings)
	}
}

func TestFacadeSlackOption(t *testing.T) {
	s := testSystem(t)
	tight, err := s.Run([]string{"mcf", "soplex", "hmmer", "namd"}, RM2, WithOracle(), WithModel(Model3))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := s.Run([]string{"mcf", "soplex", "hmmer", "namd"}, RM2,
		WithOracle(), WithModel(Model3), WithSlack(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if loose.EnergySavings <= tight.EnergySavings {
		t.Fatalf("slack did not help: %.3f vs %.3f", loose.EnergySavings, tight.EnergySavings)
	}
}

func TestFacadeWorkloadSizeError(t *testing.T) {
	s := testSystem(t)
	if _, err := s.Run([]string{"mcf"}, RM2); err == nil {
		t.Fatal("expected size error")
	}
}

func TestFacadeCharacterizeAndMixes(t *testing.T) {
	s := testSystem(t)
	profiles, err := s.Characterize()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 20 {
		t.Fatalf("profiles: %d", len(profiles))
	}
	mixes, err := s.PaperIMixes(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 6 {
		t.Fatalf("mixes: %d", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Fatalf("%s: %d apps", m.Name, len(m.Apps))
		}
	}
}

func TestFacadeBaselineRound(t *testing.T) {
	s := testSystem(t)
	secs, joules, err := s.BaselineRound("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 || joules <= 0 {
		t.Fatalf("degenerate baseline: %v s, %v J", secs, joules)
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	s := testSystem(t)
	path := filepath.Join(t.TempDir(), "db.gob.gz")
	if err := s.SaveDB(path); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Config().NumCores != 4 {
		t.Fatal("loaded system config wrong")
	}
	res, err := s2.Run([]string{"soplex", "sphinx3", "gamess", "hmmer"}, RM2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Run([]string{"soplex", "sphinx3", "gamess", "hmmer"}, RM2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings != ref.EnergySavings {
		t.Fatal("loaded system disagrees with original")
	}
}

func TestLoadSystemMissingFile(t *testing.T) {
	if _, err := LoadSystem("/nonexistent/db"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeTimelineOption(t *testing.T) {
	s := testSystem(t)
	res, err := s.Run([]string{"mcf", "omnetpp", "gamess", "hmmer"}, RM2, WithTimeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("WithTimeline produced no events")
	}
}

func TestFacadeFeedbackOption(t *testing.T) {
	s := testSystem(t)
	plain, err := s.Run([]string{"soplex", "sphinx3", "gamess", "hmmer"}, RM2)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.Run([]string{"soplex", "sphinx3", "gamess", "hmmer"}, RM2, WithFeedback())
	if err != nil {
		t.Fatal(err)
	}
	// The feedback table must not make the interval-violation audit worse.
	plainProb := float64(plain.IntervalViolations) / float64(plain.Intervals)
	fbProb := float64(fb.IntervalViolations) / float64(fb.Intervals)
	if fbProb > plainProb*1.05 {
		t.Fatalf("feedback raised the violation probability: %.4f -> %.4f", plainProb, fbProb)
	}
}

func TestFacadeCollocate(t *testing.T) {
	s := testSystem(t)
	apps := []string{"mcf", "omnetpp", "perlbench", "xalancbmk",
		"gamess", "hmmer", "namd", "povray"}
	machines, predicted, err := s.Collocate(apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 || len(machines[0]) != 4 || len(machines[1]) != 4 {
		t.Fatalf("bad assignment shape: %v", machines)
	}
	if predicted <= 0.05 {
		t.Fatalf("predicted savings %.3f too low for this workload", predicted)
	}
	if _, _, err := s.Collocate(apps[:3], 2); err == nil {
		t.Fatal("expected size error")
	}
}

func TestFacadeSweep(t *testing.T) {
	s := testSystem(t)
	res, err := s.Sweep(SweepSpec{
		Name: "facade-grid",
		Workloads: [][]string{
			{"mcf", "soplex", "hmmer", "namd"},
			{"lbm", "milc", "gamess", "povray"},
		},
		Schemes: []Scheme{DVFSOnly, RM2},
		Slacks:  []float64{0, 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 8 {
		t.Fatalf("sweep produced %d results, want 8", len(res.Results))
	}
	// RM2 with 40% slack must beat DVFS-only with none on the same mix.
	rm2Relaxed := res.Results[3]
	dvfsTight := res.Results[0]
	if rm2Relaxed.EnergySavings <= dvfsTight.EnergySavings {
		t.Fatalf("RM2@40%% slack (%.3f) not above DVFS-only (%.3f)",
			rm2Relaxed.EnergySavings, dvfsTight.EnergySavings)
	}

	// A repeated sweep is served from the per-system cache.
	_, missesBefore := s.SweepCacheStats()
	again, err := s.Sweep(SweepSpec{
		Name: "facade-grid",
		Workloads: [][]string{
			{"mcf", "soplex", "hmmer", "namd"},
			{"lbm", "milc", "gamess", "povray"},
		},
		Schemes: []Scheme{DVFSOnly, RM2},
		Slacks:  []float64{0, 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, missesAfter := s.SweepCacheStats(); missesAfter != missesBefore {
		t.Fatalf("repeated sweep simulated %d new points", missesAfter-missesBefore)
	}
	for i := range res.Results {
		if res.Results[i] != again.Results[i] {
			t.Fatalf("point %d differs on cached re-run", i)
		}
	}

	// The result renders to both emitter formats.
	var csvOut, jsonOut strings.Builder
	if err := WriteSweepCSV(&csvOut, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepJSON(&jsonOut, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut.String(), "facade-grid") ||
		len(strings.Split(strings.TrimSpace(csvOut.String()), "\n")) != 9 {
		t.Fatalf("CSV output wrong:\n%s", csvOut.String())
	}
	if !strings.Contains(jsonOut.String(), `"sweep":"facade-grid"`) {
		t.Fatalf("JSON output wrong:\n%s", jsonOut.String())
	}

	if _, err := s.Sweep(SweepSpec{}); err == nil {
		t.Fatal("empty sweep spec accepted")
	}
}
