package qosrma

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qosrma/internal/core"
	"qosrma/internal/experiments"
)

// -update refreshes the committed golden tables from the current
// implementation:
//
//	go test -run TestGolden -update .
//
// Review the diff before committing — any byte that moves is a behaviour
// change of the paper reproduction.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenSweeps defines the committed paper tables: each regenerates
// through the public System.Sweep path and must match its golden CSV byte
// for byte. Together they pin the Paper I energy-savings comparison, the
// Paper II core-reconfiguration comparison and the bandwidth ablation
// against regression — the wire format (column order, float rendering)
// and the simulated numbers at once.
func goldenSweeps(t *testing.T, s *System) map[string]SweepSpec {
	t.Helper()
	mixesI, err := s.PaperIMixes(20)
	if err != nil {
		t.Fatal(err)
	}
	mixesII, err := s.PaperIIMixes()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]SweepSpec{
		// Paper I headline comparison (P1.F4): per-mix savings of the
		// DVFS-only strawman, cache partitioning alone, and the
		// coordinated scheme over the 20 four-core category mixes.
		"paper1_f4.csv": {
			Name:    "paper1-f4",
			Mixes:   mixesI,
			Schemes: []Scheme{DVFSOnly, RM1, RM2},
		},
		// Paper II comparison: coordinated DVFS+cache versus the
		// additional core reconfiguration, with the MLP-aware model.
		"paper2_rm3.csv": {
			Name:    "paper2-rm3",
			Mixes:   mixesII,
			Schemes: []Scheme{RM2, RM3},
			Models:  []ModelKind{Model3},
		},
		// Bandwidth ablation: the coordinated scheme under per-core
		// memory-bandwidth caps (0 = unconstrained, then the paper's
		// constrained variants).
		"ablation_bandwidth.csv": {
			Name:          "ablation-bandwidth",
			Mixes:         mixesI[:4],
			Schemes:       []Scheme{RM2},
			BandwidthGBps: []float64{0, 6, 3},
		},
	}
}

// TestGoldenTables regenerates every committed table via System.Sweep and
// diffs it byte-for-byte against testdata/golden. Run with -update to
// refresh after an intentional change.
func TestGoldenTables(t *testing.T) {
	s := testSystem(t)
	for name, spec := range goldenSweeps(t, s) {
		t.Run(name, func(t *testing.T) {
			res, err := s.Sweep(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteSweepCSV(&buf, res); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted from the committed table.\n"+
					"If the change is intentional, refresh with:\n"+
					"  go test -run TestGoldenTables -update .\n"+
					"got %d bytes, want %d; first divergence at byte %d",
					name, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// TestGoldenClusterComparison regenerates the committed small-fleet
// placement comparison (EXT.EQ: first-fit vs greedy scored vs certified
// pure Nash equilibrium on the same arrival trace) and diffs it byte for
// byte against testdata/golden/cluster_compare.csv. Beyond byte identity,
// it pins the headline claim of the equilibrium policy: on this scenario
// equilibrium placement beats or ties greedy scored placement on fleet
// energy savings. Refresh with -update (see TestGoldenTables).
func TestGoldenClusterComparison(t *testing.T) {
	s := testSystem(t)
	opt := experiments.ClusterOptions{
		Machines:            3,
		Jobs:                12,
		MeanInterarrivalSec: 0.4,
		Seed:                1,
		Slack:               0.2,
		Scheme:              core.SchemeCoordDVFSCache,
	}
	rows, err := experiments.RunClusterComparison(s.db, opt)
	if err != nil {
		t.Fatal(err)
	}
	var scored, equilibrium *experiments.ClusterCompareRow
	for i := range rows {
		switch rows[i].Policy {
		case "scored":
			scored = &rows[i]
		case "equilibrium":
			equilibrium = &rows[i]
		}
	}
	if scored == nil || equilibrium == nil {
		t.Fatalf("comparison missing policies: %+v", rows)
	}
	if equilibrium.EnergySavings < scored.EnergySavings {
		t.Fatalf("equilibrium placement saves %.6f, below greedy scored %.6f",
			equilibrium.EnergySavings, scored.EnergySavings)
	}
	var buf bytes.Buffer
	if err := experiments.WriteClusterCompareCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "cluster_compare.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("cluster_compare.csv drifted from the committed table.\n"+
			"If the change is intentional, refresh with:\n"+
			"  go test -run TestGoldenClusterComparison -update .\n"+
			"got %d bytes, want %d; first divergence at byte %d",
			buf.Len(), len(want), firstDiff(buf.Bytes(), want))
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
