// Package qosrma is a reproduction of "QoS-Driven Coordinated Management of
// Resources to Save Energy in Multicore Systems" (Nejat, Pericàs, Stenström;
// IPDPS 2019) and its core-reconfiguration extension (Paper II of Nejat's
// licentiate thesis).
//
// The package is the public facade over the full stack:
//
//   - a synthetic SPEC-CPU2006-like benchmark substrate (internal/trace),
//   - SimPoint phase analysis (internal/simpoint),
//   - a way-partitioned LLC with auxiliary tag directories and the MLP-aware
//     ATD extension (internal/cache),
//   - an interval-analysis core timing model and a McPAT-style power model
//     (internal/timing, internal/power),
//   - the offline detailed-simulation database, compiled at build time into
//     dense per-phase performance tables over the (core size × DVFS level ×
//     ways) setting lattice (internal/simdb, internal/arch.Lattice),
//   - the QoS-driven coordinated resource managers (internal/core),
//   - the resumable co-phase RMA simulator (internal/rmasim), whose
//     stepper also powers dynamic, open-system scenarios,
//   - the scenario-sweep engine with its memoizing result cache
//     (internal/sweep), reachable through System.Sweep, and
//   - the open-system cluster engine (internal/cluster) — fleets of
//     machines fed by deterministic arrival traces with scored online
//     placement — reachable through System.Cluster, and
//   - the decision service (internal/service, cmd/qosrmad) — a sharded,
//     micro-batched HTTP/JSON server answering RMA decisions, collocation
//     scores and async sweeps bit-identically to the library calls, with a
//     live-ops control plane (Prometheus metrics, atomic database hot-swap,
//     graceful drain, a bit-identity self-checker; see docs/operations.md),
//     a zero-copy binary decide protocol (internal/wire) and a
//     consistent-hash routing tier for fleets (internal/route) —
//     reachable through System.Serve / System.NewServer.
//
// The compiled-lattice design follows the thesis methodology (Figure 2.1)
// to its conclusion: simulate in detail once, then answer every query by
// index arithmetic. Benchmark names are interned to dense identifiers, each
// phase's interval outcome is precomputed for every lattice point, and the
// RMA simulator's hot path is a bounds-checked array read (~1.1 ns, was
// ~82 ns of model re-evaluation), which in turn cuts a full co-phase
// workload simulation to roughly a third of its former runtime (~2.9×; the
// committed benchbase.txt tracks the micro-benchmarks) and the sweep-heavy
// paper experiments proportionally. docs/architecture.md maps the layers
// and the invariants that hold them together.
//
// Quick start:
//
//	sys, err := qosrma.NewSystem(4)
//	if err != nil { ... }
//	res, err := sys.Run([]string{"mcf", "soplex", "hmmer", "namd"},
//		qosrma.RM2, qosrma.WithModel(qosrma.Model2))
//	fmt.Printf("energy savings: %.1f%%\n", res.EnergySavings*100)
package qosrma

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/rmasim"
	"qosrma/internal/sched"
	"qosrma/internal/service"
	"qosrma/internal/simdb"
	"qosrma/internal/sweep"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

// Re-exported types: the facade exposes the domain vocabulary without
// requiring users to import internal packages.
type (
	// SystemConfig describes the modeled multi-core hardware.
	SystemConfig = arch.SystemConfig
	// Setting is one core's resource allocation (size, frequency, ways).
	Setting = arch.Setting
	// Scheme selects a resource-management algorithm.
	Scheme = core.Scheme
	// ModelKind selects the analytical performance model.
	ModelKind = core.ModelKind
	// Result is the outcome of simulating one workload.
	Result = rmasim.Result
	// AppResult is one application's scored outcome.
	AppResult = rmasim.AppResult
	// Mix is a named multi-programmed workload.
	Mix = workload.Mix
	// Profile is a benchmark's measured characterization.
	Profile = workload.Profile
)

// Scheme aliases matching the papers' naming.
const (
	// Static keeps the baseline allocation (the QoS reference point).
	Static = core.SchemeStatic
	// DVFSOnly controls only per-core frequency.
	DVFSOnly = core.SchemeDVFSOnly
	// RM1 repartitions the LLC only.
	RM1 = core.SchemePartitionOnly
	// RM2 coordinates per-core DVFS with LLC partitioning (IPDPS 2019).
	RM2 = core.SchemeCoordDVFSCache
	// RM3 additionally reconfigures the core micro-architecture (Paper II).
	RM3 = core.SchemeCoordCoreDVFSCache
)

// Analytical model aliases.
const (
	// Model1 charges every miss the full memory latency.
	Model1 = core.Model1
	// Model2 assumes constant memory-level parallelism (Paper I).
	Model2 = core.Model2
	// Model3 uses the MLP-aware ATD profiles (Paper II).
	Model3 = core.Model3
)

// System is a ready-to-simulate machine: a hardware configuration plus the
// offline detailed-simulation database for the benchmark suite (the thesis'
// Figure 2.1 methodology, performed once at construction) and a sweep
// engine whose result cache persists across Sweep calls.
type System struct {
	db     *simdb.DB
	engine *sweep.Engine
}

// NewSystem builds the default system for the given core count over the
// full 20-benchmark suite. Construction runs the SimPoint analysis and the
// parallel detailed simulation (well under a second for the default
// configurations; repeated constructions share phase profiles through a
// process-wide cache and are cheaper still).
func NewSystem(numCores int) (*System, error) {
	return NewSystemFromConfig(arch.DefaultSystemConfig(numCores))
}

// NewSystemFromConfig builds a system with a custom hardware description.
func NewSystemFromConfig(cfg SystemConfig) (*System, error) {
	db, err := simdb.Build(cfg, trace.Suite(), simdb.DefaultBuildOptions())
	if err != nil {
		return nil, err
	}
	return newSystem(db), nil
}

// LoadSystem restores a system from a database file written by SaveDB.
func LoadSystem(path string) (*System, error) {
	db, err := simdb.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return newSystem(db), nil
}

func newSystem(db *simdb.DB) *System {
	return &System{db: db, engine: sweep.NewEngine()}
}

// SaveDB serializes the simulation database to a file.
func (s *System) SaveDB(path string) error { return s.db.SaveFile(path) }

// DB exposes the underlying simulation database for advanced use (the
// experiment runners in internal/experiments consume it directly).
func (s *System) DB() *simdb.DB { return s.db }

// Config returns the hardware configuration.
func (s *System) Config() SystemConfig { return s.db.Sys }

// benchmarkNames memoizes the suite's name list; the synthetic suite is
// built once per process (trace.Suite is itself memoized) and the facade
// never rebuilds it per call.
var benchmarkNames = sync.OnceValue(func() []string {
	suite := trace.Suite()
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	return names
})

// Benchmarks lists the names of the available benchmark applications.
func Benchmarks() []string {
	return append([]string(nil), benchmarkNames()...)
}

// runConfig collects the optional knobs of System.Run.
type runConfig struct {
	model        ModelKind
	slack        float64
	perCoreSlack []float64
	oracle       bool
	feedback     bool
	timeline     bool
}

// Option customizes a simulation run.
type Option func(*runConfig)

// WithModel selects the analytical model (default Model2 for RM2, matching
// Paper I; pass Model3 for the Paper II predictor).
func WithModel(k ModelKind) Option { return func(c *runConfig) { c.model = k } }

// WithSlack grants every application the same QoS relaxation (0.4 tolerates
// 40% longer execution time).
func WithSlack(slack float64) Option { return func(c *runConfig) { c.slack = slack } }

// WithPerCoreSlack grants per-application QoS relaxations.
func WithPerCoreSlack(slack []float64) Option {
	return func(c *runConfig) { c.perCoreSlack = slack }
}

// WithOracle feeds the resource manager perfect statistics for the upcoming
// interval (the paper's "perfect models" experiments).
func WithOracle() Option { return func(c *runConfig) { c.oracle = true } }

// WithFeedback enables the phase-history MLP table — the thesis' proposed
// software alternative to the Paper II MLP-ATD hardware. It reduces the
// QoS-violation risk of the Model 2 predictor at zero hardware cost.
func WithFeedback() Option { return func(c *runConfig) { c.feedback = true } }

// WithTimeline records every per-core setting change in Result.Timeline
// (the run-time allocation time-series shown in the papers' figures).
func WithTimeline() Option { return func(c *runConfig) { c.timeline = true } }

// Run simulates the workload (one benchmark name per core) under the given
// scheme and returns the scored result.
func (s *System) Run(apps []string, scheme Scheme, opts ...Option) (*Result, error) {
	rc := runConfig{model: core.Model2}
	if scheme == RM3 {
		rc.model = core.Model3
	}
	for _, o := range opts {
		o(&rc)
	}
	n := s.db.Sys.NumCores
	if len(apps) != n {
		return nil, fmt.Errorf("qosrma: workload needs %d applications, got %d", n, len(apps))
	}
	slack := rc.perCoreSlack
	if slack == nil && rc.slack > 0 {
		slack = make([]float64, n)
		for i := range slack {
			slack[i] = rc.slack
		}
	}
	mgr := core.NewManager(core.Config{
		Sys:      s.db.Sys,
		Power:    power.DefaultParams(s.db.Sys),
		Scheme:   scheme,
		Model:    rc.model,
		Slack:    slack,
		Feedback: rc.feedback,
	})
	ro := rmasim.DefaultOptions()
	ro.Oracle = rc.oracle
	ro.Timeline = rc.timeline
	return rmasim.Run(s.db, apps, mgr, ro)
}

// Characterize measures every benchmark against this system and returns the
// paper-style categorization (memory intensity, cache sensitivity,
// parallelism sensitivity).
func (s *System) Characterize() ([]*Profile, error) {
	return workload.CharacterizeAll(s.db)
}

// PaperIMixes generates Paper I style category workloads for this system.
func (s *System) PaperIMixes(numMixes int) ([]Mix, error) {
	profiles, err := s.Characterize()
	if err != nil {
		return nil, err
	}
	return workload.PaperIMixes(profiles, s.db.Sys.NumCores, numMixes), nil
}

// PaperIIMixes generates the Paper II category-pair workloads (pairs of
// Paper I classes filling the machine half-and-half).
func (s *System) PaperIIMixes() ([]Mix, error) {
	profiles, err := s.Characterize()
	if err != nil {
		return nil, err
	}
	return workload.PaperIIMixes(profiles), nil
}

// BaselineRound returns the time and energy of one full execution round of
// the benchmark at the static baseline allocation.
func (s *System) BaselineRound(bench string) (seconds, joules float64, err error) {
	return rmasim.BaselineRound(s.db, bench)
}

// Server is the long-running decision service over this system: an
// http.Handler answering the /v1/* API (decide, score, sweep, meta,
// healthz) plus the live-ops control plane — GET /metrics in Prometheus
// text format, POST /admin/reload for atomic database hot-swap,
// /admin/status and /admin/check for the self-checker (see docs/api.md
// and internal/service for the wire formats). Decisions are sharded and
// micro-batched with a per-shard LRU in front, and are bit-identical to
// the corresponding direct library calls. Stop with Server.Shutdown
// (graceful drain) or Server.Close (immediate).
type Server = service.Server

// ServeSpec configures the decision service.
type ServeSpec struct {
	// Addr is the listen address for Serve (e.g. ":8080").
	Addr string
	// WireAddr, when set, makes Serve also listen on this raw-TCP
	// address with the compact binary decide protocol (internal/wire;
	// spec in docs/api.md) — the same shard channels as the HTTP path,
	// bit-identical answers, several times the JSON throughput.
	WireAddr string
	// Shards is the number of decision shards, each one worker goroutine
	// owning its curve buffers, managers and LRU (default GOMAXPROCS,
	// capped at 16).
	Shards int
	// Batch is the micro-batch size one shard wakeup drains (default 64).
	Batch int
	// CacheSize is the per-shard decision-LRU capacity (default 4096
	// entries; negative disables caching).
	CacheSize int

	// ReloadPath, when set, is where SIGHUP and bodyless POST /admin/reload
	// re-read the database from. Unset, reloads rebuild the database from
	// the system's configuration over the full suite (a deterministic
	// rebuild keeps the same content hash).
	ReloadPath string
	// AuditInterval is the self-checker period (0 disables periodic
	// audits; POST /admin/check still audits on demand).
	AuditInterval time.Duration
	// AuditSamples bounds cached decisions re-verified per audit
	// (default 16).
	AuditSamples int
	// MaxInflight bounds concurrently served decide/score requests; at
	// the limit the server sheds load with 503 + Retry-After (0 =
	// default 1024, negative disables the gate).
	MaxInflight int
}

// NewServer builds the decision service handler over this system's
// database and sweep engine (sweep jobs share the engine's single-flight
// result cache with Sweep calls). Release with Server.Close or drain with
// Server.Shutdown.
func (s *System) NewServer(spec ServeSpec) *Server {
	source := "built"
	reloader := func() (*simdb.DB, string, error) {
		db, err := simdb.Build(s.db.Sys, trace.Suite(), simdb.DefaultBuildOptions())
		return db, "rebuilt", err
	}
	if spec.ReloadPath != "" {
		source = spec.ReloadPath
		reloader = func() (*simdb.DB, string, error) {
			db, err := simdb.LoadFile(spec.ReloadPath)
			return db, spec.ReloadPath, err
		}
	}
	return service.New(s.db, s.engine, service.Options{
		Shards:        spec.Shards,
		Batch:         spec.Batch,
		CacheSize:     spec.CacheSize,
		Source:        source,
		Reloader:      reloader,
		AuditInterval: spec.AuditInterval,
		AuditSamples:  spec.AuditSamples,
		MaxInflight:   spec.MaxInflight,
	})
}

// Serve runs the decision service on spec.Addr until the listener fails,
// adding a binary decide listener on spec.WireAddr when set. This is the
// simple blocking entry point; cmd/qosrmad wraps NewServer in its own
// http.Server for signal-driven reload and graceful drain.
func (s *System) Serve(spec ServeSpec) error {
	srv := s.NewServer(spec)
	defer srv.Close()
	if spec.WireAddr != "" {
		ln, err := net.Listen("tcp", spec.WireAddr)
		if err != nil {
			return fmt.Errorf("wire listener: %w", err)
		}
		go srv.ServeWire(ln) //nolint:errcheck // returns nil on Close; Close tears it down
	}
	return http.ListenAndServe(spec.Addr, srv)
}

// Collocate partitions the applications onto the given number of machines
// (each with this system's core count) so that the coordinated resource
// manager is predicted to save the most energy — the thesis' scheduler-
// guidance proposal. It returns the machine assignments and the predicted
// mean savings.
func (s *System) Collocate(apps []string, machines int) (assignment [][]string, predicted float64, err error) {
	a, err := sched.Collocate(s.db, apps, machines)
	if err != nil {
		return nil, 0, err
	}
	return a.Machines, a.Predicted, nil
}
