// Quickstart: build a 4-core system, run the IPDPS 2019 coordinated
// DVFS + cache-partitioning manager (RM2) on a mixed workload, and print
// the per-application QoS/energy report.
package main

import (
	"fmt"
	"log"

	"qosrma"
)

func main() {
	log.SetFlags(0)

	// Construction performs the offline methodology: SimPoint phase
	// analysis plus parallel detailed simulation of every benchmark phase
	// (a few seconds).
	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}

	// A favourable workload: two cache-sensitive memory-bound applications
	// (pointer chasers, whose near-constant MLP the Paper I model predicts
	// accurately) next to two compute-bound donors.
	workload := []string{"mcf", "omnetpp", "gamess", "hmmer"}

	res, err := sys.Run(workload, qosrma.RM2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme: %s\n", res.Scheme)
	for _, a := range res.Apps {
		fmt.Printf("  core %d %-10s time %6.1fs (baseline %6.1fs, %+5.1f%%)  "+
			"energy %6.1fJ (baseline %6.1fJ, saved %4.1f%%)\n",
			a.Core, a.Bench, a.Time, a.BaselineTime, a.ExcessTime*100,
			a.Energy, a.BaselineEnergy, (1-a.Energy/a.BaselineEnergy)*100)
	}
	fmt.Printf("system energy savings: %.1f%%  QoS violations: %d\n",
		res.EnergySavings*100, res.Violations)

	// Compare against the partitioning-only manager (RM1): without the
	// DVFS coordination it has almost no room to save energy.
	rm1, err := sys.Run(workload, qosrma.RM1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioning-only (RM1) savings: %.1f%% — coordination is what pays\n",
		rm1.EnergySavings*100)
}
