// Serve: the decision service driven in-process. The walkthrough builds
// the default system, mounts its HTTP handler on a local listener, and
// plays a typical serving session against it: metadata discovery, a
// micro-batched /v1/decide round trip checked bit-for-bit against the
// direct library answer, a placement query, an async sweep job polled to
// completion, and the health counters at the end.
//
// The same handler is what `qosrmad` listens with; point the requests at
// a real daemon to reproduce every step over the network:
//
//	go run ./cmd/qosrmad -addr 127.0.0.1:7743
//	go run ./examples/serve -addr 127.0.0.1:7743
//
// Without -addr the example spins the server up itself.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "drive a running qosrmad instead of an in-process server")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		sys, err := qosrma.NewSystem(4)
		if err != nil {
			log.Fatal(err)
		}
		srv := sys.NewServer(qosrma.ServeSpec{Shards: 4, Batch: 64})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
		fmt.Printf("in-process server at %s\n", base)
	}

	// 1. Discover what the server can decide about.
	var meta struct {
		NumCores int `json:"num_cores"`
		Benches  []struct {
			Name   string `json:"name"`
			Phases int    `json:"phases"`
		} `json:"benches"`
	}
	get(base+"/v1/meta", &meta)
	fmt.Printf("serving %d-core decisions over %d benchmarks\n", meta.NumCores, len(meta.Benches))

	// 2. A micro-batched decide round trip: four co-phase vectors in one
	// request. The answers are identical to direct library calls — the
	// service's central guarantee.
	decide := map[string]any{"queries": []map[string]any{
		{"scheme": "rm2", "slack": 0.2, "apps": coPhase("mcf", "soplex", "hmmer", "namd")},
		{"scheme": "rm2", "slack": 0.2, "apps": coPhase("lbm", "milc", "gamess", "povray")},
		{"scheme": "rm3", "apps": coPhase("mcf", "omnetpp", "perlbench", "xalancbmk")},
		{"scheme": "static", "apps": coPhase("mcf", "soplex", "hmmer", "namd")},
	}}
	var decisions struct {
		Results []struct {
			Decided  bool `json:"decided"`
			Settings []struct {
				Size    string  `json:"size"`
				FreqGHz float64 `json:"freq_ghz"`
				Ways    int     `json:"ways"`
			} `json:"settings"`
		} `json:"results"`
	}
	post(base+"/v1/decide", decide, &decisions)
	for i, r := range decisions.Results {
		fmt.Printf("decision %d (decided=%v):", i, r.Decided)
		for _, s := range r.Settings {
			fmt.Printf("  %s@%.1fGHz/%dw", s.Size, s.FreqGHz, s.Ways)
		}
		fmt.Println()
	}

	// 3. Placement: where should an arriving mcf go?
	place := map[string]any{
		"candidate": "mcf",
		"machines":  [][]string{{"soplex", "sphinx3"}, {"gamess", "hmmer", "namd"}, {"lbm"}},
	}
	var placed struct {
		Scores []*float64 `json:"scores"`
		Best   *int       `json:"best"`
	}
	post(base+"/v1/score", place, &placed)
	fmt.Printf("placement scores: ")
	for _, s := range placed.Scores {
		if s == nil {
			fmt.Printf("full ")
		} else {
			fmt.Printf("%.3f ", *s)
		}
	}
	fmt.Printf("-> machine %d\n", *placed.Best)

	// 4. An async sweep job, polled to completion and downloaded as CSV.
	sweepReq := map[string]any{
		"name":      "serve-example",
		"workloads": [][]string{{"mcf", "soplex", "hmmer", "namd"}},
		"schemes":   []string{"dvfs", "rm2"},
		"slacks":    []float64{0, 0.4},
	}
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Points int    `json:"points"`
	}
	post(base+"/v1/sweep", sweepReq, &job)
	fmt.Printf("sweep %s: %d points", job.ID, job.Points)
	for job.State == "running" {
		time.Sleep(50 * time.Millisecond)
		get(base+"/v1/sweep/"+job.ID, &job)
	}
	fmt.Printf(" -> %s\n", job.State)
	resp, err := http.Get(base + "/v1/sweep/" + job.ID + "/result?format=csv")
	if err != nil {
		log.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("%s", csv)

	// 5. The health counters summarize the session.
	var health struct {
		Decide struct {
			Queries   uint64 `json:"queries"`
			CacheHits uint64 `json:"cache_hits"`
			Shards    int    `json:"shards"`
		} `json:"decide"`
	}
	get(base+"/v1/healthz", &health)
	fmt.Printf("served %d decisions (%d cache hits) on %d shards\n",
		health.Decide.Queries, health.Decide.CacheHits, health.Decide.Shards)
}

// coPhase builds a phase-0 co-phase vector for the named benchmarks.
func coPhase(benches ...string) []map[string]any {
	apps := make([]map[string]any, len(benches))
	for i, b := range benches {
		apps[i] = map[string]any{"bench": b, "phase": 0}
	}
	return apps
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
