// Workload study: characterize the benchmark suite the way the paper does
// (memory intensity x cache sensitivity, measured from the ATD profiles),
// generate category workloads, and show where the coordinated manager is
// effective.
package main

import (
	"fmt"
	"log"
	"strings"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}

	profiles, err := sys.Characterize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark characterization (measured, not assumed):")
	fmt.Println("  name         MPKI@base  rel drop  MLP s->l   class")
	for _, p := range profiles {
		fmt.Printf("  %-12s %8.2f  %8.2f  %.2f->%.2f  %s/%s\n",
			p.Bench, p.BaselineMPKI, p.RelDrop, p.MLPSmall, p.MLPLarge,
			p.PaperIClass, p.PaperII())
	}

	mixes, err := sys.PaperIMixes(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-mix energy savings under the coordinated manager (RM2):")
	var best float64
	var bestMix string
	for _, m := range mixes {
		res, err := sys.Run(m.Apps, qosrma.RM2)
		if err != nil {
			log.Fatal(err)
		}
		pattern := make([]string, len(m.ClassPattern))
		for i, c := range m.ClassPattern {
			pattern[i] = c.String()
		}
		fmt.Printf("  %-6s %-14s %-44s %5.1f%%  (%d violations)\n",
			m.Name, strings.Join(pattern, "+"), strings.Join(m.Apps, ","),
			res.EnergySavings*100, res.Violations)
		if res.EnergySavings > best {
			best, bestMix = res.EnergySavings, m.Name
		}
	}
	fmt.Printf("\nbest mix: %s at %.1f%% — mixes with cache-sensitive applications\n", bestMix, best*100)
	fmt.Println("benefit most, exactly as the paper reports; homogeneous insensitive")
	fmt.Println("mixes leave the manager nothing to trade.")
}
