// Collocation: the thesis' scheduler-guidance proposal. Eight applications
// must be placed on two 4-core machines; clustering similar applications
// leaves the coordinated resource manager nothing to trade, while mixing
// cache-sensitive applications with donors multiplies the energy savings.
package main

import (
	"fmt"
	"log"
	"strings"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}

	apps := []string{
		"mcf", "omnetpp", "perlbench", "xalancbmk", // cache-hungry
		"gamess", "hmmer", "namd", "povray", // compute-bound donors
	}

	// Naive placement: the first four apps on machine A, the rest on B —
	// exactly the adversarial clustering.
	naive := [][]string{apps[:4], apps[4:]}
	fmt.Println("naive placement (similar apps clustered):")
	measure(sys, naive)

	// Characteristics-guided placement.
	guided, predicted, err := sys.Collocate(apps, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nguided placement (predicted %.1f%% savings):\n", predicted*100)
	measure(sys, guided)

	fmt.Println("\nThe guided scheduler pairs every cache-sensitive application with")
	fmt.Println("compute-bound donors, so the per-machine resource manager can trade")
	fmt.Println("cache for voltage on both machines instead of neither.")
}

func measure(sys *qosrma.System, machines [][]string) {
	var total float64
	for i, m := range machines {
		res, err := sys.Run(m, qosrma.RM2)
		if err != nil {
			log.Fatal(err)
		}
		total += res.EnergySavings
		fmt.Printf("  machine %d [%s]: %.1f%% savings, %d violations\n",
			i, strings.Join(m, ","), res.EnergySavings*100, res.Violations)
	}
	fmt.Printf("  mean savings: %.1f%%\n", total/float64(len(machines))*100)
}
