// Relaxed QoS: reproduce the paper's energy-versus-slack trade-off on a
// single workload. If users tolerate a bounded slowdown, the coordinated
// manager converts every percent of slack into energy savings until the
// voltage floor is reached.
package main

import (
	"fmt"
	"log"
	"strings"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	workload := []string{"mcf", "soplex", "libquantum", "hmmer"}
	fmt.Printf("workload: %s\n\n", strings.Join(workload, ", "))
	fmt.Println("allowed slowdown   energy savings   worst slowdown seen")

	for _, slack := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8} {
		res, err := sys.Run(workload, qosrma.RM2,
			qosrma.WithOracle(), // perfect models, as in the paper's sweep
			qosrma.WithModel(qosrma.Model3),
			qosrma.WithSlack(slack))
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, a := range res.Apps {
			if a.ExcessTime > worst {
				worst = a.ExcessTime
			}
		}
		bar := strings.Repeat("#", int(res.EnergySavings*100+0.5))
		fmt.Printf("      %4.0f%%          %5.1f%%  %-32s %5.1f%%\n",
			slack*100, res.EnergySavings*100, bar, worst*100)
	}

	fmt.Println("\nEvery application stays within its allowed slowdown; the savings")
	fmt.Println("saturate once the memory-bound applications hit the lowest V/f point.")
}
