// Reconfigurable cores: compare the Paper I manager (RM2: DVFS + cache)
// with the Paper II manager (RM3: core size + DVFS + cache) on workload
// mixes that do and do not expose instruction/memory-level parallelism
// trade-offs.
package main

import (
	"fmt"
	"log"
	"strings"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}

	mixes := []struct {
		name string
		apps []string
	}{
		// Pointer chasers: bigger cores cannot create MLP, but smaller
		// cores are nearly free — RM3 downsizes and wins.
		{"cache-sensitive, parallelism-insensitive", []string{"mcf", "omnetpp", "perlbench", "xalancbmk"}},
		// Bursty, independent misses: RM3 can also upsize for MLP when a
		// frequency reduction must be compensated.
		{"cache-sensitive, parallelism-sensitive", []string{"soplex", "sphinx3", "gamess", "hmmer"}},
		// Streaming-only: neither ways nor core size help much.
		{"cache-insensitive, parallelism-sensitive", []string{"libquantum", "milc", "bwaves", "lbm"}},
	}

	fmt.Println("mix                                          RM2      RM3    RM3/RM2")
	for _, m := range mixes {
		rm2, err := sys.Run(m.apps, qosrma.RM2, qosrma.WithModel(qosrma.Model3))
		if err != nil {
			log.Fatal(err)
		}
		rm3, err := sys.Run(m.apps, qosrma.RM3)
		if err != nil {
			log.Fatal(err)
		}
		ratio := "-"
		if rm2.EnergySavings > 0.005 {
			ratio = fmt.Sprintf("%.1fx", rm3.EnergySavings/rm2.EnergySavings)
		}
		fmt.Printf("%-42s %5.1f%%  %6.1f%%   %s\n",
			m.name, rm2.EnergySavings*100, rm3.EnergySavings*100, ratio)
		fmt.Printf("  (%s)\n", strings.Join(m.apps, ", "))
	}

	fmt.Println("\nRM3 exploits the trade-off the paper describes: deactivating core")
	fmt.Println("resources saves energy directly, and reactivating them buys back")
	fmt.Println("ILP/MLP so the frequency — and with it the quadratic dynamic energy —")
	fmt.Println("can drop further without violating any application's QoS target.")
}
