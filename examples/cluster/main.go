// Cluster: the open-system fleet scenario. Jobs arrive from a seeded
// Poisson trace, are placed online onto the machine where the collocation
// scorer predicts the largest energy savings, run one full execution under
// each machine's coordinated resource manager (RM2, 20% slack), and depart
// on completion — the thesis methodology driven past its fixed one-round
// mixes into a datacenter-style dynamic workload.
//
// The -short flag shrinks the scenario for CI smoke runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qosrma"
)

func main() {
	log.SetFlags(0)
	short := flag.Bool("short", false, "small scenario (CI smoke run)")
	emitCSV := flag.Bool("csv", false, "dump per-job rows as CSV to stdout")
	flag.Parse()

	sys, err := qosrma.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}

	jobs, machines := 24, 3
	if *short {
		jobs, machines = 8, 2
	}
	spec := qosrma.ClusterSpec{
		Machines:            machines,
		Scheme:              qosrma.RM2,
		Slack:               0.2,
		NumJobs:             jobs,
		MeanInterarrivalSec: 0.5,
		Seed:                7,
	}

	// The same trace under both placement policies shows what the
	// characteristics-guided scheduler buys at fleet scale.
	for _, placement := range []qosrma.ClusterPlacement{qosrma.PlaceFirstFit, qosrma.PlaceScored} {
		spec.Placement = placement
		res, err := sys.Cluster(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s placement: %d jobs on %d machines\n", res.Placement, len(res.Jobs), machines)
		fmt.Printf("  fleet energy savings %.1f%%, %d QoS violations\n",
			res.EnergySavings*100, res.Violations)
		fmt.Printf("  mean wait %.3fs, max wait %.3fs, makespan %.2fs\n",
			res.MeanWaitSec, res.MaxWaitSec, res.MakespanSec)
		for i, m := range res.Machines {
			fmt.Printf("  machine %d: %d jobs, %.1f busy core-sec, %d RMA invocations\n",
				i, m.Jobs, m.BusyCoreSec, m.Invocations)
		}
		if *emitCSV && placement == qosrma.PlaceScored {
			if err := qosrma.WriteClusterCSV(os.Stdout, res); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}

	fmt.Println("Jobs that share a machine with compute-bound donors let the manager")
	fmt.Println("trade cache for voltage; the scored placement engineers exactly that")
	fmt.Println("mix online, as the scheduler-guidance chapter of the thesis proposes.")
}
