package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/workload"
)

// testDB is a lightweight database stand-in: Key() and Compile() only read
// the system config and the map sizes, so no detailed simulation is needed
// for engine-level tests (the stubbed executor never touches the phases).
func testDB(cores int) *simdb.DB {
	return &simdb.DB{Sys: arch.DefaultSystemConfig(cores)}
}

func mix(name string, apps ...string) workload.Mix {
	return workload.Mix{Name: name, Apps: apps}
}

// stubExec returns a deterministic fake result derived from the spec, and
// counts invocations.
func stubExec(calls *atomic.Int64) func(RunSpec) (*rmasim.Result, error) {
	return func(spec RunSpec) (*rmasim.Result, error) {
		calls.Add(1)
		savings := float64(spec.Scheme)*0.01 + float64(spec.Model)*0.001 + spec.Slack
		return &rmasim.Result{Scheme: spec.Scheme.String(), EnergySavings: savings}, nil
	}
}

func TestCompileOrderAndDefaults(t *testing.T) {
	db := testDB(4)
	spec := Spec{
		Name:    "t",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model2},
		Slacks:  []float64{0, 0.4},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("compiled %d points, want 8", len(points))
	}
	if spec.Size() != 8 {
		t.Fatalf("Size() = %d, want 8", spec.Size())
	}
	// Mixes outermost, then schemes, then slack levels innermost.
	want := []struct {
		mix    string
		scheme core.Scheme
		slack  float64
	}{
		{"a", core.SchemeDVFSOnly, 0}, {"a", core.SchemeDVFSOnly, 0.4},
		{"a", core.SchemeCoordDVFSCache, 0}, {"a", core.SchemeCoordDVFSCache, 0.4},
		{"b", core.SchemeDVFSOnly, 0}, {"b", core.SchemeDVFSOnly, 0.4},
		{"b", core.SchemeCoordDVFSCache, 0}, {"b", core.SchemeCoordDVFSCache, 0.4},
	}
	for i, w := range want {
		p := points[i]
		if p.Mix.Name != w.mix || p.Scheme != w.scheme || p.Slack != w.slack {
			t.Fatalf("point %d = %s/%v/%v, want %s/%v/%v",
				i, p.Mix.Name, p.Scheme, p.Slack, w.mix, w.scheme, w.slack)
		}
		if p.Oracle || p.Feedback || p.BaselineFreqIdx != -1 || p.SwitchScale != 0 {
			t.Fatalf("point %d did not get neutral axis defaults: %+v", i, p)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := (&Spec{}).Compile(); err == nil {
		t.Fatal("empty spec compiled")
	}
	bad := Spec{DB: testDB(4), Mixes: []workload.Mix{mix("a", "mcf")}}
	if _, err := bad.Compile(); err == nil {
		t.Fatal("grid without schemes compiled")
	}
	bad.Schemes = []core.Scheme{core.SchemeDVFSOnly}
	if _, err := bad.Compile(); err == nil {
		t.Fatal("grid without models compiled")
	}
	noDB := Spec{Points: []RunSpec{{Mix: mix("a", "mcf")}}}
	if _, err := noDB.Compile(); err == nil {
		t.Fatal("explicit point without database compiled")
	}
}

func TestCompilePointInheritsDB(t *testing.T) {
	db := testDB(4)
	spec := Spec{DB: db, Points: []RunSpec{{Mix: mix("a", "mcf")}}}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].DB != db {
		t.Fatal("explicit point did not inherit the spec database")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	db := testDB(4)
	base := RunSpec{DB: db, Mix: mix("m", "mcf", "lbm", "milc", "namd"),
		Scheme: core.SchemeCoordDVFSCache, Model: core.Model2, BaselineFreqIdx: -1}

	uniform := base
	uniform.Slack = 0.4
	vector := base
	vector.PerCoreSlack = []float64{0.4, 0.4, 0.4, 0.4}
	if uniform.Key() != vector.Key() {
		t.Fatal("uniform slack and equivalent per-core vector hash differently")
	}

	zeros := base
	zeros.PerCoreSlack = []float64{0, 0, 0, 0}
	if zeros.Key() != base.Key() {
		t.Fatal("all-zero slack vector and nil slack hash differently")
	}

	keep := base
	explicit := base
	explicit.BaselineFreqIdx = db.Sys.BaselineFreqIdx
	if keep.Key() != explicit.Key() {
		t.Fatal("explicit baseline equal to the system baseline hashes differently")
	}

	identity := base
	identity.SwitchScale = 1
	if identity.Key() != base.Key() {
		t.Fatal("switch scale x1 and unset hash differently")
	}

	other := base
	other.Model = core.Model3
	if other.Key() == base.Key() {
		t.Fatal("different models hash identically")
	}
}

func TestEngineMatchesSerialExecution(t *testing.T) {
	db := testDB(4)
	spec := Spec{
		Name:    "serial-check",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm"), mix("c", "milc")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemePartitionOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model1, core.Model2},
		Slacks:  []float64{0, 0.2, 0.4},
	}
	var calls atomic.Int64
	exec := stubExec(&calls)

	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]*rmasim.Result, len(points))
	for i, p := range points {
		serial[i], err = exec(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	calls.Store(0)

	eng := NewEngine(WithExec(exec), WithWorkers(7))
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(serial) {
		t.Fatalf("engine produced %d results, want %d", len(res.Results), len(serial))
	}
	for i := range serial {
		if res.Results[i].EnergySavings != serial[i].EnergySavings {
			t.Fatalf("point %d: engine %.4f != serial %.4f",
				i, res.Results[i].EnergySavings, serial[i].EnergySavings)
		}
	}
	if got := calls.Load(); got != int64(len(points)) {
		t.Fatalf("engine ran %d simulations for %d distinct points", got, len(points))
	}
}

func TestEngineCacheHitsAcrossSweeps(t *testing.T) {
	db := testDB(4)
	var calls atomic.Int64
	eng := NewEngine(WithExec(stubExec(&calls)))
	spec := Spec{
		Name:    "cached",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm")},
		Schemes: []core.Scheme{core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model2},
		Slacks:  []float64{0, 0.4},
	}
	first, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("first run simulated %d points, want 4", calls.Load())
	}
	second, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("cached re-run simulated %d extra points, want 0", calls.Load()-4)
	}
	for i := range first.Results {
		if first.Results[i] != second.Results[i] {
			t.Fatalf("point %d: cached result differs from the original", i)
		}
	}
	hits, misses := eng.Cache().Stats()
	if hits != 4 || misses != 4 {
		t.Fatalf("cache stats hits=%d misses=%d, want 4/4", hits, misses)
	}

	// An overlapping sweep re-simulates only its new points.
	overlap := spec
	overlap.Slacks = []float64{0.4, 0.8}
	if _, err := eng.Run(overlap); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Fatalf("overlapping sweep simulated %d total points, want 6", calls.Load())
	}
}

func TestEngineDeduplicatesWithinBatch(t *testing.T) {
	db := testDB(4)
	var calls atomic.Int64
	eng := NewEngine(WithExec(stubExec(&calls)), WithWorkers(8))
	p := RunSpec{DB: db, Mix: mix("m", "mcf"), Scheme: core.SchemeCoordDVFSCache,
		Model: core.Model2, BaselineFreqIdx: -1}
	specs := make([]RunSpec, 32)
	for i := range specs {
		specs[i] = p
	}
	results, err := eng.ExecuteAll(specs, "dup")
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("32 identical in-flight points ran %d simulations, want 1", calls.Load())
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("deduplicated points returned different results")
		}
	}
}

func TestEngineAggregatesAllErrors(t *testing.T) {
	db := testDB(4)
	errBoom := errors.New("boom")
	eng := NewEngine(WithExec(func(spec RunSpec) (*rmasim.Result, error) {
		if strings.HasPrefix(spec.Mix.Name, "bad") {
			return nil, fmt.Errorf("%s: %w", spec.Mix.Name, errBoom)
		}
		return &rmasim.Result{}, nil
	}))
	specs := []RunSpec{
		{DB: db, Mix: mix("good1", "mcf")},
		{DB: db, Mix: mix("bad1", "lbm")},
		{DB: db, Mix: mix("bad2", "milc")},
		{DB: db, Mix: mix("good2", "namd")},
	}
	_, err := eng.ExecuteAll(specs, "errs")
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("aggregate lost the cause: %v", err)
	}
	for _, want := range []string{"bad1", "bad2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregate %q is missing point %s", err, want)
		}
	}
	// Failed points must not be cached: a retry re-executes them.
	if _, err := eng.ExecuteAll(specs[:1], "retry"); err != nil {
		t.Fatalf("healthy point poisoned by failed batch: %v", err)
	}
}

func TestEngineStreamsRowsInOrder(t *testing.T) {
	db := testDB(4)
	var calls atomic.Int64
	var got []Row
	em := emitterFunc(func(r Row) error {
		got = append(got, r)
		return nil
	})
	eng := NewEngine(WithExec(stubExec(&calls)), WithEmitter(em), WithWorkers(4))
	spec := Spec{
		Name:    "stream",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm"), mix("c", "milc")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model2},
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Results) {
		t.Fatalf("emitted %d rows for %d points", len(got), len(res.Results))
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("row %d emitted with index %d: emission not in point order", i, r.Index)
		}
		if r.Sweep != "stream" {
			t.Fatalf("row %d has sweep name %q", i, r.Sweep)
		}
	}
}

// emitterFunc adapts a function to the Emitter interface.
type emitterFunc func(Row) error

func (f emitterFunc) Emit(r Row) error { return f(r) }
func (emitterFunc) Close() error       { return nil }

func TestCSVAndJSONEmitters(t *testing.T) {
	rows := []Row{
		{Sweep: "s", Index: 0, Mix: "a", Apps: "mcf+lbm", Scheme: "RM2", Model: "Model2",
			Slack: []float64{0.4, 0}, BaselineFreqIdx: -1, EnergySavings: 0.123},
		{Sweep: "s", Index: 1, Mix: "b", Apps: "milc+namd", Scheme: "RM3", Model: "Model3",
			BaselineFreqIdx: -1, EnergySavings: 0.05, Violations: 2},
	}
	var csvOut strings.Builder
	if err := WriteCSV(&csvOut, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csvOut.String())
	}
	if !strings.HasPrefix(lines[0], "sweep,index,mix,apps,scheme,model") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "0.4|0") || !strings.Contains(lines[1], "0.123") {
		t.Fatalf("CSV row wrong: %s", lines[1])
	}

	var jsonOut strings.Builder
	if err := WriteJSON(&jsonOut, rows); err != nil {
		t.Fatal(err)
	}
	jlines := strings.Split(strings.TrimSpace(jsonOut.String()), "\n")
	if len(jlines) != 2 {
		t.Fatalf("JSON lines output has %d lines, want 2", len(jlines))
	}
	if !strings.Contains(jlines[0], `"mix":"a"`) || !strings.Contains(jlines[0], `"energy_savings":0.123`) {
		t.Fatalf("JSON row wrong: %s", jlines[0])
	}

	if _, err := NewEmitter("xml", nil); err == nil {
		t.Fatal("unknown emitter format accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	db := testDB(4)
	var calls atomic.Int64
	eng := NewEngine(WithExec(stubExec(&calls)))
	res, err := eng.Run(Spec{
		Name:    "helpers",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rm2 := res.Select(func(p RunSpec) bool { return p.Scheme == core.SchemeCoordDVFSCache })
	if len(rm2) != 2 {
		t.Fatalf("Select returned %d results, want 2", len(rm2))
	}
	if s := res.Savings(); len(s) != 4 || s[1] != res.Results[1].EnergySavings {
		t.Fatalf("Savings misaligned: %v", s)
	}
	rows := res.Rows()
	if len(rows) != 4 || rows[3].Index != 3 || rows[3].Sweep != "helpers" {
		t.Fatalf("Rows misaligned: %+v", rows)
	}
}

// BenchmarkEngineDispatch measures the engine's per-point overhead
// (compile, hash, pool dispatch, cache) with the simulation stubbed out.
func BenchmarkEngineDispatch(b *testing.B) {
	db := testDB(4)
	spec := Spec{
		Name:    "bench",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm"), mix("c", "milc"), mix("d", "namd")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemePartitionOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model1, core.Model2, core.Model3},
		Slacks:  []float64{0, 0.2, 0.4, 0.6},
	}
	exec := func(RunSpec) (*rmasim.Result, error) { return &rmasim.Result{}, nil }
	b.ReportMetric(float64(spec.Size()), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine each iteration so every point misses the cache.
		if _, err := NewEngine(WithExec(exec)).Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCacheHit measures a fully-cached sweep re-run.
func BenchmarkEngineCacheHit(b *testing.B) {
	db := testDB(4)
	spec := Spec{
		Name:    "bench-cached",
		DB:      db,
		Mixes:   []workload.Mix{mix("a", "mcf"), mix("b", "lbm"), mix("c", "milc"), mix("d", "namd")},
		Schemes: []core.Scheme{core.SchemeDVFSOnly, core.SchemePartitionOnly, core.SchemeCoordDVFSCache},
		Models:  []core.ModelKind{core.Model1, core.Model2, core.Model3},
		Slacks:  []float64{0, 0.2, 0.4, 0.6},
	}
	exec := func(RunSpec) (*rmasim.Result, error) { return &rmasim.Result{}, nil }
	eng := NewEngine(WithExec(exec))
	if _, err := eng.Run(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
