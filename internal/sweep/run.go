// Package sweep is the scenario-sweep engine: a declarative description of
// a discrete configuration grid (schemes × models × slack × mixes × system
// overrides) that compiles to individual simulation runs, executed on a
// sharded bounded worker pool with deterministic per-point ordering and a
// content-hash keyed result cache, so overlapping sweeps never re-simulate
// a point. The experiment runners in internal/experiments are thin sweep
// definitions on top of this package.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/workload"
)

// RunSpec describes one simulation: a workload under one manager config.
type RunSpec struct {
	DB     *simdb.DB
	Mix    workload.Mix
	Scheme core.Scheme
	Model  core.ModelKind
	Oracle bool
	// Slack is the uniform QoS relaxation; PerCoreSlack overrides it.
	Slack        float64
	PerCoreSlack []float64
	// BaselineFreqIdx overrides the system baseline frequency (-1 = keep).
	BaselineFreqIdx int
	// Feedback enables the phase-history MLP table extension.
	Feedback bool
	// SwitchScale scales all reconfiguration overheads (0 = keep as-is);
	// used by the overhead-sensitivity ablation.
	SwitchScale float64
	// PerCoreGBps overrides the per-core memory-bandwidth cap in the
	// ground-truth model (0 = keep the system default); used by the
	// bandwidth ablation.
	PerCoreGBps float64
}

// effectiveSlack canonicalizes the two slack fields into the per-core
// vector the manager will actually see (nil when every entry is zero).
// Canonicalizing here lets the cache identify e.g. a uniform 40% sweep
// point with the "all apps relaxed" subset-study point.
func (s *RunSpec) effectiveSlack(n int) []float64 {
	slack := s.PerCoreSlack
	if slack == nil && s.Slack > 0 {
		slack = make([]float64, n)
		for i := range slack {
			slack[i] = s.Slack
		}
	}
	for _, v := range slack {
		if v != 0 {
			return slack
		}
	}
	return nil
}

// Key returns the content hash identifying this point's full configuration:
// the system description, the workload, and every manager/override knob.
// Two specs with equal keys produce identical results (the simulator is
// deterministic), which is what makes the result cache sound. The database
// contents are assumed to be the deterministic function of the system
// config they are everywhere in this repo (simdb.Build with default build
// options), so the key hashes the config rather than every phase record.
func (s *RunSpec) Key() string {
	// An explicit baseline override equal to the system's own baseline is
	// the same run as "keep" (-1); canonicalize so the two share a point.
	bf := s.BaselineFreqIdx
	if bf == s.DB.Sys.BaselineFreqIdx {
		bf = -1
	}
	// Scaling every switch cost by 1 is the identity; fold it into "keep".
	sw := s.SwitchScale
	if sw == 1 {
		sw = 0
	}
	h := sha256.New()
	fmt.Fprintf(h, "sys=%+v|db=%d/%d|", s.DB.Sys, s.DB.NumRecords(), s.DB.NumBenches())
	fmt.Fprintf(h, "apps=%q|scheme=%d|model=%d|oracle=%t|slack=%v|",
		s.Mix.Apps, s.Scheme, s.Model, s.Oracle, s.effectiveSlack(s.DB.Sys.NumCores))
	fmt.Fprintf(h, "bfreq=%d|feedback=%t|switch=%g|gbps=%g",
		bf, s.Feedback, sw, s.PerCoreGBps)
	return hex.EncodeToString(h.Sum(nil))
}

// Execute runs one spec serially, with no caching. Most callers should go
// through an Engine instead.
func Execute(spec RunSpec) (*rmasim.Result, error) {
	db := spec.DB
	needClone := (spec.BaselineFreqIdx >= 0 && spec.BaselineFreqIdx != db.Sys.BaselineFreqIdx) ||
		spec.SwitchScale > 0 || spec.PerCoreGBps > 0
	if needClone {
		// The database profiles are independent of these parameters; only
		// the derived model changes. The baseline and switch-cost overrides
		// leave the per-setting performance points untouched, so a shallow
		// copy suffices; a bandwidth override changes the ground-truth
		// timing model and therefore recompiles the lattice tables.
		sys := db.Sys
		if spec.BaselineFreqIdx >= 0 {
			sys.BaselineFreqIdx = spec.BaselineFreqIdx
		}
		if spec.SwitchScale > 0 {
			sw := &sys.Switch
			sw.DVFSTransNs *= spec.SwitchScale
			sw.CoreResizeNs *= spec.SwitchScale
			sw.WayMigrateNs *= spec.SwitchScale
			sw.DVFSTransJ *= spec.SwitchScale
			sw.CoreResizeJ *= spec.SwitchScale
			sw.WayMigrateJ *= spec.SwitchScale
		}
		if spec.PerCoreGBps > 0 && spec.PerCoreGBps != db.Sys.Mem.PerCoreGBps {
			sys.Mem.PerCoreGBps = spec.PerCoreGBps
			db = db.RecompiledCached(sys)
		} else {
			db = db.WithSys(sys)
		}
	}
	mgr := core.NewManager(core.Config{
		Sys:      db.Sys,
		Power:    power.DefaultParams(db.Sys),
		Scheme:   spec.Scheme,
		Model:    spec.Model,
		Slack:    spec.effectiveSlack(db.Sys.NumCores),
		Feedback: spec.Feedback,
	})
	opt := rmasim.DefaultOptions()
	opt.Oracle = spec.Oracle
	return rmasim.Run(db, spec.Mix.Apps, mgr, opt)
}
