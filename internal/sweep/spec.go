package sweep

import (
	"errors"
	"fmt"

	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/workload"
)

// Spec declares a scenario sweep over the discrete configuration space.
// The grid axes (Mixes × Schemes × Models × slack levels × Oracle ×
// BaselineFreqIdxs × SwitchScales × BandwidthGBps × Feedback) expand to
// their cartesian product; Points appends fully-specified extra runs (for
// shapes a grid cannot express, e.g. per-core slack subsets). Axes left
// nil default to the single neutral value, so a minimal sweep only names
// DB, Mixes, Schemes and Models.
type Spec struct {
	// Name labels the sweep in emitted rows and progress output.
	Name string
	DB   *simdb.DB

	Mixes   []workload.Mix
	Schemes []core.Scheme
	Models  []core.ModelKind
	// Slacks are uniform QoS relaxations; SlackVectors are per-core
	// relaxation vectors. Together they form the slack axis, Slacks first.
	Slacks       []float64
	SlackVectors [][]float64
	Oracle       []bool
	// BaselineFreqIdxs overrides the baseline frequency (-1 = keep).
	BaselineFreqIdxs []int
	SwitchScales     []float64
	BandwidthGBps    []float64
	Feedback         []bool

	// Points are explicit extra runs appended after the grid, in order.
	Points []RunSpec
}

// Compile expands the spec into the ordered list of runs. The expansion
// order is fixed and documented: Mixes outermost, then Schemes, Models,
// slack levels (uniform Slacks before SlackVectors), Oracle,
// BaselineFreqIdxs, SwitchScales, BandwidthGBps, Feedback innermost —
// followed by the explicit Points. Callers rely on this order to index
// results, so it must never change.
func (s *Spec) Compile() ([]RunSpec, error) {
	if len(s.Mixes) == 0 && len(s.Points) == 0 {
		return nil, errors.New("sweep: spec has neither grid mixes nor explicit points")
	}
	var specs []RunSpec
	if len(s.Mixes) > 0 {
		if s.DB == nil {
			return nil, errors.New("sweep: grid spec needs a database")
		}
		if len(s.Schemes) == 0 {
			return nil, fmt.Errorf("sweep %q: grid spec needs at least one scheme", s.Name)
		}
		if len(s.Models) == 0 {
			return nil, fmt.Errorf("sweep %q: grid spec needs at least one model", s.Name)
		}
		type slackLevel struct {
			uniform float64
			vector  []float64
		}
		slacks := make([]slackLevel, 0, len(s.Slacks)+len(s.SlackVectors))
		for _, v := range s.Slacks {
			slacks = append(slacks, slackLevel{uniform: v})
		}
		for _, v := range s.SlackVectors {
			slacks = append(slacks, slackLevel{vector: v})
		}
		if len(slacks) == 0 {
			slacks = []slackLevel{{}}
		}
		oracles := s.Oracle
		if len(oracles) == 0 {
			oracles = []bool{false}
		}
		baselines := s.BaselineFreqIdxs
		if len(baselines) == 0 {
			baselines = []int{-1}
		}
		switches := s.SwitchScales
		if len(switches) == 0 {
			switches = []float64{0}
		}
		bandwidths := s.BandwidthGBps
		if len(bandwidths) == 0 {
			bandwidths = []float64{0}
		}
		feedbacks := s.Feedback
		if len(feedbacks) == 0 {
			feedbacks = []bool{false}
		}
		for _, mix := range s.Mixes {
			for _, scheme := range s.Schemes {
				for _, model := range s.Models {
					for _, sl := range slacks {
						for _, oracle := range oracles {
							for _, bf := range baselines {
								for _, sw := range switches {
									for _, bw := range bandwidths {
										for _, fb := range feedbacks {
											specs = append(specs, RunSpec{
												DB: s.DB, Mix: mix, Scheme: scheme, Model: model,
												Oracle: oracle, Slack: sl.uniform, PerCoreSlack: sl.vector,
												BaselineFreqIdx: bf, Feedback: fb,
												SwitchScale: sw, PerCoreGBps: bw,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	for _, p := range s.Points {
		if p.DB == nil {
			p.DB = s.DB
		}
		if p.DB == nil {
			return nil, fmt.Errorf("sweep %q: explicit point without a database", s.Name)
		}
		specs = append(specs, p)
	}
	return specs, nil
}

// Size returns the number of runs the spec compiles to, without
// validating it.
func (s *Spec) Size() int {
	n := len(s.Mixes) * len(s.Schemes) * len(s.Models)
	n *= max1(len(s.Slacks) + len(s.SlackVectors))
	n *= max1(len(s.Oracle))
	n *= max1(len(s.BaselineFreqIdxs))
	n *= max1(len(s.SwitchScales))
	n *= max1(len(s.BandwidthGBps))
	n *= max1(len(s.Feedback))
	return n + len(s.Points)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
