package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qosrma/internal/rmasim"
)

// Row is one aggregated sweep record: the point's configuration plus the
// headline metrics of its simulation, flat enough to stream as CSV or
// JSON lines.
type Row struct {
	Sweep string `json:"sweep,omitempty"`
	Index int    `json:"index"`

	Mix    string `json:"mix"`
	Apps   string `json:"apps"`
	Scheme string `json:"scheme"`
	Model  string `json:"model"`
	Oracle bool   `json:"oracle,omitempty"`

	Slack           []float64 `json:"slack,omitempty"`
	BaselineFreqIdx int       `json:"baseline_freq_idx"`
	Feedback        bool      `json:"feedback,omitempty"`
	SwitchScale     float64   `json:"switch_scale,omitempty"`
	PerCoreGBps     float64   `json:"per_core_gbps,omitempty"`

	EnergySavings      float64 `json:"energy_savings"`
	Violations         int     `json:"violations"`
	Intervals          int     `json:"intervals"`
	IntervalViolations int     `json:"interval_violations"`
	ViolationMeanPct   float64 `json:"violation_mean_pct"`
	ViolationStdPct    float64 `json:"violation_std_pct"`
}

// makeRow flattens one executed point.
func makeRow(sweepName string, idx int, spec RunSpec, res *rmasim.Result) Row {
	n := 0
	if spec.DB != nil {
		n = spec.DB.Sys.NumCores
	}
	return Row{
		Sweep:              sweepName,
		Index:              idx,
		Mix:                spec.Mix.Name,
		Apps:               strings.Join(spec.Mix.Apps, "+"),
		Scheme:             spec.Scheme.String(),
		Model:              spec.Model.String(),
		Oracle:             spec.Oracle,
		Slack:              spec.effectiveSlack(n),
		BaselineFreqIdx:    spec.BaselineFreqIdx,
		Feedback:           spec.Feedback,
		SwitchScale:        spec.SwitchScale,
		PerCoreGBps:        spec.PerCoreGBps,
		EnergySavings:      res.EnergySavings,
		Violations:         res.Violations,
		Intervals:          res.Intervals,
		IntervalViolations: res.IntervalViolations,
		ViolationMeanPct:   res.ViolationMeanPct,
		ViolationStdPct:    res.ViolationStdPct,
	}
}

// Emitter receives aggregated rows in deterministic point order as a
// sweep executes. Implementations need not be safe for concurrent use:
// the engine serializes Emit calls.
type Emitter interface {
	Emit(Row) error
	// Close flushes any buffered output. The engine does not call it; the
	// owner of the underlying writer does.
	Close() error
}

// csvHeader is the fixed column order of the CSV emitter.
var csvHeader = []string{
	"sweep", "index", "mix", "apps", "scheme", "model", "oracle", "slack",
	"baseline_freq_idx", "feedback", "switch_scale", "per_core_gbps",
	"energy_savings", "violations", "intervals", "interval_violations",
	"violation_mean_pct", "violation_std_pct",
}

// CSVEmitter streams rows as CSV with a header line.
type CSVEmitter struct {
	w     *csv.Writer
	wrote bool
}

// NewCSVEmitter wraps the writer.
func NewCSVEmitter(w io.Writer) *CSVEmitter { return &CSVEmitter{w: csv.NewWriter(w)} }

// Emit writes one record (and the header before the first one). Each
// record is flushed through to the underlying writer immediately, so rows
// already emitted survive even if the process aborts mid-sweep.
func (c *CSVEmitter) Emit(r Row) error {
	if !c.wrote {
		c.wrote = true
		if err := c.w.Write(csvHeader); err != nil {
			return err
		}
	}
	slack := make([]string, len(r.Slack))
	for i, v := range r.Slack {
		slack[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	err := c.w.Write([]string{
		r.Sweep,
		strconv.Itoa(r.Index),
		r.Mix,
		r.Apps,
		r.Scheme,
		r.Model,
		strconv.FormatBool(r.Oracle),
		strings.Join(slack, "|"),
		strconv.Itoa(r.BaselineFreqIdx),
		strconv.FormatBool(r.Feedback),
		strconv.FormatFloat(r.SwitchScale, 'g', -1, 64),
		strconv.FormatFloat(r.PerCoreGBps, 'g', -1, 64),
		strconv.FormatFloat(r.EnergySavings, 'g', -1, 64),
		strconv.Itoa(r.Violations),
		strconv.Itoa(r.Intervals),
		strconv.Itoa(r.IntervalViolations),
		strconv.FormatFloat(r.ViolationMeanPct, 'g', -1, 64),
		strconv.FormatFloat(r.ViolationStdPct, 'g', -1, 64),
	})
	if err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

// Close flushes the CSV writer.
func (c *CSVEmitter) Close() error {
	c.w.Flush()
	return c.w.Error()
}

// JSONEmitter streams rows as JSON lines (one object per row).
type JSONEmitter struct {
	enc *json.Encoder
}

// NewJSONEmitter wraps the writer.
func NewJSONEmitter(w io.Writer) *JSONEmitter { return &JSONEmitter{enc: json.NewEncoder(w)} }

// Emit writes one JSON line.
func (j *JSONEmitter) Emit(r Row) error { return j.enc.Encode(r) }

// Close is a no-op; JSON lines need no trailer.
func (j *JSONEmitter) Close() error { return nil }

// WriteCSV writes the rows as CSV in one call.
func WriteCSV(w io.Writer, rows []Row) error {
	em := NewCSVEmitter(w)
	for _, r := range rows {
		if err := em.Emit(r); err != nil {
			return err
		}
	}
	return em.Close()
}

// WriteJSON writes the rows as JSON lines in one call.
func WriteJSON(w io.Writer, rows []Row) error {
	em := NewJSONEmitter(w)
	for _, r := range rows {
		if err := em.Emit(r); err != nil {
			return err
		}
	}
	return em.Close()
}

// NewEmitter builds an emitter by format name ("csv" or "json").
func NewEmitter(format string, w io.Writer) (Emitter, error) {
	switch strings.ToLower(format) {
	case "csv":
		return NewCSVEmitter(w), nil
	case "json", "jsonl", "ndjson":
		return NewJSONEmitter(w), nil
	default:
		return nil, fmt.Errorf("sweep: unknown emit format %q (want csv or json)", format)
	}
}
