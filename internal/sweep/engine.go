package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"qosrma/internal/rmasim"
)

// Engine executes sweeps on a bounded worker pool backed by a shared
// memoizing cache. An engine is safe for concurrent use; sharing one
// engine across sweeps is what lets overlapping grids (e.g. the
// relaxation sweep and the subset-relaxation study) reuse each other's
// points instead of re-simulating them.
type Engine struct {
	cache   *Cache
	workers int
	exec    func(RunSpec) (*rmasim.Result, error)
	emitMu  sync.Mutex
	emitter Emitter
}

// EngineOption customizes an engine.
type EngineOption func(*Engine)

// WithWorkers bounds the worker pool (default: GOMAXPROCS).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithCache shares an existing cache between engines.
func WithCache(c *Cache) EngineOption {
	return func(e *Engine) {
		if c != nil {
			e.cache = c
		}
	}
}

// WithExec overrides the point executor (tests use this to count or stub
// the underlying simulation).
func WithExec(f func(RunSpec) (*rmasim.Result, error)) EngineOption {
	return func(e *Engine) {
		if f != nil {
			e.exec = f
		}
	}
}

// WithEmitter streams every completed sweep's rows, in deterministic
// point order, to the emitter as points finish.
func WithEmitter(em Emitter) EngineOption {
	return func(e *Engine) { e.emitter = em }
}

// NewEngine builds an engine with a fresh cache unless one is shared in.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		cache:   NewCache(),
		workers: runtime.GOMAXPROCS(0),
		exec:    Execute,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Cache exposes the engine's cache (for stats reporting and sharing).
func (e *Engine) Cache() *Cache { return e.cache }

// SetEmitter installs or replaces the streaming emitter (nil disables).
func (e *Engine) SetEmitter(em Emitter) {
	e.emitMu.Lock()
	e.emitter = em
	e.emitMu.Unlock()
}

// Result is the outcome of one sweep: the compiled points and their
// simulation results, index-aligned in the deterministic compile order.
type Result struct {
	Name    string
	Points  []RunSpec
	Results []*rmasim.Result
}

// Select returns the results whose point matches the predicate, in point
// order. It is the convenience the experiment runners use to regroup a
// grid by one axis.
func (r *Result) Select(pred func(RunSpec) bool) []*rmasim.Result {
	var out []*rmasim.Result
	for i, p := range r.Points {
		if pred(p) {
			out = append(out, r.Results[i])
		}
	}
	return out
}

// Savings returns the per-point energy savings, index-aligned with Points.
func (r *Result) Savings() []float64 {
	out := make([]float64, len(r.Results))
	for i, res := range r.Results {
		out[i] = res.EnergySavings
	}
	return out
}

// Rows converts the sweep outcome to aggregated emitter rows.
func (r *Result) Rows() []Row {
	rows := make([]Row, len(r.Results))
	for i := range r.Results {
		rows[i] = makeRow(r.Name, i, r.Points[i], r.Results[i])
	}
	return rows
}

// Run compiles and executes the sweep. Results come back in the compile
// order regardless of completion order; every failing point contributes
// its error to the aggregate (errors.Join) rather than masking the rest.
func (e *Engine) Run(spec Spec) (*Result, error) {
	points, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	results, err := e.ExecuteAll(points, spec.Name)
	if err != nil {
		return nil, err
	}
	return &Result{Name: spec.Name, Points: points, Results: results}, nil
}

// ExecuteAll runs the specs on the worker pool and returns results in
// input order. Identical points (same content hash) are simulated once;
// the rest are served from the cache. All per-point errors are aggregated
// into the returned error.
func (e *Engine) ExecuteAll(specs []RunSpec, name string) ([]*rmasim.Result, error) {
	results := make([]*rmasim.Result, len(specs))
	errs := make([]error, len(specs))
	done := make([]chan struct{}, len(specs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			defer close(done[i])
			results[i], errs[i] = e.cache.do(spec.Key(), func() (*rmasim.Result, error) {
				return e.exec(spec)
			})
		}(i, spec)
	}

	// Stream rows in deterministic point order as completions reach the
	// frontier, while later points still execute. The lock spans the whole
	// loop so concurrent sweeps sharing one engine cannot interleave their
	// rows inside the emitter.
	var emitErr error
	e.emitMu.Lock()
	if e.emitter != nil {
		for i := range specs {
			<-done[i]
			if errs[i] != nil || emitErr != nil {
				continue
			}
			emitErr = e.emitter.Emit(makeRow(name, i, specs[i], results[i]))
		}
	}
	e.emitMu.Unlock()
	wg.Wait()

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("sweep point %d (%s): %w", i, specs[i].Mix.Name, err))
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	if emitErr != nil {
		return nil, fmt.Errorf("sweep emit: %w", emitErr)
	}
	return results, nil
}
