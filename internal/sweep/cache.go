package sweep

import (
	"sync"
	"sync/atomic"

	"qosrma/internal/rmasim"
)

// cacheShards keeps lock contention low when many workers look up points
// concurrently; keys are content hashes, so the first key byte is a
// uniform shard selector.
const cacheShards = 16

// entry is one memoized point. The leader goroutine that created the
// entry computes the result, stores it and closes ready; followers block
// on ready and read the outcome. Failed entries are removed so a later
// identical request retries instead of replaying the error forever.
type entry struct {
	ready chan struct{}
	res   *rmasim.Result
	err   error
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// Cache memoizes simulation results by RunSpec content hash. It is safe
// for concurrent use and deduplicates in-flight work: concurrent requests
// for the same key run the simulation exactly once (single-flight), which
// is what guarantees a sweep never issues duplicate rmasim.Run calls even
// when overlapping points land in the same batch.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// Stats reports cumulative lookups: hits count requests served from a
// completed or in-flight entry, misses count requests that had to run the
// simulation.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of completed-or-in-flight entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

func (c *Cache) shard(key string) *cacheShard {
	if key == "" {
		return &c.shards[0]
	}
	return &c.shards[int(key[0])%cacheShards]
}

// do returns the memoized result for key, running exec at most once per
// key across all concurrent callers.
func (c *Cache) do(key string, exec func() (*rmasim.Result, error)) (*rmasim.Result, error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.res, e.err
	}
	e := &entry{ready: make(chan struct{})}
	s.m[key] = e
	s.mu.Unlock()
	c.misses.Add(1)

	e.res, e.err = exec()
	if e.err != nil {
		s.mu.Lock()
		delete(s.m, key)
		s.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.err
}
