package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedIndependence(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSeedFromDistinctLabels(t *testing.T) {
	s1 := SeedFrom(7, "alpha")
	s2 := SeedFrom(7, "beta")
	s3 := SeedFrom(8, "alpha")
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Fatalf("seed derivation collided: %v %v %v", s1, s2, s3)
	}
	if s1 != SeedFrom(7, "alpha") {
		t.Fatal("SeedFrom not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanApproximatelyHalf(t *testing.T) {
	r := NewRNG(4)
	var run Running
	for i := 0; i < 100000; i++ {
		run.Add(r.Float64())
	}
	if math.Abs(run.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", run.Mean())
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	var run Running
	for i := 0; i < 100000; i++ {
		run.Add(r.Norm(10, 2))
	}
	if math.Abs(run.Mean()-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", run.Mean())
	}
	if math.Abs(run.StdDev()-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", run.StdDev())
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	var run Running
	for i := 0; i < 100000; i++ {
		run.Add(r.Exp(3))
	}
	if math.Abs(run.Mean()-3) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~3", run.Mean())
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(7)
	p := 0.25
	var run Running
	for i := 0; i < 100000; i++ {
		run.Add(float64(r.Geometric(p)))
	}
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(run.Mean()-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", run.Mean(), want)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(8)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn did not cover range, saw %d values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if got != 2.5 {
		t.Fatalf("WeightedMean = %v, want 2.5", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Fatal("empty WeightedMean should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bin
	h.Add(50) // clamps to last bin
	if h.N != 12 {
		t.Fatalf("N = %d, want 12", h.N)
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := NewRNG(10)
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.Norm(0, 1)
		run.Add(xs[i])
	}
	if math.Abs(run.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("running mean %v != batch mean %v", run.Mean(), Mean(xs))
	}
	if math.Abs(run.StdDev()-StdDev(xs)) > 1e-9 {
		t.Fatalf("running stddev %v != batch stddev %v", run.StdDev(), StdDev(xs))
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
