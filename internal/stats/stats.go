package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns the mean of xs weighted by ws. It panics if the
// lengths differ and returns 0 when the total weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of xs; all elements must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Histogram is a fixed-bin-width histogram over [Lo, Hi). Values outside the
// range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.N++
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Running accumulates streaming mean/variance (Welford's algorithm).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations recorded.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}
