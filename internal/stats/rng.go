// Package stats provides deterministic pseudo-random number generation and
// small statistics helpers used throughout the simulation framework.
//
// All randomness in the repository flows through the RNG type defined here,
// seeded from explicit, named seeds, so every simulation and experiment is
// reproducible bit-for-bit across runs and machines.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator.
// It combines a splitmix64 seeding stage with the xoshiro256** engine.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next stream value. It is the
// standard seeder recommended for xoshiro-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator whose stream is fully determined by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// SeedFrom derives a child seed from a parent seed and a stream label. It is
// used to hand independent deterministic streams to sub-components (for
// example, one stream per benchmark phase) without sharing generator state.
func SeedFrom(parent uint64, label string) uint64 {
	h := parent ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return splitmix64(&h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometrically distributed count with success
// probability p in (0, 1]; the result is the number of failures before the
// first success (support {0, 1, 2, ...}).
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
