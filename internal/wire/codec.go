// Package wire is qosrmad's compact binary protocol for the decide hot
// path: versioned, length-prefixed, little-endian frames carrying
// fixed-width co-phase vectors with interned benchmark and scheme IDs.
// It exists because the JSON path spends most of one core marshalling;
// the binary framing decodes in a few nanoseconds per query and the
// decoder is zero-copy — Reader.Next yields the frame payload straight
// out of the connection read buffer (bufio Peek/Discard, no staging
// copy), and the Parse* functions scan that payload into caller-owned
// scratch structs, so the steady-state decode performs no allocation at
// all (pinned by TestDecodeZeroAlloc and BenchmarkWireDecode).
//
// Frame layout (all integers little-endian):
//
//	u32 payloadLen   bytes following the 6-byte header (≤ MaxPayload)
//	u8  version      currently 1; other values fail the connection
//	u8  type         Type* constant
//	... payloadLen bytes of payload
//
// Protocol: a client may send Hello (empty payload) and receives Meta —
// the serving database's content hash, core count and interned benchmark
// table — making the wire port self-describing; DecideRequest frames
// carry a micro-batch of co-phase queries under one manager
// configuration and are answered by an equal-arity DecideResponse (Seq
// echoed) or by an Error frame. Malformed payloads inside a well-formed
// frame answer Error and the connection continues; an unframeable stream
// (bad version, oversized length) answers Error and the connection
// closes, since resynchronization is impossible. Error signalling,
// versioning rules and the exact byte layouts are specified for clients
// in docs/api.md ("Binary wire protocol").
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// floatBits/floatFrom name the f64 wire representation in one place.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Version is the only frame version this package speaks.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 6

// MaxPayload bounds a frame's declared payload length. A header
// declaring more is unrecoverable (the stream cannot be resynchronized)
// and must close the connection.
const MaxPayload = 1 << 20

// MaxQueries bounds the co-phase queries one DecideRequest may carry.
const MaxQueries = 4096

// MaxCores bounds the per-query co-phase vector width.
const MaxCores = 64

// Frame types.
const (
	// TypeHello (client→server, empty payload) requests a Meta frame.
	TypeHello = 0x01
	// TypeMeta (server→client) describes the serving database.
	TypeMeta = 0x02
	// TypeDecideRequest (client→server) is a micro-batch of decide
	// queries under one manager configuration.
	TypeDecideRequest = 0x03
	// TypeDecideResponse (server→client) answers a DecideRequest.
	TypeDecideResponse = 0x04
	// TypeError (server→client) reports a per-frame or fatal error.
	TypeError = 0x05
)

// ErrCode is an Error frame's one-byte code. It is a defined type so
// that switches over it are checked for exhaustiveness by qosrmavet:
// adding a code without teaching every consumer is a compile-gate
// failure, not a silent fallthrough.
type ErrCode byte

// Error frame codes.
const (
	// ErrCodeMalformed: the payload did not parse or failed validation.
	ErrCodeMalformed ErrCode = 1
	// ErrCodeStaleDB: the request's DBHash does not match the serving
	// snapshot (the client should refresh via Hello/Meta).
	ErrCodeStaleDB ErrCode = 2
	// ErrCodeTooLarge: the declared payload exceeds MaxPayload (fatal —
	// the server closes the connection after sending this).
	ErrCodeTooLarge ErrCode = 3
	// ErrCodeUnavailable: the server is draining or closed.
	ErrCodeUnavailable ErrCode = 4
	// ErrCodeUnsupported: unknown frame version or type (version
	// mismatches are fatal).
	ErrCodeUnsupported ErrCode = 5
)

// String names the code for logs and error text.
func (c ErrCode) String() string {
	switch c {
	case ErrCodeMalformed:
		return "malformed"
	case ErrCodeStaleDB:
		return "stale-db"
	case ErrCodeTooLarge:
		return "too-large"
	case ErrCodeUnavailable:
		return "unavailable"
	case ErrCodeUnsupported:
		return "unsupported"
	}
	return "errcode(" + strconv.Itoa(int(c)) + ")"
}

// DecideRequest flag bits.
const (
	// FlagSlackUniform: one f64 QoS slack applied to every core.
	FlagSlackUniform = 1 << 0
	// FlagSlackPerCore: NCores f64 slacks, one per core.
	FlagSlackPerCore = 1 << 1
)

// ErrMalformed is wrapped by every payload parse/validation error, so
// connection loops can distinguish recoverable frame errors (answer an
// Error frame, keep the connection) from I/O failure.
var ErrMalformed = errors.New("wire: malformed payload")

// ErrVersion reports a frame header with an unsupported version byte.
// Fatal: the stream cannot be assumed framable beyond this point.
var ErrVersion = errors.New("wire: unsupported frame version")

// ErrTooLarge reports a frame header declaring a payload beyond
// MaxPayload. Fatal for the same reason as ErrVersion.
var ErrTooLarge = errors.New("wire: frame exceeds MaxPayload")

// App is one core's occupant in a co-phase vector: an interned benchmark
// ID (the database's simdb.BenchID) and a phase index.
type App struct {
	Bench uint16
	Phase uint16
}

// Setting is one core's decided allocation on the wire: the core-size
// enum, the DVFS table index and the LLC way count, each one byte.
type Setting struct {
	Size uint8
	Freq uint8
	Ways uint8
}

// DecideRequest is the decoded form of a TypeDecideRequest payload. The
// slices are caller-owned scratch: ParseDecideRequest reuses their
// backing arrays across frames, so a steady-state connection loop
// decodes without allocating.
type DecideRequest struct {
	// Seq is echoed verbatim in the matching DecideResponse or Error.
	Seq uint32
	// DBHash is the database fingerprint the client's interned IDs were
	// resolved against; zero skips the check (the server then answers
	// against whatever snapshot is current).
	DBHash uint64
	// Scheme is the interned scheme ID (core.Scheme's numeric value).
	Scheme uint8
	// Model is the analytical model (1..3); 0 picks the scheme default.
	Model uint8
	// Flags is the FlagSlack* bit set (at most one may be set).
	Flags uint8
	// NCores is the co-phase vector width (must match the database).
	NCores uint8
	// Slack is the uniform QoS slack (valid when FlagSlackUniform).
	Slack float64
	// Slacks is the per-core slack vector (valid when FlagSlackPerCore).
	Slacks []float64
	// Apps holds Count() consecutive co-phase vectors, NCores entries
	// each.
	Apps []App
}

// Count returns the number of co-phase queries in the request.
func (r *DecideRequest) Count() int {
	if r.NCores == 0 {
		return 0
	}
	return len(r.Apps) / int(r.NCores)
}

// DecideResponse is the decoded form of a TypeDecideResponse payload.
// Decided and Settings are caller-owned scratch like DecideRequest's
// slices; Settings holds len(Decided) consecutive per-core vectors.
type DecideResponse struct {
	Seq      uint32
	NCores   uint8
	Decided  []bool
	Settings []Setting
}

// MetaBench is one interned benchmark in a Meta frame.
type MetaBench struct {
	ID     uint16
	Phases uint16
	Name   string
}

// Meta is the decoded form of a TypeMeta payload: what a client needs to
// build valid DecideRequests (and to detect hot-swaps by DBHash drift).
type Meta struct {
	DBHash  uint64
	NCores  uint8
	Benches []MetaBench
}

// Reader frames a connection's byte stream. Next returns payloads that
// alias the internal buffer: a payload is valid only until the following
// Next call (the connection loop's natural decode-then-respond rhythm).
type Reader struct {
	br *bufio.Reader
	// pending is the tail of the previous frame still to be discarded
	// from br — deferred so the previous payload stays valid until Next.
	pending int
	// big stages payloads larger than br's buffer (rare; never on the
	// steady decide path with the default sizes).
	big []byte
}

// NewReader frames r with a 64 KiB buffer — larger than any decide
// frame the stock clients send, so the steady path stays zero-copy.
func NewReader(r io.Reader) *Reader { return NewReaderSize(r, 64<<10) }

// NewReaderSize frames r with a caller-chosen buffer size (≥ HeaderSize).
func NewReaderSize(r io.Reader, size int) *Reader {
	if size < 512 {
		size = 512
	}
	return &Reader{br: bufio.NewReaderSize(r, size)}
}

// Next reads one frame header and returns the frame type and payload.
// The payload aliases the read buffer and is invalidated by the next
// call. Errors: io errors from the stream (io.EOF cleanly between
// frames, io.ErrUnexpectedEOF inside one), ErrVersion and ErrTooLarge
// (both fatal to the connection).
//
//qosrma:noalloc
func (r *Reader) Next() (typ byte, payload []byte, err error) {
	if r.pending > 0 {
		if _, err := r.br.Discard(r.pending); err != nil {
			return 0, nil, err
		}
		r.pending = 0
	}
	hdr, err := r.br.Peek(HeaderSize)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	ver := hdr[4]
	typ = hdr[5]
	if ver != Version {
		return typ, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, ver, Version)
	}
	if n > MaxPayload {
		return typ, nil, fmt.Errorf("%w: %d bytes declared", ErrTooLarge, n)
	}
	if _, err := r.br.Discard(HeaderSize); err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return typ, nil, nil
	}
	if n <= r.br.Size() {
		payload, err = r.br.Peek(n)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		r.pending = n
		return typ, payload, nil
	}
	// Oversized-for-the-buffer (still ≤ MaxPayload): stage a copy.
	if cap(r.big) < n {
		r.big = make([]byte, n)
	}
	r.big = r.big[:n]
	if _, err := io.ReadFull(r.br, r.big); err != nil {
		return 0, nil, err
	}
	return typ, r.big, nil
}

// AppendHeader appends a frame header for a payload of payloadLen bytes.
//
//qosrma:noalloc
func AppendHeader(dst []byte, typ byte, payloadLen int) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(payloadLen))
	hdr[4] = Version
	hdr[5] = typ
	return append(dst, hdr[:]...)
}

// AppendHello appends a complete Hello frame.
func AppendHello(dst []byte) []byte { return AppendHeader(dst, TypeHello, 0) }

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// decideRequestLen is the payload length of an encoded request.
func decideRequestLen(r *DecideRequest) int {
	n := 18 + 4*len(r.Apps)
	switch {
	case r.Flags&FlagSlackUniform != 0:
		n += 8
	case r.Flags&FlagSlackPerCore != 0:
		n += 8 * int(r.NCores)
	}
	return n
}

// AppendDecideRequest appends a complete DecideRequest frame (header
// included). Encoding into a reused dst performs no allocation.
//
//qosrma:noalloc
func AppendDecideRequest(dst []byte, r *DecideRequest) []byte {
	dst = AppendHeader(dst, TypeDecideRequest, decideRequestLen(r))
	dst = appendU32(dst, r.Seq)
	dst = appendU64(dst, r.DBHash)
	dst = append(dst, r.Scheme, r.Model, r.Flags, r.NCores)
	dst = appendU16(dst, uint16(r.Count()))
	switch {
	case r.Flags&FlagSlackUniform != 0:
		dst = appendU64(dst, floatBits(r.Slack))
	case r.Flags&FlagSlackPerCore != 0:
		for i := 0; i < int(r.NCores); i++ {
			dst = appendU64(dst, floatBits(r.Slacks[i]))
		}
	}
	for _, a := range r.Apps {
		dst = appendU16(dst, a.Bench)
		dst = appendU16(dst, a.Phase)
	}
	return dst
}

// ParseDecideRequest decodes a TypeDecideRequest payload into req,
// reusing req's slice capacity. All errors wrap ErrMalformed.
//
//qosrma:noalloc
func ParseDecideRequest(p []byte, req *DecideRequest) error {
	if len(p) < 18 {
		return fmt.Errorf("%w: request payload of %d bytes is shorter than the fixed 18-byte prefix", ErrMalformed, len(p))
	}
	req.Seq = binary.LittleEndian.Uint32(p)
	req.DBHash = binary.LittleEndian.Uint64(p[4:])
	req.Scheme = p[12]
	req.Model = p[13]
	req.Flags = p[14]
	req.NCores = p[15]
	count := int(binary.LittleEndian.Uint16(p[16:]))
	p = p[18:]

	if req.Flags&^uint8(FlagSlackUniform|FlagSlackPerCore) != 0 {
		return fmt.Errorf("%w: unknown flag bits %#x", ErrMalformed, req.Flags)
	}
	if req.Flags&FlagSlackUniform != 0 && req.Flags&FlagSlackPerCore != 0 {
		return fmt.Errorf("%w: both slack flags set", ErrMalformed)
	}
	n := int(req.NCores)
	if n == 0 || n > MaxCores {
		return fmt.Errorf("%w: ncores %d (want 1..%d)", ErrMalformed, n, MaxCores)
	}
	if count == 0 || count > MaxQueries {
		return fmt.Errorf("%w: query count %d (want 1..%d)", ErrMalformed, count, MaxQueries)
	}

	req.Slack = 0
	req.Slacks = req.Slacks[:0]
	switch {
	case req.Flags&FlagSlackUniform != 0:
		if len(p) < 8 {
			return fmt.Errorf("%w: truncated uniform slack", ErrMalformed)
		}
		req.Slack = floatFrom(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case req.Flags&FlagSlackPerCore != 0:
		if len(p) < 8*n {
			return fmt.Errorf("%w: truncated per-core slacks (%d bytes for %d cores)", ErrMalformed, len(p), n)
		}
		req.Slacks = growFloats(req.Slacks, n)
		for i := 0; i < n; i++ {
			req.Slacks[i] = floatFrom(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*n:]
	}

	want := 4 * count * n
	if len(p) != want {
		return fmt.Errorf("%w: co-phase section is %d bytes, want %d (%d queries × %d cores)", ErrMalformed, len(p), want, count, n)
	}
	req.Apps = growApps(req.Apps, count*n)
	for i := range req.Apps {
		req.Apps[i] = App{
			Bench: binary.LittleEndian.Uint16(p[4*i:]),
			Phase: binary.LittleEndian.Uint16(p[4*i+2:]),
		}
	}
	return nil
}

// AppendDecideResponse appends a complete DecideResponse frame.
//
//qosrma:noalloc
func AppendDecideResponse(dst []byte, r *DecideResponse) []byte {
	count := len(r.Decided)
	dst = AppendHeader(dst, TypeDecideResponse, 7+count*(1+3*int(r.NCores)))
	dst = appendU32(dst, r.Seq)
	dst = append(dst, r.NCores)
	dst = appendU16(dst, uint16(count))
	n := int(r.NCores)
	for i := 0; i < count; i++ {
		d := byte(0)
		if r.Decided[i] {
			d = 1
		}
		dst = append(dst, d)
		for _, st := range r.Settings[i*n : (i+1)*n] {
			dst = append(dst, st.Size, st.Freq, st.Ways)
		}
	}
	return dst
}

// ParseDecideResponse decodes a TypeDecideResponse payload into resp,
// reusing resp's slice capacity. All errors wrap ErrMalformed.
//
//qosrma:noalloc
func ParseDecideResponse(p []byte, resp *DecideResponse) error {
	if len(p) < 7 {
		return fmt.Errorf("%w: response payload of %d bytes is shorter than the fixed 7-byte prefix", ErrMalformed, len(p))
	}
	resp.Seq = binary.LittleEndian.Uint32(p)
	resp.NCores = p[4]
	count := int(binary.LittleEndian.Uint16(p[5:]))
	p = p[7:]
	n := int(resp.NCores)
	if n == 0 || n > MaxCores {
		return fmt.Errorf("%w: ncores %d (want 1..%d)", ErrMalformed, n, MaxCores)
	}
	if count > MaxQueries {
		return fmt.Errorf("%w: result count %d exceeds %d", ErrMalformed, count, MaxQueries)
	}
	if len(p) != count*(1+3*n) {
		return fmt.Errorf("%w: result section is %d bytes, want %d (%d results × %d cores)", ErrMalformed, len(p), count*(1+3*n), count, n)
	}
	resp.Decided = growBools(resp.Decided, count)
	resp.Settings = growSettings(resp.Settings, count*n)
	for i := 0; i < count; i++ {
		resp.Decided[i] = p[0] != 0
		p = p[1:]
		for c := 0; c < n; c++ {
			resp.Settings[i*n+c] = Setting{Size: p[0], Freq: p[1], Ways: p[2]}
			p = p[3:]
		}
	}
	return nil
}

// AppendError appends a complete Error frame.
func AppendError(dst []byte, seq uint32, code ErrCode, msg string) []byte {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	dst = AppendHeader(dst, TypeError, 7+len(msg))
	dst = appendU32(dst, seq)
	dst = append(dst, byte(code))
	dst = appendU16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// ParseError decodes a TypeError payload.
func ParseError(p []byte) (seq uint32, code ErrCode, msg string, err error) {
	if len(p) < 7 {
		return 0, 0, "", fmt.Errorf("%w: error payload of %d bytes is shorter than the fixed 7-byte prefix", ErrMalformed, len(p))
	}
	seq = binary.LittleEndian.Uint32(p)
	code = ErrCode(p[4])
	msgLen := int(binary.LittleEndian.Uint16(p[5:]))
	if len(p) != 7+msgLen {
		return 0, 0, "", fmt.Errorf("%w: error message is %d bytes, want %d", ErrMalformed, len(p)-7, msgLen)
	}
	return seq, code, string(p[7:]), nil
}

// AppendMeta appends a complete Meta frame.
func AppendMeta(dst []byte, m *Meta) []byte {
	n := 11
	for _, b := range m.Benches {
		n += 5 + len(b.Name)
	}
	dst = AppendHeader(dst, TypeMeta, n)
	dst = appendU64(dst, m.DBHash)
	dst = append(dst, m.NCores)
	dst = appendU16(dst, uint16(len(m.Benches)))
	for _, b := range m.Benches {
		name := b.Name
		if len(name) > 255 {
			name = name[:255]
		}
		dst = appendU16(dst, b.ID)
		dst = appendU16(dst, b.Phases)
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
	}
	return dst
}

// ParseMeta decodes a TypeMeta payload into m (benchmark names are
// copied out of the frame buffer — Meta outlives the read buffer).
func ParseMeta(p []byte, m *Meta) error {
	if len(p) < 11 {
		return fmt.Errorf("%w: meta payload of %d bytes is shorter than the fixed 11-byte prefix", ErrMalformed, len(p))
	}
	m.DBHash = binary.LittleEndian.Uint64(p)
	m.NCores = p[8]
	nbench := int(binary.LittleEndian.Uint16(p[9:]))
	p = p[11:]
	m.Benches = m.Benches[:0]
	for i := 0; i < nbench; i++ {
		if len(p) < 5 {
			return fmt.Errorf("%w: truncated benchmark entry %d", ErrMalformed, i)
		}
		b := MetaBench{
			ID:     binary.LittleEndian.Uint16(p),
			Phases: binary.LittleEndian.Uint16(p[2:]),
		}
		nameLen := int(p[4])
		p = p[5:]
		if len(p) < nameLen {
			return fmt.Errorf("%w: truncated benchmark name %d", ErrMalformed, i)
		}
		b.Name = string(p[:nameLen])
		p = p[nameLen:]
		m.Benches = append(m.Benches, b)
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after benchmark table", ErrMalformed, len(p))
	}
	return nil
}

// growApps returns s resized to n entries, reusing capacity.
//
//qosrma:noalloc
func growApps(s []App, n int) []App {
	if cap(s) < n {
		return make([]App, n)
	}
	return s[:n]
}

//qosrma:noalloc
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

//qosrma:noalloc
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

//qosrma:noalloc
func growSettings(s []Setting, n int) []Setting {
	if cap(s) < n {
		return make([]Setting, n)
	}
	return s[:n]
}
