package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// sampleRequest builds a representative request: 3 queries × 4 cores,
// per-core slacks.
func sampleRequest() *DecideRequest {
	return &DecideRequest{
		Seq:    7,
		DBHash: 0xdeadbeefcafe,
		Scheme: 3,
		Model:  2,
		Flags:  FlagSlackPerCore,
		NCores: 4,
		Slacks: []float64{0, 0.1, 0.2, 0.3},
		Apps: []App{
			{0, 0}, {1, 2}, {2, 1}, {3, 0},
			{3, 3}, {2, 2}, {1, 1}, {0, 0},
			{5, 0}, {5, 1}, {5, 2}, {5, 3},
		},
	}
}

// TestDecideRequestRoundTrip: encode → frame → decode reproduces the
// request exactly, for every slack mode.
func TestDecideRequestRoundTrip(t *testing.T) {
	cases := map[string]*DecideRequest{
		"per-core-slacks": sampleRequest(),
		"uniform-slack": {
			Seq: 1, Scheme: 0, Model: 0, Flags: FlagSlackUniform, Slack: 0.25,
			NCores: 2, Apps: []App{{9, 9}, {8, 8}},
		},
		"no-slack": {
			Seq: 0xffffffff, DBHash: 1, Scheme: 5, Model: 3,
			NCores: 1, Apps: []App{{65535, 65535}},
		},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			frame := AppendDecideRequest(nil, in)
			r := NewReader(bytes.NewReader(frame))
			typ, payload, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if typ != TypeDecideRequest {
				t.Fatalf("frame type %d, want %d", typ, TypeDecideRequest)
			}
			var out DecideRequest
			if err := ParseDecideRequest(payload, &out); err != nil {
				t.Fatal(err)
			}
			if out.Seq != in.Seq || out.DBHash != in.DBHash || out.Scheme != in.Scheme ||
				out.Model != in.Model || out.Flags != in.Flags || out.NCores != in.NCores ||
				out.Slack != in.Slack {
				t.Fatalf("scalar fields: got %+v want %+v", out, in)
			}
			if in.Flags&FlagSlackPerCore != 0 {
				if len(out.Slacks) != len(in.Slacks) {
					t.Fatalf("slacks %v want %v", out.Slacks, in.Slacks)
				}
				for i := range in.Slacks {
					if out.Slacks[i] != in.Slacks[i] {
						t.Fatalf("slacks %v want %v", out.Slacks, in.Slacks)
					}
				}
			}
			if len(out.Apps) != len(in.Apps) {
				t.Fatalf("apps %v want %v", out.Apps, in.Apps)
			}
			for i := range in.Apps {
				if out.Apps[i] != in.Apps[i] {
					t.Fatalf("apps %v want %v", out.Apps, in.Apps)
				}
			}
			if out.Count() != in.Count() {
				t.Fatalf("count %d want %d", out.Count(), in.Count())
			}
		})
	}
}

// TestDecideResponseRoundTrip: the response codec is exact too.
func TestDecideResponseRoundTrip(t *testing.T) {
	in := &DecideResponse{
		Seq:     42,
		NCores:  4,
		Decided: []bool{true, false},
		Settings: []Setting{
			{2, 3, 9}, {1, 0, 2}, {0, 1, 3}, {2, 3, 2},
			{1, 1, 4}, {1, 1, 4}, {1, 1, 4}, {1, 1, 4},
		},
	}
	frame := AppendDecideResponse(nil, in)
	r := NewReader(bytes.NewReader(frame))
	typ, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeDecideResponse {
		t.Fatalf("frame type %d, want %d", typ, TypeDecideResponse)
	}
	var out DecideResponse
	if err := ParseDecideResponse(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.NCores != in.NCores || len(out.Decided) != len(in.Decided) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	for i := range in.Decided {
		if out.Decided[i] != in.Decided[i] {
			t.Fatalf("decided %v want %v", out.Decided, in.Decided)
		}
	}
	for i := range in.Settings {
		if out.Settings[i] != in.Settings[i] {
			t.Fatalf("settings %v want %v", out.Settings, in.Settings)
		}
	}
}

// TestErrorRoundTrip and TestMetaRoundTrip cover the control frames.
func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 9, ErrCodeStaleDB, "database swapped")
	r := NewReader(bytes.NewReader(frame))
	typ, payload, err := r.Next()
	if err != nil || typ != TypeError {
		t.Fatalf("typ %d err %v", typ, err)
	}
	seq, code, msg, err := ParseError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || code != ErrCodeStaleDB || msg != "database swapped" {
		t.Fatalf("got seq=%d code=%d msg=%q", seq, code, msg)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	in := &Meta{
		DBHash: 123456789,
		NCores: 8,
		Benches: []MetaBench{
			{ID: 0, Phases: 4, Name: "mcf"},
			{ID: 1, Phases: 7, Name: "astar"},
		},
	}
	frame := AppendMeta(nil, in)
	r := NewReader(bytes.NewReader(frame))
	typ, payload, err := r.Next()
	if err != nil || typ != TypeMeta {
		t.Fatalf("typ %d err %v", typ, err)
	}
	var out Meta
	if err := ParseMeta(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.DBHash != in.DBHash || out.NCores != in.NCores || len(out.Benches) != len(in.Benches) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	for i := range in.Benches {
		if out.Benches[i] != in.Benches[i] {
			t.Fatalf("benches %+v want %+v", out.Benches, in.Benches)
		}
	}
}

// TestReaderStream: several frames back to back through one Reader, with
// payloads valid until the following Next — the connection loop's
// contract.
func TestReaderStream(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream)
	stream = AppendDecideRequest(stream, sampleRequest())
	stream = AppendError(stream, 1, ErrCodeMalformed, "x")

	r := NewReader(bytes.NewReader(stream))
	typ, payload, err := r.Next()
	if err != nil || typ != TypeHello || len(payload) != 0 {
		t.Fatalf("hello: typ=%d len=%d err=%v", typ, len(payload), err)
	}
	typ, payload, err = r.Next()
	if err != nil || typ != TypeDecideRequest {
		t.Fatalf("request: typ=%d err=%v", typ, err)
	}
	var req DecideRequest
	if err := ParseDecideRequest(payload, &req); err != nil {
		t.Fatal(err)
	}
	typ, _, err = r.Next()
	if err != nil || typ != TypeError {
		t.Fatalf("error frame: typ=%d err=%v", typ, err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// TestReaderRejectsBadFrames: version and size violations surface as the
// fatal sentinel errors, truncation as ErrUnexpectedEOF, and a payload
// larger than the reader's buffer still arrives intact (copy path).
func TestReaderRejectsBadFrames(t *testing.T) {
	good := AppendDecideRequest(nil, sampleRequest())

	bad := append([]byte(nil), good...)
	bad[4] = 99 // version byte
	if _, _, err := NewReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	huge := AppendHeader(nil, TypeDecideRequest, MaxPayload+1)
	if _, _, err := NewReader(bytes.NewReader(huge)).Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: got %v", err)
	}

	if _, _, err := NewReader(bytes.NewReader(good[:3])).Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: got %v", err)
	}
	if _, _, err := NewReader(bytes.NewReader(good[:len(good)-1])).Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: got %v", err)
	}

	// Copy path: a frame bigger than the reader buffer parses identically.
	big := sampleRequest()
	big.Apps = make([]App, 300*4) // 4800-byte co-phase section > 512
	for i := range big.Apps {
		big.Apps[i] = App{Bench: uint16(i % 7), Phase: uint16(i % 3)}
	}
	frame := AppendDecideRequest(nil, big)
	r := NewReaderSize(bytes.NewReader(frame), 512)
	typ, payload, err := r.Next()
	if err != nil || typ != TypeDecideRequest {
		t.Fatalf("big frame: typ=%d err=%v", typ, err)
	}
	var out DecideRequest
	if err := ParseDecideRequest(payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Apps) != len(big.Apps) || out.Apps[len(out.Apps)-1] != big.Apps[len(big.Apps)-1] {
		t.Fatal("big frame did not round-trip")
	}
}

// TestParseRejectsMalformed: every validation failure answers a
// recoverable ErrMalformed (never a panic) — the property the connection
// loop's keep-alive error handling depends on.
func TestParseRejectsMalformed(t *testing.T) {
	base := sampleRequest()
	frame := AppendDecideRequest(nil, base)
	payload := frame[HeaderSize:]

	mutations := map[string]func() []byte{
		"empty":        func() []byte { return nil },
		"short-prefix": func() []byte { return payload[:10] },
		"both-slack-flags": func() []byte {
			p := append([]byte(nil), payload...)
			p[14] = FlagSlackUniform | FlagSlackPerCore
			return p
		},
		"unknown-flag": func() []byte {
			p := append([]byte(nil), payload...)
			p[14] = 0x80
			return p
		},
		"zero-cores": func() []byte {
			p := append([]byte(nil), payload...)
			p[15] = 0
			return p
		},
		"huge-cores": func() []byte {
			p := append([]byte(nil), payload...)
			p[15] = 255
			return p
		},
		"zero-count": func() []byte {
			p := append([]byte(nil), payload...)
			p[16], p[17] = 0, 0
			return p
		},
		"truncated-apps": func() []byte { return payload[:len(payload)-3] },
		"trailing-bytes": func() []byte { return append(append([]byte(nil), payload...), 0) },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			var req DecideRequest
			if err := ParseDecideRequest(mut(), &req); !errors.Is(err, ErrMalformed) {
				t.Fatalf("want ErrMalformed, got %v", err)
			}
		})
	}

	var resp DecideResponse
	if err := ParseDecideResponse([]byte{1, 2}, &resp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short response: %v", err)
	}
	var m Meta
	if err := ParseMeta([]byte{1}, &m); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short meta: %v", err)
	}
	if _, _, _, err := ParseError([]byte{1}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short error: %v", err)
	}
}

// TestDecodeZeroAlloc pins the headline property: decoding a steady
// stream of decide frames — Reader framing plus payload parse into
// reused scratch — allocates nothing per frame. This is the wire half of
// the service's allocation-free hot path.
func TestDecodeZeroAlloc(t *testing.T) {
	req := sampleRequest()
	frame := AppendDecideRequest(nil, req)
	// One long stream of identical frames; the reader is primed outside
	// the measured region so buffer growth is excluded.
	const frames = 64
	stream := bytes.Repeat(frame, frames)
	var scratch DecideRequest
	src := bytes.NewReader(stream)
	r := NewReader(src)

	i := 0
	allocs := testing.AllocsPerRun(frames-1, func() {
		typ, payload, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if typ != TypeDecideRequest {
			t.Fatalf("typ %d", typ)
		}
		if err := ParseDecideRequest(payload, &scratch); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire decode allocates %.1f times per frame, want 0", allocs)
	}
}

// TestEncodeZeroAlloc: the response encoder into a reused buffer is
// allocation-free too.
func TestEncodeZeroAlloc(t *testing.T) {
	resp := &DecideResponse{
		Seq: 1, NCores: 4,
		Decided:  make([]bool, 256),
		Settings: make([]Setting, 256*4),
	}
	buf := AppendDecideResponse(nil, resp) // prime capacity
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendDecideResponse(buf[:0], resp)
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire encode allocates %.1f times per frame, want 0", allocs)
	}
}

// TestGrowHelpersZeroAlloc pins the grow-on-demand scratch helpers at
// zero allocations once capacity has been reached: growApps, growFloats,
// growBools and growSettings only allocate on the growth path their
// cap() guard takes.
func TestGrowHelpersZeroAlloc(t *testing.T) {
	apps := growApps(nil, 8)
	floats := growFloats(nil, 8)
	bools := growBools(nil, 8)
	settings := growSettings(nil, 8)
	allocs := testing.AllocsPerRun(100, func() {
		apps = growApps(apps[:0], 8)
		floats = growFloats(floats[:0], 8)
		bools = growBools(bools[:0], 8)
		settings = growSettings(settings[:0], 8)
	})
	if allocs != 0 {
		t.Fatalf("grown scratch reuse allocates %.1f times, want 0", allocs)
	}
}
