package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode extends the service's fuzz wall to the binary codec: an
// arbitrary byte stream fed through the frame reader and every payload
// parser must never panic, and every failure must be one of the typed
// outcomes the connection loop knows how to survive (io errors,
// ErrVersion, ErrTooLarge, ErrMalformed) — malformed, truncated and
// oversized frames are rejected, never crashes. The seed corpus covers
// every frame type, both fatal header classes, truncations and a few
// deliberately inconsistent payloads.
func FuzzWireDecode(f *testing.F) {
	// Well-formed frames of every type.
	f.Add(AppendHello(nil))
	f.Add(AppendDecideRequest(nil, sampleRequest()))
	f.Add(AppendDecideRequest(nil, &DecideRequest{
		Seq: 2, Flags: FlagSlackUniform, Slack: 0.2, NCores: 4,
		Apps: []App{{1, 0}, {2, 1}, {3, 0}, {4, 2}},
	}))
	f.Add(AppendDecideResponse(nil, &DecideResponse{
		Seq: 3, NCores: 2, Decided: []bool{true},
		Settings: []Setting{{1, 2, 3}, {0, 0, 9}},
	}))
	f.Add(AppendError(nil, 1, ErrCodeMalformed, "bad"))
	f.Add(AppendMeta(nil, &Meta{DBHash: 7, NCores: 4,
		Benches: []MetaBench{{0, 3, "mcf"}}}))
	// Several frames back to back.
	f.Add(append(AppendHello(nil), AppendDecideRequest(nil, sampleRequest())...))
	// Fatal headers: wrong version, oversized declaration.
	bad := AppendHello(nil)
	bad[4] = 2
	f.Add(bad)
	f.Add(AppendHeader(nil, TypeDecideRequest, MaxPayload+1))
	// Truncations and garbage.
	good := AppendDecideRequest(nil, sampleRequest())
	f.Add(good[:HeaderSize+5])
	f.Add(good[:len(good)-1])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0}, 64))
	// Inconsistent payloads inside a well-formed frame.
	inconsistent := append([]byte(nil), good...)
	inconsistent[HeaderSize+15] = 0 // ncores = 0
	f.Add(inconsistent)

	f.Fuzz(func(t *testing.T, stream []byte) {
		var (
			req  DecideRequest
			resp DecideResponse
			m    Meta
		)
		r := NewReaderSize(bytes.NewReader(stream), 512)
		for frames := 0; frames < 64; frames++ {
			typ, payload, err := r.Next()
			if err != nil {
				if errors.Is(err, ErrVersion) || errors.Is(err, ErrTooLarge) ||
					err == io.EOF || err == io.ErrUnexpectedEOF {
					return // the loop closes the connection: fine
				}
				t.Fatalf("unexpected reader error class: %v", err)
			}
			// Parse the payload as every type, not just the declared one:
			// the parsers must be total functions of arbitrary bytes.
			for _, parse := range []func([]byte) error{
				func(p []byte) error { return ParseDecideRequest(p, &req) },
				func(p []byte) error { return ParseDecideResponse(p, &resp) },
				func(p []byte) error { return ParseMeta(p, &m) },
				func(p []byte) error { _, _, _, err := ParseError(p); return err },
			} {
				if err := parse(payload); err != nil && !errors.Is(err, ErrMalformed) {
					t.Fatalf("parse error outside ErrMalformed: %v (type %d)", err, typ)
				}
			}
			// Whatever parsed must re-encode without panicking.
			if err := ParseDecideRequest(payload, &req); err == nil {
				AppendDecideRequest(nil, &req)
			}
			if err := ParseDecideResponse(payload, &resp); err == nil {
				AppendDecideResponse(nil, &resp)
			}
		}
	})
}
