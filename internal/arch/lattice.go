package arch

import "fmt"

// Lattice is the canonical dense index over the (core size × DVFS level ×
// LLC ways) setting space of one system configuration. It maps every
// Setting to a unique int in [0, Len()) and back, so that per-setting data
// (the compiled simulation database, candidate evaluations during local
// optimization) can live in flat slices indexed by plain arithmetic instead
// of hash maps or repeated model evaluation.
//
// The way axis has Assoc+1 entries (0..Assoc inclusive) to match the miss
// profiles, and Index clamps out-of-range way counts the same way the
// database's performance evaluation always has. Size and frequency indices
// must be valid; Index panics otherwise, because arithmetic on a bad index
// would silently alias a different setting's cell.
type Lattice struct {
	NumSizes int // selectable core sizes
	NumFreqs int // DVFS operating points
	NumWays  int // way entries per (size, freq): 0..NumWays-1
}

// Lattice returns the setting lattice of this system configuration.
func (s SystemConfig) Lattice() Lattice {
	return Lattice{
		NumSizes: NumCoreSizes,
		NumFreqs: len(s.DVFS),
		NumWays:  s.LLC.Assoc + 1,
	}
}

// Len returns the number of lattice points.
func (l Lattice) Len() int { return l.NumSizes * l.NumFreqs * l.NumWays }

// ClampWays maps an arbitrary way count onto the lattice's way axis.
func (l Lattice) ClampWays(w int) int {
	if w < 0 {
		return 0
	}
	if w >= l.NumWays {
		return l.NumWays - 1
	}
	return w
}

// Index returns the dense index of the setting. Ways are clamped onto the
// axis; an out-of-range size or frequency index panics.
func (l Lattice) Index(s Setting) int {
	if int(s.Size) < 0 || int(s.Size) >= l.NumSizes || s.FreqIdx < 0 || s.FreqIdx >= l.NumFreqs {
		panic(fmt.Sprintf("arch: setting %v outside lattice %+v", s, l))
	}
	return (int(s.Size)*l.NumFreqs+s.FreqIdx)*l.NumWays + l.ClampWays(s.Ways)
}

// Setting is the inverse of Index: it reconstructs the setting at a dense
// index. Index(Setting(i)) == i for every i in [0, Len()).
func (l Lattice) Setting(i int) Setting {
	if i < 0 || i >= l.Len() {
		panic(fmt.Sprintf("arch: lattice index %d outside [0, %d)", i, l.Len()))
	}
	w := i % l.NumWays
	i /= l.NumWays
	return Setting{
		Size:    CoreSize(i / l.NumFreqs),
		FreqIdx: i % l.NumFreqs,
		Ways:    w,
	}
}
