package arch

import "testing"

func TestLatticeIndexSettingInverse(t *testing.T) {
	sys := DefaultSystemConfig(4)
	lat := sys.Lattice()
	if got, want := lat.Len(), NumCoreSizes*len(sys.DVFS)*(sys.LLC.Assoc+1); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	seen := make(map[Setting]bool, lat.Len())
	for i := 0; i < lat.Len(); i++ {
		s := lat.Setting(i)
		if seen[s] {
			t.Fatalf("index %d: duplicate setting %v", i, s)
		}
		seen[s] = true
		if back := lat.Index(s); back != i {
			t.Fatalf("Index(Setting(%d)) = %d", i, back)
		}
	}
}

func TestLatticeIndexClampsWays(t *testing.T) {
	sys := DefaultSystemConfig(2)
	lat := sys.Lattice()
	s := sys.BaselineSetting()
	s.Ways = -5
	lo := lat.Index(s)
	s.Ways = 0
	if lat.Index(s) != lo {
		t.Fatal("negative ways not clamped to 0")
	}
	s.Ways = sys.LLC.Assoc + 99
	hi := lat.Index(s)
	s.Ways = sys.LLC.Assoc
	if lat.Index(s) != hi {
		t.Fatal("excess ways not clamped to assoc")
	}
}

func TestLatticeIndexPanicsOutsideAxes(t *testing.T) {
	lat := DefaultSystemConfig(2).Lattice()
	for _, s := range []Setting{
		{Size: CoreSize(-1), FreqIdx: 0, Ways: 1},
		{Size: CoreSize(NumCoreSizes), FreqIdx: 0, Ways: 1},
		{Size: SizeMedium, FreqIdx: -1, Ways: 1},
		{Size: SizeMedium, FreqIdx: lat.NumFreqs, Ways: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", s)
				}
			}()
			lat.Index(s)
		}()
	}
	for _, i := range []int{-1, lat.Len()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Setting(%d) did not panic", i)
				}
			}()
			lat.Setting(i)
		}()
	}
}
