package arch

import (
	"testing"
	"testing/quick"
)

func TestDefaultDVFSTableShape(t *testing.T) {
	tab := DefaultDVFSTable()
	if len(tab) != 25 {
		t.Fatalf("table length = %d, want 25", len(tab))
	}
	if tab[0].FreqGHz != 0.8 || tab[len(tab)-1].FreqGHz != 3.2 {
		t.Fatalf("frequency endpoints wrong: %v .. %v", tab[0].FreqGHz, tab[len(tab)-1].FreqGHz)
	}
	for i := 1; i < len(tab); i++ {
		if tab[i].FreqGHz <= tab[i-1].FreqGHz {
			t.Fatalf("frequencies not increasing at %d", i)
		}
		if tab[i].VoltV <= tab[i-1].VoltV {
			t.Fatalf("voltages not increasing at %d", i)
		}
	}
}

func TestDVFSIndex(t *testing.T) {
	tab := DefaultDVFSTable()
	if i := tab.Index(2.0); i < 0 || tab[i].FreqGHz != 2.0 {
		t.Fatalf("Index(2.0) = %d", i)
	}
	if i := tab.Index(2.05); i != -1 {
		t.Fatalf("Index(2.05) = %d, want -1", i)
	}
	if i := tab.ClosestIndex(2.05); tab[i].FreqGHz != 2.0 {
		t.Fatalf("ClosestIndex(2.05) -> %v GHz", tab[i].FreqGHz)
	}
	if i := tab.ClosestIndex(99); tab[i].FreqGHz != 3.2 {
		t.Fatalf("ClosestIndex(99) -> %v GHz", tab[i].FreqGHz)
	}
}

func TestDefaultSystemConfigValid(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		cfg := DefaultSystemConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("DefaultSystemConfig(%d) invalid: %v", n, err)
		}
		if cfg.BaselineWays() != cfg.LLC.Assoc/n {
			t.Fatalf("baseline ways inconsistent for %d cores", n)
		}
		if cfg.BaselineWays() < 2 {
			t.Fatalf("baseline ways too small for %d cores: %d", n, cfg.BaselineWays())
		}
	}
}

func TestBaselineSetting(t *testing.T) {
	cfg := DefaultSystemConfig(4)
	bs := cfg.BaselineSetting()
	if bs.Size != SizeMedium {
		t.Fatalf("baseline size = %v", bs.Size)
	}
	if cfg.DVFS[bs.FreqIdx].FreqGHz != 2.0 {
		t.Fatalf("baseline frequency = %v", cfg.DVFS[bs.FreqIdx].FreqGHz)
	}
	if bs.Ways != 4 {
		t.Fatalf("baseline ways = %d, want 4", bs.Ways)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	base := DefaultSystemConfig(4)

	cases := []struct {
		name   string
		mutate func(*SystemConfig)
	}{
		{"zero cores", func(c *SystemConfig) { c.NumCores = 0 }},
		{"empty dvfs", func(c *SystemConfig) { c.DVFS = nil }},
		{"bad baseline idx", func(c *SystemConfig) { c.BaselineFreqIdx = 99 }},
		{"assoc < cores", func(c *SystemConfig) { c.LLC.Assoc = 2 }},
		{"assoc not divisible", func(c *SystemConfig) { c.LLC.Assoc = 18 }},
		{"zero sets", func(c *SystemConfig) { c.LLC.Sets = 0 }},
		{"bad sampling", func(c *SystemConfig) { c.LLC.SampleIn = 7 }},
		{"zero latency", func(c *SystemConfig) { c.Mem.LatencyNs = 0 }},
		{"non-monotone dvfs", func(c *SystemConfig) {
			d := append(DVFSTable(nil), c.DVFS...)
			d[3].FreqGHz = d[2].FreqGHz
			c.DVFS = d
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestCoreParamsOrdering(t *testing.T) {
	p := DefaultCoreParams()
	if !(p[SizeSmall].ROB < p[SizeMedium].ROB && p[SizeMedium].ROB < p[SizeLarge].ROB) {
		t.Fatal("ROB sizes not increasing with core size")
	}
	if !(p[SizeSmall].MSHRs <= p[SizeMedium].MSHRs && p[SizeMedium].MSHRs < p[SizeLarge].MSHRs) {
		t.Fatal("MSHR counts not non-decreasing with core size")
	}
	if !(p[SizeSmall].CapFactor < p[SizeMedium].CapFactor && p[SizeMedium].CapFactor < p[SizeLarge].CapFactor) {
		t.Fatal("capacitance factors not increasing with core size")
	}
	if p[SizeMedium].CapFactor != 1.0 || p[SizeMedium].LeakFactor != 1.0 {
		t.Fatal("medium core must be the normalization point")
	}
}

func TestCacheSizeBytes(t *testing.T) {
	c := CacheParams{Sets: 1024, Assoc: 16, LineB: 64}
	if got := c.SizeBytes(); got != 1024*16*64 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestSettingString(t *testing.T) {
	s := Setting{Size: SizeLarge, FreqIdx: 3, Ways: 5}
	if s.String() != "large@f3/5w" {
		t.Fatalf("String = %q", s.String())
	}
	if CoreSize(9).String() == "" {
		t.Fatal("unknown core size should still render")
	}
}

func TestQuickClosestIndexReturnsNearest(t *testing.T) {
	tab := DefaultDVFSTable()
	f := func(raw uint16) bool {
		freq := float64(raw) / 65535 * 5 // 0..5 GHz
		i := tab.ClosestIndex(freq)
		d := tab[i].FreqGHz - freq
		if d < 0 {
			d = -d
		}
		for _, op := range tab {
			dd := op.FreqGHz - freq
			if dd < 0 {
				dd = -dd
			}
			if dd < d-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
