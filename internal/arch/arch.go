// Package arch describes the modeled multi-core hardware: reconfigurable
// out-of-order cores, the DVFS operating-point table, the shared partitioned
// last-level cache (LLC), the memory system, and the cost of switching
// between resource settings.
//
// The parameter values follow the system evaluated in the paper: a multi-core
// processor with per-core DVFS, a way-partitioned shared LLC with an
// auxiliary tag directory (ATD), and (for the Paper II scheme) cores whose
// micro-architectural resources can be partially deactivated at run time.
package arch

import "fmt"

// CoreSize indexes the selectable micro-architecture configurations of a
// reconfigurable core (Paper II). Small deactivates portions of the ROB,
// issue queue and MSHR file to save static and dynamic energy; Large
// activates all of them to expose more ILP/MLP.
type CoreSize int

const (
	// SizeSmall is the most throttled core configuration.
	SizeSmall CoreSize = iota
	// SizeMedium is the baseline core configuration.
	SizeMedium
	// SizeLarge is the fully activated core configuration.
	SizeLarge
	// NumCoreSizes is the number of selectable core configurations.
	NumCoreSizes = 3
)

// String returns a short human-readable name for the core size.
func (c CoreSize) String() string {
	switch c {
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	default:
		return fmt.Sprintf("CoreSize(%d)", int(c))
	}
}

// CoreParams holds the micro-architectural parameters of one core size.
type CoreParams struct {
	Size        CoreSize
	ROB         int     // reorder-buffer entries
	Width       int     // dispatch/issue width (instructions per cycle)
	MSHRs       int     // outstanding L2 misses supported (bounds MLP)
	CapFactor   float64 // relative switching capacitance vs. medium
	LeakFactor  float64 // relative leakage current vs. medium
	BranchPenal int     // branch misprediction penalty in cycles
}

// DefaultCoreParams returns the three core configurations used throughout
// the evaluation. The medium configuration is the baseline.
func DefaultCoreParams() [NumCoreSizes]CoreParams {
	return [NumCoreSizes]CoreParams{
		SizeSmall:  {Size: SizeSmall, ROB: 64, Width: 2, MSHRs: 8, CapFactor: 0.72, LeakFactor: 0.68, BranchPenal: 12},
		SizeMedium: {Size: SizeMedium, ROB: 128, Width: 4, MSHRs: 8, CapFactor: 1.00, LeakFactor: 1.00, BranchPenal: 14},
		SizeLarge:  {Size: SizeLarge, ROB: 256, Width: 6, MSHRs: 16, CapFactor: 1.45, LeakFactor: 1.55, BranchPenal: 16},
	}
}

// OperatingPoint is one voltage-frequency pair in the DVFS table.
type OperatingPoint struct {
	FreqGHz float64 // core clock frequency
	VoltV   float64 // supply voltage
}

// DVFSTable is the ordered list of selectable operating points, lowest
// frequency first.
type DVFSTable []OperatingPoint

// DefaultDVFSTable returns operating points from 0.8 GHz to 3.2 GHz in
// 0.2 GHz steps with a near-linear V(f) relation, resembling published
// voltage-frequency curves for out-of-order server cores.
func DefaultDVFSTable() DVFSTable {
	const (
		fLo, fHi = 0.8, 3.2
		vLo, vHi = 0.65, 1.25
		steps    = 25
	)
	t := make(DVFSTable, steps)
	for i := range t {
		f := fLo + float64(i)*(fHi-fLo)/float64(steps-1)
		v := vLo + (f-fLo)*(vHi-vLo)/(fHi-fLo)
		t[i] = OperatingPoint{FreqGHz: f, VoltV: v}
	}
	return t
}

// Index returns the position of the operating point with the given frequency,
// or -1 if no point matches within tolerance.
func (t DVFSTable) Index(freqGHz float64) int {
	for i, op := range t {
		if diff := op.FreqGHz - freqGHz; diff < 1e-9 && diff > -1e-9 {
			return i
		}
	}
	return -1
}

// ClosestIndex returns the index of the operating point nearest freqGHz.
func (t DVFSTable) ClosestIndex(freqGHz float64) int {
	best, bestDiff := 0, -1.0
	for i, op := range t {
		d := op.FreqGHz - freqGHz
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// CacheParams describes the shared LLC geometry.
type CacheParams struct {
	Sets     int // number of sets
	Assoc    int // associativity == number of allocatable ways
	LineB    int // line size in bytes
	SampleIn int // ATD set-sampling factor: one in SampleIn sets is sampled
}

// SizeBytes returns the total LLC capacity.
func (c CacheParams) SizeBytes() int { return c.Sets * c.Assoc * c.LineB }

// MemParams describes the off-chip memory system. Bandwidth is assumed to be
// partitioned equally among cores (see the thesis, Chapter 2 limitations).
type MemParams struct {
	LatencyNs    float64 // average access latency for a leading miss
	EnergyPerAcc float64 // energy per 64B access in joules
	BackgroundW  float64 // background (static/refresh) power in watts
	// PerCoreGBps is each core's share of memory bandwidth (the thesis
	// assumes the controller partitions bandwidth equally among cores).
	// When positive, the ground-truth model inflates the effective memory
	// latency as a core's demand approaches its share; zero disables the
	// bandwidth model.
	PerCoreGBps float64
}

// SwitchCosts models the overhead of changing resource allocations. Time
// overheads stall the affected core; energy overheads are charged to the
// system total.
type SwitchCosts struct {
	DVFSTransNs  float64 // per V/f change: PLL relock + voltage ramp
	CoreResizeNs float64 // per core-size change: drain + power gate
	WayMigrateNs float64 // per LLC way gained: warm-up stall equivalent
	WayMigrateJ  float64 // per LLC way gained: extra miss traffic energy
	DVFSTransJ   float64 // per V/f change
	CoreResizeJ  float64 // per core-size change
}

// SystemConfig is the complete description of the simulated machine.
type SystemConfig struct {
	NumCores int
	Cores    [NumCoreSizes]CoreParams
	DVFS     DVFSTable
	LLC      CacheParams
	Mem      MemParams
	Switch   SwitchCosts

	// Baseline resource allocation: the setting that defines the QoS target.
	BaselineFreqIdx int      // index into DVFS
	BaselineSize    CoreSize // baseline core configuration
	// Uncore/static system power charged regardless of settings (per core
	// share), in watts. Keeps savings percentages realistic: DVFS cannot
	// scale board-level power away.
	UncoreWPerCore float64
}

// DefaultSystemConfig returns the evaluated machine for the given core count.
// The LLC scales with the core count (4 ways and 1 MiB per core) so that the
// baseline equal partition always grants 4 ways per core.
func DefaultSystemConfig(numCores int) SystemConfig {
	if numCores < 1 {
		panic("arch: system needs at least one core")
	}
	assoc := 4 * numCores
	if assoc < 8 {
		assoc = 8
	}
	dvfs := DefaultDVFSTable()
	return SystemConfig{
		NumCores: numCores,
		Cores:    DefaultCoreParams(),
		DVFS:     dvfs,
		LLC: CacheParams{
			Sets:     1024,
			Assoc:    assoc,
			LineB:    64,
			SampleIn: 32,
		},
		Mem: MemParams{
			LatencyNs:    110,
			EnergyPerAcc: 35e-9,
			BackgroundW:  0.05 * float64(numCores),
		},
		Switch: SwitchCosts{
			DVFSTransNs:  20000, // 20 us
			CoreResizeNs: 5000,  // 5 us
			WayMigrateNs: 2000,  // 2 us per way gained
			WayMigrateJ:  4e-6,
			DVFSTransJ:   8e-6,
			CoreResizeJ:  3e-6,
		},
		BaselineFreqIdx: dvfs.ClosestIndex(2.0),
		BaselineSize:    SizeMedium,
		UncoreWPerCore:  0.05,
	}
}

// BaselineWays returns the equal-partition way allocation per core.
func (s SystemConfig) BaselineWays() int { return s.LLC.Assoc / s.NumCores }

// BaselineFreqGHz returns the baseline operating frequency.
func (s SystemConfig) BaselineFreqGHz() float64 {
	return s.DVFS[s.BaselineFreqIdx].FreqGHz
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated invariant.
func (s SystemConfig) Validate() error {
	switch {
	case s.NumCores < 1:
		return fmt.Errorf("arch: NumCores = %d, need >= 1", s.NumCores)
	case len(s.DVFS) == 0:
		return fmt.Errorf("arch: empty DVFS table")
	case s.BaselineFreqIdx < 0 || s.BaselineFreqIdx >= len(s.DVFS):
		return fmt.Errorf("arch: baseline frequency index %d out of range", s.BaselineFreqIdx)
	case s.LLC.Assoc < s.NumCores:
		return fmt.Errorf("arch: LLC associativity %d < cores %d (each core needs >= 1 way)", s.LLC.Assoc, s.NumCores)
	case s.LLC.Assoc%s.NumCores != 0:
		return fmt.Errorf("arch: LLC associativity %d not divisible by cores %d (baseline equal partition impossible)", s.LLC.Assoc, s.NumCores)
	case s.LLC.Sets <= 0 || s.LLC.LineB <= 0:
		return fmt.Errorf("arch: invalid LLC geometry %+v", s.LLC)
	case s.LLC.SampleIn <= 0 || s.LLC.Sets%s.LLC.SampleIn != 0:
		return fmt.Errorf("arch: ATD sampling factor %d must divide sets %d", s.LLC.SampleIn, s.LLC.Sets)
	case s.Mem.LatencyNs <= 0:
		return fmt.Errorf("arch: memory latency must be positive")
	}
	for i := 1; i < len(s.DVFS); i++ {
		if s.DVFS[i].FreqGHz <= s.DVFS[i-1].FreqGHz {
			return fmt.Errorf("arch: DVFS table not strictly increasing at %d", i)
		}
		if s.DVFS[i].VoltV < s.DVFS[i-1].VoltV {
			return fmt.Errorf("arch: DVFS voltage decreasing at %d", i)
		}
	}
	return nil
}

// Setting is one core's complete resource allocation.
type Setting struct {
	Size    CoreSize
	FreqIdx int // index into the DVFS table
	Ways    int // LLC ways allocated to this core
}

// String renders the setting compactly, e.g. "medium@2.0GHz/4w".
func (s Setting) String() string {
	return fmt.Sprintf("%s@f%d/%dw", s.Size, s.FreqIdx, s.Ways)
}

// BaselineSetting returns the per-core baseline allocation for the system.
func (s SystemConfig) BaselineSetting() Setting {
	return Setting{Size: s.BaselineSize, FreqIdx: s.BaselineFreqIdx, Ways: s.BaselineWays()}
}
