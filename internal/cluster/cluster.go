// Package cluster implements an open-system, fleet-of-machines simulator
// on top of the resumable co-phase stepper (internal/rmasim) — the first
// scenario class beyond the papers' fixed one-round mixes, and the
// dynamic-workload direction the thesis' scheduler-guidance chapter
// motivates. Jobs arrive from a deterministic trace (internal/workload's
// arrival generators), are placed online onto the machine where the
// collocation scorer (internal/sched) predicts the largest energy savings,
// execute one full round under the machine's own resource-management
// algorithm, and depart on completion; when every core in the fleet is
// busy, arrivals wait in a FIFO queue and are admitted as cores free up.
//
// Machines interact only through placement and the queue, so between
// placement decisions they decouple: the engine advances all machines to
// the next arrival in parallel on a bounded worker pool, falling back to a
// sequential global event order only while the queue is non-empty (when a
// departure anywhere admits the next waiting job). Results are bit-for-bit
// independent of the worker count: per-machine event sequences are
// deterministic, and cross-machine departure logs are merged in
// (time, machine, core) order.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"qosrma/internal/core"
	"qosrma/internal/equilibrium"
	"qosrma/internal/power"
	"qosrma/internal/rmasim"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/workload"
)

// Placement selects the online placement policy.
type Placement int

const (
	// PlaceScored places each arrival on the machine where the collocation
	// scorer predicts the largest energy savings for the resulting tenant
	// set — the thesis' scheduler-guidance proposal, applied online.
	PlaceScored Placement = iota
	// PlaceFirstFit places each arrival on the lowest-numbered machine
	// with a free core — the guidance-free reference policy.
	PlaceFirstFit
	// PlaceEquilibrium places each arrival where it sits in a certified
	// pure Nash equilibrium of the collocation game: on every arrival the
	// engine solves for the equilibrium assignment of all present tenants
	// plus the arrival (best-response dynamics on the scorer oracle,
	// warm-started from the fleet's current layout), then admits the
	// arrival to its equilibrium machine. Running tenants never migrate —
	// the equilibrium is the placement's lookahead, not a physical
	// reshuffle — and when the equilibrium machine has no physically free
	// core (a tenant moved off it only virtually) the policy falls back
	// to scored placement for that arrival.
	PlaceEquilibrium
)

// String names the policy.
func (p Placement) String() string {
	switch p {
	case PlaceScored:
		return "scored"
	case PlaceFirstFit:
		return "first-fit"
	case PlaceEquilibrium:
		return "equilibrium"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Spec describes one cluster scenario.
type Spec struct {
	// Machines is the fleet size; every machine has the database's
	// configuration (core count, LLC, DVFS levels).
	Machines int
	// Scheme and Model configure every machine's resource manager.
	Scheme core.Scheme
	Model  core.ModelKind
	// Slack is the uniform QoS relaxation granted to every job.
	Slack float64
	// Jobs is the arrival trace, sorted by the engine before use.
	Jobs []workload.Arrival
	// Placement selects the online placement policy (default: scored).
	Placement Placement
	// Timeline records every machine's allocation time-series.
	Timeline bool
	// Workers bounds the parallel machine advance (default: GOMAXPROCS).
	Workers int
	// MaxEventsPerMachine bounds each machine's event loop as a safety net
	// (default: the rmasim default).
	MaxEventsPerMachine int
	// Emitter, when set, receives one row per job in global departure
	// order as the simulation progresses.
	Emitter Emitter
}

// JobResult is the scored outcome of one job.
type JobResult struct {
	Job       workload.Arrival
	Machine   int
	Core      int
	StartSec  float64 // placement time: arrival plus any queueing delay
	WaitSec   float64 // time spent in the admission queue
	FinishSec float64 // departure time
	App       rmasim.AppResult
}

// MachineResult summarizes one machine's share of the scenario.
type MachineResult struct {
	Jobs        int     // jobs the machine executed
	BusyCoreSec float64 // summed per-job core-occupancy seconds
	Invocations int     // RMA invocations on this machine
	// Timeline is the allocation time-series (Spec.Timeline only).
	Timeline []rmasim.TimelineEvent
}

// Result is the outcome of one cluster scenario.
type Result struct {
	Scheme    string
	Placement string
	Jobs      []JobResult // in arrival order
	Machines  []MachineResult

	// EnergySavings is the fleet aggregate: 1 - sum(job energy) /
	// sum(baseline job energy).
	EnergySavings float64
	// Violations counts jobs that missed their (slack-adjusted) QoS.
	Violations int
	// Queueing behaviour of the open system.
	MeanWaitSec float64
	MaxWaitSec  float64
	// MakespanSec is the departure time of the last job.
	MakespanSec float64
	// Interval-level QoS audit aggregated across machines.
	Intervals          int
	IntervalViolations int
}

// departure is one job leaving a machine.
type departure struct {
	time    float64
	machine int
	coreID  int
	job     int // index into the engine's sorted job list
	app     rmasim.AppResult
}

// machine is one simulated host: a resumable co-phase simulation plus the
// occupancy bookkeeping the placement loop reads.
type machine struct {
	id    int
	sim   *rmasim.Sim
	mgr   *core.Manager
	apps  []string // per-core tenant benchmark ("" = idle)
	jobOn []int    // per-core job index (-1 = idle)
	free  int
}

// stepOnce processes one completion event and departs any jobs that
// finished their round during it. The per-machine event budget is
// enforced by the stepper itself (Options.MaxEvents).
func (m *machine) stepOnce() ([]departure, error) {
	finished, err := m.sim.Step()
	if err != nil {
		return nil, fmt.Errorf("cluster: machine %d: %w", m.id, err)
	}
	var deps []departure
	for _, coreID := range finished {
		app, err := m.sim.Depart(coreID)
		if err != nil {
			return deps, fmt.Errorf("cluster: machine %d: %w", m.id, err)
		}
		deps = append(deps, departure{
			time: m.sim.Now(), machine: m.id, coreID: coreID,
			job: m.jobOn[coreID], app: app,
		})
		m.apps[coreID] = ""
		m.jobOn[coreID] = -1
		m.free++
	}
	return deps, nil
}

// advanceTo runs the machine to absolute time t, processing every
// completion on the way (machine-local: only valid while the admission
// queue is empty, when departures cannot affect other machines).
func (m *machine) advanceTo(t float64) ([]departure, error) {
	var deps []departure
	for m.sim.NextEventTime() <= t {
		d, err := m.stepOnce()
		deps = append(deps, d...)
		if err != nil {
			return deps, err
		}
	}
	if err := m.sim.AdvanceTo(t); err != nil {
		return deps, err
	}
	return deps, nil
}

// drain runs the machine until every tenant has departed.
func (m *machine) drain() ([]departure, error) {
	var deps []departure
	for m.sim.Occupied() > 0 {
		d, err := m.stepOnce()
		deps = append(deps, d...)
		if err != nil {
			return deps, err
		}
	}
	return deps, nil
}

// tenants appends the machine's current applications to buf.
func (m *machine) tenants(buf []string) []string {
	for _, app := range m.apps {
		if app != "" {
			buf = append(buf, app)
		}
	}
	return buf
}

// engine carries one scenario execution.
type engine struct {
	db       *simdb.DB
	spec     Spec
	jobs     []workload.Arrival
	machines []*machine
	scorer   *sched.Scorer
	results  []JobResult
	placed   []bool
	done     []bool
	queue    []int // indices into jobs, FIFO

	// Placement scratch, held on the engine so the per-arrival scoring
	// loop is allocation-free on warm scorer caches: the candidate tenant
	// list and the scorer's curve/DP buffers (sched.ScoreBuf).
	tenantBuf []string
	scoreBuf  sched.ScoreBuf
	// Equilibrium-placement scratch (player list and warm-start profile).
	eqPlayers []string
	eqInitial []int
}

// Run executes the scenario against the database and returns the fleet
// result. The run is deterministic: a fixed Spec (and the deterministic
// database) reproduces identical results and emitted rows bit for bit,
// regardless of Workers.
func Run(db *simdb.DB, spec Spec) (*Result, error) {
	if spec.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", spec.Machines)
	}
	if len(spec.Jobs) == 0 {
		return nil, errors.New("cluster: no jobs in the arrival trace")
	}
	if spec.Workers < 1 {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
	if spec.MaxEventsPerMachine <= 0 {
		spec.MaxEventsPerMachine = rmasim.DefaultOptions().MaxEvents
	}

	e := &engine{db: db, spec: spec, scorer: sched.NewScorer(db)}
	e.jobs = append([]workload.Arrival(nil), spec.Jobs...)
	sort.SliceStable(e.jobs, func(i, j int) bool {
		if e.jobs[i].TimeSec != e.jobs[j].TimeSec {
			return e.jobs[i].TimeSec < e.jobs[j].TimeSec
		}
		return e.jobs[i].ID < e.jobs[j].ID
	})
	for _, j := range e.jobs {
		if _, ok := db.BenchIDOf(j.Bench); !ok {
			return nil, fmt.Errorf("cluster: no analysis for %s (job %d)", j.Bench, j.ID)
		}
		if j.TimeSec < 0 {
			return nil, fmt.Errorf("cluster: job %d arrives at negative time %g", j.ID, j.TimeSec)
		}
	}

	n := db.Sys.NumCores
	slack := make([]float64, n)
	for i := range slack {
		slack[i] = spec.Slack
	}
	e.machines = make([]*machine, spec.Machines)
	for i := range e.machines {
		mgr := core.NewManager(core.Config{
			Sys:    db.Sys,
			Power:  power.DefaultParams(db.Sys),
			Scheme: spec.Scheme,
			Model:  spec.Model,
			Slack:  slack,
		})
		opt := rmasim.DefaultOptions()
		opt.MaxEvents = spec.MaxEventsPerMachine
		opt.Timeline = spec.Timeline
		e.machines[i] = &machine{
			id:    i,
			sim:   rmasim.NewIdle(db, mgr, opt),
			mgr:   mgr,
			apps:  make([]string, n),
			jobOn: make([]int, n),
			free:  n,
		}
		for c := range e.machines[i].jobOn {
			e.machines[i].jobOn[c] = -1
		}
	}
	e.results = make([]JobResult, len(e.jobs))
	e.placed = make([]bool, len(e.jobs))
	e.done = make([]bool, len(e.jobs))

	if err := e.run(); err != nil {
		return nil, err
	}
	return e.finish()
}

// run drives the global arrival/departure loop.
func (e *engine) run() error {
	ai := 0
	for {
		if len(e.queue) == 0 {
			if ai < len(e.jobs) {
				// Advance the whole fleet to the next arrival in parallel
				// (with an empty queue, machines are decoupled), then place.
				if err := e.parallelEach(func(m *machine) ([]departure, error) {
					return m.advanceTo(e.jobs[ai].TimeSec)
				}); err != nil {
					return err
				}
				if err := e.place(ai); err != nil {
					return err
				}
				ai++
				continue
			}
			// No arrivals left: drain the fleet in parallel and stop.
			return e.parallelEach((*machine).drain)
		}

		// Overloaded: every core in the fleet is busy (the queue invariant)
		// and the next event — an arrival joining the queue, or the
		// earliest departure anywhere admitting its head — must be
		// processed in global time order.
		tArr := math.Inf(1)
		if ai < len(e.jobs) {
			tArr = e.jobs[ai].TimeSec
		}
		next, nextT := -1, math.Inf(1)
		for _, m := range e.machines {
			if t := m.sim.NextEventTime(); t < nextT {
				next, nextT = m.id, t
			}
		}
		if next < 0 && math.IsInf(tArr, 1) {
			return errors.New("cluster: queued jobs but no running work (internal invariant broken)")
		}
		if tArr < nextT {
			e.queue = append(e.queue, ai)
			ai++
			continue
		}
		m := e.machines[next]
		deps, err := m.stepOnce()
		if cerr := e.collect(deps); cerr != nil {
			return cerr
		}
		if err != nil {
			return err
		}
		for _, d := range deps {
			if len(e.queue) == 0 {
				break
			}
			ji := e.queue[0]
			e.queue = e.queue[1:]
			if err := e.admit(ji, m, d.time); err != nil {
				return err
			}
		}
	}
}

// place assigns an arriving job to a machine (or queues it when the fleet
// is full). With scored placement, every machine with a free core is
// scored with the arrival added to its tenants and the best predicted
// collocation wins; ties keep the lowest machine index. Equilibrium
// placement solves the collocation game first and falls back to the
// scored choice when no certified equilibrium (or no physically free
// equilibrium slot) exists.
func (e *engine) place(ji int) error {
	job := e.jobs[ji]
	best := -1
	if e.spec.Placement == PlaceFirstFit {
		for _, m := range e.machines {
			if m.free > 0 {
				best = m.id
				break
			}
		}
	} else {
		var err error
		if e.spec.Placement == PlaceEquilibrium {
			best, err = e.pickEquilibrium(job.Bench)
		}
		if err != nil {
			return err
		}
		if best < 0 {
			if best, err = e.pickScored(job.Bench); err != nil {
				return err
			}
		}
	}
	if best < 0 {
		e.queue = append(e.queue, ji)
		return nil
	}
	return e.admit(ji, e.machines[best], job.TimeSec)
}

// pickScored returns the free machine where the scorer predicts the
// best collocation for the arriving benchmark (-1 when the fleet is
// full). It runs on the engine-held scratch (tenantBuf/scoreBuf), so on
// warm scorer caches the whole loop performs zero heap allocations —
// pinned by TestPlacementLoopAllocationFree.
func (e *engine) pickScored(bench string) (int, error) {
	best, bestScore := -1, math.Inf(-1)
	for _, m := range e.machines {
		if m.free == 0 {
			continue
		}
		e.tenantBuf = m.tenants(e.tenantBuf[:0])
		e.tenantBuf = append(e.tenantBuf, bench)
		s, err := e.scorer.ScoreInto(e.tenantBuf, &e.scoreBuf)
		if err != nil {
			return -1, err
		}
		if s > bestScore {
			best, bestScore = m.id, s
		}
	}
	return best, nil
}

// pickEquilibrium solves the placement game for the current tenants plus
// the arriving benchmark and returns the arrival's machine in the best
// certified pure Nash equilibrium. The solve is seeded from the arrival's
// position in the job order, so runs are bit-deterministic regardless of
// Workers. It returns -1 (caller falls back to scored placement) when the
// fleet is full, no start certifies an equilibrium, or the equilibrium
// machine has no physically free core.
func (e *engine) pickEquilibrium(bench string) (int, error) {
	free := 0
	e.eqPlayers = e.eqPlayers[:0]
	e.eqInitial = e.eqInitial[:0]
	for _, m := range e.machines {
		free += m.free
		for _, app := range m.apps {
			if app != "" {
				e.eqPlayers = append(e.eqPlayers, app)
				e.eqInitial = append(e.eqInitial, m.id)
			}
		}
	}
	if free == 0 {
		return -1, nil
	}
	// Warm-start the arrival on the lowest-indexed free machine.
	arrival := len(e.eqPlayers)
	e.eqPlayers = append(e.eqPlayers, bench)
	for _, m := range e.machines {
		if m.free > 0 {
			e.eqInitial = append(e.eqInitial, m.id)
			break
		}
	}
	eq, err := equilibrium.Solve(e.scorer, e.eqPlayers, equilibrium.Config{
		Machines: len(e.machines),
		Capacity: e.db.Sys.NumCores,
		Seed:     stats.SeedFrom(uint64(arrival), "cluster/equilibrium-place"),
		Initial:  e.eqInitial,
	})
	if err != nil {
		// An unsolvable game (every start cycled) is not a scenario
		// error: degrade to scored placement deterministically.
		return -1, nil
	}
	if m := e.machines[eq.Assignment[arrival]]; m.free > 0 {
		return m.id, nil
	}
	return -1, nil
}

// admit places job ji on the machine's lowest free core at time t.
func (e *engine) admit(ji int, m *machine, t float64) error {
	job := e.jobs[ji]
	coreID := -1
	for c, tenant := range m.jobOn {
		if tenant == -1 {
			coreID = c
			break
		}
	}
	if coreID < 0 {
		return fmt.Errorf("cluster: admit to full machine %d", m.id)
	}
	if err := m.sim.Arrive(coreID, job.Bench); err != nil {
		return err
	}
	m.apps[coreID] = job.Bench
	m.jobOn[coreID] = ji
	m.free--
	e.placed[ji] = true
	e.results[ji] = JobResult{
		Job:      job,
		Machine:  m.id,
		Core:     coreID,
		StartSec: t,
		WaitSec:  t - job.TimeSec,
	}
	return nil
}

// collect records departures (already in deterministic order) and streams
// them to the emitter. An emitter failure aborts the scenario immediately
// rather than simulating the rest of the fleet for a result that cannot
// be delivered; departures later in the batch are still recorded first so
// the engine's bookkeeping stays consistent.
func (e *engine) collect(deps []departure) error {
	var emitErr error
	for _, d := range deps {
		r := &e.results[d.job]
		r.FinishSec = d.time
		r.App = d.app
		e.done[d.job] = true
		if e.spec.Emitter != nil && emitErr == nil {
			emitErr = e.spec.Emitter.Emit(rowOf(*r))
		}
	}
	if emitErr != nil {
		return fmt.Errorf("cluster: emit: %w", emitErr)
	}
	return nil
}

// parallelEach runs f over every machine on the worker pool and collects
// the departures merged in (time, machine, core) order. Machines touch
// only their own state, so the pool needs no locking.
func (e *engine) parallelEach(f func(*machine) ([]departure, error)) error {
	deps := make([][]departure, len(e.machines))
	errs := make([]error, len(e.machines))
	sem := make(chan struct{}, e.spec.Workers)
	var wg sync.WaitGroup
	for i, m := range e.machines {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, m *machine) {
			defer wg.Done()
			defer func() { <-sem }()
			deps[i], errs[i] = f(m)
		}(i, m)
	}
	wg.Wait()
	var merged []departure
	for _, d := range deps {
		merged = append(merged, d...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].time != merged[j].time {
			return merged[i].time < merged[j].time
		}
		if merged[i].machine != merged[j].machine {
			return merged[i].machine < merged[j].machine
		}
		return merged[i].coreID < merged[j].coreID
	})
	if err := e.collect(merged); err != nil {
		return errors.Join(append(errs, err)...)
	}
	return errors.Join(errs...)
}

// finish validates completion and aggregates the fleet result.
func (e *engine) finish() (*Result, error) {
	res := &Result{
		Scheme:    e.spec.Scheme.String(),
		Placement: e.spec.Placement.String(),
		Jobs:      e.results,
		Machines:  make([]MachineResult, len(e.machines)),
	}
	var sumE, sumBaseE, sumWait float64
	for ji := range e.results {
		r := &e.results[ji]
		if !e.placed[ji] || !e.done[ji] {
			return nil, fmt.Errorf("cluster: job %d never completed (internal invariant broken)", r.Job.ID)
		}
		sumE += r.App.Energy
		sumBaseE += r.App.BaselineEnergy
		sumWait += r.WaitSec
		if r.WaitSec > res.MaxWaitSec {
			res.MaxWaitSec = r.WaitSec
		}
		if r.FinishSec > res.MakespanSec {
			res.MakespanSec = r.FinishSec
		}
		if r.App.Violated() {
			res.Violations++
		}
		mr := &res.Machines[r.Machine]
		mr.Jobs++
		mr.BusyCoreSec += r.FinishSec - r.StartSec
	}
	if sumBaseE > 0 {
		res.EnergySavings = 1 - sumE/sumBaseE
	}
	res.MeanWaitSec = sumWait / float64(len(e.results))
	for i, m := range e.machines {
		res.Machines[i].Invocations = m.mgr.Invocations
		res.Machines[i].Timeline = m.sim.TimelineEvents()
		intervals, violations := m.sim.Audit()
		res.Intervals += intervals
		res.IntervalViolations += violations
	}
	return res, nil
}
