package cluster

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Row is one job's flattened outcome, streamed in global departure order
// as the scenario executes — the cluster counterpart of the sweep
// engine's per-point rows.
type Row struct {
	JobID   int    `json:"job"`
	Bench   string `json:"bench"`
	Machine int    `json:"machine"`
	Core    int    `json:"core"`

	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	WaitSec    float64 `json:"wait_sec"`
	FinishSec  float64 `json:"finish_sec"`

	TimeSec      float64 `json:"time_sec"`
	BaselineSec  float64 `json:"baseline_sec"`
	ExcessTime   float64 `json:"excess_time"`
	AllowedSlack float64 `json:"allowed_slack,omitempty"`
	Violated     bool    `json:"violated,omitempty"`

	Energy         float64 `json:"energy_j"`
	BaselineEnergy float64 `json:"baseline_energy_j"`
	MeanFreqGHz    float64 `json:"mean_freq_ghz"`
	MeanWays       float64 `json:"mean_ways"`
}

// rowOf flattens one completed job.
func rowOf(r JobResult) Row {
	return Row{
		JobID:          r.Job.ID,
		Bench:          r.Job.Bench,
		Machine:        r.Machine,
		Core:           r.Core,
		ArrivalSec:     r.Job.TimeSec,
		StartSec:       r.StartSec,
		WaitSec:        r.WaitSec,
		FinishSec:      r.FinishSec,
		TimeSec:        r.App.Time,
		BaselineSec:    r.App.BaselineTime,
		ExcessTime:     r.App.ExcessTime,
		AllowedSlack:   r.App.AllowedSlack,
		Violated:       r.App.Violated(),
		Energy:         r.App.Energy,
		BaselineEnergy: r.App.BaselineEnergy,
		MeanFreqGHz:    r.App.MeanFreqGHz,
		MeanWays:       r.App.MeanWays,
	}
}

// Emitter receives job rows in global departure order as a scenario
// executes. The engine serializes Emit calls.
type Emitter interface {
	Emit(Row) error
	// Close flushes any buffered output. The engine does not call it; the
	// owner of the underlying writer does.
	Close() error
}

// csvHeader is the fixed column order of the CSV emitter.
var csvHeader = []string{
	"job", "bench", "machine", "core",
	"arrival_sec", "start_sec", "wait_sec", "finish_sec",
	"time_sec", "baseline_sec", "excess_time", "allowed_slack", "violated",
	"energy_j", "baseline_energy_j", "mean_freq_ghz", "mean_ways",
}

// CSVEmitter streams rows as CSV with a header line, flushing each record
// so emitted rows survive a mid-scenario abort.
type CSVEmitter struct {
	w     *csv.Writer
	wrote bool
}

// NewCSVEmitter wraps the writer.
func NewCSVEmitter(w io.Writer) *CSVEmitter { return &CSVEmitter{w: csv.NewWriter(w)} }

// Emit writes one record (and the header before the first one).
func (c *CSVEmitter) Emit(r Row) error {
	if !c.wrote {
		c.wrote = true
		if err := c.w.Write(csvHeader); err != nil {
			return err
		}
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	err := c.w.Write([]string{
		strconv.Itoa(r.JobID),
		r.Bench,
		strconv.Itoa(r.Machine),
		strconv.Itoa(r.Core),
		g(r.ArrivalSec), g(r.StartSec), g(r.WaitSec), g(r.FinishSec),
		g(r.TimeSec), g(r.BaselineSec), g(r.ExcessTime), g(r.AllowedSlack),
		strconv.FormatBool(r.Violated),
		g(r.Energy), g(r.BaselineEnergy), g(r.MeanFreqGHz), g(r.MeanWays),
	})
	if err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

// Close flushes the CSV writer.
func (c *CSVEmitter) Close() error {
	c.w.Flush()
	return c.w.Error()
}

// JSONEmitter streams rows as JSON lines (one object per row).
type JSONEmitter struct {
	enc *json.Encoder
}

// NewJSONEmitter wraps the writer.
func NewJSONEmitter(w io.Writer) *JSONEmitter { return &JSONEmitter{enc: json.NewEncoder(w)} }

// Emit writes one JSON line.
func (j *JSONEmitter) Emit(r Row) error { return j.enc.Encode(r) }

// Close is a no-op; JSON lines need no trailer.
func (j *JSONEmitter) Close() error { return nil }

// NewEmitter builds an emitter by format name ("csv" or "json").
func NewEmitter(format string, w io.Writer) (Emitter, error) {
	switch strings.ToLower(format) {
	case "csv":
		return NewCSVEmitter(w), nil
	case "json", "jsonl", "ndjson":
		return NewJSONEmitter(w), nil
	default:
		return nil, fmt.Errorf("cluster: unknown emit format %q (want csv or json)", format)
	}
}

// WriteCSV writes the completed jobs as CSV in one call (arrival order).
func WriteCSV(w io.Writer, jobs []JobResult) error {
	em := NewCSVEmitter(w)
	for _, j := range jobs {
		if err := em.Emit(rowOf(j)); err != nil {
			return err
		}
	}
	return em.Close()
}

// WriteJSON writes the completed jobs as JSON lines in one call.
func WriteJSON(w io.Writer, jobs []JobResult) error {
	em := NewJSONEmitter(w)
	for _, j := range jobs {
		if err := em.Emit(rowOf(j)); err != nil {
			return err
		}
	}
	return em.Close()
}
