package cluster

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

// testDB builds a small 2-core database over a subset of the suite — big
// enough for heterogeneous placement, small enough to keep scenarios fast.
func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second database build in -short mode")
	}
	dbOnce.Do(func() {
		sys := arch.DefaultSystemConfig(2)
		dbInst, dbErr = simdb.Build(sys, trace.Suite()[:6], simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

// testSpec is a moderately loaded 2-machine scenario with a fixed seed.
func testSpec(db *simdb.DB, jobs int, meanSec float64) Spec {
	return Spec{
		Machines: 2,
		Scheme:   core.SchemeCoordDVFSCache,
		Model:    core.Model3,
		Slack:    0.2,
		Jobs: workload.PoissonArrivals(db.BenchNames(), workload.ArrivalOptions{
			Jobs: jobs, MeanInterarrivalSec: meanSec, Seed: 42,
		}),
	}
}

func TestClusterCompletesAllJobs(t *testing.T) {
	db := testDB(t)
	spec := testSpec(db, 12, 0.4)
	res, err := Run(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("completed %d jobs, want 12", len(res.Jobs))
	}
	machineJobs := 0
	for _, m := range res.Machines {
		machineJobs += m.Jobs
		if m.Invocations <= 0 {
			t.Fatal("machine never invoked its RMA")
		}
	}
	if machineJobs != 12 {
		t.Fatalf("machines account for %d jobs", machineJobs)
	}
	for _, j := range res.Jobs {
		if j.WaitSec < 0 {
			t.Fatalf("job %d has negative wait %g", j.Job.ID, j.WaitSec)
		}
		if j.StartSec != j.Job.TimeSec+j.WaitSec {
			t.Fatalf("job %d start/wait inconsistent", j.Job.ID)
		}
		if j.FinishSec <= j.StartSec {
			t.Fatalf("job %d finished before it started", j.Job.ID)
		}
		if j.App.Time <= 0 || j.App.Energy <= 0 || j.App.BaselineEnergy <= 0 {
			t.Fatalf("job %d degenerate accounting: %+v", j.Job.ID, j.App)
		}
		if j.Machine < 0 || j.Machine >= spec.Machines {
			t.Fatalf("job %d on machine %d", j.Job.ID, j.Machine)
		}
		if j.FinishSec > res.MakespanSec {
			t.Fatal("makespan below a job's finish time")
		}
	}
	if res.Intervals <= 0 {
		t.Fatal("no intervals audited")
	}
}

// TestClusterDeterministic pins the acceptance criterion CI enforces
// (make determinism): a fixed-seed scenario reproduces identical results
// and identical CSV/JSON emitter bytes — compared by hash — across runs
// and across worker counts {1, 4, GOMAXPROCS}.
func TestClusterDeterministic(t *testing.T) {
	db := testDB(t)
	execute := func(workers int) (*Result, [32]byte, [32]byte, []byte) {
		spec := testSpec(db, 16, 0.3)
		spec.Workers = workers
		var csvBuf bytes.Buffer
		spec.Emitter = NewCSVEmitter(&csvBuf)
		res, err := Run(db, spec)
		if err != nil {
			t.Fatal(err)
		}
		var jsonBuf bytes.Buffer
		if err := WriteJSON(&jsonBuf, res.Jobs); err != nil {
			t.Fatal(err)
		}
		return res, sha256.Sum256(csvBuf.Bytes()), sha256.Sum256(jsonBuf.Bytes()), csvBuf.Bytes()
	}
	r1, c1, j1, raw := execute(1)
	if len(raw) == 0 || bytes.Count(raw, []byte("\n")) != 17 { // header + 16 rows
		t.Fatalf("emitter produced %d lines", bytes.Count(raw, []byte("\n")))
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r2, c2, j2, _ := execute(workers)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("cluster result depends on the worker count (%d)", workers)
		}
		if c1 != c2 {
			t.Fatalf("streamed CSV hash differs at %d workers", workers)
		}
		if j1 != j2 {
			t.Fatalf("JSON output hash differs at %d workers", workers)
		}
	}
}

// TestClusterQueuesUnderOverload: a single machine fed arrivals much
// faster than it retires them must queue jobs and still complete them all,
// with strictly positive waits for the tail.
func TestClusterQueuesUnderOverload(t *testing.T) {
	db := testDB(t)
	spec := testSpec(db, 8, 0.01) // near-simultaneous arrivals
	spec.Machines = 1
	res, err := Run(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWaitSec <= 0 {
		t.Fatal("overloaded machine produced no queueing delay")
	}
	waited := 0
	for _, j := range res.Jobs {
		if j.WaitSec > 0 {
			waited++
		}
	}
	// Two cores absorb the first two arrivals; the other six must wait.
	if waited != 6 {
		t.Fatalf("%d jobs waited, want 6", waited)
	}
}

func TestClusterPlacementPolicies(t *testing.T) {
	db := testDB(t)
	for _, p := range []Placement{PlaceScored, PlaceFirstFit, PlaceEquilibrium} {
		spec := testSpec(db, 10, 0.5)
		spec.Placement = p
		res, err := Run(db, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Placement != p.String() {
			t.Fatalf("placement label %q", res.Placement)
		}
		if len(res.Jobs) != 10 {
			t.Fatalf("%s completed %d jobs", p, len(res.Jobs))
		}
	}
}

// TestEquilibriumPlacementDeterministic extends the byte-determinism wall
// to the equilibrium policy (make determinism): the per-arrival Nash solve
// explores its seeded starts in parallel, and the streamed rows must still
// hash identically across runs and worker counts.
func TestEquilibriumPlacementDeterministic(t *testing.T) {
	db := testDB(t)
	execute := func(workers int) (*Result, [32]byte) {
		spec := testSpec(db, 14, 0.3)
		spec.Placement = PlaceEquilibrium
		spec.Workers = workers
		var csvBuf bytes.Buffer
		spec.Emitter = NewCSVEmitter(&csvBuf)
		res, err := Run(db, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res, sha256.Sum256(csvBuf.Bytes())
	}
	r1, c1 := execute(1)
	if len(r1.Jobs) != 14 {
		t.Fatalf("completed %d jobs, want 14", len(r1.Jobs))
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r2, c2 := execute(workers)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("equilibrium placement depends on the worker count (%d)", workers)
		}
		if c1 != c2 {
			t.Fatalf("streamed CSV hash differs at %d workers", workers)
		}
	}
}

// TestPlacementLoopAllocationFree pins the engine-held scratch: once the
// scorer caches are warm, scoring every candidate machine for an arrival
// (pickScored) performs zero heap allocations — the fix for the fresh
// ScoreBuf the old loop allocated per candidate machine per arrival.
func TestPlacementLoopAllocationFree(t *testing.T) {
	db := testDB(t)
	names := db.BenchNames()
	e := &engine{db: db, scorer: sched.NewScorer(db)}
	for i := 0; i < 3; i++ {
		m := &machine{id: i, apps: make([]string, db.Sys.NumCores), jobOn: []int{-1, -1}}
		m.apps[0] = names[i] // one tenant, one free core per machine
		m.free = db.Sys.NumCores - 1
		e.machines = append(e.machines, m)
	}
	warm := func(bench string) int {
		best, err := e.pickScored(bench)
		if err != nil {
			t.Fatal(err)
		}
		return best
	}
	for _, bench := range names { // warm every curve the pin will touch
		warm(bench)
	}
	if best := warm(names[3]); best < 0 || best >= len(e.machines) {
		t.Fatalf("pickScored chose machine %d", best)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := e.pickScored(names[4]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm placement loop allocates %.1f objects per arrival, want 0", allocs)
	}
}

func TestClusterTimeline(t *testing.T) {
	db := testDB(t)
	spec := testSpec(db, 6, 0.5)
	spec.Timeline = true
	res, err := Run(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, m := range res.Machines {
		prev := 0.0
		for _, ev := range m.Timeline {
			if ev.TimeSec < prev {
				t.Fatal("machine timeline not ordered")
			}
			prev = ev.TimeSec
			events++
		}
	}
	if events == 0 {
		t.Fatal("no timeline events under a coordinated scheme")
	}
}

func TestClusterSpecValidation(t *testing.T) {
	db := testDB(t)
	if _, err := Run(db, Spec{Machines: 0, Jobs: testSpec(db, 2, 1).Jobs}); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := Run(db, Spec{Machines: 1}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := testSpec(db, 2, 1)
	bad.Jobs[1].Bench = "nosuch"
	if _, err := Run(db, bad); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	neg := testSpec(db, 2, 1)
	neg.Jobs[0].TimeSec = -1
	if _, err := Run(db, neg); err == nil {
		t.Fatal("negative arrival time accepted")
	}
}
