package experiments

import (
	"fmt"
	"strings"

	"qosrma/internal/core"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/sweep"
	"qosrma/internal/workload"
)

// SavingsResult is the outcome of one scheme over a set of mixes.
type SavingsResult struct {
	Scheme  core.Scheme
	PerMix  []float64 // energy savings per mix
	Results []*rmasim.Result
}

// Avg returns the average savings across mixes.
func (s *SavingsResult) Avg() float64 { return stats.Mean(s.PerMix) }

// Max returns the best savings across mixes.
func (s *SavingsResult) Max() float64 { return stats.Max(s.PerMix) }

// Min returns the worst savings across mixes.
func (s *SavingsResult) Min() float64 { return stats.Min(s.PerMix) }

// EnergySavingsExperiment reproduces Paper I's headline figures: per-mix
// system energy savings for a set of schemes (P1.F4 with 4-core mixes,
// P1.F8 with 8-core mixes).
type EnergySavingsExperiment struct {
	Mixes   []workload.Mix
	Schemes []*SavingsResult
}

// RunEnergySavings executes the savings comparison over the given mixes as
// a Mixes × Schemes sweep grid.
func RunEnergySavings(db *simdb.DB, mixes []workload.Mix, schemes []core.Scheme, model core.ModelKind, oracle bool) (*EnergySavingsExperiment, error) {
	res, err := Engine().Run(sweep.Spec{
		Name: "energy-savings", DB: db,
		Mixes:            mixes,
		Schemes:          schemes,
		Models:           []core.ModelKind{model},
		Oracle:           []bool{oracle},
		BaselineFreqIdxs: []int{-1},
	})
	if err != nil {
		return nil, err
	}
	exp := &EnergySavingsExperiment{Mixes: mixes}
	for _, scheme := range schemes {
		sr := &SavingsResult{Scheme: scheme}
		for _, r := range res.Select(func(p RunSpec) bool { return p.Scheme == scheme }) {
			sr.PerMix = append(sr.PerMix, r.EnergySavings)
			sr.Results = append(sr.Results, r)
		}
		exp.Schemes = append(exp.Schemes, sr)
	}
	return exp, nil
}

// Table renders the per-mix savings table.
func (e *EnergySavingsExperiment) Table(title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"mix", "pattern", "apps"}
	for _, s := range e.Schemes {
		t.Headers = append(t.Headers, s.Scheme.String())
	}
	for i, mix := range e.Mixes {
		pattern := make([]string, len(mix.ClassPattern))
		for j, c := range mix.ClassPattern {
			pattern[j] = c.String()
		}
		row := []interface{}{mix.Name, strings.Join(pattern, "+"), strings.Join(mix.Apps, ",")}
		for _, s := range e.Schemes {
			row = append(row, pct(s.PerMix[i]))
		}
		t.AddRow(row...)
	}
	avgRow := []interface{}{"avg", "", ""}
	maxRow := []interface{}{"max", "", ""}
	for _, s := range e.Schemes {
		avgRow = append(avgRow, pct(s.Avg()))
		maxRow = append(maxRow, pct(s.Max()))
	}
	t.AddRow(avgRow...)
	t.AddRow(maxRow...)
	return t
}

// QoSStats summarizes per-application QoS violations across a scheme's runs
// (Paper I's violation analysis, P1.QV).
type QoSStats struct {
	Apps       int
	Violations int
	AvgPct     float64 // average violation magnitude (violating apps)
	MaxPct     float64
}

// QoSOf computes violation statistics over the runs of one scheme.
func QoSOf(results []*rmasim.Result) QoSStats {
	var q QoSStats
	var magnitudes []float64
	for _, r := range results {
		for _, a := range r.Apps {
			q.Apps++
			if a.Violated() {
				q.Violations++
				m := (a.ExcessTime - a.AllowedSlack) * 100
				magnitudes = append(magnitudes, m)
			}
		}
	}
	if len(magnitudes) > 0 {
		q.AvgPct = stats.Mean(magnitudes)
		q.MaxPct = stats.Max(magnitudes)
	}
	return q
}

// PerfectVsRealistic reproduces Paper I's model-error analysis (P1.PM +
// P1.QV): the combined scheme with realistic models versus oracle
// ("perfect") models over the same mixes.
type PerfectVsRealistic struct {
	Realistic *SavingsResult
	Perfect   *SavingsResult
	RealQoS   QoSStats
	PerfQoS   QoSStats
}

// RunPerfectVsRealistic executes the comparison. The realistic leg uses the
// given analytical model on sampled last-interval statistics; the perfect
// leg queries the exact profiles of the upcoming interval (oracle
// statistics with the MLP-exact model), which is how the paper realizes
// "perfect models with no prediction error".
func RunPerfectVsRealistic(db *simdb.DB, mixes []workload.Mix, scheme core.Scheme, model core.ModelKind) (*PerfectVsRealistic, error) {
	real, err := RunEnergySavings(db, mixes, []core.Scheme{scheme}, model, false)
	if err != nil {
		return nil, err
	}
	perf, err := RunEnergySavings(db, mixes, []core.Scheme{scheme}, core.Model3, true)
	if err != nil {
		return nil, err
	}
	return &PerfectVsRealistic{
		Realistic: real.Schemes[0],
		Perfect:   perf.Schemes[0],
		RealQoS:   QoSOf(real.Schemes[0].Results),
		PerfQoS:   QoSOf(perf.Schemes[0].Results),
	}, nil
}

// Table renders the comparison.
func (p *PerfectVsRealistic) Table(title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"models", "avg savings", "max savings", "QoS violations", "avg viol", "max viol"}
	t.AddRow("realistic", pct(p.Realistic.Avg()), pct(p.Realistic.Max()),
		fmt.Sprintf("%d/%d", p.RealQoS.Violations, p.RealQoS.Apps),
		fmt.Sprintf("%.1f%%", p.RealQoS.AvgPct), fmt.Sprintf("%.1f%%", p.RealQoS.MaxPct))
	t.AddRow("perfect", pct(p.Perfect.Avg()), pct(p.Perfect.Max()),
		fmt.Sprintf("%d/%d", p.PerfQoS.Violations, p.PerfQoS.Apps),
		fmt.Sprintf("%.1f%%", p.PerfQoS.AvgPct), fmt.Sprintf("%.1f%%", p.PerfQoS.MaxPct))
	return t
}

// RelaxationPoint is one slack level of the QoS-relaxation sweep.
type RelaxationPoint struct {
	Slack   float64
	Avg     float64
	Max     float64
	Results []*rmasim.Result
}

// RunRelaxationSweep reproduces Paper I's relaxed-QoS experiment (P1.RX):
// energy savings as the performance constraint is gradually relaxed
// (perfect models, as in the paper).
func RunRelaxationSweep(db *simdb.DB, mixes []workload.Mix, scheme core.Scheme, slacks []float64) ([]RelaxationPoint, error) {
	res, err := Engine().Run(sweep.Spec{
		Name: "qos-relaxation", DB: db,
		Mixes:            mixes,
		Schemes:          []core.Scheme{scheme},
		Models:           []core.ModelKind{core.Model3},
		Slacks:           slacks,
		Oracle:           []bool{true},
		BaselineFreqIdxs: []int{-1},
	})
	if err != nil {
		return nil, err
	}
	points := make([]RelaxationPoint, 0, len(slacks))
	for _, slack := range slacks {
		results := res.Select(func(p RunSpec) bool { return p.Slack == slack })
		var per []float64
		for _, r := range results {
			per = append(per, r.EnergySavings)
		}
		points = append(points, RelaxationPoint{
			Slack: slack, Avg: stats.Mean(per), Max: stats.Max(per), Results: results,
		})
	}
	return points, nil
}

// RelaxationTable renders the sweep.
func RelaxationTable(points []RelaxationPoint, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"allowed slowdown", "avg savings", "max savings"}
	for _, p := range points {
		t.AddRow(pct(p.Slack), pct(p.Avg), pct(p.Max))
	}
	return t
}

// SubsetRelaxation reproduces Paper I's partial-relaxation scenarios
// (P1.SUB): slack granted only to a subset of the applications in a mix.
type SubsetRelaxation struct {
	Scenario string
	Slack    []float64
	Savings  float64
	Result   *rmasim.Result
}

// RunSubsetRelaxation runs the named subsets over one mix.
func RunSubsetRelaxation(db *simdb.DB, mix workload.Mix, slack float64) ([]SubsetRelaxation, error) {
	n := len(mix.Apps)
	scenarios := []struct {
		name string
		sel  func(i int) bool
	}{
		{"none", func(int) bool { return false }},
		{"first app only", func(i int) bool { return i == 0 }},
		{"first half", func(i int) bool { return i < n/2 }},
		{"second half", func(i int) bool { return i >= n/2 }},
		{"all apps", func(int) bool { return true }},
	}
	var points []RunSpec
	for _, sc := range scenarios {
		per := make([]float64, n)
		for i := range per {
			if sc.sel(i) {
				per[i] = slack
			}
		}
		points = append(points, RunSpec{
			DB: db, Mix: mix, Scheme: core.SchemeCoordDVFSCache, Model: core.Model3,
			Oracle: true, PerCoreSlack: per, BaselineFreqIdx: -1,
		})
	}
	res, err := Engine().Run(sweep.Spec{Name: "subset-relaxation", DB: db, Points: points})
	if err != nil {
		return nil, err
	}
	var out []SubsetRelaxation
	for i, sc := range scenarios {
		out = append(out, SubsetRelaxation{
			Scenario: sc.name, Slack: points[i].PerCoreSlack,
			Savings: res.Results[i].EnergySavings, Result: res.Results[i],
		})
	}
	return out, nil
}

// SubsetTable renders the subset-relaxation scenarios.
func SubsetTable(rows []SubsetRelaxation, mix workload.Mix, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"relaxed subset", "savings"}
	for _, r := range rows {
		t.AddRow(r.Scenario, pct(r.Savings))
	}
	t.AddNote("mix: %s (%s)", mix.Name, strings.Join(mix.Apps, ","))
	return t
}

// BaselineVFPoint is one baseline-frequency sensitivity measurement (P1.VF).
type BaselineVFPoint struct {
	FreqGHz float64
	Avg     float64
	Max     float64
}

// RunBaselineVFSensitivity evaluates how the choice of the baseline VF
// changes the savings of the combined scheme.
func RunBaselineVFSensitivity(db *simdb.DB, mixes []workload.Mix, freqsGHz []float64) ([]BaselineVFPoint, error) {
	idxs := make([]int, len(freqsGHz))
	for i, f := range freqsGHz {
		idxs[i] = db.Sys.DVFS.ClosestIndex(f)
	}
	res, err := Engine().Run(sweep.Spec{
		Name: "baseline-vf", DB: db,
		Mixes:            mixes,
		Schemes:          []core.Scheme{core.SchemeCoordDVFSCache},
		Models:           []core.ModelKind{core.Model3},
		Oracle:           []bool{true},
		BaselineFreqIdxs: idxs,
	})
	if err != nil {
		return nil, err
	}
	// Grid order is mix-outer, frequency-inner; regroup by index arithmetic
	// because two requested frequencies may snap to the same DVFS step.
	var out []BaselineVFPoint
	for k, idx := range idxs {
		var per []float64
		for m := range mixes {
			per = append(per, res.Results[m*len(idxs)+k].EnergySavings)
		}
		out = append(out, BaselineVFPoint{
			FreqGHz: db.Sys.DVFS[idx].FreqGHz,
			Avg:     stats.Mean(per),
			Max:     stats.Max(per),
		})
	}
	return out, nil
}

// BaselineVFTable renders the sensitivity study.
func BaselineVFTable(points []BaselineVFPoint, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"baseline frequency", "avg savings", "max savings"}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f GHz", p.FreqGHz), pct(p.Avg), pct(p.Max))
	}
	return t
}
