package experiments

import (
	"fmt"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/sweep"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

// This file contains the extension and ablation studies that go beyond the
// paper's tables: the thesis' future-work feedback proposal (EXT.FB), and
// ablations of the design choices DESIGN.md calls out — coordination
// itself (AB.UNC), ATD set-sampling density (AB.SAMP), reconfiguration
// overheads (AB.SW) and memory-bandwidth pressure (AB.BW).

// AblationRow is one configuration's aggregate outcome.
type AblationRow struct {
	Name       string
	AvgSavings float64
	MaxSavings float64
	QoS        QoSStats
	// IntervalViolProb is the per-interval violation probability.
	IntervalViolProb float64
}

// runRows executes one spec per mix for each named variant and aggregates.
// All variants compile into a single sweep batch (variant-outer,
// mix-inner) so the whole ablation shares one worker-pool dispatch.
func runRows(db *simdb.DB, mixes []workload.Mix, variants []struct {
	name   string
	mutate func(*RunSpec)
}) ([]AblationRow, error) {
	var points []RunSpec
	for _, v := range variants {
		for _, mix := range mixes {
			spec := RunSpec{
				DB: db, Mix: mix, Scheme: core.SchemeCoordDVFSCache,
				Model: core.Model2, BaselineFreqIdx: -1,
			}
			v.mutate(&spec)
			points = append(points, spec)
		}
	}
	res, err := Engine().Run(sweep.Spec{Name: "ablation", DB: db, Points: points})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, v := range variants {
		results := res.Results[i*len(mixes) : (i+1)*len(mixes)]
		var per []float64
		var intervals, viol int
		for _, r := range results {
			per = append(per, r.EnergySavings)
			intervals += r.Intervals
			viol += r.IntervalViolations
		}
		row := AblationRow{
			Name:       v.name,
			AvgSavings: stats.Mean(per),
			MaxSavings: stats.Max(per),
			QoS:        QoSOf(results),
		}
		if intervals > 0 {
			row.IntervalViolProb = float64(viol) / float64(intervals)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFeedbackAblation (EXT.FB) evaluates the thesis' future-work proposal:
// the Paper I scheme (RM2, Model 2) with and without the software
// phase-history MLP table that stands in for the Paper II hardware.
func RunFeedbackAblation(db *simdb.DB, mixes []workload.Mix) ([]AblationRow, error) {
	return runRows(db, mixes, []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"RM2/Model2 (paper)", func(*RunSpec) {}},
		{"RM2/Model2 + phase-history feedback", func(s *RunSpec) { s.Feedback = true }},
		{"RM2/Model3 (MLP-ATD hardware)", func(s *RunSpec) { s.Model = core.Model3 }},
	})
}

// RunUncoordinatedAblation (AB.UNC) compares the coordinated manager with
// the independent-controller design the paper argues against.
func RunUncoordinatedAblation(db *simdb.DB, mixes []workload.Mix) ([]AblationRow, error) {
	return runRows(db, mixes, []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"UCP partitioning + independent DVFS", func(s *RunSpec) { s.Scheme = core.SchemeUCPDVFS }},
		{"coordinated RM2", func(*RunSpec) {}},
	})
}

// RunSwitchCostAblation (AB.SW) scales every reconfiguration overhead to
// show the scheme's sensitivity to switching costs.
func RunSwitchCostAblation(db *simdb.DB, mixes []workload.Mix) ([]AblationRow, error) {
	return runRows(db, mixes, []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"overheads x0.01", func(s *RunSpec) {
			s.Scheme = core.SchemeCoordCoreDVFSCache
			s.Model = core.Model3
			s.SwitchScale = 0.01
		}},
		{"overheads x1 (paper)", func(s *RunSpec) { s.Scheme = core.SchemeCoordCoreDVFSCache; s.Model = core.Model3; s.SwitchScale = 1 }},
		{"overheads x50", func(s *RunSpec) { s.Scheme = core.SchemeCoordCoreDVFSCache; s.Model = core.Model3; s.SwitchScale = 50 }},
	})
}

// RunBandwidthAblation (AB.BW) tightens each core's memory-bandwidth share.
// The resource manager's analytical models do not model bandwidth, so a
// tight share both shrinks the savings and raises the violation risk.
func RunBandwidthAblation(db *simdb.DB, mixes []workload.Mix) ([]AblationRow, error) {
	return runRows(db, mixes, []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"unconstrained bandwidth (paper)", func(*RunSpec) {}},
		{"6 GB/s per core", func(s *RunSpec) { s.PerCoreGBps = 6 }},
		{"3 GB/s per core", func(s *RunSpec) { s.PerCoreGBps = 3 }},
	})
}

// RunSamplingAblation (AB.SAMP) rebuilds the database with different ATD
// set-sampling densities and measures the effect of the noisier profiles on
// the realistic-model results. SampleIn = 1 means every set is shadowed
// (maximum hardware cost), larger values sample fewer sets.
func RunSamplingAblation(sys arch.SystemConfig, numMixes int, sampleIns []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, si := range sampleIns {
		cfg := sys
		cfg.LLC.SampleIn = si
		db, err := simdb.Build(cfg, trace.Suite(), simdb.DefaultBuildOptions())
		if err != nil {
			return nil, err
		}
		profiles, err := workload.CharacterizeAll(db)
		if err != nil {
			return nil, err
		}
		mixes := workload.PaperIMixes(profiles, cfg.NumCores, numMixes)
		sub, err := runRows(db, mixes, []struct {
			name   string
			mutate func(*RunSpec)
		}{
			{fmt.Sprintf("1-in-%d sets sampled", si), func(*RunSpec) {}},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// AblationTable renders ablation rows.
func AblationTable(rows []AblationRow, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"configuration", "avg savings", "max savings", "app violations", "avg viol", "interval viol prob"}
	for _, r := range rows {
		t.AddRow(r.Name, pct(r.AvgSavings), pct(r.MaxSavings),
			fmt.Sprintf("%d/%d", r.QoS.Violations, r.QoS.Apps),
			fmt.Sprintf("%.1f%%", r.QoS.AvgPct),
			fmt.Sprintf("%.2f%%", r.IntervalViolProb*100))
	}
	return t
}
