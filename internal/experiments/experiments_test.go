package experiments

import (
	"strings"
	"testing"

	"qosrma/internal/core"
	"qosrma/internal/workload"
)

func env(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second environment build in -short mode")
	}
	e, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// favorableMixes returns 4-core mixes that pair cache-sensitive apps with
// donors — the regime where the paper says the combined scheme shines.
func favorableMixes(e *Env) []workload.Mix {
	return []workload.Mix{e.Mixes4[4], e.Mixes4[7], e.Mixes4[15], e.Mixes4[18]}
}

func TestEnvShape(t *testing.T) {
	e := env(t)
	if e.DB4.Sys.NumCores != 4 || e.DB8.Sys.NumCores != 8 {
		t.Fatal("database core counts wrong")
	}
	if len(e.Mixes4) != 20 || len(e.Mixes8) != 10 || len(e.MixesII) != 16 {
		t.Fatalf("mix counts: %d/%d/%d", len(e.Mixes4), len(e.Mixes8), len(e.MixesII))
	}
	if len(e.Profiles4) != 20 {
		t.Fatalf("profiles: %d", len(e.Profiles4))
	}
}

func TestP1CoordinatedBeatsPartitioningOnly(t *testing.T) {
	e := env(t)
	schemes := []core.Scheme{core.SchemePartitionOnly, core.SchemeCoordDVFSCache}
	exp, err := RunEnergySavings(e.DB4, favorableMixes(e), schemes, core.Model2, false)
	if err != nil {
		t.Fatal(err)
	}
	rm1, rm2 := exp.Schemes[0], exp.Schemes[1]
	if rm2.Avg() <= rm1.Avg() {
		t.Fatalf("RM2 avg %.3f not above RM1 avg %.3f", rm2.Avg(), rm1.Avg())
	}
	if rm2.Avg() < 0.04 {
		t.Fatalf("RM2 avg %.3f below 4%% on favourable mixes", rm2.Avg())
	}
}

func TestP1DVFSOnlySavesNothing(t *testing.T) {
	e := env(t)
	exp, err := RunEnergySavings(e.DB4, favorableMixes(e),
		[]core.Scheme{core.SchemeDVFSOnly}, core.Model2, false)
	if err != nil {
		t.Fatal(err)
	}
	if avg := exp.Schemes[0].Avg(); avg > 0.005 {
		t.Fatalf("DVFS-only saved %.3f; the paper says it cannot without slack", avg)
	}
}

func TestP1PerfectModelsNoViolations(t *testing.T) {
	e := env(t)
	cmp, err := RunPerfectVsRealistic(e.DB4, favorableMixes(e),
		core.SchemeCoordDVFSCache, core.Model2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PerfQoS.Violations != 0 {
		t.Fatalf("perfect models produced %d violations", cmp.PerfQoS.Violations)
	}
	if cmp.Perfect.Avg() < 0.04 {
		t.Fatalf("perfect avg %.3f too low", cmp.Perfect.Avg())
	}
	if cmp.RealQoS.Apps != 16 {
		t.Fatalf("expected 16 apps audited, got %d", cmp.RealQoS.Apps)
	}
}

func TestP1RelaxationMonotone(t *testing.T) {
	e := env(t)
	mixes := favorableMixes(e)[:2]
	points, err := RunRelaxationSweep(e.DB4, mixes, core.SchemeCoordDVFSCache,
		[]float64{0, 0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Avg < points[i-1].Avg-0.005 {
			t.Fatalf("savings decreased with slack at %v: %.3f -> %.3f",
				points[i].Slack, points[i-1].Avg, points[i].Avg)
		}
	}
	if points[2].Avg < points[0].Avg+0.05 {
		t.Fatalf("40%% slack added only %.3f savings", points[2].Avg-points[0].Avg)
	}
}

func TestP1SubsetRelaxationOrdering(t *testing.T) {
	e := env(t)
	rows, err := RunSubsetRelaxation(e.DB4, e.Mixes4[4], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 scenarios, got %d", len(rows))
	}
	none, all := rows[0], rows[len(rows)-1]
	if none.Scenario != "none" || all.Scenario != "all apps" {
		t.Fatal("scenario ordering changed")
	}
	if all.Savings <= none.Savings {
		t.Fatalf("relaxing all apps (%.3f) not better than none (%.3f)",
			all.Savings, none.Savings)
	}
	for _, r := range rows[1 : len(rows)-1] {
		if r.Savings < none.Savings-0.01 || r.Savings > all.Savings+0.01 {
			t.Fatalf("subset %q savings %.3f outside [none, all] bracket",
				r.Scenario, r.Savings)
		}
	}
}

func TestP1BaselineVFTrend(t *testing.T) {
	e := env(t)
	points, err := RunBaselineVFSensitivity(e.DB4, favorableMixes(e), []float64{1.6, 2.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %d", len(points))
	}
	// A higher baseline VF leaves more headroom to scale down.
	if points[1].Avg <= points[0].Avg {
		t.Fatalf("savings at 2.4 GHz (%.3f) not above 1.6 GHz (%.3f)",
			points[1].Avg, points[0].Avg)
	}
}

func TestP2ScenarioAnalysis(t *testing.T) {
	e := env(t)
	an, err := RunScenarioAnalysis(e.DB4, e.MixesII, core.Model3)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Outcomes) != 16 {
		t.Fatalf("outcomes: %d", len(an.Outcomes))
	}
	// The paper: RM3 substantially improves savings in 12 of 16 mixes.
	improved := 0
	for _, o := range an.Outcomes {
		if o.RM3 >= o.RM2-1e-9 && o.RM3 >= 0.025 {
			improved++
		}
		// Small losses can occur in homogeneous mixes due to modeling
		// error (the paper reports the same effect); large regressions
		// would indicate a bug.
		if o.RM3 < o.RM2-0.03 {
			t.Fatalf("%s: RM3 (%.3f) clearly worse than RM2 (%.3f)",
				o.Mix.Name, o.RM3, o.RM2)
		}
	}
	if improved < 10 {
		t.Fatalf("RM3 effective in only %d/16 mixes", improved)
	}
	// The all-insensitive mix must be Scenario 4.
	for _, o := range an.Outcomes {
		if o.Mix.Name == "CI+PS/CI+PS" && o.Scenario != Scenario4 {
			t.Fatalf("all-CI+PS mix classified %v", o.Scenario)
		}
	}
	st := an.Stats()
	if len(st) != 4 {
		t.Fatalf("stats rows: %d", len(st))
	}
	if st[0].RM3Avg <= st[3].RM3Avg {
		t.Fatal("Scenario1 RM3 savings not above Scenario4")
	}
}

func TestP2ModelOrdering(t *testing.T) {
	e := env(t)
	rows, err := RunModelComparison(e.DB4, favorableMixes(e), core.SchemeCoordCoreDVFSCache)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	m1, m2, m3 := rows[0], rows[1], rows[2]
	// Paper II's central claim: better models => fewer interval violations.
	if !(m3.ViolationProb < m2.ViolationProb && m2.ViolationProb <= m1.ViolationProb+0.02) {
		t.Fatalf("violation probabilities not ordered: M1 %.3f M2 %.3f M3 %.3f",
			m1.ViolationProb, m2.ViolationProb, m3.ViolationProb)
	}
	if m3.ViolationProb > 0.5*m2.ViolationProb {
		t.Fatalf("Model3 violation probability %.3f not substantially below Model2 %.3f",
			m3.ViolationProb, m2.ViolationProb)
	}
}

func TestOverheadProbe(t *testing.T) {
	e := env(t)
	probe, err := NewOverheadProbe(e.DB4, core.SchemeCoordCoreDVFSCache, core.Model3)
	if err != nil {
		t.Fatal(err)
	}
	before := probe.Mgr.Invocations
	probe.Invoke()
	if probe.Mgr.Invocations != before+1 {
		t.Fatal("Invoke did not reach the manager")
	}
	iv, err := IntervalWallTime(e.DB4)
	if err != nil {
		t.Fatal(err)
	}
	if iv <= 0 {
		t.Fatal("degenerate interval wall time")
	}
}

func TestExecuteBaselineOverride(t *testing.T) {
	e := env(t)
	spec := RunSpec{
		DB: e.DB4, Mix: e.Mixes4[7], Scheme: core.SchemeCoordDVFSCache,
		Model: core.Model3, Oracle: true,
		BaselineFreqIdx: e.DB4.Sys.DVFS.ClosestIndex(2.4),
	}
	res, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings <= 0 {
		t.Fatalf("no savings with relaxed baseline: %.3f", res.EnergySavings)
	}
	// The shared database must not have been mutated.
	if e.DB4.Sys.BaselineFreqIdx != e.DB4.Sys.DVFS.ClosestIndex(2.0) {
		t.Fatal("Execute mutated the shared database")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer", "v")
	tab.AddNote("note %d", 7)
	s := tab.String()
	for _, want := range []string{"## T", "| a", "| bb", "1.50", "longer", "note 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		5e-9:  "5 ns",
		2e-6:  "2.0 us",
		3e-3:  "3.00 ms",
		0.005: "5.00 ms",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestQoSOfEmpty(t *testing.T) {
	q := QoSOf(nil)
	if q.Apps != 0 || q.Violations != 0 || q.AvgPct != 0 {
		t.Fatalf("empty QoS stats: %+v", q)
	}
}

func TestExecuteAllAggregatesErrors(t *testing.T) {
	e := env(t)
	good := RunSpec{
		DB: e.DB4, Mix: e.Mixes4[4], Scheme: core.SchemeCoordDVFSCache,
		Model: core.Model2, BaselineFreqIdx: -1,
	}
	badApp := good
	badApp.Mix = workload.Mix{Name: "badapp", Apps: []string{"nosuchbench", "mcf", "lbm", "milc"}}
	badCount := good
	badCount.Mix = workload.Mix{Name: "badcount", Apps: []string{"mcf"}}
	_, err := ExecuteAll([]RunSpec{good, badApp, badCount})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	// Every failing point must survive aggregation, not just the first.
	for _, want := range []string{"badapp", "badcount"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error %q is missing point %s", err, want)
		}
	}
	// The healthy point stays usable afterwards.
	if _, err := ExecuteAll([]RunSpec{good}); err != nil {
		t.Fatalf("healthy point failed after bad batch: %v", err)
	}
}

func TestSweepCacheAvoidsResimulation(t *testing.T) {
	e := env(t)
	mixes := favorableMixes(e)[:2]
	schemes := []core.Scheme{core.SchemePartitionOnly, core.SchemeCoordDVFSCache}

	first, err := RunEnergySavings(e.DB4, mixes, schemes, core.Model2, false)
	if err != nil {
		t.Fatal(err)
	}
	_, missesBefore := Engine().Cache().Stats()
	second, err := RunEnergySavings(e.DB4, mixes, schemes, core.Model2, false)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfter := Engine().Cache().Stats()
	if missesAfter != missesBefore {
		t.Fatalf("cached re-run simulated %d new points, want 0", missesAfter-missesBefore)
	}
	for i := range first.Schemes {
		for j := range first.Schemes[i].Results {
			if first.Schemes[i].Results[j] != second.Schemes[i].Results[j] {
				t.Fatalf("scheme %d mix %d: cached result differs", i, j)
			}
		}
	}
}
