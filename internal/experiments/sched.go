package experiments

import (
	"strings"

	"qosrma/internal/core"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/workload"
)

// SchedOutcome is one collocation policy's predicted and measured result.
type SchedOutcome struct {
	Policy     string
	Machines   [][]string
	Predicted  float64 // scheduler's proxy score (mean across machines)
	Measured   float64 // mean simulated savings across machines
	Violations int
}

// RunSchedulerGuidance (EXT.SCHED) validates the thesis' scheduler-guidance
// proposal: eight applications are split across two 4-core machines either
// adversarially (similar apps clustered) or by the characteristics-guided
// collocator, and both assignments are simulated under the coordinated
// manager.
func RunSchedulerGuidance(db *simdb.DB, apps []string) ([]SchedOutcome, error) {
	best, err := sched.Collocate(db, apps, 2)
	if err != nil {
		return nil, err
	}
	worst, err := sched.WorstCollocation(db, apps, 2)
	if err != nil {
		return nil, err
	}
	outcomes := []SchedOutcome{
		{Policy: "adversarial (similar apps clustered)", Machines: worst.Machines, Predicted: worst.Predicted},
		{Policy: "characteristics-guided", Machines: best.Machines, Predicted: best.Predicted},
	}
	// One batched sweep over every machine of every policy.
	var specs []RunSpec
	var owner []int
	for i := range outcomes {
		for _, machine := range outcomes[i].Machines {
			specs = append(specs, RunSpec{
				DB:     db,
				Mix:    workload.Mix{Name: "sched", Apps: machine},
				Scheme: core.SchemeCoordDVFSCache, Model: core.Model2,
				BaselineFreqIdx: -1,
			})
			owner = append(owner, i)
		}
	}
	results, err := ExecuteAll(specs)
	if err != nil {
		return nil, err
	}
	totals := make([]float64, len(outcomes))
	for k, res := range results {
		i := owner[k]
		totals[i] += res.EnergySavings
		outcomes[i].Violations += res.Violations
	}
	for i := range outcomes {
		outcomes[i].Measured = totals[i] / float64(len(outcomes[i].Machines))
	}
	return outcomes, nil
}

// SchedTable renders the guidance comparison.
func SchedTable(rows []SchedOutcome, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"policy", "machines", "predicted", "measured", "violations"}
	for _, r := range rows {
		parts := make([]string, len(r.Machines))
		for i, m := range r.Machines {
			parts[i] = "[" + strings.Join(m, ",") + "]"
		}
		t.AddRow(r.Policy, strings.Join(parts, " "), pct(r.Predicted), pct(r.Measured), r.Violations)
	}
	return t
}
