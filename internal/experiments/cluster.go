package experiments

import (
	"fmt"
	"io"

	"qosrma/internal/cluster"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/workload"
)

// ClusterOptions configures the EXT.CLUSTER open-system scenario: a fleet
// of machines fed by a deterministic Poisson arrival trace over the full
// benchmark population.
type ClusterOptions struct {
	Machines            int
	Jobs                int
	MeanInterarrivalSec float64
	Seed                uint64
	Slack               float64
	Scheme              core.Scheme
	Placement           cluster.Placement
	// Emitter optionally streams per-job rows as the scenario executes.
	Emitter cluster.Emitter
}

// DefaultClusterOptions returns a moderately loaded fleet: four machines,
// 32 jobs arriving every half second on average, 20% slack under RM2.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Machines:            4,
		Jobs:                32,
		MeanInterarrivalSec: 0.5,
		Seed:                1,
		Slack:               0.2,
		Scheme:              core.SchemeCoordDVFSCache,
	}
}

// RunCluster executes the open-system fleet scenario on the database. The
// analytical model follows the scheme (Model 2, or Model 3 for RM3), as in
// the closed-world experiments.
func RunCluster(db *simdb.DB, opt ClusterOptions) (*cluster.Result, error) {
	model := core.Model2
	if opt.Scheme == core.SchemeCoordCoreDVFSCache {
		model = core.Model3
	}
	jobs := workload.PoissonArrivals(db.BenchNames(), workload.ArrivalOptions{
		Jobs:                opt.Jobs,
		MeanInterarrivalSec: opt.MeanInterarrivalSec,
		Seed:                opt.Seed,
	})
	return cluster.Run(db, cluster.Spec{
		Machines:  opt.Machines,
		Scheme:    opt.Scheme,
		Model:     model,
		Slack:     opt.Slack,
		Jobs:      jobs,
		Placement: opt.Placement,
		Emitter:   opt.Emitter,
	})
}

// ClusterCompareRow is one placement policy's outcome on the shared
// arrival trace of the EXT.EQ comparison.
type ClusterCompareRow struct {
	Policy        string
	EnergySavings float64 // fleet aggregate: 1 - sum(E)/sum(baseline E)
	Violations    int     // jobs missing their slack-adjusted QoS
	MeanWaitSec   float64
	MakespanSec   float64
	// Fairness axis: the spread of per-job savings (1 - E/baselineE).
	MinJobSavings float64
	MaxJobSavings float64
	SpreadSavings float64 // max - min
	StdevSavings  float64
}

// RunClusterComparison (EXT.EQ) runs the identical open-system scenario
// under first-fit, greedy scored and equilibrium placement, and reports
// the three policies side by side on the energy, QoS-violation and
// fairness axes — the equilibrium-versus-greedy comparison the ROADMAP's
// integer-programming-games item asks for.
func RunClusterComparison(db *simdb.DB, opt ClusterOptions) ([]ClusterCompareRow, error) {
	policies := []cluster.Placement{cluster.PlaceFirstFit, cluster.PlaceScored, cluster.PlaceEquilibrium}
	rows := make([]ClusterCompareRow, 0, len(policies))
	for _, p := range policies {
		o := opt
		o.Placement = p
		o.Emitter = nil
		res, err := RunCluster(db, o)
		if err != nil {
			return nil, fmt.Errorf("placement %s: %w", p, err)
		}
		row := ClusterCompareRow{
			Policy:        p.String(),
			EnergySavings: res.EnergySavings,
			Violations:    res.Violations,
			MeanWaitSec:   res.MeanWaitSec,
			MakespanSec:   res.MakespanSec,
		}
		perJob := make([]float64, len(res.Jobs))
		for i, j := range res.Jobs {
			if j.App.BaselineEnergy > 0 {
				perJob[i] = 1 - j.App.Energy/j.App.BaselineEnergy
			}
		}
		row.MinJobSavings = stats.Min(perJob)
		row.MaxJobSavings = stats.Max(perJob)
		row.SpreadSavings = row.MaxJobSavings - row.MinJobSavings
		row.StdevSavings = stats.StdDev(perJob)
		rows = append(rows, row)
	}
	return rows, nil
}

// ClusterCompareTable renders the placement-policy comparison.
func ClusterCompareTable(rows []ClusterCompareRow, title string) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"Placement", "Fleet savings", "QoS violations",
			"Mean wait (s)", "Per-job savings min..max", "Spread", "Stdev"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, pct(r.EnergySavings), r.Violations,
			fmt.Sprintf("%.3f", r.MeanWaitSec),
			fmt.Sprintf("%s..%s", pct(r.MinJobSavings), pct(r.MaxJobSavings)),
			pct(r.SpreadSavings), pct(r.StdevSavings))
	}
	t.AddNote("Same arrival trace under every policy; spread/stdev are the fairness axis " +
		"(how unevenly the manager's savings land across jobs).")
	return t
}

// WriteClusterCompareCSV renders the comparison rows as CSV with stable
// formatting — the byte-diffed golden form (testdata/golden).
func WriteClusterCompareCSV(w io.Writer, rows []ClusterCompareRow) error {
	if _, err := fmt.Fprintln(w,
		"placement,fleet_savings,violations,mean_wait_sec,makespan_sec,min_job_savings,max_job_savings,spread,stdev"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.6f,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			r.Policy, r.EnergySavings, r.Violations, r.MeanWaitSec, r.MakespanSec,
			r.MinJobSavings, r.MaxJobSavings, r.SpreadSavings, r.StdevSavings); err != nil {
			return err
		}
	}
	return nil
}

// ClusterTable renders the fleet summary: one row per machine plus the
// aggregate open-system metrics as footnotes.
func ClusterTable(res *cluster.Result, title string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Machine", "Jobs", "Busy core-sec", "RMA invocations"},
	}
	for i, m := range res.Machines {
		t.AddRow(fmt.Sprintf("machine %d", i), m.Jobs, fmt.Sprintf("%.2f", m.BusyCoreSec), m.Invocations)
	}
	t.AddNote("%d jobs, %s placement, scheme %s: fleet energy savings %s, %d QoS violations.",
		len(res.Jobs), res.Placement, res.Scheme, pct(res.EnergySavings), res.Violations)
	t.AddNote("Queueing: mean wait %.3fs, max wait %.3fs, makespan %.2fs.",
		res.MeanWaitSec, res.MaxWaitSec, res.MakespanSec)
	t.AddNote("Interval audit: %d violations over %d intervals.",
		res.IntervalViolations, res.Intervals)
	return t
}
