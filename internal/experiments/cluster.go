package experiments

import (
	"fmt"

	"qosrma/internal/cluster"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/workload"
)

// ClusterOptions configures the EXT.CLUSTER open-system scenario: a fleet
// of machines fed by a deterministic Poisson arrival trace over the full
// benchmark population.
type ClusterOptions struct {
	Machines            int
	Jobs                int
	MeanInterarrivalSec float64
	Seed                uint64
	Slack               float64
	Scheme              core.Scheme
	Placement           cluster.Placement
	// Emitter optionally streams per-job rows as the scenario executes.
	Emitter cluster.Emitter
}

// DefaultClusterOptions returns a moderately loaded fleet: four machines,
// 32 jobs arriving every half second on average, 20% slack under RM2.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Machines:            4,
		Jobs:                32,
		MeanInterarrivalSec: 0.5,
		Seed:                1,
		Slack:               0.2,
		Scheme:              core.SchemeCoordDVFSCache,
	}
}

// RunCluster executes the open-system fleet scenario on the database. The
// analytical model follows the scheme (Model 2, or Model 3 for RM3), as in
// the closed-world experiments.
func RunCluster(db *simdb.DB, opt ClusterOptions) (*cluster.Result, error) {
	model := core.Model2
	if opt.Scheme == core.SchemeCoordCoreDVFSCache {
		model = core.Model3
	}
	jobs := workload.PoissonArrivals(db.BenchNames(), workload.ArrivalOptions{
		Jobs:                opt.Jobs,
		MeanInterarrivalSec: opt.MeanInterarrivalSec,
		Seed:                opt.Seed,
	})
	return cluster.Run(db, cluster.Spec{
		Machines:  opt.Machines,
		Scheme:    opt.Scheme,
		Model:     model,
		Slack:     opt.Slack,
		Jobs:      jobs,
		Placement: opt.Placement,
		Emitter:   opt.Emitter,
	})
}

// ClusterTable renders the fleet summary: one row per machine plus the
// aggregate open-system metrics as footnotes.
func ClusterTable(res *cluster.Result, title string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Machine", "Jobs", "Busy core-sec", "RMA invocations"},
	}
	for i, m := range res.Machines {
		t.AddRow(fmt.Sprintf("machine %d", i), m.Jobs, fmt.Sprintf("%.2f", m.BusyCoreSec), m.Invocations)
	}
	t.AddNote("%d jobs, %s placement, scheme %s: fleet energy savings %s, %d QoS violations.",
		len(res.Jobs), res.Placement, res.Scheme, pct(res.EnergySavings), res.Violations)
	t.AddNote("Queueing: mean wait %.3fs, max wait %.3fs, makespan %.2fs.",
		res.MeanWaitSec, res.MaxWaitSec, res.MakespanSec)
	t.AddNote("Interval audit: %d violations over %d intervals.",
		res.IntervalViolations, res.Intervals)
	return t
}
