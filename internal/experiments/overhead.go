package experiments

import (
	"fmt"

	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

// OverheadProbe is a ready-to-invoke resource manager plus per-core
// statistics, used by the overhead benchmarks (P1.OV, P2.OV): the paper
// reports the RMA cost in executed instructions per invocation; we measure
// wall time per Decide call and relate it to the 100M-instruction interval.
type OverheadProbe struct {
	Mgr   *core.Manager
	Stats []*core.IntervalStats
}

// NewOverheadProbe builds the probe for a database/scheme pair. The first
// sweep of Decide calls warms the per-core curves so that benchmark
// iterations measure the steady-state invocation cost (local optimization +
// global curve reduction), exactly the path the paper instruments.
func NewOverheadProbe(db *simdb.DB, scheme core.Scheme, model core.ModelKind) (*OverheadProbe, error) {
	n := db.Sys.NumCores
	benches := []string{"mcf", "soplex", "libquantum", "hmmer", "omnetpp", "sphinx3", "lbm", "namd"}
	mgr := core.NewManager(core.Config{
		Sys:    db.Sys,
		Power:  power.DefaultParams(db.Sys),
		Scheme: scheme,
		Model:  model,
	})
	probe := &OverheadProbe{Mgr: mgr}
	for i := 0; i < n; i++ {
		st, err := StatsFor(db, benches[i%len(benches)], 0, i)
		if err != nil {
			return nil, err
		}
		probe.Stats = append(probe.Stats, st)
	}
	for i, st := range probe.Stats {
		probe.Mgr.Decide(i, st)
	}
	return probe, nil
}

// Invoke performs one steady-state RMA invocation.
func (p *OverheadProbe) Invoke() {
	p.Mgr.Decide(0, p.Stats[0])
}

// StatsFor assembles realistic interval statistics for one benchmark phase
// at the baseline setting, as the RMA would observe them.
func StatsFor(db *simdb.DB, bench string, phase, coreID int) (*core.IntervalStats, error) {
	rec, err := db.Record(bench, phase)
	if err != nil {
		return nil, err
	}
	setting := db.Sys.BaselineSetting()
	pt, err := db.Perf(bench, phase, setting)
	if err != nil {
		return nil, err
	}
	return &core.IntervalStats{
		Core:          coreID,
		Setting:       setting,
		Instr:         trace.SliceInstructions,
		Cycles:        pt.Cycles,
		LLCAccesses:   pt.LLCAccesses,
		BranchMisses:  rec.BranchMPKI * trace.SliceInstructions / 1000,
		TotalMisses:   pt.Misses,
		LeadingMisses: pt.Leading,
		ATDMisses:     rec.SampledMisses,
		ATDLeading:    rec.SampledLeading,
	}, nil
}

// IntervalWallTime returns the wall time of one 100M-instruction interval
// at the baseline setting for a representative phase, used to express the
// measured overhead as a fraction of an interval.
func IntervalWallTime(db *simdb.DB) (float64, error) {
	pt, err := db.Perf("sphinx3", 0, db.Sys.BaselineSetting())
	if err != nil {
		return 0, err
	}
	return pt.Seconds, nil
}

// OverheadReport renders an overhead measurement into a table row set.
func OverheadReport(title string, rows [][2]string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"configuration", "cost per invocation"}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	t.AddNote("The paper reports <40K instructions (~0.04%% of a 100M-instruction interval) " +
		"for RM2 on 4 cores and 18K/40K/67K instructions for RM3 on 2/4/8 cores.")
	return t
}

// FormatSeconds renders a small duration human-readably.
func FormatSeconds(s float64) string {
	switch {
	case s < 1e-6:
		return fmt.Sprintf("%.0f ns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1f us", s*1e6)
	default:
		return fmt.Sprintf("%.2f ms", s*1e3)
	}
}
