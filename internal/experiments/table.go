package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table used by all experiment
// reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
