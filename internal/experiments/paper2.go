package experiments

import (
	"fmt"
	"strings"

	"qosrma/internal/core"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/sweep"
	"qosrma/internal/workload"
)

// Scenario is Paper II's grouping of category mixes by how the core-
// reconfiguration scheme compares with the DVFS+cache scheme.
type Scenario int

const (
	// Scenario1: RM3 considerably improves energy savings over RM2.
	Scenario1 Scenario = iota + 1
	// Scenario2: RM3 and RM2 save comparable energy.
	Scenario2
	// Scenario3: only RM3 saves considerable energy; RM2 is ineffective.
	Scenario3
	// Scenario4: both RM3 and RM2 are ineffective.
	Scenario4
)

// String names the scenario.
func (s Scenario) String() string { return fmt.Sprintf("Scenario%d", int(s)) }

// classifyScenario applies Paper II's outcome taxonomy to a measured pair
// of savings values.
func classifyScenario(rm2, rm3 float64) Scenario {
	const effective = 0.03 // below 3% counts as "not very effective"
	switch {
	case rm3 >= effective && rm2 >= effective && rm3 >= rm2+0.03:
		return Scenario1
	case rm3 >= effective && rm2 >= effective:
		return Scenario2
	case rm3 >= effective:
		return Scenario3
	default:
		return Scenario4
	}
}

// MixOutcome is the measured result for one Paper II category mix.
type MixOutcome struct {
	Mix           workload.Mix
	RM1, RM2, RM3 float64
	Scenario      Scenario
	Results       map[string]*rmasim.Result
}

// ScenarioAnalysis is the full 16-mix systematic analysis (P2.SC) plus the
// per-scenario aggregation (P2.S1-S4).
type ScenarioAnalysis struct {
	Outcomes []MixOutcome
}

// RunScenarioAnalysis executes RM1/RM2/RM3 on every Paper II mix as a
// Mixes × Schemes sweep grid.
func RunScenarioAnalysis(db *simdb.DB, mixes []workload.Mix, model core.ModelKind) (*ScenarioAnalysis, error) {
	res, err := Engine().Run(sweep.Spec{
		Name: "scenario-analysis", DB: db,
		Mixes: mixes,
		Schemes: []core.Scheme{
			core.SchemePartitionOnly,
			core.SchemeCoordDVFSCache,
			core.SchemeCoordCoreDVFSCache,
		},
		Models:           []core.ModelKind{model},
		BaselineFreqIdxs: []int{-1},
	})
	if err != nil {
		return nil, err
	}
	results := res.Results
	an := &ScenarioAnalysis{}
	for i, mix := range mixes {
		rm1 := results[i*3+0]
		rm2 := results[i*3+1]
		rm3 := results[i*3+2]
		an.Outcomes = append(an.Outcomes, MixOutcome{
			Mix:      mix,
			RM1:      rm1.EnergySavings,
			RM2:      rm2.EnergySavings,
			RM3:      rm3.EnergySavings,
			Scenario: classifyScenario(rm2.EnergySavings, rm3.EnergySavings),
			Results: map[string]*rmasim.Result{
				"RM1": rm1, "RM2": rm2, "RM3": rm3,
			},
		})
	}
	return an, nil
}

// ByScenario groups the outcomes.
func (a *ScenarioAnalysis) ByScenario() map[Scenario][]MixOutcome {
	m := make(map[Scenario][]MixOutcome)
	for _, o := range a.Outcomes {
		m[o.Scenario] = append(m[o.Scenario], o)
	}
	return m
}

// ScenarioStats aggregates one scenario's outcomes.
type ScenarioStats struct {
	Scenario       Scenario
	Mixes          int
	RM2Avg, RM2Max float64
	RM3Avg, RM3Max float64
}

// Stats returns per-scenario aggregates in scenario order.
func (a *ScenarioAnalysis) Stats() []ScenarioStats {
	grouped := a.ByScenario()
	var out []ScenarioStats
	for s := Scenario1; s <= Scenario4; s++ {
		outcomes := grouped[s]
		st := ScenarioStats{Scenario: s, Mixes: len(outcomes)}
		if len(outcomes) > 0 {
			var rm2s, rm3s []float64
			for _, o := range outcomes {
				rm2s = append(rm2s, o.RM2)
				rm3s = append(rm3s, o.RM3)
			}
			st.RM2Avg, st.RM2Max = stats.Mean(rm2s), stats.Max(rm2s)
			st.RM3Avg, st.RM3Max = stats.Mean(rm3s), stats.Max(rm3s)
		}
		out = append(out, st)
	}
	return out
}

// Table renders the 16-mix analysis.
func (a *ScenarioAnalysis) Table(title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"mix", "apps", "RM1", "RM2", "RM3", "scenario"}
	for _, o := range a.Outcomes {
		t.AddRow(o.Mix.Name, strings.Join(o.Mix.Apps, ","),
			pct(o.RM1), pct(o.RM2), pct(o.RM3), o.Scenario.String())
	}
	return t
}

// ScenarioTable renders the per-scenario aggregation.
func ScenarioTable(statsList []ScenarioStats, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"scenario", "mixes", "RM2 avg", "RM2 max", "RM3 avg", "RM3 max"}
	for _, s := range statsList {
		t.AddRow(s.Scenario.String(), s.Mixes,
			pct(s.RM2Avg), pct(s.RM2Max), pct(s.RM3Avg), pct(s.RM3Max))
	}
	return t
}

// ModelComparison reproduces Paper II's model study (P2.MD): the RM3 scheme
// driven by Model 1, 2 and 3, comparing energy savings and the per-interval
// QoS-violation statistics.
type ModelComparison struct {
	Model         core.ModelKind
	Savings       float64 // weighted average across mixes
	PerMix        []float64
	ViolationProb float64 // fraction of intervals violating QoS
	ViolationMean float64 // expected violation magnitude (percent)
	ViolationStd  float64
	QoS           QoSStats
}

// RunModelComparison executes the three models over the mixes as a
// Mixes × Models sweep grid.
func RunModelComparison(db *simdb.DB, mixes []workload.Mix, scheme core.Scheme) ([]ModelComparison, error) {
	kinds := []core.ModelKind{core.Model1, core.Model2, core.Model3}
	res, err := Engine().Run(sweep.Spec{
		Name: "model-comparison", DB: db,
		Mixes:            mixes,
		Schemes:          []core.Scheme{scheme},
		Models:           kinds,
		BaselineFreqIdxs: []int{-1},
	})
	if err != nil {
		return nil, err
	}
	var out []ModelComparison
	for _, kind := range kinds {
		results := res.Select(func(p RunSpec) bool { return p.Model == kind })
		mc := ModelComparison{Model: kind}
		var totalIntervals, totalViol int
		for _, r := range results {
			mc.PerMix = append(mc.PerMix, r.EnergySavings)
			totalIntervals += r.Intervals
			totalViol += r.IntervalViolations
		}
		mc.Savings = stats.Mean(mc.PerMix)
		if totalIntervals > 0 {
			mc.ViolationProb = float64(totalViol) / float64(totalIntervals)
		}
		mc.ViolationMean, mc.ViolationStd = pooledViolationStats(results)
		mc.QoS = QoSOf(results)
		out = append(out, mc)
	}
	return out, nil
}

// pooledViolationStats reconstructs the pooled mean/stddev of interval
// violation magnitudes from the per-run summaries.
func pooledViolationStats(results []*rmasim.Result) (mean, std float64) {
	var n int
	var sum, sumSq float64
	for _, r := range results {
		k := r.IntervalViolations
		if k == 0 {
			continue
		}
		m, s := r.ViolationMeanPct, r.ViolationStdPct
		n += k
		sum += m * float64(k)
		sumSq += (s*s + m*m) * float64(k)
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, sqrt(variance)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for reporting precision.
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// ModelTable renders the model comparison.
func ModelTable(rows []ModelComparison, title string) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"model", "avg savings", "interval viol prob", "E[viol]", "stddev", "app violations"}
	for _, r := range rows {
		t.AddRow(r.Model.String(), pct(r.Savings),
			fmt.Sprintf("%.2f%%", r.ViolationProb*100),
			fmt.Sprintf("%.2f%%", r.ViolationMean),
			fmt.Sprintf("%.2f%%", r.ViolationStd),
			fmt.Sprintf("%d/%d", r.QoS.Violations, r.QoS.Apps))
	}
	return t
}
