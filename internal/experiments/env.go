// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner produces a formatted table (for
// cmd/experiments and EXPERIMENTS.md) and structured results (for tests and
// benchmarks). The experiment index and the paper-reported reference values
// live in DESIGN.md and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/sweep"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

// Env bundles the simulation databases and benchmark characterizations the
// experiments share. Building it corresponds to the offline detailed-
// simulation step of the methodology (thesis Figure 2.1).
type Env struct {
	DB4, DB8  *simdb.DB
	Profiles4 []*workload.Profile
	Profiles8 []*workload.Profile
	Mixes4    []workload.Mix // the 20 Paper I four-core workloads
	Mixes8    []workload.Mix // the 10 Paper I eight-core workloads
	MixesII   []workload.Mix // the 16 Paper II category-pair mixes
}

// BuildEnv constructs the shared environment. It is deterministic. The 4-
// and 8-core databases are built together on one worker pool
// (simdb.BuildAll): their per-phase jobs interleave, SimPoint analyses are
// computed once, and — because the two systems share every
// profile-relevant parameter — each phase's detailed simulation runs once
// and serves both databases through the process-wide profile cache.
func BuildEnv() (*Env, error) {
	suite := trace.Suite()
	opt := simdb.DefaultBuildOptions()

	dbs, err := simdb.BuildAll([]arch.SystemConfig{
		arch.DefaultSystemConfig(4),
		arch.DefaultSystemConfig(8),
	}, suite, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: build databases: %w", err)
	}
	db4, db8 := dbs[0], dbs[1]
	p4, err := workload.CharacterizeAll(db4)
	if err != nil {
		return nil, err
	}
	p8, err := workload.CharacterizeAll(db8)
	if err != nil {
		return nil, err
	}
	return &Env{
		DB4:       db4,
		DB8:       db8,
		Profiles4: p4,
		Profiles8: p8,
		Mixes4:    workload.PaperIMixes(p4, 4, 20),
		Mixes8:    workload.PaperIMixes(p8, 8, 10),
		MixesII:   workload.PaperIIMixes(p4),
	}, nil
}

var (
	sharedOnce sync.Once
	sharedEnv  *Env
	sharedErr  error
)

// SharedEnv returns a lazily built process-wide environment, so tests,
// benchmarks and commands build the databases exactly once.
func SharedEnv() (*Env, error) {
	sharedOnce.Do(func() { sharedEnv, sharedErr = BuildEnv() })
	return sharedEnv, sharedErr
}

// RunSpec describes one simulation: a workload under one manager config.
// It is the sweep engine's point type; the alias keeps the historical
// experiments API while the engine owns execution.
type RunSpec = sweep.RunSpec

// defaultEngine is the process-wide sweep engine. Sharing one engine (and
// therefore one result cache) across every experiment runner means
// overlapping grids — e.g. the relaxation sweep's zero-slack points and
// the energy-savings comparison — are simulated exactly once per process.
var defaultEngine = sweep.NewEngine()

// Engine returns the process-wide sweep engine the experiment runners
// execute on (commands use it to install emitters and report cache
// statistics).
func Engine() *sweep.Engine { return defaultEngine }

// Execute runs one spec serially, bypassing the engine's cache.
func Execute(spec RunSpec) (*rmasim.Result, error) { return sweep.Execute(spec) }

// ExecuteAll runs the specs on the shared engine's bounded worker pool and
// returns results in input order. Duplicate points are simulated once, and
// every failing point contributes to the aggregated error.
func ExecuteAll(specs []RunSpec) ([]*rmasim.Result, error) {
	return defaultEngine.ExecuteAll(specs, "")
}
