// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner produces a formatted table (for
// cmd/experiments and EXPERIMENTS.md) and structured results (for tests and
// benchmarks). The experiment index and the paper-reported reference values
// live in DESIGN.md and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/rmasim"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
	"qosrma/internal/workload"
)

// Env bundles the simulation databases and benchmark characterizations the
// experiments share. Building it corresponds to the offline detailed-
// simulation step of the methodology (thesis Figure 2.1).
type Env struct {
	DB4, DB8  *simdb.DB
	Profiles4 []*workload.Profile
	Profiles8 []*workload.Profile
	Mixes4    []workload.Mix // the 20 Paper I four-core workloads
	Mixes8    []workload.Mix // the 10 Paper I eight-core workloads
	MixesII   []workload.Mix // the 16 Paper II category-pair mixes
}

// BuildEnv constructs the shared environment. It is deterministic.
func BuildEnv() (*Env, error) {
	suite := trace.Suite()
	opt := simdb.DefaultBuildOptions()

	db4, err := simdb.Build(arch.DefaultSystemConfig(4), suite, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: 4-core db: %w", err)
	}
	db8, err := simdb.Build(arch.DefaultSystemConfig(8), suite, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: 8-core db: %w", err)
	}
	p4, err := workload.CharacterizeAll(db4)
	if err != nil {
		return nil, err
	}
	p8, err := workload.CharacterizeAll(db8)
	if err != nil {
		return nil, err
	}
	return &Env{
		DB4:       db4,
		DB8:       db8,
		Profiles4: p4,
		Profiles8: p8,
		Mixes4:    workload.PaperIMixes(p4, 4, 20),
		Mixes8:    workload.PaperIMixes(p8, 8, 10),
		MixesII:   workload.PaperIIMixes(p4),
	}, nil
}

var (
	sharedOnce sync.Once
	sharedEnv  *Env
	sharedErr  error
)

// SharedEnv returns a lazily built process-wide environment, so tests,
// benchmarks and commands build the databases exactly once.
func SharedEnv() (*Env, error) {
	sharedOnce.Do(func() { sharedEnv, sharedErr = BuildEnv() })
	return sharedEnv, sharedErr
}

// RunSpec describes one simulation: a workload under one manager config.
type RunSpec struct {
	DB     *simdb.DB
	Mix    workload.Mix
	Scheme core.Scheme
	Model  core.ModelKind
	Oracle bool
	// Slack is the uniform QoS relaxation; PerCoreSlack overrides it.
	Slack        float64
	PerCoreSlack []float64
	// BaselineFreqIdx overrides the system baseline frequency (-1 = keep).
	BaselineFreqIdx int
	// Feedback enables the phase-history MLP table extension.
	Feedback bool
	// SwitchScale scales all reconfiguration overheads (0 = keep as-is);
	// used by the overhead-sensitivity ablation.
	SwitchScale float64
	// PerCoreGBps overrides the per-core memory-bandwidth cap in the
	// ground-truth model (0 = keep the system default); used by the
	// bandwidth ablation.
	PerCoreGBps float64
}

// Execute runs one spec.
func Execute(spec RunSpec) (*rmasim.Result, error) {
	db := spec.DB
	needClone := (spec.BaselineFreqIdx >= 0 && spec.BaselineFreqIdx != db.Sys.BaselineFreqIdx) ||
		spec.SwitchScale > 0 || spec.PerCoreGBps > 0
	if needClone {
		// The database contents (profiles) are independent of these
		// parameters; only the derived model changes, so a shallow copy
		// with a modified system config is sufficient.
		clone := *db
		if spec.BaselineFreqIdx >= 0 {
			clone.Sys.BaselineFreqIdx = spec.BaselineFreqIdx
		}
		if spec.SwitchScale > 0 {
			sw := &clone.Sys.Switch
			sw.DVFSTransNs *= spec.SwitchScale
			sw.CoreResizeNs *= spec.SwitchScale
			sw.WayMigrateNs *= spec.SwitchScale
			sw.DVFSTransJ *= spec.SwitchScale
			sw.CoreResizeJ *= spec.SwitchScale
			sw.WayMigrateJ *= spec.SwitchScale
		}
		if spec.PerCoreGBps > 0 {
			clone.Sys.Mem.PerCoreGBps = spec.PerCoreGBps
		}
		db = &clone
	}
	n := db.Sys.NumCores
	slack := spec.PerCoreSlack
	if slack == nil && spec.Slack > 0 {
		slack = make([]float64, n)
		for i := range slack {
			slack[i] = spec.Slack
		}
	}
	mgr := core.NewManager(core.Config{
		Sys:      db.Sys,
		Power:    power.DefaultParams(db.Sys),
		Scheme:   spec.Scheme,
		Model:    spec.Model,
		Slack:    slack,
		Feedback: spec.Feedback,
	})
	opt := rmasim.DefaultOptions()
	opt.Oracle = spec.Oracle
	return rmasim.Run(db, spec.Mix.Apps, mgr, opt)
}

// ExecuteAll runs the specs concurrently with a bounded worker pool and
// returns results in input order.
func ExecuteAll(specs []RunSpec) ([]*rmasim.Result, error) {
	results := make([]*rmasim.Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = Execute(spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
