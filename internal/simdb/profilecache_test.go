package simdb

import (
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/simpoint"
	"qosrma/internal/trace"
)

// naiveSimulatePhase is the historical build-side implementation the fused
// pipeline replaced: one warmed exact-ATD pass for distances, a second
// warmed set-sampled ATD pass, and one full AnalyzeMLP stream scan per
// (core size, way allocation). The property tests pin the fused, cached
// pipeline bit-identical to it.
func naiveSimulatePhase(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams) *PhaseRecord {
	rep := an.Representative[phase]
	behavior := b.SliceBehaviorSpec(rep)
	behaviorIdx := b.SliceBehavior[rep]
	stream := behavior.Generate(b.StreamSeed(behaviorIdx), sp)
	scale := stream.ScaleToSlice()

	assoc := sys.LLC.Assoc
	sets := sys.LLC.Sets

	dists := cache.Distances(sets, assoc, stream.Warmup, stream.Measured)

	sampled := cache.NewATD(sets, assoc, sys.LLC.SampleIn)
	for _, a := range stream.Warmup {
		sampled.Access(a.Line)
	}
	sampled.ResetCounters()
	for _, a := range stream.Measured {
		sampled.Access(a.Line)
	}

	rec := &PhaseRecord{
		IlpIPC:         behavior.IlpIPC,
		BranchMPKI:     behavior.BranchMPKI,
		APKI:           float64(len(stream.Measured)) / stream.WindowInstr * 1000,
		Misses:         make([]float64, assoc+1),
		SampledMisses:  make([]float64, assoc+1),
		Leading:        make([][]float64, arch.NumCoreSizes),
		SampledLeading: make([][]float64, arch.NumCoreSizes),
		Weight:         an.Weight[phase],
		RepSlice:       rep,
	}
	for w := 0; w <= assoc; w++ {
		rec.Misses[w] = float64(cache.MissCount(dists, w)) * scale
		rec.SampledMisses[w] = sampled.Misses(w) * scale
	}
	for c := 0; c < arch.NumCoreSizes; c++ {
		cp := sys.Cores[c]
		rec.Leading[c] = make([]float64, assoc+1)
		rec.SampledLeading[c] = make([]float64, assoc+1)
		for w := 0; w <= assoc; w++ {
			r := cache.AnalyzeMLP(stream.Measured, dists, w, cp.ROB, cp.MSHRs)
			lead := float64(r.LeadingMisses) * scale
			rec.Leading[c][w] = lead
			if exactM := rec.Misses[w]; exactM > 0 {
				rec.SampledLeading[c][w] = lead * rec.SampledMisses[w] / exactM
			}
		}
	}
	return rec
}

func recordsEqual(t *testing.T, label string, got, want *PhaseRecord) {
	t.Helper()
	if got.IlpIPC != want.IlpIPC || got.BranchMPKI != want.BranchMPKI ||
		got.APKI != want.APKI || got.Weight != want.Weight || got.RepSlice != want.RepSlice {
		t.Fatalf("%s: scalar fields differ:\ngot  %+v\nwant %+v", label, got, want)
	}
	if len(got.Misses) != len(want.Misses) {
		t.Fatalf("%s: profile length %d != %d", label, len(got.Misses), len(want.Misses))
	}
	for w := range want.Misses {
		if got.Misses[w] != want.Misses[w] {
			t.Fatalf("%s: Misses[%d] = %v, want %v", label, w, got.Misses[w], want.Misses[w])
		}
		if got.SampledMisses[w] != want.SampledMisses[w] {
			t.Fatalf("%s: SampledMisses[%d] = %v, want %v", label, w, got.SampledMisses[w], want.SampledMisses[w])
		}
	}
	for c := range want.Leading {
		for w := range want.Leading[c] {
			if got.Leading[c][w] != want.Leading[c][w] {
				t.Fatalf("%s: Leading[%d][%d] = %v, want %v", label, c, w,
					got.Leading[c][w], want.Leading[c][w])
			}
			if got.SampledLeading[c][w] != want.SampledLeading[c][w] {
				t.Fatalf("%s: SampledLeading[%d][%d] = %v, want %v", label, c, w,
					got.SampledLeading[c][w], want.SampledLeading[c][w])
			}
		}
	}
}

// BenchmarkSimulatePhaseNaive measures the retained naive reference
// implementation (per-(c,w) AnalyzeMLP passes + two warmed ATD passes) on
// the default sample sizes — the before side of the fused pipeline's
// speedup; the after side is the root package's BenchmarkSimulatePhase.
func BenchmarkSimulatePhaseNaive(b *testing.B) {
	sys := arch.DefaultSystemConfig(4)
	bench := trace.ByName("gcc")
	an := simpoint.Analyze(bench, simpoint.DefaultOptions())
	sp := trace.DefaultSampleParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveSimulatePhase(sys, bench, an, 0, sp)
	}
}

// TestFusedPipelineMatchesNaive pins every record of a built database —
// fused profiler, profile cache and deep-directory truncation included —
// bit-identical to the historical per-(c,w) two-ATD implementation, for
// both a 16-way and a 32-way system (the latter exercising sharing of the
// deep profile, the former its truncated view).
func TestFusedPipelineMatchesNaive(t *testing.T) {
	benches := []*trace.Benchmark{trace.ByName("mcf"), trace.ByName("libquantum"), trace.ByName("gcc")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 8000, WarmupAccesses: 2500}

	sys4 := arch.DefaultSystemConfig(4)
	sys8 := arch.DefaultSystemConfig(8)
	dbs, err := BuildAll([]arch.SystemConfig{sys4, sys8}, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	for si, sys := range []arch.SystemConfig{sys4, sys8} {
		db := dbs[si]
		for _, bd := range db.Benches {
			for p := range bd.Phases {
				want := naiveSimulatePhase(sys, trace.ByName(bd.Name), bd.Analysis, p, opt.Sample)
				recordsEqual(t, bd.Name, bd.Phases[p], want)

				// The exported uncached kernel agrees too.
				got := SimulatePhase(sys, trace.ByName(bd.Name), bd.Analysis, p, opt.Sample)
				recordsEqual(t, bd.Name+"/uncached", got, want)
			}
		}
	}
}

// TestProfileCacheSharedAcrossGeometries verifies the tentpole sharing
// property: the default 4- and 8-core systems differ only in LLC
// associativity (a profile-irrelevant parameter thanks to deep profiling),
// so building both must profile each phase exactly once.
func TestProfileCacheSharedAcrossGeometries(t *testing.T) {
	ResetProfileCache()
	benches := []*trace.Benchmark{trace.ByName("hmmer"), trace.ByName("milc")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 4000, WarmupAccesses: 1000}

	dbs, err := BuildAll([]arch.SystemConfig{arch.DefaultSystemConfig(4), arch.DefaultSystemConfig(8)}, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	phases := dbs[0].NumRecords()
	if dbs[1].NumRecords() != phases {
		t.Fatalf("phase counts differ: %d vs %d", phases, dbs[1].NumRecords())
	}
	hits, computes := ProfileCacheStats()
	if computes != uint64(phases) {
		t.Fatalf("profiled %d times for %d shared phases (hits %d)", computes, phases, hits)
	}
	if hits != uint64(phases) {
		t.Fatalf("second database hit the cache %d times, want %d", hits, phases)
	}

	// A later, separate build of either system is served fully from cache.
	if _, err := Build(arch.DefaultSystemConfig(4), benches, opt); err != nil {
		t.Fatal(err)
	}
	_, computesAfter := ProfileCacheStats()
	if computesAfter != computes {
		t.Fatalf("rebuild recomputed %d profiles, want 0", computesAfter-computes)
	}
}

// TestProfileCacheMissesOnProfileRelevantChange verifies the key covers
// exactly the profile-relevant configuration: changing the ATD sampling
// factor or a core's MSHR count must recompute, while the
// bandwidth-override ablation — which changes the compiled tables but not
// the underlying profiles, mirroring Recompiled's sharing semantics —
// must not.
func TestProfileCacheMissesOnProfileRelevantChange(t *testing.T) {
	ResetProfileCache()
	benches := []*trace.Benchmark{trace.ByName("lbm")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 4000, WarmupAccesses: 1000}

	base := arch.DefaultSystemConfig(4)
	if _, err := Build(base, benches, opt); err != nil {
		t.Fatal(err)
	}
	_, computes0 := ProfileCacheStats()

	// Perf-neutral for profiling: the bandwidth-override ablation.
	bw := base
	bw.Mem.PerCoreGBps = 3
	if _, err := Build(bw, benches, opt); err != nil {
		t.Fatal(err)
	}
	_, computes1 := ProfileCacheStats()
	if computes1 != computes0 {
		t.Fatalf("bandwidth override recomputed %d profiles; profiles are bandwidth-independent", computes1-computes0)
	}

	// Profile-relevant: ATD set-sampling density (the AB.SAMP ablation).
	samp := base
	samp.LLC.SampleIn = 128
	if _, err := Build(samp, benches, opt); err != nil {
		t.Fatal(err)
	}
	_, computes2 := ProfileCacheStats()
	if computes2 == computes1 {
		t.Fatal("changing SampleIn did not recompute profiles")
	}

	// Profile-relevant: a core size's MSHR count (bounds MLP).
	mshr := base
	mshr.Cores[arch.SizeLarge].MSHRs = 32
	if _, err := Build(mshr, benches, opt); err != nil {
		t.Fatal(err)
	}
	_, computes3 := ProfileCacheStats()
	if computes3 == computes2 {
		t.Fatal("changing MSHRs did not recompute profiles")
	}
}

// TestProfileCacheSingleFlight races many concurrent builds of the same
// configuration (run under -race in CI): every phase must be profiled
// exactly once, with all other callers waiting on the in-flight
// computation, and all results must agree.
func TestProfileCacheSingleFlight(t *testing.T) {
	ResetProfileCache()
	benches := []*trace.Benchmark{trace.ByName("soplex"), trace.ByName("astar")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 3000, WarmupAccesses: 800}
	sys := arch.DefaultSystemConfig(4)

	const callers = 8
	dbs := make([]*DB, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dbs[i], errs[i] = Build(sys, benches, opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	_, computes := ProfileCacheStats()
	if want := uint64(dbs[0].NumRecords()); computes != want {
		t.Fatalf("%d profile computations for %d phases under %d concurrent builds",
			computes, want, callers)
	}
	for i := 1; i < callers; i++ {
		for bi, bd := range dbs[0].Benches {
			for p := range bd.Phases {
				recordsEqual(t, bd.Name, dbs[i].Benches[bi].Phases[p], bd.Phases[p])
			}
		}
	}
}

// TestProfileCacheUpgradesDepth verifies the replace-on-deeper-request
// path: a shallow build first, then a deeper-LLC build of the same
// profile key must recompute (once) and still serve both depths.
func TestProfileCacheUpgradesDepth(t *testing.T) {
	ResetProfileCache()
	benches := []*trace.Benchmark{trace.ByName("bwaves")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 3000, WarmupAccesses: 800}

	db4, err := Build(arch.DefaultSystemConfig(4), benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, computes0 := ProfileCacheStats()
	db8, err := Build(arch.DefaultSystemConfig(8), benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, computes1 := ProfileCacheStats()
	if computes1 != 2*computes0 {
		t.Fatalf("deeper rebuild computed %d profiles, want %d", computes1-computes0, computes0)
	}
	// The deep profile's truncation serves the shallow system afterwards.
	db4b, err := Build(arch.DefaultSystemConfig(4), benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, computes2 := ProfileCacheStats()
	if computes2 != computes1 {
		t.Fatalf("shallow rebuild after deep recomputed %d profiles, want 0", computes2-computes1)
	}
	for bi, bd := range db4.Benches {
		for p := range bd.Phases {
			recordsEqual(t, bd.Name, db4b.Benches[bi].Phases[p], bd.Phases[p])
		}
	}
	if db8.NumRecords() != db4.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", db8.NumRecords(), db4.NumRecords())
	}
}
