// Package simdb implements the simulation-results database of the thesis
// methodology (Figure 2.1): detailed simulation is performed once, offline
// and in parallel, for every (benchmark, phase) pair, and the results are
// collected in a database that the co-phase RMA simulator queries for every
// resource setting.
//
// The database is *compiled*: at Build time the interval timing model and
// the power model are evaluated over the entire (core size × DVFS level ×
// ways) setting lattice for every phase, so that the query hot path —
// db.PerfAt(bench, phase, latticeIndex) — is a bounds-checked array read
// (index arithmetic, no model re-evaluation, no map lookups, no error
// plumbing). Benchmarks are interned: callers resolve a name to a BenchID
// once and use dense indices thereafter. The string-keyed API (Perf,
// Record, PhaseTrace) remains as a thin compatibility wrapper, and
// ReferencePerf retains the on-the-fly model evaluation the tables are
// compiled from.
//
// The build side is fused and cached. Profiling one phase used to walk the
// ~48k-access sample stream once per (core size, way allocation) point —
// ~51 passes for a 16-way LLC, ~99 for 32 ways — plus a second warmed ATD
// pass for the set-sampled profile. It now runs cache.ProfileStream: one
// exact-ATD pass for stack distances and one fused epoch-structured pass
// that yields the full leading-miss surface Leading[c][w] and both miss
// histograms at once, bit-identical to the naive loops (property-tested).
// Because a phase profile depends only on profile-relevant configuration
// (LLC sets + sampling, per-size ROB/MSHR, the behaviour and stream seed)
// — not on DVFS, memory or power parameters — profiles live in a
// process-wide single-flight cache (profilecache.go) and are shared across
// databases: BuildAll profiles each phase once for the 4- and 8-core
// systems together, and repeated builds in tests, sweeps and benchmarks
// hit the cache. SimPoint analyses, equally system-independent, are
// memoized the same way.
package simdb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/power"
	"qosrma/internal/simpoint"
	"qosrma/internal/timing"
	"qosrma/internal/trace"
)

// BenchID is a dense interned benchmark identifier: the index of the
// benchmark in DB.Benches.
type BenchID int

// PhaseKey identifies one benchmark phase by name (compatibility type for
// the string-keyed API).
type PhaseKey struct {
	Bench string
	Phase int
}

// PhaseRecord holds the detailed-simulation results for one phase's
// representative slice, scaled to one 100M-instruction interval. These are
// the *model inputs*; the compiled per-setting outcomes live in the
// benchmark's PerfTables.
type PhaseRecord struct {
	// Program characteristics exposed through performance counters.
	IlpIPC     float64
	BranchMPKI float64
	APKI       float64 // LLC accesses per kilo-instruction

	// Misses[w]: LLC misses per interval with w ways (exact ATD profile).
	Misses []float64
	// SampledMisses[w]: the same profile measured by the set-sampled ATD —
	// what the resource manager actually observes.
	SampledMisses []float64
	// Leading[c][w]: leading (non-overlapped) misses per interval for core
	// size c and w ways (exact MLP-ATD profile).
	Leading [][]float64
	// SampledLeading[c][w]: the noisy observable counterpart.
	SampledLeading [][]float64

	Weight   float64 // phase weight from SimPoint
	RepSlice int     // representative slice index
}

// BenchData is one interned benchmark: its SimPoint analysis, the per-phase
// detailed-simulation records, and the compiled per-phase performance
// tables over the setting lattice.
type BenchData struct {
	Name     string
	Analysis *simpoint.Analysis
	// Phases[p] is the detailed-simulation record of phase p.
	Phases []*PhaseRecord
	// PerfTables[p][i] is the precomputed outcome of one interval of phase
	// p at the setting with lattice index i.
	PerfTables [][]PerfPoint
}

// DB is the simulation-results database for one system configuration.
type DB struct {
	Sys     arch.SystemConfig
	Power   power.Params
	Lattice arch.Lattice
	Benches []*BenchData

	byName map[string]BenchID // rebuilt on load; not serialized
	memo   *recompileMemo     // shared by shallow copies; not serialized

	// baseIdx1 caches the lattice index of the baseline setting, stored +1
	// so zero means "not computed" (hand-constructed test databases never
	// go through reindex). Refreshed by WithSys when the baseline moves.
	baseIdx1 int
}

// recompileMemo memoizes bandwidth-override recompilations. It hangs off
// the source database (shared by every shallow copy of it), so the cached
// tables live exactly as long as the database they derive from.
type recompileMemo struct {
	mu     sync.Mutex
	byGBps map[float64]*DB
}

// PerfPoint is the outcome of one interval at one setting — the quantity
// the RMA simulator schedules and accounts with.
type PerfPoint struct {
	Instr       float64
	Cycles      float64
	Seconds     float64
	IPS         float64
	TPI         float64
	EPI         float64
	Energy      power.Breakdown
	Misses      float64
	Leading     float64
	LLCAccesses float64
}

// BuildOptions controls database construction.
type BuildOptions struct {
	Sample   trace.SampleParams
	SimPoint simpoint.Options
	Workers  int
	// ProfileAssoc optionally profiles phases with a deeper tag directory
	// than the system's LLC associativity, so the cached profile can also
	// serve later builds of larger geometries (LRU stack distances are
	// capacity-independent, making the deep profile's w <= Assoc prefix
	// bit-identical to a native-depth profile). Zero, or any value below
	// the system associativity, means the system's associativity. BuildAll
	// raises it to the deepest LLC among its systems automatically.
	ProfileAssoc int
}

// DefaultBuildOptions returns the standard build configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Sample:   trace.DefaultSampleParams(),
		SimPoint: simpoint.DefaultOptions(),
		Workers:  runtime.GOMAXPROCS(0),
	}
}

// Build runs SimPoint analysis on every benchmark, detailed simulation of
// every (benchmark, phase) pair across the configuration space, and table
// compilation over the setting lattice, using a parallel worker pool. The
// result is deterministic and independent of the worker count.
func Build(sys arch.SystemConfig, benches []*trace.Benchmark, opt BuildOptions) (*DB, error) {
	dbs, err := BuildAll([]arch.SystemConfig{sys}, benches, opt)
	if err != nil {
		return nil, err
	}
	return dbs[0], nil
}

// BuildAll builds one database per system configuration on a single shared
// worker pool, interleaving the per-phase jobs of all systems. SimPoint
// analyses are computed once per benchmark (they are system-independent),
// and phases are profiled once at the deepest LLC associativity among the
// systems, so configurations that share profile-relevant parameters — such
// as the default 4- and 8-core machines — share one detailed-simulation
// pass per phase through the process-wide profile cache. The result is
// deterministic and independent of the worker count and of cache state.
func BuildAll(systems []arch.SystemConfig, benches []*trace.Benchmark, opt BuildOptions) ([]*DB, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("simdb: no system configurations")
	}
	profileAssoc := opt.ProfileAssoc
	for _, sys := range systems {
		if err := sys.Validate(); err != nil {
			return nil, err
		}
		if sys.LLC.Assoc > profileAssoc {
			profileAssoc = sys.LLC.Assoc
		}
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}

	// SimPoint analysis is independent of the system configuration:
	// analyze each benchmark once, shared by every database built here
	// (and by later builds, through the memo).
	analyses := make([]*simpoint.Analysis, len(benches))
	for i, b := range benches {
		analyses[i] = analyzeCached(b, opt.SimPoint)
	}

	type job struct {
		db    *DB
		bench *trace.Benchmark
		data  *BenchData
		phase int
	}
	dbs := make([]*DB, len(systems))
	var jobs []job
	for si := range systems {
		db := &DB{
			Sys:     systems[si],
			Power:   power.DefaultParams(systems[si]),
			Lattice: systems[si].Lattice(),
			memo:    newRecompileMemo(),
		}
		for bi, b := range benches {
			an := analyses[bi]
			bd := &BenchData{
				Name:       b.Name,
				Analysis:   an,
				Phases:     make([]*PhaseRecord, an.NumPhases),
				PerfTables: make([][]PerfPoint, an.NumPhases),
			}
			db.Benches = append(db.Benches, bd)
			for p := 0; p < an.NumPhases; p++ {
				jobs = append(jobs, job{db: db, bench: b, data: bd, phase: p})
			}
		}
		db.reindex()
		dbs[si] = db
	}

	// Every job writes a distinct (system, bench, phase) slot, so the pool
	// needs no locking; the semaphore only bounds parallelism. Jobs from
	// different systems that share a phase profile rendezvous in the
	// profile cache's single-flight entries.
	var (
		wg  sync.WaitGroup
		sem = make(chan struct{}, opt.Workers)
	)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := simulatePhase(j.db.Sys, j.bench, j.data.Analysis, j.phase, opt.Sample, profileAssoc)
			j.data.Phases[j.phase] = rec
			j.data.PerfTables[j.phase] = compileTable(&j.db.Sys, j.db.Power, j.db.Lattice, rec)
		}(j)
	}
	wg.Wait()
	return dbs, nil
}

// analysisKey memoizes SimPoint analyses by benchmark identity. Suite
// benchmarks are process-wide immutable singletons, so pointer identity is
// the right notion.
type analysisKey struct {
	bench *trace.Benchmark
	opt   simpoint.Options
}

type analysisEntry struct {
	once sync.Once
	an   *simpoint.Analysis
}

var analysisCache sync.Map // analysisKey -> *analysisEntry

// analyzeCached returns the (deterministic) SimPoint analysis of b,
// computing it at most once per process for each (benchmark, options).
// Only the interned suite singletons are memoized: their pointer keys are
// a fixed, bounded population, whereas hand-constructed benchmarks would
// add one permanently retained entry per construction (a leak in
// long-lived processes), so those are analyzed directly.
func analyzeCached(b *trace.Benchmark, opt simpoint.Options) *simpoint.Analysis {
	if trace.ByName(b.Name) != b {
		return simpoint.Analyze(b, opt)
	}
	e, _ := analysisCache.LoadOrStore(analysisKey{bench: b, opt: opt}, &analysisEntry{})
	ae := e.(*analysisEntry)
	ae.once.Do(func() { ae.an = simpoint.Analyze(b, opt) })
	return ae.an
}

// reindex rebuilds the name → BenchID intern table and the in-memory-only
// state gob does not carry.
func (db *DB) reindex() {
	db.byName = make(map[string]BenchID, len(db.Benches))
	for i, bd := range db.Benches {
		db.byName[bd.Name] = BenchID(i)
	}
	if db.memo == nil {
		db.memo = newRecompileMemo()
	}
	db.baseIdx1 = db.Lattice.Index(db.Sys.BaselineSetting()) + 1
}

// BaselineIdx returns the lattice index of the system's baseline setting.
// It is cached at build/load time so the RMA simulator's scoring loops
// never re-derive it; a database constructed by hand (tests) computes it
// on the fly without mutating shared state.
func (db *DB) BaselineIdx() int {
	if db.baseIdx1 != 0 {
		return db.baseIdx1 - 1
	}
	return db.Lattice.Index(db.Sys.BaselineSetting())
}

// WithSys returns a shallow copy of the database bound to sys, refreshing
// the derived cached state (the baseline lattice index). The copy shares
// every compiled table, so sys must differ only in parameters that do not
// change them — baseline setting, switch costs; overrides that change the
// ground-truth model go through Recompiled/RecompiledCached instead.
func (db *DB) WithSys(sys arch.SystemConfig) *DB {
	out := *db
	out.Sys = sys
	out.baseIdx1 = out.Lattice.Index(sys.BaselineSetting()) + 1
	return &out
}

func newRecompileMemo() *recompileMemo {
	return &recompileMemo{byGBps: make(map[float64]*DB)}
}

// compileTable evaluates the detailed model at every lattice point.
func compileTable(sys *arch.SystemConfig, pw power.Params, lat arch.Lattice, rec *PhaseRecord) []PerfPoint {
	tab := make([]PerfPoint, lat.Len())
	for i := range tab {
		tab[i] = evalPerf(sys, pw, rec, lat.Setting(i))
	}
	return tab
}

// Recompiled returns a database that shares this one's detailed-simulation
// records but evaluates them under a different system configuration: the
// per-phase performance tables are recompiled against sys. Used by the
// sweep engine for overrides (e.g. the per-core memory-bandwidth ablation)
// that change the derived model but not the underlying profiles. The
// technology power parameters are carried over unchanged, matching the
// historical shallow-clone semantics.
func (db *DB) Recompiled(sys arch.SystemConfig) *DB {
	out := &DB{
		Sys:     sys,
		Power:   db.Power,
		Lattice: sys.Lattice(),
		Benches: make([]*BenchData, len(db.Benches)),
		memo:    newRecompileMemo(),
	}
	var (
		wg  sync.WaitGroup
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for i, bd := range db.Benches {
		nbd := &BenchData{
			Name:       bd.Name,
			Analysis:   bd.Analysis,
			Phases:     bd.Phases,
			PerfTables: make([][]PerfPoint, len(bd.Phases)),
		}
		out.Benches[i] = nbd
		for p, rec := range bd.Phases {
			wg.Add(1)
			sem <- struct{}{}
			go func(p int, rec *PhaseRecord) {
				defer wg.Done()
				defer func() { <-sem }()
				nbd.PerfTables[p] = compileTable(&out.Sys, out.Power, out.Lattice, rec)
			}(p, rec)
		}
	}
	wg.Wait()
	out.reindex()
	return out
}

// RecompiledCached is Recompiled memoized on the per-core bandwidth cap —
// the only system override in this codebase that changes the compiled
// tables. Repeated calls with the same cap (e.g. a sweep grid running many
// mixes against a few bandwidth variants) compile once; perf-neutral
// differences in sys (baseline frequency, switch costs) are applied to the
// returned copy without recompiling. The memo lives and dies with the
// receiver's source database.
func (db *DB) RecompiledCached(sys arch.SystemConfig) *DB {
	m := db.memo
	if m == nil {
		// Hand-constructed database (tests): no memo, compile directly.
		return db.Recompiled(sys)
	}
	key := sys.Mem.PerCoreGBps
	m.mu.Lock()
	cached := m.byGBps[key]
	m.mu.Unlock()
	if cached == nil {
		cached = db.Recompiled(sys)
		m.mu.Lock()
		if prior, ok := m.byGBps[key]; ok {
			cached = prior // lost a race; keep the first compilation
		} else {
			m.byGBps[key] = cached
		}
		m.mu.Unlock()
	}
	return cached.WithSys(sys)
}

// simulatePhase returns the detailed-simulation record of one phase,
// serving the underlying profile from the process-wide single-flight cache
// (profiling it at profileAssoc on a miss). The record is bit-identical to
// SimulatePhase's uncached computation.
func simulatePhase(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams, profileAssoc int) *PhaseRecord {
	if profileAssoc < sys.LLC.Assoc {
		profileAssoc = sys.LLC.Assoc
	}
	key := profileKeyFor(sys, b, an, phase, sp)
	return profCache.get(key, profileAssoc).record(sys.LLC.Assoc, an, phase)
}

// SimulatePhase performs the detailed simulation of one phase, bypassing
// the profile cache: it generates the representative slice's sample stream
// and runs the fused one-pass profiler (cache.ProfileStream) over it,
// producing the miss and leading-miss profiles for the full configuration
// space. Exported for benchmarks and tools that measure or inspect the
// build-side kernel directly; Build itself goes through the cache.
func SimulatePhase(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams) *PhaseRecord {
	key := profileKeyFor(sys, b, an, phase, sp)
	return computePhaseProfile(key, sys.LLC.Assoc).record(sys.LLC.Assoc, an, phase)
}

// profileKeyFor assembles the profile-relevant configuration of one phase:
// the jittered behaviour spec and stream seed of the representative slice,
// the LLC geometry the ATD mirrors, the sample sizes, and each core
// size's MLP parameters.
func profileKeyFor(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams) profileKey {
	rep := an.Representative[phase]
	behaviorIdx := b.SliceBehavior[rep]
	var cores [arch.NumCoreSizes]cache.CoreMLPParams
	for c := 0; c < arch.NumCoreSizes; c++ {
		cores[c] = cache.CoreMLPParams{ROB: sys.Cores[c].ROB, MSHRs: sys.Cores[c].MSHRs}
	}
	return profileKey{
		behavior:   b.SliceBehaviorSpec(rep),
		streamSeed: b.StreamSeed(behaviorIdx),
		sets:       sys.LLC.Sets,
		sampleIn:   sys.LLC.SampleIn,
		sample:     sp,
		cores:      cores,
	}
}

// ---- interned fast path ----

// BenchIDOf resolves a benchmark name to its dense identifier.
func (db *DB) BenchIDOf(name string) (BenchID, bool) {
	id, ok := db.byName[name]
	return id, ok
}

// NumBenches returns the number of interned benchmarks.
func (db *DB) NumBenches() int { return len(db.Benches) }

// BenchName returns the name of an interned benchmark.
func (db *DB) BenchName(id BenchID) string { return db.Benches[id].Name }

// PerfAt returns the precomputed outcome of one interval of the phase at
// the setting with the given lattice index. This is the RMA-simulator hot
// path: a bounds-checked array read.
func (db *DB) PerfAt(id BenchID, phase, latticeIdx int) *PerfPoint {
	return &db.Benches[id].PerfTables[phase][latticeIdx]
}

// RecordAt returns the phase record by dense indices.
func (db *DB) RecordAt(id BenchID, phase int) *PhaseRecord {
	return db.Benches[id].Phases[phase]
}

// PhaseTraceAt returns the phase sequence of the benchmark's full execution
// by dense identifier.
func (db *DB) PhaseTraceAt(id BenchID) []int {
	return db.Benches[id].Analysis.PhaseTrace
}

// ---- string-keyed compatibility API ----

// bench resolves a name, with the historical error message.
func (db *DB) bench(name string) (*BenchData, error) {
	id, ok := db.byName[name]
	if !ok {
		return nil, fmt.Errorf("simdb: no record for %s", name)
	}
	return db.Benches[id], nil
}

// Record returns the phase record, or an error naming the missing key.
func (db *DB) Record(bench string, phase int) (*PhaseRecord, error) {
	bd, ok := db.byName[bench]
	if !ok {
		return nil, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	ps := db.Benches[bd].Phases
	if phase < 0 || phase >= len(ps) {
		return nil, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	return ps[phase], nil
}

// Perf evaluates one interval of the given phase at the given setting.
// This is the ground truth the RMA simulator uses, served from the
// compiled lattice table.
func (db *DB) Perf(bench string, phase int, s arch.Setting) (PerfPoint, error) {
	id, ok := db.byName[bench]
	if !ok {
		return PerfPoint{}, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	tabs := db.Benches[id].PerfTables
	if phase < 0 || phase >= len(tabs) {
		return PerfPoint{}, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	return tabs[phase][db.Lattice.Index(s)], nil
}

// ReferencePerf evaluates the detailed model on the fly — the retained
// reference implementation the lattice tables are compiled from. The
// compiled Perf/PerfAt results are bit-identical to it by construction
// (asserted by the golden tests).
func (db *DB) ReferencePerf(bench string, phase int, s arch.Setting) (PerfPoint, error) {
	rec, err := db.Record(bench, phase)
	if err != nil {
		return PerfPoint{}, err
	}
	return evalPerf(&db.Sys, db.Power, rec, s), nil
}

// evalPerf computes performance and energy from a phase record by direct
// model evaluation.
func evalPerf(sys *arch.SystemConfig, pw power.Params, rec *PhaseRecord, s arch.Setting) PerfPoint {
	const instr = float64(trace.SliceInstructions)
	w := s.Ways
	if w < 0 {
		w = 0
	}
	if w >= len(rec.Misses) {
		w = len(rec.Misses) - 1
	}
	op := sys.DVFS[s.FreqIdx]
	cp := sys.Cores[s.Size]

	in := timing.Inputs{
		Instr:         instr,
		IlpIPC:        rec.IlpIPC,
		BranchMPKI:    rec.BranchMPKI,
		LeadingMisses: rec.Leading[s.Size][w],
		FreqGHz:       op.FreqGHz,
		MemLatNs:      sys.Mem.LatencyNs,
		Core:          cp,
	}
	cycles := timing.Cycles(in).Total()
	secs := timing.Seconds(cycles, op.FreqGHz)
	if cap := sys.Mem.PerCoreGBps; cap > 0 {
		// Bandwidth-partitioned memory controller: one refinement step of
		// the demand/latency fixed point is ample at interval granularity.
		demand := rec.Misses[w] * float64(sys.LLC.LineB) / secs
		in.MemLatNs = timing.BandwidthLatency(sys.Mem.LatencyNs, demand, cap*1e9)
		cycles = timing.Cycles(in).Total()
		secs = timing.Seconds(cycles, op.FreqGHz)
	}
	act := power.Activity{
		Instr:       instr,
		Seconds:     secs,
		LLCAccesses: rec.APKI * instr / 1000,
		DRAMAcc:     rec.Misses[w],
		Core:        cp,
		Op:          op,
	}
	eb := power.Energy(pw, act)
	return PerfPoint{
		Instr:       instr,
		Cycles:      cycles,
		Seconds:     secs,
		IPS:         instr / secs,
		TPI:         secs / instr,
		EPI:         eb.Total() / instr,
		Energy:      eb,
		Misses:      rec.Misses[w],
		Leading:     rec.Leading[s.Size][w],
		LLCAccesses: act.LLCAccesses,
	}
}

// PhaseTrace returns the phase sequence of the benchmark's full execution.
func (db *DB) PhaseTrace(bench string) ([]int, error) {
	bd, err := db.bench(bench)
	if err != nil {
		return nil, fmt.Errorf("simdb: no analysis for %s", bench)
	}
	return bd.Analysis.PhaseTrace, nil
}

// Analysis returns the benchmark's SimPoint analysis, or nil when unknown.
func (db *DB) Analysis(bench string) *simpoint.Analysis {
	bd, ok := db.byName[bench]
	if !ok {
		return nil
	}
	return db.Benches[bd].Analysis
}

// NumPhases returns the number of phases for the benchmark.
func (db *DB) NumPhases(bench string) int {
	bd, ok := db.byName[bench]
	if !ok {
		return 0
	}
	return db.Benches[bd].Analysis.NumPhases
}

// NumRecords returns the total number of (benchmark, phase) records.
func (db *DB) NumRecords() int {
	n := 0
	for _, bd := range db.Benches {
		n += len(bd.Phases)
	}
	return n
}

// BenchNames returns the benchmark names, sorted.
func (db *DB) BenchNames() []string {
	names := make([]string, len(db.Benches))
	for i, bd := range db.Benches {
		names[i] = bd.Name
	}
	sort.Strings(names)
	return names
}
