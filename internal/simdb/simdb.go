// Package simdb implements the simulation-results database of the thesis
// methodology (Figure 2.1): detailed simulation is performed once, offline
// and in parallel, for every (benchmark, phase) pair, and the results are
// collected in a database that the co-phase RMA simulator queries for every
// resource setting. Performance and energy for an arbitrary setting
// (core size, frequency, ways) are derived from the stored per-phase
// profiles through the interval timing model and the power model.
package simdb

import (
	"fmt"
	"runtime"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/power"
	"qosrma/internal/simpoint"
	"qosrma/internal/timing"
	"qosrma/internal/trace"
)

// PhaseKey identifies one benchmark phase.
type PhaseKey struct {
	Bench string
	Phase int
}

// PhaseRecord holds the detailed-simulation results for one phase's
// representative slice, scaled to one 100M-instruction interval.
type PhaseRecord struct {
	// Program characteristics exposed through performance counters.
	IlpIPC     float64
	BranchMPKI float64
	APKI       float64 // LLC accesses per kilo-instruction

	// Misses[w]: LLC misses per interval with w ways (exact ATD profile).
	Misses []float64
	// SampledMisses[w]: the same profile measured by the set-sampled ATD —
	// what the resource manager actually observes.
	SampledMisses []float64
	// Leading[c][w]: leading (non-overlapped) misses per interval for core
	// size c and w ways (exact MLP-ATD profile).
	Leading [][]float64
	// SampledLeading[c][w]: the noisy observable counterpart.
	SampledLeading [][]float64

	Weight   float64 // phase weight from SimPoint
	RepSlice int     // representative slice index
}

// DB is the simulation-results database for one system configuration.
type DB struct {
	Sys      arch.SystemConfig
	Power    power.Params
	Phases   map[PhaseKey]*PhaseRecord
	Analyses map[string]*simpoint.Analysis
}

// PerfPoint is the outcome of one interval at one setting — the quantity
// the RMA simulator schedules and accounts with.
type PerfPoint struct {
	Instr       float64
	Cycles      float64
	Seconds     float64
	IPS         float64
	TPI         float64
	EPI         float64
	Energy      power.Breakdown
	Misses      float64
	Leading     float64
	LLCAccesses float64
}

// BuildOptions controls database construction.
type BuildOptions struct {
	Sample   trace.SampleParams
	SimPoint simpoint.Options
	Workers  int
}

// DefaultBuildOptions returns the standard build configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Sample:   trace.DefaultSampleParams(),
		SimPoint: simpoint.DefaultOptions(),
		Workers:  runtime.GOMAXPROCS(0),
	}
}

// Build runs SimPoint analysis on every benchmark and then detailed
// simulation of every (benchmark, phase) pair across the configuration
// space, using a parallel worker pool. The result is deterministic and
// independent of the worker count.
func Build(sys arch.SystemConfig, benches []*trace.Benchmark, opt BuildOptions) (*DB, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	db := &DB{
		Sys:      sys,
		Power:    power.DefaultParams(sys),
		Phases:   make(map[PhaseKey]*PhaseRecord),
		Analyses: make(map[string]*simpoint.Analysis),
	}

	type job struct {
		bench *trace.Benchmark
		an    *simpoint.Analysis
		phase int
	}
	var jobs []job
	for _, b := range benches {
		an := simpoint.Analyze(b, opt.SimPoint)
		db.Analyses[b.Name] = an
		for p := 0; p < an.NumPhases; p++ {
			jobs = append(jobs, job{bench: b, an: an, phase: p})
		}
	}

	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, opt.Workers)
	)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := simulatePhase(sys, j.bench, j.an, j.phase, opt.Sample)
			mu.Lock()
			db.Phases[PhaseKey{j.bench.Name, j.phase}] = rec
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return db, nil
}

// simulatePhase performs the detailed simulation of one phase: it generates
// the representative slice's sample stream, warms and drives the exact and
// sampled tag directories, and computes miss and leading-miss profiles for
// the full configuration space.
func simulatePhase(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams) *PhaseRecord {
	rep := an.Representative[phase]
	behavior := b.SliceBehaviorSpec(rep)
	behaviorIdx := b.SliceBehavior[rep]
	stream := behavior.Generate(b.StreamSeed(behaviorIdx), sp)
	scale := stream.ScaleToSlice()

	assoc := sys.LLC.Assoc
	sets := sys.LLC.Sets

	// Exact ATD pass: warm up, then record per-access stack distances.
	exact := cache.NewATD(sets, assoc, 1)
	for _, a := range stream.Warmup {
		exact.Access(a.Line)
	}
	exact.ResetCounters()
	dists := make([]int16, len(stream.Measured))
	for i, a := range stream.Measured {
		dists[i] = int16(exact.Access(a.Line))
	}

	// Sampled ATD pass (what the RMA hardware observes).
	sampled := cache.NewATD(sets, assoc, sys.LLC.SampleIn)
	for _, a := range stream.Warmup {
		sampled.Access(a.Line)
	}
	sampled.ResetCounters()
	for _, a := range stream.Measured {
		sampled.Access(a.Line)
	}

	rec := &PhaseRecord{
		IlpIPC:         behavior.IlpIPC,
		BranchMPKI:     behavior.BranchMPKI,
		APKI:           float64(len(stream.Measured)) / stream.WindowInstr * 1000,
		Misses:         make([]float64, assoc+1),
		SampledMisses:  make([]float64, assoc+1),
		Leading:        make([][]float64, arch.NumCoreSizes),
		SampledLeading: make([][]float64, arch.NumCoreSizes),
		Weight:         an.Weight[phase],
		RepSlice:       rep,
	}
	for w := 0; w <= assoc; w++ {
		rec.Misses[w] = float64(cache.MissCount(dists, w)) * scale
		rec.SampledMisses[w] = sampled.Misses(w) * scale
	}

	// MLP-ATD profiles per core size. The sampled variant scales the exact
	// leading-miss count by the sampled/exact miss ratio: the hardware
	// measures overlap on sampled sets, so its MLP estimate inherits the
	// set-sampling noise of the miss counts.
	for c := 0; c < arch.NumCoreSizes; c++ {
		cp := sys.Cores[c]
		rec.Leading[c] = make([]float64, assoc+1)
		rec.SampledLeading[c] = make([]float64, assoc+1)
		for w := 0; w <= assoc; w++ {
			r := cache.AnalyzeMLP(stream.Measured, dists, w, cp.ROB, cp.MSHRs)
			lead := float64(r.LeadingMisses) * scale
			rec.Leading[c][w] = lead
			exactM := rec.Misses[w]
			if exactM > 0 {
				rec.SampledLeading[c][w] = lead * rec.SampledMisses[w] / exactM
			}
		}
	}
	return rec
}

// Record returns the phase record, or an error naming the missing key.
func (db *DB) Record(bench string, phase int) (*PhaseRecord, error) {
	rec, ok := db.Phases[PhaseKey{bench, phase}]
	if !ok {
		return nil, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	return rec, nil
}

// Perf evaluates the detailed model for one interval of the given phase at
// the given setting. This is the ground truth the RMA simulator uses.
func (db *DB) Perf(bench string, phase int, s arch.Setting) (PerfPoint, error) {
	rec, err := db.Record(bench, phase)
	if err != nil {
		return PerfPoint{}, err
	}
	return db.perfFromRecord(rec, s), nil
}

// perfFromRecord computes performance and energy from a phase record.
func (db *DB) perfFromRecord(rec *PhaseRecord, s arch.Setting) PerfPoint {
	const instr = float64(trace.SliceInstructions)
	w := s.Ways
	if w < 0 {
		w = 0
	}
	if w >= len(rec.Misses) {
		w = len(rec.Misses) - 1
	}
	op := db.Sys.DVFS[s.FreqIdx]
	cp := db.Sys.Cores[s.Size]

	in := timing.Inputs{
		Instr:         instr,
		IlpIPC:        rec.IlpIPC,
		BranchMPKI:    rec.BranchMPKI,
		LeadingMisses: rec.Leading[s.Size][w],
		FreqGHz:       op.FreqGHz,
		MemLatNs:      db.Sys.Mem.LatencyNs,
		Core:          cp,
	}
	cycles := timing.Cycles(in).Total()
	secs := timing.Seconds(cycles, op.FreqGHz)
	if cap := db.Sys.Mem.PerCoreGBps; cap > 0 {
		// Bandwidth-partitioned memory controller: one refinement step of
		// the demand/latency fixed point is ample at interval granularity.
		demand := rec.Misses[w] * float64(db.Sys.LLC.LineB) / secs
		in.MemLatNs = timing.BandwidthLatency(db.Sys.Mem.LatencyNs, demand, cap*1e9)
		cycles = timing.Cycles(in).Total()
		secs = timing.Seconds(cycles, op.FreqGHz)
	}
	act := power.Activity{
		Instr:       instr,
		Seconds:     secs,
		LLCAccesses: rec.APKI * instr / 1000,
		DRAMAcc:     rec.Misses[w],
		Core:        cp,
		Op:          op,
	}
	eb := power.Energy(db.Power, act)
	return PerfPoint{
		Instr:       instr,
		Cycles:      cycles,
		Seconds:     secs,
		IPS:         instr / secs,
		TPI:         secs / instr,
		EPI:         eb.Total() / instr,
		Energy:      eb,
		Misses:      rec.Misses[w],
		Leading:     rec.Leading[s.Size][w],
		LLCAccesses: act.LLCAccesses,
	}
}

// PhaseTrace returns the phase sequence of the benchmark's full execution.
func (db *DB) PhaseTrace(bench string) ([]int, error) {
	an, ok := db.Analyses[bench]
	if !ok {
		return nil, fmt.Errorf("simdb: no analysis for %s", bench)
	}
	return an.PhaseTrace, nil
}

// NumPhases returns the number of phases for the benchmark.
func (db *DB) NumPhases(bench string) int {
	an, ok := db.Analyses[bench]
	if !ok {
		return 0
	}
	return an.NumPhases
}
