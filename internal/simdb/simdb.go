// Package simdb implements the simulation-results database of the thesis
// methodology (Figure 2.1): detailed simulation is performed once, offline
// and in parallel, for every (benchmark, phase) pair, and the results are
// collected in a database that the co-phase RMA simulator queries for every
// resource setting.
//
// The database is *compiled*: at Build time the interval timing model and
// the power model are evaluated over the entire (core size × DVFS level ×
// ways) setting lattice for every phase, so that the query hot path —
// db.PerfAt(bench, phase, latticeIndex) — is a bounds-checked array read
// (index arithmetic, no model re-evaluation, no map lookups, no error
// plumbing). Benchmarks are interned: callers resolve a name to a BenchID
// once and use dense indices thereafter. The string-keyed API (Perf,
// Record, PhaseTrace) remains as a thin compatibility wrapper, and
// ReferencePerf retains the on-the-fly model evaluation the tables are
// compiled from.
package simdb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/power"
	"qosrma/internal/simpoint"
	"qosrma/internal/timing"
	"qosrma/internal/trace"
)

// BenchID is a dense interned benchmark identifier: the index of the
// benchmark in DB.Benches.
type BenchID int

// PhaseKey identifies one benchmark phase by name (compatibility type for
// the string-keyed API).
type PhaseKey struct {
	Bench string
	Phase int
}

// PhaseRecord holds the detailed-simulation results for one phase's
// representative slice, scaled to one 100M-instruction interval. These are
// the *model inputs*; the compiled per-setting outcomes live in the
// benchmark's PerfTables.
type PhaseRecord struct {
	// Program characteristics exposed through performance counters.
	IlpIPC     float64
	BranchMPKI float64
	APKI       float64 // LLC accesses per kilo-instruction

	// Misses[w]: LLC misses per interval with w ways (exact ATD profile).
	Misses []float64
	// SampledMisses[w]: the same profile measured by the set-sampled ATD —
	// what the resource manager actually observes.
	SampledMisses []float64
	// Leading[c][w]: leading (non-overlapped) misses per interval for core
	// size c and w ways (exact MLP-ATD profile).
	Leading [][]float64
	// SampledLeading[c][w]: the noisy observable counterpart.
	SampledLeading [][]float64

	Weight   float64 // phase weight from SimPoint
	RepSlice int     // representative slice index
}

// BenchData is one interned benchmark: its SimPoint analysis, the per-phase
// detailed-simulation records, and the compiled per-phase performance
// tables over the setting lattice.
type BenchData struct {
	Name     string
	Analysis *simpoint.Analysis
	// Phases[p] is the detailed-simulation record of phase p.
	Phases []*PhaseRecord
	// PerfTables[p][i] is the precomputed outcome of one interval of phase
	// p at the setting with lattice index i.
	PerfTables [][]PerfPoint
}

// DB is the simulation-results database for one system configuration.
type DB struct {
	Sys     arch.SystemConfig
	Power   power.Params
	Lattice arch.Lattice
	Benches []*BenchData

	byName map[string]BenchID // rebuilt on load; not serialized
	memo   *recompileMemo     // shared by shallow copies; not serialized
}

// recompileMemo memoizes bandwidth-override recompilations. It hangs off
// the source database (shared by every shallow copy of it), so the cached
// tables live exactly as long as the database they derive from.
type recompileMemo struct {
	mu     sync.Mutex
	byGBps map[float64]*DB
}

// PerfPoint is the outcome of one interval at one setting — the quantity
// the RMA simulator schedules and accounts with.
type PerfPoint struct {
	Instr       float64
	Cycles      float64
	Seconds     float64
	IPS         float64
	TPI         float64
	EPI         float64
	Energy      power.Breakdown
	Misses      float64
	Leading     float64
	LLCAccesses float64
}

// BuildOptions controls database construction.
type BuildOptions struct {
	Sample   trace.SampleParams
	SimPoint simpoint.Options
	Workers  int
}

// DefaultBuildOptions returns the standard build configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Sample:   trace.DefaultSampleParams(),
		SimPoint: simpoint.DefaultOptions(),
		Workers:  runtime.GOMAXPROCS(0),
	}
}

// Build runs SimPoint analysis on every benchmark, detailed simulation of
// every (benchmark, phase) pair across the configuration space, and table
// compilation over the setting lattice, using a parallel worker pool. The
// result is deterministic and independent of the worker count.
func Build(sys arch.SystemConfig, benches []*trace.Benchmark, opt BuildOptions) (*DB, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	db := &DB{
		Sys:     sys,
		Power:   power.DefaultParams(sys),
		Lattice: sys.Lattice(),
		memo:    newRecompileMemo(),
	}

	type job struct {
		bench *trace.Benchmark
		data  *BenchData
		phase int
	}
	var jobs []job
	for _, b := range benches {
		an := simpoint.Analyze(b, opt.SimPoint)
		bd := &BenchData{
			Name:       b.Name,
			Analysis:   an,
			Phases:     make([]*PhaseRecord, an.NumPhases),
			PerfTables: make([][]PerfPoint, an.NumPhases),
		}
		db.Benches = append(db.Benches, bd)
		for p := 0; p < an.NumPhases; p++ {
			jobs = append(jobs, job{bench: b, data: bd, phase: p})
		}
	}
	db.reindex()

	// Every job writes a distinct (bench, phase) slot, so the pool needs no
	// locking; the semaphore only bounds parallelism.
	var (
		wg  sync.WaitGroup
		sem = make(chan struct{}, opt.Workers)
	)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := simulatePhase(db.Sys, j.bench, j.data.Analysis, j.phase, opt.Sample)
			j.data.Phases[j.phase] = rec
			j.data.PerfTables[j.phase] = compileTable(&db.Sys, db.Power, db.Lattice, rec)
		}(j)
	}
	wg.Wait()
	return db, nil
}

// reindex rebuilds the name → BenchID intern table and the in-memory-only
// state gob does not carry.
func (db *DB) reindex() {
	db.byName = make(map[string]BenchID, len(db.Benches))
	for i, bd := range db.Benches {
		db.byName[bd.Name] = BenchID(i)
	}
	if db.memo == nil {
		db.memo = newRecompileMemo()
	}
}

func newRecompileMemo() *recompileMemo {
	return &recompileMemo{byGBps: make(map[float64]*DB)}
}

// compileTable evaluates the detailed model at every lattice point.
func compileTable(sys *arch.SystemConfig, pw power.Params, lat arch.Lattice, rec *PhaseRecord) []PerfPoint {
	tab := make([]PerfPoint, lat.Len())
	for i := range tab {
		tab[i] = evalPerf(sys, pw, rec, lat.Setting(i))
	}
	return tab
}

// Recompiled returns a database that shares this one's detailed-simulation
// records but evaluates them under a different system configuration: the
// per-phase performance tables are recompiled against sys. Used by the
// sweep engine for overrides (e.g. the per-core memory-bandwidth ablation)
// that change the derived model but not the underlying profiles. The
// technology power parameters are carried over unchanged, matching the
// historical shallow-clone semantics.
func (db *DB) Recompiled(sys arch.SystemConfig) *DB {
	out := &DB{
		Sys:     sys,
		Power:   db.Power,
		Lattice: sys.Lattice(),
		Benches: make([]*BenchData, len(db.Benches)),
		memo:    newRecompileMemo(),
	}
	var (
		wg  sync.WaitGroup
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for i, bd := range db.Benches {
		nbd := &BenchData{
			Name:       bd.Name,
			Analysis:   bd.Analysis,
			Phases:     bd.Phases,
			PerfTables: make([][]PerfPoint, len(bd.Phases)),
		}
		out.Benches[i] = nbd
		for p, rec := range bd.Phases {
			wg.Add(1)
			sem <- struct{}{}
			go func(p int, rec *PhaseRecord) {
				defer wg.Done()
				defer func() { <-sem }()
				nbd.PerfTables[p] = compileTable(&out.Sys, out.Power, out.Lattice, rec)
			}(p, rec)
		}
	}
	wg.Wait()
	out.reindex()
	return out
}

// RecompiledCached is Recompiled memoized on the per-core bandwidth cap —
// the only system override in this codebase that changes the compiled
// tables. Repeated calls with the same cap (e.g. a sweep grid running many
// mixes against a few bandwidth variants) compile once; perf-neutral
// differences in sys (baseline frequency, switch costs) are applied to the
// returned copy without recompiling. The memo lives and dies with the
// receiver's source database.
func (db *DB) RecompiledCached(sys arch.SystemConfig) *DB {
	m := db.memo
	if m == nil {
		// Hand-constructed database (tests): no memo, compile directly.
		return db.Recompiled(sys)
	}
	key := sys.Mem.PerCoreGBps
	m.mu.Lock()
	cached := m.byGBps[key]
	m.mu.Unlock()
	if cached == nil {
		cached = db.Recompiled(sys)
		m.mu.Lock()
		if prior, ok := m.byGBps[key]; ok {
			cached = prior // lost a race; keep the first compilation
		} else {
			m.byGBps[key] = cached
		}
		m.mu.Unlock()
	}
	out := *cached
	out.Sys = sys
	return &out
}

// simulatePhase performs the detailed simulation of one phase: it generates
// the representative slice's sample stream, warms and drives the exact and
// sampled tag directories, and computes miss and leading-miss profiles for
// the full configuration space.
func simulatePhase(sys arch.SystemConfig, b *trace.Benchmark, an *simpoint.Analysis, phase int, sp trace.SampleParams) *PhaseRecord {
	rep := an.Representative[phase]
	behavior := b.SliceBehaviorSpec(rep)
	behaviorIdx := b.SliceBehavior[rep]
	stream := behavior.Generate(b.StreamSeed(behaviorIdx), sp)
	scale := stream.ScaleToSlice()

	assoc := sys.LLC.Assoc
	sets := sys.LLC.Sets

	// Exact ATD pass: warm up, then record per-access stack distances.
	exact := cache.NewATD(sets, assoc, 1)
	for _, a := range stream.Warmup {
		exact.Access(a.Line)
	}
	exact.ResetCounters()
	dists := make([]int16, len(stream.Measured))
	for i, a := range stream.Measured {
		dists[i] = int16(exact.Access(a.Line))
	}

	// Sampled ATD pass (what the RMA hardware observes).
	sampled := cache.NewATD(sets, assoc, sys.LLC.SampleIn)
	for _, a := range stream.Warmup {
		sampled.Access(a.Line)
	}
	sampled.ResetCounters()
	for _, a := range stream.Measured {
		sampled.Access(a.Line)
	}

	rec := &PhaseRecord{
		IlpIPC:         behavior.IlpIPC,
		BranchMPKI:     behavior.BranchMPKI,
		APKI:           float64(len(stream.Measured)) / stream.WindowInstr * 1000,
		Misses:         make([]float64, assoc+1),
		SampledMisses:  make([]float64, assoc+1),
		Leading:        make([][]float64, arch.NumCoreSizes),
		SampledLeading: make([][]float64, arch.NumCoreSizes),
		Weight:         an.Weight[phase],
		RepSlice:       rep,
	}
	for w := 0; w <= assoc; w++ {
		rec.Misses[w] = float64(cache.MissCount(dists, w)) * scale
		rec.SampledMisses[w] = sampled.Misses(w) * scale
	}

	// MLP-ATD profiles per core size. The sampled variant scales the exact
	// leading-miss count by the sampled/exact miss ratio: the hardware
	// measures overlap on sampled sets, so its MLP estimate inherits the
	// set-sampling noise of the miss counts.
	for c := 0; c < arch.NumCoreSizes; c++ {
		cp := sys.Cores[c]
		rec.Leading[c] = make([]float64, assoc+1)
		rec.SampledLeading[c] = make([]float64, assoc+1)
		for w := 0; w <= assoc; w++ {
			r := cache.AnalyzeMLP(stream.Measured, dists, w, cp.ROB, cp.MSHRs)
			lead := float64(r.LeadingMisses) * scale
			rec.Leading[c][w] = lead
			exactM := rec.Misses[w]
			if exactM > 0 {
				rec.SampledLeading[c][w] = lead * rec.SampledMisses[w] / exactM
			}
		}
	}
	return rec
}

// ---- interned fast path ----

// BenchIDOf resolves a benchmark name to its dense identifier.
func (db *DB) BenchIDOf(name string) (BenchID, bool) {
	id, ok := db.byName[name]
	return id, ok
}

// NumBenches returns the number of interned benchmarks.
func (db *DB) NumBenches() int { return len(db.Benches) }

// BenchName returns the name of an interned benchmark.
func (db *DB) BenchName(id BenchID) string { return db.Benches[id].Name }

// PerfAt returns the precomputed outcome of one interval of the phase at
// the setting with the given lattice index. This is the RMA-simulator hot
// path: a bounds-checked array read.
func (db *DB) PerfAt(id BenchID, phase, latticeIdx int) *PerfPoint {
	return &db.Benches[id].PerfTables[phase][latticeIdx]
}

// RecordAt returns the phase record by dense indices.
func (db *DB) RecordAt(id BenchID, phase int) *PhaseRecord {
	return db.Benches[id].Phases[phase]
}

// PhaseTraceAt returns the phase sequence of the benchmark's full execution
// by dense identifier.
func (db *DB) PhaseTraceAt(id BenchID) []int {
	return db.Benches[id].Analysis.PhaseTrace
}

// ---- string-keyed compatibility API ----

// bench resolves a name, with the historical error message.
func (db *DB) bench(name string) (*BenchData, error) {
	id, ok := db.byName[name]
	if !ok {
		return nil, fmt.Errorf("simdb: no record for %s", name)
	}
	return db.Benches[id], nil
}

// Record returns the phase record, or an error naming the missing key.
func (db *DB) Record(bench string, phase int) (*PhaseRecord, error) {
	bd, ok := db.byName[bench]
	if !ok {
		return nil, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	ps := db.Benches[bd].Phases
	if phase < 0 || phase >= len(ps) {
		return nil, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	return ps[phase], nil
}

// Perf evaluates one interval of the given phase at the given setting.
// This is the ground truth the RMA simulator uses, served from the
// compiled lattice table.
func (db *DB) Perf(bench string, phase int, s arch.Setting) (PerfPoint, error) {
	id, ok := db.byName[bench]
	if !ok {
		return PerfPoint{}, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	tabs := db.Benches[id].PerfTables
	if phase < 0 || phase >= len(tabs) {
		return PerfPoint{}, fmt.Errorf("simdb: no record for %s phase %d", bench, phase)
	}
	return tabs[phase][db.Lattice.Index(s)], nil
}

// ReferencePerf evaluates the detailed model on the fly — the retained
// reference implementation the lattice tables are compiled from. The
// compiled Perf/PerfAt results are bit-identical to it by construction
// (asserted by the golden tests).
func (db *DB) ReferencePerf(bench string, phase int, s arch.Setting) (PerfPoint, error) {
	rec, err := db.Record(bench, phase)
	if err != nil {
		return PerfPoint{}, err
	}
	return evalPerf(&db.Sys, db.Power, rec, s), nil
}

// evalPerf computes performance and energy from a phase record by direct
// model evaluation.
func evalPerf(sys *arch.SystemConfig, pw power.Params, rec *PhaseRecord, s arch.Setting) PerfPoint {
	const instr = float64(trace.SliceInstructions)
	w := s.Ways
	if w < 0 {
		w = 0
	}
	if w >= len(rec.Misses) {
		w = len(rec.Misses) - 1
	}
	op := sys.DVFS[s.FreqIdx]
	cp := sys.Cores[s.Size]

	in := timing.Inputs{
		Instr:         instr,
		IlpIPC:        rec.IlpIPC,
		BranchMPKI:    rec.BranchMPKI,
		LeadingMisses: rec.Leading[s.Size][w],
		FreqGHz:       op.FreqGHz,
		MemLatNs:      sys.Mem.LatencyNs,
		Core:          cp,
	}
	cycles := timing.Cycles(in).Total()
	secs := timing.Seconds(cycles, op.FreqGHz)
	if cap := sys.Mem.PerCoreGBps; cap > 0 {
		// Bandwidth-partitioned memory controller: one refinement step of
		// the demand/latency fixed point is ample at interval granularity.
		demand := rec.Misses[w] * float64(sys.LLC.LineB) / secs
		in.MemLatNs = timing.BandwidthLatency(sys.Mem.LatencyNs, demand, cap*1e9)
		cycles = timing.Cycles(in).Total()
		secs = timing.Seconds(cycles, op.FreqGHz)
	}
	act := power.Activity{
		Instr:       instr,
		Seconds:     secs,
		LLCAccesses: rec.APKI * instr / 1000,
		DRAMAcc:     rec.Misses[w],
		Core:        cp,
		Op:          op,
	}
	eb := power.Energy(pw, act)
	return PerfPoint{
		Instr:       instr,
		Cycles:      cycles,
		Seconds:     secs,
		IPS:         instr / secs,
		TPI:         secs / instr,
		EPI:         eb.Total() / instr,
		Energy:      eb,
		Misses:      rec.Misses[w],
		Leading:     rec.Leading[s.Size][w],
		LLCAccesses: act.LLCAccesses,
	}
}

// PhaseTrace returns the phase sequence of the benchmark's full execution.
func (db *DB) PhaseTrace(bench string) ([]int, error) {
	bd, err := db.bench(bench)
	if err != nil {
		return nil, fmt.Errorf("simdb: no analysis for %s", bench)
	}
	return bd.Analysis.PhaseTrace, nil
}

// Analysis returns the benchmark's SimPoint analysis, or nil when unknown.
func (db *DB) Analysis(bench string) *simpoint.Analysis {
	bd, ok := db.byName[bench]
	if !ok {
		return nil
	}
	return db.Benches[bd].Analysis
}

// NumPhases returns the number of phases for the benchmark.
func (db *DB) NumPhases(bench string) int {
	bd, ok := db.byName[bench]
	if !ok {
		return 0
	}
	return db.Benches[bd].Analysis.NumPhases
}

// NumRecords returns the total number of (benchmark, phase) records.
func (db *DB) NumRecords() int {
	n := 0
	for _, bd := range db.Benches {
		n += len(bd.Phases)
	}
	return n
}

// BenchNames returns the benchmark names, sorted.
func (db *DB) BenchNames() []string {
	names := make([]string, len(db.Benches))
	for i, bd := range db.Benches {
		names[i] = bd.Name
	}
	sort.Strings(names)
	return names
}
