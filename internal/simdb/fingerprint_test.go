package simdb

import (
	"testing"

	"qosrma/internal/trace"
)

// TestFingerprintStableAcrossRebuilds: the fingerprint is a pure function
// of the database content, so a deterministic rebuild hashes identically —
// the property that lets a hot-swapped identical database keep its served
// version, and that makes version drift a real signal.
func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds a database")
	}
	db := testDB(t)
	fp := db.Fingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex-digit hash", fp)
	}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 20000, WarmupAccesses: 6000}
	benches := []*trace.Benchmark{
		trace.ByName("mcf"), trace.ByName("libquantum"),
		trace.ByName("hmmer"), trace.ByName("gcc"),
	}
	db2, err := Build(db.Sys, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := db2.Fingerprint(); fp2 != fp {
		t.Fatalf("rebuild changed the fingerprint: %s vs %s", fp, fp2)
	}
}

// TestFingerprintSensitive: configuration and content changes move the
// hash.
func TestFingerprintSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a built database")
	}
	db := testDB(t)
	fp := db.Fingerprint()

	sys := db.Sys
	sys.BaselineFreqIdx = (sys.BaselineFreqIdx + 1) % len(sys.DVFS)
	if db.WithSys(sys).Fingerprint() == fp {
		t.Fatal("baseline change kept the fingerprint")
	}

	// Perturb one compiled table cell (on a copy of the table slice so the
	// shared test database stays intact).
	mut := *db
	mut.Benches = append([]*BenchData(nil), db.Benches...)
	bd := *mut.Benches[0]
	bd.PerfTables = append([][]PerfPoint(nil), bd.PerfTables...)
	tab := append([]PerfPoint(nil), bd.PerfTables[0]...)
	tab[0].Cycles++
	bd.PerfTables[0] = tab
	mut.Benches[0] = &bd
	if mut.Fingerprint() == fp {
		t.Fatal("table perturbation kept the fingerprint")
	}
}
