package simdb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint returns a short, stable content hash of the compiled
// database: the system configuration and power parameters, the interned
// benchmark set, and the float bits of every compiled per-setting
// performance point. Two databases answer every query identically iff
// their fingerprints match (the serving hot path reads only the hashed
// state), which is what makes the fingerprint usable as the snapshot
// version the decision service surfaces in /v1/meta and /admin/status:
// deterministic rebuilds hash identically, while any change to the model,
// the suite or the configuration shows up as a new version.
func (db *DB) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "sys=%+v|power=%+v|benches=%d|", db.Sys, db.Power, len(db.Benches))
	var buf [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:]) //nolint:errcheck // fnv cannot fail
	}
	for _, bd := range db.Benches {
		fmt.Fprintf(h, "%s/%d|", bd.Name, len(bd.Phases))
		for _, tab := range bd.PerfTables {
			for i := range tab {
				pt := &tab[i]
				writeF(pt.Cycles)
				writeF(pt.Seconds)
				writeF(pt.EPI)
				writeF(pt.Misses)
				writeF(pt.Leading)
				writeF(pt.LLCAccesses)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
