package simdb

import (
	"sync"
	"sync/atomic"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/simpoint"
	"qosrma/internal/trace"
)

// The build side of the methodology — "simulate in detail once" — is pure:
// a phase profile depends only on the generated sample stream (behaviour
// spec + stream seed + sample sizes) and the profile-relevant hardware
// (LLC sets and sampling factor, per-core-size ROB/MSHR). It does NOT
// depend on the DVFS table, memory latency, bandwidth caps, power
// parameters or switch costs — those only enter at table compilation.
// This file implements a process-wide, single-flight cache over that pure
// function, so databases that share profile-relevant configuration (DB4
// and DB8, repeated builds in tests and benchmarks, sweeps) profile each
// phase exactly once.
//
// Profiles are keyed without the LLC associativity and stored at the
// deepest associativity requested so far: LRU stack order is
// capacity-independent (a shallower directory's stacks are prefixes of a
// deeper one's), so a profile taken at assoc P serves any request with
// assoc A <= P by truncation, bit-identically. Build therefore profiles at
// ProfileAssoc >= the system's associativity, letting the 4-core and
// 8-core databases share one pass per phase.

// profileKey identifies the inputs of one phase profile. The jittered
// behaviour spec is embedded by value (it is comparable), so two
// benchmarks that happen to share a name but differ in behaviour can never
// alias.
type profileKey struct {
	behavior   trace.Behavior
	streamSeed uint64
	sets       int
	sampleIn   int
	sample     trace.SampleParams
	cores      [arch.NumCoreSizes]cache.CoreMLPParams
}

// phaseProfile is the cached, system-independent result of profiling one
// phase: integer miss/leading counts at the entry's associativity plus the
// stream statistics needed to scale them to a full interval.
type phaseProfile struct {
	assoc       int
	sampleIn    int
	ilpIPC      float64
	branchMPKI  float64
	measured    int     // number of measured accesses
	windowInstr float64 // instructions spanned by the measured stream

	missCount        []int   // exact misses at w ways, w in 0..assoc
	sampledMissCount []int   // sampled-set misses, unscaled
	leading          [][]int // [coreSize][w] leading misses
}

// profileEntry is one single-flight cache slot. done is closed when prof
// is ready; waiters that need a deeper associativity than the entry holds
// replace it and recompute.
type profileEntry struct {
	done  chan struct{}
	assoc int
	prof  *phaseProfile
}

type profileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry

	hits     atomic.Uint64
	computes atomic.Uint64
}

var profCache = &profileCache{entries: make(map[profileKey]*profileEntry)}

// ProfileCacheStats reports the process-wide phase-profile cache counters:
// hits served from a finished (or in-flight) profile, and computes — full
// fused profiling passes actually executed.
func ProfileCacheStats() (hits, computes uint64) {
	return profCache.hits.Load(), profCache.computes.Load()
}

// ResetProfileCache drops every cached phase profile and SimPoint
// analysis and zeroes the counters. Intended for tests and benchmarks
// that need a cold build.
func ResetProfileCache() {
	profCache.mu.Lock()
	profCache.entries = make(map[profileKey]*profileEntry)
	profCache.mu.Unlock()
	profCache.hits.Store(0)
	profCache.computes.Store(0)
	analysisCache.Clear()
}

// get returns the profile for key at an associativity of at least assoc,
// computing it at most once per (key, sufficient depth) across all
// concurrent callers.
func (pc *profileCache) get(key profileKey, assoc int) *phaseProfile {
	for {
		pc.mu.Lock()
		e := pc.entries[key]
		if e == nil {
			e = &profileEntry{done: make(chan struct{}), assoc: assoc}
			pc.entries[key] = e
			pc.mu.Unlock()
			pc.computes.Add(1)
			e.prof = computePhaseProfile(key, assoc)
			close(e.done)
			return e.prof
		}
		pc.mu.Unlock()
		<-e.done
		if e.assoc >= assoc {
			pc.hits.Add(1)
			return e.prof
		}
		// The cached profile is too shallow (an earlier build used a
		// smaller LLC): replace it with a deeper one, unless another
		// caller already has.
		pc.mu.Lock()
		if pc.entries[key] == e {
			ne := &profileEntry{done: make(chan struct{}), assoc: assoc}
			pc.entries[key] = ne
			pc.mu.Unlock()
			pc.computes.Add(1)
			ne.prof = computePhaseProfile(key, assoc)
			close(ne.done)
			return ne.prof
		}
		pc.mu.Unlock()
	}
}

// computePhaseProfile generates the sample stream and runs the fused
// one-pass profiler (cache.ProfileStream) over it.
func computePhaseProfile(key profileKey, assoc int) *phaseProfile {
	stream := key.behavior.Generate(key.streamSeed, key.sample)
	sp := cache.ProfileStream(key.sets, assoc, key.sampleIn, stream.Warmup, stream.Measured, key.cores[:])
	return &phaseProfile{
		assoc:            assoc,
		sampleIn:         key.sampleIn,
		ilpIPC:           key.behavior.IlpIPC,
		branchMPKI:       key.behavior.BranchMPKI,
		measured:         len(stream.Measured),
		windowInstr:      stream.WindowInstr,
		missCount:        sp.MissCount,
		sampledMissCount: sp.SampledMissCount,
		leading:          sp.Leading,
	}
}

// record derives the PhaseRecord of one phase for a system with
// associativity assoc <= p.assoc. Every arithmetic expression mirrors the
// historical two-ATD + per-(c,w) computation exactly, so records — and the
// tables compiled from them — are bit-identical to a cache-free build.
func (p *phaseProfile) record(assoc int, an *simpoint.Analysis, phase int) *PhaseRecord {
	scale := trace.SliceInstructions / p.windowInstr
	if p.windowInstr <= 0 {
		scale = 0
	}
	rec := &PhaseRecord{
		IlpIPC:         p.ilpIPC,
		BranchMPKI:     p.branchMPKI,
		APKI:           float64(p.measured) / p.windowInstr * 1000,
		Misses:         make([]float64, assoc+1),
		SampledMisses:  make([]float64, assoc+1),
		Leading:        make([][]float64, arch.NumCoreSizes),
		SampledLeading: make([][]float64, arch.NumCoreSizes),
		Weight:         an.Weight[phase],
		RepSlice:       an.Representative[phase],
	}
	for w := 0; w <= assoc; w++ {
		rec.Misses[w] = float64(p.missCount[w]) * scale
		rec.SampledMisses[w] = float64(p.sampledMissCount[w]) * float64(p.sampleIn) * scale
	}
	for c := 0; c < arch.NumCoreSizes; c++ {
		rec.Leading[c] = make([]float64, assoc+1)
		rec.SampledLeading[c] = make([]float64, assoc+1)
		for w := 0; w <= assoc; w++ {
			lead := float64(p.leading[c][w]) * scale
			rec.Leading[c][w] = lead
			if exactM := rec.Misses[w]; exactM > 0 {
				rec.SampledLeading[c][w] = lead * rec.SampledMisses[w] / exactM
			}
		}
	}
	return rec
}
