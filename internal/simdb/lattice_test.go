package simdb

import (
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/stats"
)

// TestCompiledPerfMatchesReference is the golden property of the compiled
// lattice: for randomized (benchmark, phase, setting) triples, the table
// read served by Perf/PerfAt must be bit-identical to the retained
// on-the-fly reference evaluation.
func TestCompiledPerfMatchesReference(t *testing.T) {
	db := testDB(t)
	check := func(bench string, phase int, s arch.Setting) {
		t.Helper()
		got, err := db.Perf(bench, phase, s)
		if err != nil {
			t.Fatalf("Perf(%s, %d, %v): %v", bench, phase, s, err)
		}
		want, err := db.ReferencePerf(bench, phase, s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s/%d at %v: compiled %+v != reference %+v", bench, phase, s, got, want)
		}
		id, ok := db.BenchIDOf(bench)
		if !ok {
			t.Fatalf("BenchIDOf(%s) failed", bench)
		}
		if fast := *db.PerfAt(id, phase, db.Lattice.Index(s)); fast != want {
			t.Fatalf("%s/%d at %v: PerfAt %+v != reference %+v", bench, phase, s, fast, want)
		}
	}

	r := stats.NewRNG(71)
	for trial := 0; trial < 2000; trial++ {
		bd := db.Benches[r.Intn(len(db.Benches))]
		phase := r.Intn(len(bd.Phases))
		s := arch.Setting{
			Size:    arch.CoreSize(r.Intn(arch.NumCoreSizes)),
			FreqIdx: r.Intn(len(db.Sys.DVFS)),
			// Include out-of-range way counts: both paths must clamp alike.
			Ways: r.Intn(db.Sys.LLC.Assoc+5) - 2,
		}
		check(bd.Name, phase, s)
	}
}

// TestCompiledPerfMatchesReferenceExhaustive sweeps every lattice point of
// one phase and compares table and reference bit-for-bit.
func TestCompiledPerfMatchesReferenceExhaustive(t *testing.T) {
	db := testDB(t)
	id, ok := db.BenchIDOf("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	for i := 0; i < db.Lattice.Len(); i++ {
		s := db.Lattice.Setting(i)
		want, err := db.ReferencePerf("mcf", 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if got := *db.PerfAt(id, 0, i); got != want {
			t.Fatalf("lattice %d (%v): compiled %+v != reference %+v", i, s, got, want)
		}
	}
}

// TestRecompiledMatchesReferenceUnderOverride checks that Recompiled
// rebuilds the tables against the new system configuration (here: the
// bandwidth-partitioned memory controller the ablations enable).
func TestRecompiledMatchesReferenceUnderOverride(t *testing.T) {
	db := testDB(t)
	sys := db.Sys
	sys.Mem.PerCoreGBps = 3
	re := db.Recompiled(sys)
	if re.Sys.Mem.PerCoreGBps != 3 {
		t.Fatal("override lost")
	}
	s := db.Sys.BaselineSetting()
	got, err := re.Perf("mcf", 0, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := re.ReferencePerf("mcf", 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recompiled table %+v != reference %+v", got, want)
	}
	// The bandwidth cap must actually change the outcome for a
	// memory-intensive phase, and must not leak into the original.
	plain, err := db.Perf("mcf", 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds <= plain.Seconds {
		t.Fatalf("bandwidth cap did not slow mcf: %v vs %v", got.Seconds, plain.Seconds)
	}
}

func TestBenchInterning(t *testing.T) {
	db := testDB(t)
	for i, bd := range db.Benches {
		id, ok := db.BenchIDOf(bd.Name)
		if !ok || int(id) != i {
			t.Fatalf("BenchIDOf(%s) = %d, %t; want %d", bd.Name, id, ok, i)
		}
		if db.BenchName(id) != bd.Name {
			t.Fatalf("BenchName(%d) = %s", id, db.BenchName(id))
		}
	}
	if _, ok := db.BenchIDOf("nosuch"); ok {
		t.Fatal("unknown name interned")
	}
	if db.NumBenches() != len(db.Benches) {
		t.Fatal("NumBenches mismatch")
	}
}
