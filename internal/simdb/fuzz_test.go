package simdb

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/trace"
)

// fuzzSeedDB builds one small real database, memoized across fuzz
// iterations (the corpus mutates its serialized bytes, not the build).
var fuzzSeedDB = sync.OnceValues(func() ([]byte, error) {
	sys := arch.DefaultSystemConfig(2)
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 4000, WarmupAccesses: 1000}
	db, err := Build(sys, []*trace.Benchmark{trace.ByName("bzip2")}, opt)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

// gzipped wraps raw bytes in a gzip stream (reaching the gob layer
// requires a valid gzip envelope and magic).
func gzipped(raw []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw) //nolint:errcheck // in-memory writer cannot fail
	zw.Close()
	return buf.Bytes()
}

// FuzzLoad pins the serialization hardening invariant: Load must never
// panic, whatever bytes it is fed — it either returns a database that
// passed structural validation or an error. The seed corpus covers every
// layer of the format (gzip envelope, magic, version, gob payload,
// structural validation) plus a fully valid database for the fuzzer to
// mutate; regression inputs live in testdata/fuzz/FuzzLoad.
func FuzzLoad(f *testing.F) {
	valid, err := fuzzSeedDB()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("not gzip at all"))
	f.Add(gzipped([]byte("WRONGMAG payload")))
	f.Add(gzipped([]byte("QOSRMADB")))                 // magic, then EOF
	f.Add(gzipped([]byte("QOSRMADB\x63\x00\x00\x00"))) // version 99
	var v2garbage bytes.Buffer
	io.WriteString(&v2garbage, "QOSRMADB")                             //nolint:errcheck
	binary.Write(&v2garbage, binary.LittleEndian, uint32(2))           //nolint:errcheck
	io.WriteString(&v2garbage, "this is not a gob stream either \x00") //nolint:errcheck
	f.Add(gzipped(v2garbage.Bytes()))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-7])
	// Flip a byte deep in the compressed payload.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)*3/4] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A database that decodes must be fully query-safe: walk the hot
		// paths a server would take on every (bench, phase, lattice) index.
		baseIdx := db.BaselineIdx()
		for id := 0; id < db.NumBenches(); id++ {
			bid := BenchID(id)
			for _, phase := range db.PhaseTraceAt(bid) {
				if pt := db.PerfAt(bid, phase, baseIdx); pt.Instr < 0 {
					t.Fatalf("negative instructions at %s phase %d", db.BenchName(bid), phase)
				}
				rec := db.RecordAt(bid, phase)
				_ = rec.Misses[db.Lattice.NumWays-1]
				_ = rec.Leading[db.Lattice.NumSizes-1][db.Lattice.NumWays-1]
			}
		}
	})
}
