package simdb

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save serializes the database with gob+gzip.
func (db *DB) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(db); err != nil {
		return fmt.Errorf("simdb: encode: %w", err)
	}
	return zw.Close()
}

// Load deserializes a database written by Save.
func Load(r io.Reader) (*DB, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("simdb: gzip: %w", err)
	}
	defer zr.Close()
	var db DB
	if err := gob.NewDecoder(zr).Decode(&db); err != nil {
		return nil, fmt.Errorf("simdb: decode: %w", err)
	}
	return &db, nil
}

// SaveFile writes the database to a file path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
