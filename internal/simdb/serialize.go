package simdb

import (
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Serialization format: gzip stream containing a magic tag, a format
// version, and the gob-encoded database — including the compiled lattice
// tables, so a loaded database is query-ready without recompilation.
// Version 1 was the bare gob encoding of the map-keyed database; it carries
// no magic and is rejected with a descriptive error.
const (
	dbMagic   = "QOSRMADB"
	dbVersion = uint32(2)
)

// Save serializes the database, compiled tables included.
func (db *DB) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := io.WriteString(zw, dbMagic); err != nil {
		return fmt.Errorf("simdb: write header: %w", err)
	}
	if err := binary.Write(zw, binary.LittleEndian, dbVersion); err != nil {
		return fmt.Errorf("simdb: write version: %w", err)
	}
	if err := gob.NewEncoder(zw).Encode(db); err != nil {
		return fmt.Errorf("simdb: encode: %w", err)
	}
	return zw.Close()
}

// Load deserializes a database written by Save and rebuilds the intern
// index. Files from other programs, corrupt files, and databases written
// by incompatible versions are rejected with descriptive errors.
func Load(r io.Reader) (*DB, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("simdb: gzip: %w", err)
	}
	defer zr.Close()
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(zr, magic); err != nil {
		return nil, fmt.Errorf("simdb: read header: %w", err)
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("simdb: not a simulation database (bad magic %q; old un-versioned databases must be rebuilt)", magic)
	}
	var version uint32
	if err := binary.Read(zr, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("simdb: read version: %w", err)
	}
	if version != dbVersion {
		return nil, fmt.Errorf("simdb: database format version %d, this build reads %d; rebuild the database", version, dbVersion)
	}
	var db DB
	if err := gob.NewDecoder(zr).Decode(&db); err != nil {
		return nil, fmt.Errorf("simdb: decode: %w", err)
	}
	if err := db.validate(); err != nil {
		return nil, err
	}
	db.reindex()
	return &db, nil
}

// validate checks the structural invariants of a decoded database so a
// truncated or hand-edited file fails loudly instead of panicking later:
// every slice a query path indexes — phase traces, miss and leading-miss
// profiles, compiled tables — must have exactly the geometry the system
// configuration implies. FuzzLoad drives arbitrary bytes through Load and
// relies on this being airtight.
func (db *DB) validate() error {
	if err := db.Sys.Validate(); err != nil {
		return fmt.Errorf("simdb: corrupt database: %w", err)
	}
	lat := db.Sys.Lattice()
	if db.Lattice != lat {
		return fmt.Errorf("simdb: corrupt database: lattice %+v does not match system %+v", db.Lattice, lat)
	}
	profileDims := func(prof [][]float64) bool {
		if len(prof) != lat.NumSizes {
			return false
		}
		for _, row := range prof {
			if len(row) < lat.NumWays {
				return false
			}
		}
		return true
	}
	for _, bd := range db.Benches {
		if bd == nil || bd.Analysis == nil {
			return fmt.Errorf("simdb: corrupt database: missing benchmark data")
		}
		an := bd.Analysis
		if an.NumPhases <= 0 || len(bd.Phases) != an.NumPhases || len(bd.PerfTables) != len(bd.Phases) {
			return fmt.Errorf("simdb: corrupt database: %s has %d phases, %d records, %d tables",
				bd.Name, an.NumPhases, len(bd.Phases), len(bd.PerfTables))
		}
		if len(an.PhaseTrace) == 0 {
			return fmt.Errorf("simdb: corrupt database: %s has an empty phase trace", bd.Name)
		}
		for _, ph := range an.PhaseTrace {
			if ph < 0 || ph >= an.NumPhases {
				return fmt.Errorf("simdb: corrupt database: %s phase trace references phase %d of %d",
					bd.Name, ph, an.NumPhases)
			}
		}
		for p, rec := range bd.Phases {
			if rec == nil ||
				len(rec.Misses) < lat.NumWays || len(rec.SampledMisses) < lat.NumWays ||
				!profileDims(rec.Leading) || !profileDims(rec.SampledLeading) {
				return fmt.Errorf("simdb: corrupt database: %s phase %d record malformed", bd.Name, p)
			}
			if len(bd.PerfTables[p]) != lat.Len() {
				return fmt.Errorf("simdb: corrupt database: %s phase %d table has %d entries, lattice needs %d",
					bd.Name, p, len(bd.PerfTables[p]), lat.Len())
			}
		}
	}
	return nil
}

// SaveFile writes the database to a file path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
