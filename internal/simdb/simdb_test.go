package simdb

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"io"
	"math"
	"strings"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/simpoint"
	"qosrma/internal/trace"
)

// testDB builds a small database over a few benchmarks once per test run.
var cachedDB *DB

func testDB(t *testing.T) *DB {
	t.Helper()
	if cachedDB != nil {
		return cachedDB
	}
	sys := arch.DefaultSystemConfig(4)
	benches := []*trace.Benchmark{
		trace.ByName("mcf"), trace.ByName("libquantum"),
		trace.ByName("hmmer"), trace.ByName("gcc"),
	}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 20000, WarmupAccesses: 6000}
	db, err := Build(sys, benches, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cachedDB = db
	return db
}

// forEachRecord visits every (benchmark, phase) record in the database.
func forEachRecord(db *DB, f func(key PhaseKey, rec *PhaseRecord)) {
	for _, bd := range db.Benches {
		for p, rec := range bd.Phases {
			f(PhaseKey{bd.Name, p}, rec)
		}
	}
}

func TestBuildCoversAllPhases(t *testing.T) {
	db := testDB(t)
	for _, bd := range db.Benches {
		an := bd.Analysis
		for p := 0; p < an.NumPhases; p++ {
			rec, err := db.Record(bd.Name, p)
			if err != nil {
				t.Fatalf("missing record: %v", err)
			}
			if len(rec.Misses) != db.Sys.LLC.Assoc+1 {
				t.Fatalf("%s/%d: profile length %d", bd.Name, p, len(rec.Misses))
			}
			if len(bd.PerfTables[p]) != db.Lattice.Len() {
				t.Fatalf("%s/%d: table length %d, lattice %d", bd.Name, p, len(bd.PerfTables[p]), db.Lattice.Len())
			}
		}
	}
}

func TestMissProfilesMonotone(t *testing.T) {
	db := testDB(t)
	forEachRecord(db, func(key PhaseKey, rec *PhaseRecord) {
		for w := 1; w < len(rec.Misses); w++ {
			if rec.Misses[w] > rec.Misses[w-1]+1e-9 {
				t.Fatalf("%v: exact misses increase at w=%d", key, w)
			}
		}
		for c := range rec.Leading {
			for w := 1; w < len(rec.Leading[c]); w++ {
				if rec.Leading[c][w] > rec.Leading[c][w-1]+1e-9 {
					t.Fatalf("%v: leading misses increase at c=%d w=%d", key, c, w)
				}
			}
		}
	})
}

func TestLeadingBelowTotalMisses(t *testing.T) {
	db := testDB(t)
	forEachRecord(db, func(key PhaseKey, rec *PhaseRecord) {
		for c := range rec.Leading {
			for w := range rec.Leading[c] {
				if rec.Leading[c][w] > rec.Misses[w]+1e-9 {
					t.Fatalf("%v: leading > total at c=%d w=%d", key, c, w)
				}
			}
		}
	})
}

func TestLargerCoreNeverMoreLeadingMisses(t *testing.T) {
	db := testDB(t)
	forEachRecord(db, func(key PhaseKey, rec *PhaseRecord) {
		for w := range rec.Misses {
			small := rec.Leading[arch.SizeSmall][w]
			large := rec.Leading[arch.SizeLarge][w]
			if large > small+1e-9 {
				t.Fatalf("%v w=%d: large core has more leading misses (%v > %v)",
					key, w, large, small)
			}
		}
	})
}

func TestMcfIsCacheSensitiveLibquantumIsNot(t *testing.T) {
	db := testDB(t)
	mpki := func(bench string, w int) float64 {
		rec, err := db.Record(bench, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Misses[w] / (trace.SliceInstructions / 1000)
	}
	// mcf must lose a large relative share of its misses from 2 to 12 ways.
	if rel := (mpki("mcf", 2) - mpki("mcf", 12)) / mpki("mcf", 2); rel < 0.25 {
		t.Errorf("mcf relative MPKI drop = %.2f, want > 0.25 (cache sensitive)", rel)
	}
	// libquantum must stay roughly flat in relative terms.
	if rel := (mpki("libquantum", 2) - mpki("libquantum", 12)) / mpki("libquantum", 2); rel > 0.10 {
		t.Errorf("libquantum relative MPKI drop = %.2f, want < 0.10 (cache insensitive)", rel)
	}
}

func TestPerfBasics(t *testing.T) {
	db := testDB(t)
	s := db.Sys.BaselineSetting()
	pt, err := db.Perf("mcf", 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if pt.IPS <= 0 || pt.TPI <= 0 || pt.EPI <= 0 {
		t.Fatalf("degenerate perf point: %+v", pt)
	}
	if math.Abs(pt.IPS*pt.TPI-1) > 1e-9 {
		t.Fatal("IPS and TPI inconsistent")
	}
	if math.Abs(pt.Seconds-pt.TPI*pt.Instr) > 1e-9 {
		t.Fatal("Seconds inconsistent with TPI")
	}
}

func TestPerfFrequencyMonotone(t *testing.T) {
	db := testDB(t)
	s := db.Sys.BaselineSetting()
	var prev float64
	for fi := range db.Sys.DVFS {
		s.FreqIdx = fi
		pt, err := db.Perf("gcc", 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if pt.IPS < prev-1e-6 {
			t.Fatalf("IPS decreased with frequency at idx %d", fi)
		}
		prev = pt.IPS
	}
}

func TestPerfWaysHelpCacheSensitiveApp(t *testing.T) {
	db := testDB(t)
	s := db.Sys.BaselineSetting()
	s.Ways = 2
	lo, _ := db.Perf("mcf", 0, s)
	s.Ways = 12
	hi, _ := db.Perf("mcf", 0, s)
	if hi.IPS <= lo.IPS {
		t.Fatalf("more ways did not help mcf: %v vs %v", hi.IPS, lo.IPS)
	}
	if hi.Energy.DRAM >= lo.Energy.DRAM {
		t.Fatal("more ways did not cut DRAM energy for mcf")
	}
}

func TestPerfUnknownBench(t *testing.T) {
	db := testDB(t)
	if _, err := db.Perf("nosuch", 0, db.Sys.BaselineSetting()); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if _, err := db.PhaseTrace("nosuch"); err == nil {
		t.Fatal("expected error for unknown trace")
	}
	if db.NumPhases("nosuch") != 0 {
		t.Fatal("NumPhases for unknown should be 0")
	}
}

func TestSampledProfilesApproximateExact(t *testing.T) {
	db := testDB(t)
	forEachRecord(db, func(key PhaseKey, rec *PhaseRecord) {
		// Compare at the baseline allocation; sampling noise must be
		// bounded for the heavy-traffic phases that matter.
		w := db.Sys.BaselineWays()
		if rec.Misses[w] < 1e5 {
			return // tiny counts are allowed to be noisy
		}
		rel := math.Abs(rec.SampledMisses[w]-rec.Misses[w]) / rec.Misses[w]
		if rel > 0.25 {
			t.Errorf("%v: sampled profile off by %.1f%%", key, rel*100)
		}
	})
}

func TestWeightsConsistentWithAnalyses(t *testing.T) {
	db := testDB(t)
	for _, bd := range db.Benches {
		var sum float64
		for p := 0; p < bd.Analysis.NumPhases; p++ {
			rec, err := db.Record(bd.Name, p)
			if err != nil {
				t.Fatal(err)
			}
			sum += rec.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: phase weights sum to %v", bd.Name, sum)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if db2.NumRecords() != db.NumRecords() {
		t.Fatalf("phase count %d != %d", db2.NumRecords(), db.NumRecords())
	}
	s := db.Sys.BaselineSetting()
	p1, _ := db.Perf("mcf", 0, s)
	p2, err := db2.Perf("mcf", 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if p1.EPI != p2.EPI || p1.TPI != p2.TPI {
		t.Fatal("round-tripped database disagrees")
	}
}

// TestSaveLoadRoundTripsCompiledTables asserts that the serialized form
// carries the compiled lattice tables verbatim: every stored PerfPoint of
// every phase survives bit-for-bit, and the loaded database is query-ready.
func TestSaveLoadRoundTripsCompiledTables(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if db2.Lattice != db.Lattice {
		t.Fatalf("lattice %+v != %+v", db2.Lattice, db.Lattice)
	}
	for i, bd := range db.Benches {
		bd2 := db2.Benches[i]
		if bd2.Name != bd.Name || len(bd2.PerfTables) != len(bd.PerfTables) {
			t.Fatalf("bench %d mismatch: %s/%d vs %s/%d",
				i, bd2.Name, len(bd2.PerfTables), bd.Name, len(bd.PerfTables))
		}
		for p := range bd.PerfTables {
			if len(bd2.PerfTables[p]) != len(bd.PerfTables[p]) {
				t.Fatalf("%s/%d: table length %d != %d", bd.Name, p,
					len(bd2.PerfTables[p]), len(bd.PerfTables[p]))
			}
			for j := range bd.PerfTables[p] {
				if bd2.PerfTables[p][j] != bd.PerfTables[p][j] {
					t.Fatalf("%s/%d: table entry %d differs", bd.Name, p, j)
				}
			}
		}
	}
	// The intern index must be rebuilt: the interned fast path works.
	id, ok := db2.BenchIDOf("mcf")
	if !ok {
		t.Fatal("loaded database lost the intern index")
	}
	if pt := db2.PerfAt(id, 0, db2.Lattice.Index(db2.Sys.BaselineSetting())); pt.IPS <= 0 {
		t.Fatalf("degenerate loaded perf point: %+v", pt)
	}
}

func TestLoadRejectsOldFormat(t *testing.T) {
	// A version-1 database was a bare gob stream inside gzip, no magic.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(struct{ Whatever int }{42}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("old format not rejected: %v", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	io.WriteString(zw, "QOSRMADB")
	binary.Write(zw, binary.LittleEndian, uint32(99))
	zw.Close()
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("wrong version not rejected: %v", err)
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	if _, err := Load(strings.NewReader("not gzip at all")); err == nil {
		t.Fatal("garbage accepted")
	}

	// Truncated stream: cut a valid database off mid-way.
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated database accepted")
	}

	// Structurally broken: tables missing for a phase. Re-encode a mutated
	// copy through the same writer and expect validation to reject it.
	mutant := *db
	mutant.Benches = append([]*BenchData(nil), db.Benches...)
	bd := *mutant.Benches[0]
	bd.PerfTables = bd.PerfTables[:0]
	mutant.Benches[0] = &bd
	var mbuf bytes.Buffer
	if err := mutant.Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&mbuf)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("structurally broken database not rejected: %v", err)
	}
}

func TestBuildDeterministicAcrossWorkerCounts(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	benches := []*trace.Benchmark{trace.ByName("bzip2")}
	opt := DefaultBuildOptions()
	opt.Sample = trace.SampleParams{Accesses: 5000, WarmupAccesses: 1000}
	opt.Workers = 1
	db1, err := Build(sys, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	db8, err := Build(sys, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	forEachRecord(db1, func(key PhaseKey, r1 *PhaseRecord) {
		r8, err := db8.Record(key.Bench, key.Phase)
		if err != nil {
			t.Fatalf("missing %v in 8-worker build", key)
		}
		for w := range r1.Misses {
			if r1.Misses[w] != r8.Misses[w] {
				t.Fatalf("%v: miss profile differs at w=%d", key, w)
			}
		}
	})
}

func TestBuildRejectsInvalidSystem(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	sys.LLC.Assoc = 7 // not divisible by 4 cores
	_, err := Build(sys, []*trace.Benchmark{trace.ByName("lbm")}, DefaultBuildOptions())
	if err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPerfClampsWays(t *testing.T) {
	db := testDB(t)
	s := db.Sys.BaselineSetting()
	s.Ways = 999
	if _, err := db.Perf("mcf", 0, s); err != nil {
		t.Fatalf("way clamping failed: %v", err)
	}
	s.Ways = -1
	if _, err := db.Perf("mcf", 0, s); err != nil {
		t.Fatalf("negative ways should clamp: %v", err)
	}
}

func TestPhaseTraceMatchesSimpoint(t *testing.T) {
	db := testDB(t)
	b := trace.ByName("gcc")
	an := simpoint.Analyze(b, DefaultBuildOptions().SimPoint)
	tr, err := db.PhaseTrace("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != len(an.PhaseTrace) {
		t.Fatalf("trace length %d != %d", len(tr), len(an.PhaseTrace))
	}
}
