package analysis

import (
	"sort"
	"strings"
)

// Suite is every analyzer qosrmavet runs, in report order.
var Suite = []*Analyzer{Determinism, Noalloc, Shardowned, Ctxdeadline, Exhaustive}

// deterministicPkgs are the packages that promise bit-identical output
// (paper tables, replay hashes, cross-codec equivalence); the
// determinism check applies only to them.
var deterministicPkgs = map[string]bool{
	"rmasim":      true,
	"cluster":     true,
	"sweep":       true,
	"simdb":       true,
	"wire":        true,
	"sched":       true,
	"equilibrium": true,
}

// inScope applies each check's package scope. Scope lives here, in the
// driver, not in the analyzers — so the golden fixtures exercise every
// analyzer unscoped.
func inScope(check, path string) bool {
	switch check {
	case "determinism":
		return deterministicPkgs[path[strings.LastIndex(path, "/")+1:]]
	case "ctxdeadline":
		return strings.HasSuffix(path, "internal/route")
	}
	return true
}

// Run executes the named checks (nil = all) over pkgs, applies scopes
// and //qosrma:allow suppressions, and returns surviving diagnostics
// sorted by position.
func Run(pkgs []*Package, checks []string) []Diagnostic {
	sel := map[string]bool{}
	for _, c := range checks {
		sel[strings.TrimSpace(c)] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sites, malformed := allowsOf(pkg)
		out = append(out, malformed...)
		for _, a := range Suite {
			if len(sel) > 0 && !sel[a.Name] {
				continue
			}
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			out = append(out, runOne(pkg, a, sites)...)
		}
	}
	sortDiags(out)
	return out
}

// runOne applies a single analyzer to a single package with suppression
// but without scoping (the fixture tests call it directly).
func runOne(pkg *Package, a *Analyzer, sites []allowSite) []Diagnostic {
	pass := &Pass{Analyzer: a, Pkg: pkg}
	a.Run(pass)
	var out []Diagnostic
	for _, d := range pass.diags {
		if !suppressed(d, sites) {
			out = append(out, d)
		}
	}
	return out
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
