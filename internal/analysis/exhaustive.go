package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires that a switch over an in-repo enum either covers
// every constant of the enum's type or declares a default clause. An
// enum is a named type defined in this module with at least two
// package-level constants of exactly that type (wire.ErrCode,
// core.Scheme, ...). Stdlib and third-party enums are out of scope: the
// repo cannot grow their constant sets, so partial switches over them
// are ordinary code, not drift risks.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over in-repo enums must cover every constant or declare a default",
	Run:  runExhaustive,
}

// modulePathPrefix defines "in-repo" for enum purposes; the golden
// fixtures load under qosrma/... so they count too.
const modulePathPrefix = "qosrma"

func runExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			covered := map[string]bool{} // constant exact values already cased
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					return true // default clause excuses the switch
				}
				for _, e := range cc.List {
					if tv, ok := info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			tagType := info.TypeOf(sw.Tag)
			consts := enumConsts(tagType)
			if len(consts) < 2 {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "switch over %s is missing cases %s; add them or a default clause",
					typeName(tagType), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// enumConsts returns the package-level constants of exactly type t, when
// t is a named in-repo type.
func enumConsts(t types.Type) []*types.Const {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), modulePathPrefix) {
		return nil
	}
	scope := obj.Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), t) {
			out = append(out, c)
		}
	}
	// Distinct values only: aliases of the same value are one case.
	seen := map[string]bool{}
	var dedup []*types.Const
	for _, c := range out {
		if k := c.Val().ExactString(); !seen[k] {
			seen[k] = true
			dedup = append(dedup, c)
		}
	}
	return dedup
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return fmt.Sprintf("%s.%s", pkg.Name(), named.Obj().Name())
		}
	}
	return t.String()
}
