// Package exhaustive is the golden fixture for the exhaustive analyzer:
// a switch over an in-repo enum covers every constant or declares a
// default.
package exhaustive

type mode int

const (
	modeOff mode = iota
	modeOn
	modeAuto
)

// modeAlias shares modeOn's value: aliases are one case, not a gap.
const modeAlias = modeOn

func partial(m mode) string {
	switch m { // want `switch over exhaustive\.mode is missing cases modeAuto; add them or a default clause`
	case modeOff:
		return "off"
	case modeOn:
		return "on"
	}
	return "?"
}

func full(m mode) string {
	switch m {
	case modeOff:
		return "off"
	case modeOn, modeAuto:
		return "running"
	}
	return "?"
}

func defaulted(m mode) string {
	switch m {
	case modeOff:
		return "off"
	default:
		return "other"
	}
}

func notAnEnum(n int) string {
	switch n { // plain int: out of scope
	case 0:
		return "zero"
	}
	return "more"
}

func allowedPartial(m mode) bool {
	//qosrma:allow(exhaustive) only the off state matters to this predicate
	switch m {
	case modeOff:
		return false
	}
	return true
}
