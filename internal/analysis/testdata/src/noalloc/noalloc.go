// Package noalloc is the golden fixture for the noalloc analyzer:
// closures, interface boxing, fmt, string building, unguarded make,
// from-nil appends — plus the two structural exemptions (growth guards
// and cold error paths) and the AllocsPerRun pin cross-check.
package noalloc

import "fmt"

type boxer interface{ box() }

type val int

func (val) box() {}

type sink struct {
	buf   []byte
	vals  []int
	iface boxer
}

//qosrma:noalloc
func hot(s *sink, n int) {
	if cap(s.buf) < n {
		s.buf = make([]byte, n) // growth guard: exempt
	}
	s.buf = s.buf[:n]
}

//qosrma:noalloc
func closures(s *sink) {
	f := func() { s.vals = s.vals[:0] } // want `function literal in noalloc function closures allocates a closure`
	f()
}

//qosrma:noalloc
func boxes(v val) boxer {
	return boxer(v) // want `conversion to interface .*boxer allocates in noalloc function boxes`
}

//qosrma:noalloc
func assigns(s *sink, v val, p *sink) {
	s.iface = v // want `assignment boxes .*val into interface .*boxer in noalloc function assigns`
	_ = p
}

//qosrma:noalloc
func grow(s *sink, n int) {
	s.vals = make([]int, n) // want `make in noalloc function grow`
}

//qosrma:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates in noalloc function concat`
}

//qosrma:noalloc
func appends() int {
	var out []int
	out = append(out, 1) // want `append grows out from nil in noalloc function appends`
	return len(out)
}

//qosrma:noalloc
func coldpath(s *sink, bad bool) error {
	if bad {
		return fmt.Errorf("sink rejected %d entries", len(s.vals)) // cold error path: exempt
	}
	return nil
}

//qosrma:noalloc
func format(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf allocates in noalloc function format`
}

//qosrma:noalloc
func allowed(s *sink, n int) {
	//qosrma:allow(noalloc) one-time arena setup measured by the pin
	s.vals = make([]int, n)
}

//qosrma:noalloc
func unpinned(s *sink) { // want `noalloc function unpinned has no testing\.AllocsPerRun pin`
	s.buf = s.buf[:0]
}
