package noalloc

import "testing"

// Pins for every annotated function except unpinned, whose missing pin
// is exactly what the fixture asserts.
func TestPins(t *testing.T) {
	s := &sink{}
	got := testing.AllocsPerRun(10, func() {
		hot(s, 8)
		closures(s)
		_ = boxes(1)
		assigns(s, 1, s)
		grow(s, 8)
		_ = concat("a", "b")
		_ = appends()
		_ = coldpath(s, false)
		_ = format(3)
		allowed(s, 8)
	})
	_ = got
}
