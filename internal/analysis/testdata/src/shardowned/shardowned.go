// Package shardowned is the golden fixture for the shardowned analyzer:
// annotated types must stay unexported and must never cross a goroutine
// boundary via go statements or channel sends — but a worker that merely
// contains owned scratch may be handed to its own goroutine.
package shardowned

//qosrma:shardowned
type scratch struct{ buf []byte }

// Exported carries the annotation but is visible outside the package,
// which defeats single-worker ownership.
//
//qosrma:shardowned
type Exported struct{ n int } // want `shardowned type Exported must be unexported`

type task struct{ n int }

// worker owns its scratch; the owned type is buried inside a named
// struct, so launching the worker itself is the sanctioned pattern.
type worker struct {
	sc scratch
	in chan task
}

func (w *worker) run() {
	for range w.in {
		w.sc.buf = w.sc.buf[:0]
	}
}

func spawn(w *worker) {
	go w.run() // legal: ownership transfers with the whole worker
}

func use(*scratch) {}

func leakGo(sc *scratch) {
	go use(sc) // want `go statement carries shard-owned type scratch to another goroutine`
}

func leakSend(ch chan *scratch, sc *scratch) {
	ch <- sc // want `channel send shares shard-owned type scratch across goroutines`
}

func leakSlice(ch chan []scratch, scs []scratch) {
	ch <- scs // want `channel send shares shard-owned type scratch across goroutines`
}

func sendTask(w *worker) {
	w.in <- task{} // legal: tasks are meant to cross
}

func allowedHandoff(ch chan *scratch, sc *scratch) {
	//qosrma:allow(shardowned) construction-time handoff before the worker starts
	ch <- sc
}
