// Package ctxdeadline is the golden fixture for the ctxdeadline
// analyzer: outbound dials, HTTP requests, and raw conn reads/writes
// must provably carry a deadline inside the function.
package ctxdeadline

import (
	"context"
	"net"
	"net/http"
	"time"
)

func dialBare(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net\.Dial connects without a deadline`
}

func dialUnfloored(addr string, d time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, d) // want `net\.DialTimeout timeout is not provably positive`
}

func dialFloored(addr string, d time.Duration) (net.Conn, error) {
	if d <= 0 {
		d = 2 * time.Second
	}
	return net.DialTimeout("tcp", addr, d) // legal: floored above
}

func dialConst(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 3*time.Second) // legal: positive constant
}

func dialCtxPassthrough(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr) // want `context does not provably carry a deadline`
}

func dialCtxBounded(ctx context.Context, addr string) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr) // legal: bounded above
}

func reqBare(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest carries no context`
}

func reqPassthrough(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil) // want `context does not provably carry a deadline`
}

func reqBounded(ctx context.Context, url string) (*http.Request, error) {
	ctx, cancel := context.WithDeadline(ctx, time.Unix(1, 0))
	defer cancel()
	return http.NewRequestWithContext(ctx, "GET", url, nil) // legal: deadline above
}

func writeBare(c net.Conn, p []byte) (int, error) {
	return c.Write(p) // want `Write on a net\.Conn with no preceding unconditional SetDeadline`
}

func readBare(c net.Conn, p []byte) (int, error) {
	return c.Read(p) // want `Read on a net\.Conn with no preceding unconditional SetDeadline`
}

func writeBounded(c net.Conn, p []byte) (int, error) {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	return c.Write(p) // legal: deadline set unconditionally above
}

func writeConditional(c net.Conn, p []byte, slow bool) (int, error) {
	if slow {
		_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	}
	return c.Write(p) // want `Write on a net\.Conn with no preceding unconditional SetDeadline`
}

func allowedDial(addr string) (net.Conn, error) {
	//qosrma:allow(ctxdeadline) fixture: the caller wraps this probe in a bounded context
	return net.Dial("tcp", addr)
}
