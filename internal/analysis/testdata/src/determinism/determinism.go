// Package determinism is the golden fixture for the determinism
// analyzer: wall-clock reads, the unseeded global rand source, and map
// iteration inside functions that never sort.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now breaks replay determinism`
}

func draw() int {
	return rand.Intn(6) // want `rand\.Intn draws from the unseeded global source`
}

func seeded() int {
	r := rand.New(rand.NewSource(1)) // New/NewSource construct a seeded generator: fine
	return r.Intn(6)                 // methods on the seeded generator: fine
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic and unsortedKeys never sorts`
		keys = append(keys, k)
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowedCount(m map[string]bool) int {
	n := 0
	//qosrma:allow(determinism) counting entries is order-insensitive
	for range m {
		n++
	}
	return n
}

func badAllow(m map[string]bool) int {
	n := 0
	//qosrma:allow determinism no parens, so this cannot suppress -- want `malformed qosrma:allow comment`
	for range m { // want `map iteration order is nondeterministic and badAllow never sorts`
		n++
	}
	return n
}
