package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// quotedRE matches the quoted regexes of a `want "..."` (or backquoted)
// expectation comment.
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations parses the fixture's `want` comments into per-line
// expected-diagnostic regexes, keyed by "file:line".
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := map[string][]*regexp.Regexp{}
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range quotedRE.FindAllString(c.Text[idx:], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %s: %v", key, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: compiling %q: %v", key, s, err)
					}
					out[key] = append(out[key], re)
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return out
}

// TestFixtures runs each analyzer over its golden fixture package and
// requires an exact match: every diagnostic answers a want comment on
// its line, and every want comment is answered.
func TestFixtures(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range Suite {
		byName[a.Name] = a
	}
	for _, name := range []string{"determinism", "noalloc", "shardowned", "ctxdeadline", "exhaustive"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := LoadDir("../..", dir, "qosrma/internal/analysis/testdata/src/"+name)
			if err != nil {
				t.Fatal(err)
			}
			want := expectations(t, pkg)
			sites, malformed := allowsOf(pkg)
			diags := append(malformed, runOne(pkg, byName[name], sites)...)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				matched := false
				res := want[key]
				for i, re := range res {
					if re != nil && re.MatchString(d.Message) {
						res[i] = nil
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Check, d.Message)
				}
			}
			for key, res := range want {
				for _, re := range res {
					if re != nil {
						t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
					}
				}
			}
		})
	}
}

// TestModuleClean loads the real module and requires the full suite to
// report nothing: the tree stays at a zero-finding baseline, with every
// exception documented in-source via qosrma:allow.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module type-check in -short mode")
	}
	pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := Run(pkgs, nil)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAllowParsing pins the suppression grammar: a well-formed allow
// yields a site, and malformed shapes surface as findings instead of
// silently suppressing.
func TestAllowParsing(t *testing.T) {
	for _, tc := range []struct {
		text  string
		check string // "" = malformed
	}{
		{"qosrma:allow(noalloc) arena grows once", "noalloc"},
		{"qosrma:allow(determinism) counting is order-insensitive", "determinism"},
		{"qosrma:allow(noalloc)", ""},       // missing reason
		{"qosrma:allow noalloc reason", ""}, // missing parens
		{"qosrma:allow(noalloc)   ", ""},    // whitespace is not a reason
	} {
		m := allowRE.FindStringSubmatch(tc.text)
		switch {
		case tc.check == "" && m != nil:
			t.Errorf("%q: parsed as allow(%s), want malformed", tc.text, m[1])
		case tc.check != "" && m == nil:
			t.Errorf("%q: malformed, want allow(%s)", tc.text, tc.check)
		case tc.check != "" && m[1] != tc.check:
			t.Errorf("%q: parsed check %q, want %q", tc.text, m[1], tc.check)
		}
	}
}
