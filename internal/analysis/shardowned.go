package analysis

import (
	"go/ast"
	"go/types"
)

// Shardowned enforces the //qosrma:shardowned contract: an annotated
// type (shard LRU, admission filter, scratch arena) is owned by exactly
// one worker goroutine and must never cross a goroutine boundary. The
// analyzer flags any `go` statement whose call carries an owned value
// (as receiver or argument) and any channel send whose payload carries
// one. Ownership is shallow: a value carries type T when its type is T,
// *T, []T, [N]T, chan T, or a map over T — but not when T is buried
// inside another named struct, because handing a whole worker (which
// owns its scratch) to its own goroutine is exactly the sanctioned
// pattern.
//
// Annotated types must also be unexported: the compiler then guarantees
// no other package can reference them at all, which closes the
// cross-package half of the ownership argument without whole-program
// analysis.
var Shardowned = &Analyzer{
	Name: "shardowned",
	Doc:  "forbid //qosrma:shardowned values from crossing goroutine boundaries",
	Run:  runShardowned,
}

func runShardowned(pass *Pass) {
	info := pass.Pkg.Info
	owned := map[*types.TypeName]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasAnnotation(doc, annoShardowned) {
					continue
				}
				tn, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				owned[tn] = true
				if tn.Exported() {
					pass.Reportf(ts.Pos(), "shardowned type %s must be unexported; exporting it breaks single-worker ownership", tn.Name())
				}
			}
		}
	}
	if len(owned) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if tn := callCarries(info, n.Call, owned); tn != nil {
					pass.Reportf(n.Pos(), "go statement carries shard-owned type %s to another goroutine", tn.Name())
				}
			case *ast.SendStmt:
				if tn := carries(info.TypeOf(n.Value), owned); tn != nil {
					pass.Reportf(n.Pos(), "channel send shares shard-owned type %s across goroutines", tn.Name())
				}
			}
			return true
		})
	}
}

// callCarries inspects a go-statement's call: the receiver (for method
// expressions) and every argument.
func callCarries(info *types.Info, call *ast.CallExpr, owned map[*types.TypeName]bool) *types.TypeName {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tn := carries(info.TypeOf(sel.X), owned); tn != nil {
			return tn
		}
	}
	for _, arg := range call.Args {
		if tn := carries(info.TypeOf(arg), owned); tn != nil {
			return tn
		}
	}
	return nil
}

// carries unwraps pointers, slices, arrays, channels and maps — but not
// named struct fields — looking for an owned type.
func carries(t types.Type, owned map[*types.TypeName]bool) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Named:
			if owned[u.Obj()] {
				return u.Obj()
			}
			return nil
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Map:
			if tn := carries(u.Key(), owned); tn != nil {
				return tn
			}
			t = u.Elem()
		default:
			return nil
		}
	}
}
