package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Ctxdeadline proves that every outbound dial and raw-connection
// read/write threads a deadline. A remote that stops answering must
// never wedge a routing-tier goroutine. The rules, per function:
//
//   - net.Dial is always a finding (no deadline at all);
//   - net.DialTimeout is fine when the timeout is provably positive — a
//     positive constant, or a variable floored earlier in the function
//     by the `if d <= 0 { d = default }` idiom;
//   - http.NewRequest is always a finding (use NewRequestWithContext);
//   - DialContext / NewRequestWithContext need a context that provably
//     carries a deadline: derived unconditionally in the same function
//     from context.WithTimeout or context.WithDeadline. A context that
//     merely passes through (a parameter) proves nothing here — if the
//     caller guarantees the deadline, say so with qosrma:allow;
//   - Read/Write on a net.Conn must be preceded by an unconditional
//     SetDeadline / SetReadDeadline / SetWriteDeadline in the same
//     function ("unconditional" = not nested inside an if/switch/select,
//     because a skippable deadline is exactly the hang bug).
var Ctxdeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "require provable deadlines on outbound dials, requests, and conn reads/writes",
	Run:  runCtxdeadline,
}

func runCtxdeadline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkDeadlines(pass, fd)
			}
		}
	}
}

func checkDeadlines(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	floored := flooredVars(info, fd)
	deadlineCtx, condSpans := deadlineContexts(info, fd)
	var deadlineSets []token.Pos // positions of unconditional SetDeadline calls
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		switch name := fn.Name(); {
		case isPkgFunc(fn, "net", "Dial"):
			pass.Reportf(call.Pos(), "net.Dial connects without a deadline; use DialTimeout or DialContext with a bounded context")
		case isPkgFunc(fn, "net", "DialTimeout"):
			if len(call.Args) == 3 && !provablyPositive(info, call.Args[2], floored) {
				pass.Reportf(call.Pos(), "net.DialTimeout timeout is not provably positive; floor it with `if d <= 0 { d = default }`")
			}
		case isPkgFunc(fn, "net/http", "NewRequest"):
			pass.Reportf(call.Pos(), "http.NewRequest carries no context; use NewRequestWithContext with a deadline")
		case isPkgFunc(fn, "net/http", "NewRequestWithContext"):
			if len(call.Args) > 0 && !ctxHasDeadline(info, call.Args[0], deadlineCtx) {
				pass.Reportf(call.Pos(), "context does not provably carry a deadline; derive it from context.WithTimeout/WithDeadline in this function (or qosrma:allow with the caller's guarantee)")
			}
		case name == "DialContext" && isDialerMethod(fn):
			if len(call.Args) > 0 && !ctxHasDeadline(info, call.Args[0], deadlineCtx) {
				pass.Reportf(call.Pos(), "context does not provably carry a deadline; derive it from context.WithTimeout/WithDeadline in this function (or qosrma:allow with the caller's guarantee)")
			}
		case name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline":
			if isNetConn(pass, info.TypeOf(sel.X)) && !inSpans(condSpans, call.Pos()) {
				deadlineSets = append(deadlineSets, call.Pos())
			}
		case name == "Read" || name == "Write":
			if isNetConn(pass, info.TypeOf(sel.X)) {
				ok := false
				for _, p := range deadlineSets {
					if p < call.Pos() {
						ok = true
					}
				}
				if !ok {
					pass.Reportf(call.Pos(), "%s on a net.Conn with no preceding unconditional SetDeadline in this function", name)
				}
			}
		}
		return true
	})
}

func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != path || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func isDialerMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net" && named.Obj().Name() == "Dialer"
}

// isNetConn reports whether t implements net.Conn (resolved through the
// pass's own import of package net; a package that never imports net has
// no conns to check).
func isNetConn(pass *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	for _, imp := range pass.Pkg.Types.Imports() {
		if imp.Path() != "net" {
			continue
		}
		obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName)
		if !ok {
			return false
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return false
		}
		return types.Implements(t, iface)
	}
	return false
}

// flooredVars finds duration variables guarded by `if d <= 0 { d = ... }`
// (or `< someBound`): after such a floor the variable is provably
// positive for DialTimeout purposes.
func flooredVars(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LEQ && cond.Op != token.LSS) {
			return true
		}
		id, ok := cond.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		// The guard body must reassign the variable.
		reassigns := false
		ast.Inspect(ifs.Body, func(b ast.Node) bool {
			if as, ok := b.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lid, ok := lhs.(*ast.Ident); ok && info.ObjectOf(lid) == obj {
						reassigns = true
					}
				}
			}
			return true
		})
		if reassigns {
			out[obj] = true
		}
		return true
	})
	return out
}

func provablyPositive(info *types.Info, e ast.Expr, floored map[types.Object]bool) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return constant.Sign(tv.Value) > 0
	}
	if id, ok := e.(*ast.Ident); ok {
		return floored[info.ObjectOf(id)]
	}
	return false
}

// deadlineContexts returns the context variables assigned unconditionally
// in fd from context.WithTimeout / context.WithDeadline, plus the spans
// of all conditional regions (used both here and for SetDeadline calls).
func deadlineContexts(info *types.Info, fd *ast.FuncDecl) (map[types.Object]bool, []span) {
	var condSpans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			condSpans = append(condSpans, span{n.Pos(), n.End()})
		case nil:
		}
		return true
	})
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 || inSpans(condSpans, as.Pos()) {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !(isPkgFunc(fn, "context", "WithTimeout") || isPkgFunc(fn, "context", "WithDeadline")) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out, condSpans
}

// ctxHasDeadline accepts a context argument that is either a direct
// WithTimeout/WithDeadline call or a variable assigned from one
// unconditionally in this function.
func ctxHasDeadline(info *types.Info, e ast.Expr, deadlineCtx map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return deadlineCtx[info.ObjectOf(e)]
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				return isPkgFunc(fn, "context", "WithTimeout") || isPkgFunc(fn, "context", "WithDeadline")
			}
		}
	}
	return false
}
