// Package analysis implements qosrmavet, the repo-specific static
// analysis suite. The runtime walls (determinism hashes, AllocsPerRun
// pins, chaos drills) only sample the invariants this reproduction
// trades on; the analyzers here prove them over the whole tree on every
// `make lint`:
//
//   - determinism: no wall-clock, global rand, or unsorted map iteration
//     in the packages that promise bit-identical output
//   - noalloc: functions annotated //qosrma:noalloc avoid the constructs
//     that allocate, and each carries a testing.AllocsPerRun pin
//   - shardowned: types annotated //qosrma:shardowned never cross a
//     goroutine boundary via `go` statements or channel sends
//   - ctxdeadline: every outbound dial/write in the routing tier carries
//     a provable deadline
//   - exhaustive: switches over in-repo enums cover every constant
//
// Findings are suppressed only by `//qosrma:allow(<check>) <reason>` on
// the same or the preceding line, so every exception is documented
// in-tree. The driver is stdlib-only: go/parser + go/types, with imports
// resolved through the compiler's own export data (see load.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// A Diagnostic is one finding from one check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// An Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Annotation markers. Each must appear on a line of its own inside the
// doc comment of the declaration it governs.
const (
	annoNoalloc    = "qosrma:noalloc"
	annoShardowned = "qosrma:shardowned"
)

// hasAnnotation reports whether doc carries the marker on its own line.
func hasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// allowSite is one parsed //qosrma:allow(check) reason comment. It
// suppresses diagnostics of that check on its own line and on the line
// immediately following (so the comment can sit above the flagged
// statement or trail it).
type allowSite struct {
	file  string
	line  int
	check string
}

var allowRE = regexp.MustCompile(`^qosrma:allow\((\w+)\)\s+(\S.*)`)

// allowsOf scans every comment in the package (test files included) for
// suppression sites. Only comments that begin with the marker count, so
// prose that merely mentions the grammar is ignored. Malformed allow
// comments — wrong shape or missing reason — never suppress; they are
// reported as findings of the "allow" pseudo-check so a typo cannot
// silently disable a real finding.
func allowsOf(pkg *Package) (sites []allowSite, malformed []Diagnostic) {
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "qosrma:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(text)
				if m == nil {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Check:   "allow",
						Message: "malformed qosrma:allow comment: want //qosrma:allow(<check>) <reason>",
					})
					continue
				}
				sites = append(sites, allowSite{file: pos.Filename, line: pos.Line, check: m[1]})
			}
		}
	}
	return sites, malformed
}

func suppressed(d Diagnostic, sites []allowSite) bool {
	for _, s := range sites {
		if s.check == d.Check && s.file == d.Pos.Filename &&
			(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}
