package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package plus the syntax the analyzers walk.
// Test files are parsed but not type-checked: the compiler's export data
// describes only the non-test half of a package, and the only check that
// reads test sources (the noalloc AllocsPerRun cross-check) is purely
// syntactic.
type Package struct {
	Path      string // import path
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // type-checked sources
	TestFiles []*ast.File // parsed only
	Types     *types.Package
	Info      *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	Module       *struct {
		Path string
		Main bool
	}
}

// goList shells out to `go list -deps -export` for the given patterns.
// -export makes the go tool compile the dependency graph and report the
// export-data file for every package, which is how imports resolve during
// type checking: exact compiled types, no reimplementation of the build
// system, and no dependency outside the standard toolchain.
func goList(root string, patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.Bytes())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer callback that opens each dependency's
// compiled export data.
func exportLookup(list []listPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(list))
	for _, p := range list {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// LoadModule type-checks every package of the module rooted at root and
// returns them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	list, err := goList(root, "./...")
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(list))
	var out []*Package
	for _, lp := range list {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		pkg, err := checkPkg(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the single fixture package in dir under the given
// import path (used by the golden-diagnostic tests). modroot anchors the
// `go list` run that resolves the fixture's imports to export data.
func LoadDir(modroot, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var srcs, tests []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, name)
		} else {
			srcs = append(srcs, name)
		}
	}
	fset := token.NewFileSet()
	files, err := parseAll(fset, dir, srcs)
	if err != nil {
		return nil, err
	}
	testFiles, err := parseAll(fset, dir, tests)
	if err != nil {
		return nil, err
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[p] = true
		}
	}
	var imp types.Importer
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		list, err := goList(modroot, pats...)
		if err != nil {
			return nil, err
		}
		imp = importer.ForCompiler(fset, "gc", exportLookup(list))
	}
	return checkFiles(fset, imp, path, dir, files, testFiles)
}

func parseAll(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func checkPkg(fset *token.FileSet, imp types.Importer, lp listPkg) (*Package, error) {
	files, err := parseAll(fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	var testFiles []*ast.File
	for _, group := range [][]string{lp.TestGoFiles, lp.XTestGoFiles} {
		fs, err := parseAll(fset, lp.Dir, group)
		if err != nil {
			return nil, err
		}
		testFiles = append(testFiles, fs...)
	}
	return checkFiles(fset, imp, lp.ImportPath, lp.Dir, files, testFiles)
}

func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, files, testFiles []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}, nil
}
