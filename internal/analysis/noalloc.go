package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc enforces the //qosrma:noalloc contract: an annotated function
// must avoid the constructs that force heap allocation on its hot path —
// function literals (closure + captures), implicit and explicit interface
// conversions, fmt calls, string concatenation and string<->[]byte
// conversions, `new`, un-guarded `make`, and appends that grow a slice
// from nil.
//
// Two idioms the hot paths rely on are exempt by construction rather
// than by annotation:
//
//   - cold error paths: anything inside an if-block whose final statement
//     returns a non-nil error may allocate (wrapping with fmt.Errorf on
//     the malformed-input path is fine; the zero-alloc pin never takes
//     that branch);
//   - growth guards: anything inside an if/else whose condition reads
//     cap() or len() may allocate (the grow-on-demand scratch idiom —
//     `if cap(s) < n { s = make(...) }` — amortises to zero).
//
// The analyzer also cross-checks that every annotated function is pinned
// dynamically: some _test.go file in the package must both mention the
// function and call testing.AllocsPerRun. Static shape plus a measured
// pin is the contract; neither alone is trusted.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "enforce allocation-free bodies and AllocsPerRun pins for //qosrma:noalloc functions",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) {
	var annotated []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasAnnotation(fd.Doc, annoNoalloc) {
				annotated = append(annotated, fd)
			}
		}
	}
	if len(annotated) == 0 {
		return
	}
	pins := allocPinFiles(pass.Pkg)
	for _, fd := range annotated {
		if fd.Body == nil {
			continue
		}
		if !pinned(pins, fd.Name.Name) {
			pass.Reportf(fd.Pos(), "noalloc function %s has no testing.AllocsPerRun pin in this package's tests", fd.Name.Name)
		}
		checkNoallocBody(pass, fd)
	}
}

// allocPinFiles returns, for each test file that calls AllocsPerRun, the
// set of identifiers it mentions. The cross-check is file-granular: a
// test file that measures allocations and names the function counts as
// its pin.
func allocPinFiles(pkg *Package) []map[string]bool {
	var out []map[string]bool
	for _, f := range pkg.TestFiles {
		mentions := map[string]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				mentions[id.Name] = true
			}
			return true
		})
		if mentions["AllocsPerRun"] {
			out = append(out, mentions)
		}
	}
	return out
}

func pinned(pins []map[string]bool, name string) bool {
	for _, m := range pins {
		if m[name] {
			return true
		}
	}
	return false
}

// span is a half-open source interval used to mark exempt regions.
type span struct{ lo, hi token.Pos }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// exemptSpans computes the cold-error-path and growth-guard regions of
// fd's body (see the package comment on Noalloc).
func exemptSpans(pass *Pass, fd *ast.FuncDecl) []span {
	info := pass.Pkg.Info
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		// Growth guard: condition reads cap() or len(); the whole
		// statement (else branch included) may allocate.
		capGuard := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					capGuard = true
				}
			}
			return true
		})
		if capGuard {
			spans = append(spans, span{ifs.Pos(), ifs.End()})
			return true
		}
		// Cold error path: the block ends by returning a non-nil error.
		if stmts := ifs.Body.List; len(stmts) > 0 {
			if ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt); ok && returnsError(info, ret) {
				spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
			}
		}
		return true
	})
	return spans
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if t := info.TypeOf(res); t != nil && types.Implements(t, errorIface) {
			return true
		}
	}
	return false
}

func checkNoallocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	exempt := exemptSpans(pass, fd)
	nilSlices := nilSliceVars(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inSpans(exempt, n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in noalloc function %s allocates a closure", fd.Name.Name)
			return false // interior belongs to the closure, not the hot path
		case *ast.CallExpr:
			return checkNoallocCall(pass, fd, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			checkNoallocAssign(pass, fd, n, nilSlices)
		}
		return true
	})
}

// nilSliceVars collects local variables declared with no backing array
// (`var s []T`, `s := []T{}`, `s := []T(nil)`). Appending to one of
// these grows from nil and allocates; appending to a parameter or a
// field is the caller's reused scratch and is legal.
func nilSliceVars(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	info := pass.Pkg.Info
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							out[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if obj := info.Defs[id]; obj != nil && emptySliceExpr(info, n.Rhs[i]) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func emptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if _, isSlice := info.TypeOf(e).Underlying().(*types.Slice); isSlice {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr: // []T(nil) conversion
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && len(e.Args) == 1 {
				if id, ok := e.Args[0].(*ast.Ident); ok && id.Name == "nil" {
					return true
				}
			}
		}
	}
	return false
}

// checkNoallocCall vets one call expression. The return value feeds
// ast.Inspect: false stops descent (used when the whole call was already
// reported, so its arguments don't pile on secondary findings).
func checkNoallocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	info := pass.Pkg.Info

	// Conversions: to an interface, or between string and []byte/[]rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(dst) && src != nil && !types.IsInterface(src) && !pointerShaped(src):
			pass.Reportf(call.Pos(), "conversion to interface %s allocates in noalloc function %s", dst, fd.Name.Name)
		case isString(dst) != isString(src) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src)):
			pass.Reportf(call.Pos(), "string/slice conversion copies and allocates in noalloc function %s", fd.Name.Name)
		}
		return true
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in noalloc function %s; preallocate in the owner or guard growth with a cap()/len() check", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new in noalloc function %s", fd.Name.Name)
			}
			return true
		}
	}

	// fmt on the hot path.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "call to fmt.%s allocates in noalloc function %s", fn.Name(), fd.Name.Name)
			return false
		}
	}

	// Implicit interface conversions at argument positions.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(info, arg) || pointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in noalloc function %s", at, param, fd.Name.Name)
	}
	return true
}

func checkNoallocAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt, nilSlices map[types.Object]bool) {
	info := pass.Pkg.Info
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(info.TypeOf(as.Lhs[0])) {
		pass.Reportf(as.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
		return
	}
	for i, rhs := range as.Rhs {
		// append growing a from-nil local.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && len(call.Args) > 0 {
					if target, ok := call.Args[0].(*ast.Ident); ok && nilSlices[info.ObjectOf(target)] {
						pass.Reportf(call.Pos(), "append grows %s from nil in noalloc function %s; preallocate or reuse scratch", target.Name, fd.Name.Name)
					}
				}
			}
		}
		// Implicit interface conversion on assignment.
		if i < len(as.Lhs) && len(as.Lhs) == len(as.Rhs) {
			lt := info.TypeOf(as.Lhs[i])
			rt := info.TypeOf(rhs)
			if lt != nil && rt != nil && types.IsInterface(lt) && !types.IsInterface(rt) &&
				!isUntypedNil(info, rhs) && !pointerShaped(rt) {
				pass.Reportf(rhs.Pos(), "assignment boxes %s into interface %s in noalloc function %s", rt, lt, fd.Name.Name)
			}
		}
	}
}

// pointerShaped reports types whose value is a single pointer word:
// converting one to an interface stores the pointer directly in the
// iface data word and does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
