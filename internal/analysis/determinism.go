package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags sources of run-to-run nondeterminism in the
// simulation and serving packages that promise bit-identical output:
// wall-clock reads, the unseeded global math/rand source, and map
// iteration inside functions that never sort. The map heuristic is
// deliberately coarse — a function that ranges over a map and contains
// no sort call anywhere cannot be emitting in a stable order; genuinely
// order-insensitive reductions document themselves with
// //qosrma:allow(determinism).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag time.Now, unseeded math/rand, and unsorted map iteration in deterministic packages",
	Run:  runDeterminism,
}

// randExempt lists the math/rand package-level functions that construct
// an explicitly seeded generator rather than drawing from the global
// source.
var randExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now breaks replay determinism; thread a clock or virtual time through the caller")
				}
			case "math/rand", "math/rand/v2":
				if !randExempt[fn.Name()] {
					pass.Reportf(sel.Pos(), "%s.%s draws from the unseeded global source; use an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
}

// checkMapRanges flags `range` over a map inside a function that never
// sorts: whatever order the loop observes leaks into the function's
// effects. A call into package sort or a slices.Sort* call anywhere in
// the function is taken as evidence the iteration order is laundered
// through a sorted collection before use.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	sorts := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				sorts = true
			}
		}
		return true
	})
	if sorts {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and %s never sorts; collect and sort keys (or document with qosrma:allow)", fd.Name.Name)
		}
		return true
	})
}
