package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape check is the static complement of the AllocsPerRun pins:
// it runs the compiler's own escape analysis (`go build -gcflags=-m=1`)
// over every package containing //qosrma:noalloc functions, keeps the
// "escapes to heap" / "moved to heap" diagnostics that fall inside an
// annotated body, normalises them to `pkg.func: message` lines (sorted
// and deduplicated, so they are stable against unrelated line drift),
// and diffs them against the committed baseline. A new escape in a hot
// function fails `make escape-check` even when the allocation hides
// behind a branch no pin happens to take.

var escapeLineRE = regexp.MustCompile(`^(\S+?):(\d+):\d+: (.*)$`)

// funcRange locates one annotated function in compiler-diagnostic
// coordinates (path relative to the module root).
type funcRange struct {
	pkg    string
	name   string
	file   string
	lo, hi int
}

// EscapeDiff compares current escape-analysis output for all annotated
// functions against the baseline file. It returns the diff as
// human-readable lines ("+ new escape", "- escape no longer present");
// an empty diff means the tree matches the baseline. With update set it
// rewrites the baseline instead and returns nil.
func EscapeDiff(root string, pkgs []*Package, baselinePath string, update bool) ([]string, error) {
	var ranges []funcRange
	pkgSet := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasAnnotation(fd.Doc, annoNoalloc) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				rel, err := filepath.Rel(root, start.Filename)
				if err != nil {
					return nil, err
				}
				ranges = append(ranges, funcRange{
					pkg:  pkg.Path,
					name: funcDeclName(fd),
					file: rel,
					lo:   start.Line,
					hi:   end.Line,
				})
				pkgSet[pkg.Path] = true
			}
		}
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("no //qosrma:noalloc functions found; nothing to escape-check")
	}
	var pkgPaths []string
	for p := range pkgSet {
		pkgPaths = append(pkgPaths, p)
	}
	sort.Strings(pkgPaths)

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=1"}, pkgPaths...)...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=1: %v\n%s", err, out.Bytes())
	}

	seen := map[string]bool{}
	var current []string
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		for _, r := range ranges {
			if r.file == m[1] && r.lo <= lineNo && lineNo <= r.hi {
				entry := fmt.Sprintf("%s.%s: %s", r.pkg, r.name, msg)
				if !seen[entry] {
					seen[entry] = true
					current = append(current, entry)
				}
				break
			}
		}
	}
	sort.Strings(current)

	if update {
		data := strings.Join(current, "\n")
		if len(current) > 0 {
			data += "\n"
		}
		return nil, os.WriteFile(baselinePath, []byte(data), 0o644)
	}

	baseline := map[string]bool{}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("reading escape baseline (run with -update to create it): %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			baseline[line] = true
		}
	}
	var diff []string
	for _, c := range current {
		if !baseline[c] {
			diff = append(diff, "+ "+c)
		}
	}
	for b := range baseline {
		if !seen[b] {
			diff = append(diff, "- "+b)
		}
	}
	sort.Strings(diff)
	return diff, nil
}

// funcDeclName renders "Name" or "(*Recv).Name" the way humans grep for
// it.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var recv string
	switch t := t.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			recv = "(*" + id.Name + ")"
		}
	case *ast.Ident:
		recv = "(" + t.Name + ")"
	}
	if recv == "" {
		return fd.Name.Name
	}
	return recv + "." + fd.Name.Name
}
