// Package simpoint reimplements the SimPoint phase-analysis methodology
// (Sherwood et al., ASPLOS 2002) used in the thesis' simulation framework:
// a program's instruction stream is divided into fixed-size slices, each
// slice is summarized by a basic-block-vector-like signature, the slices are
// clustered with k-means, and one representative slice per cluster ("phase")
// is selected for detailed simulation. The analysis also emits per-phase
// weights and the phase trace — the sequence of phases the full execution
// visits — which drives the co-phase RMA simulator.
package simpoint

import (
	"fmt"
	"math"

	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

// Analysis is the result of running SimPoint on one benchmark.
type Analysis struct {
	Bench     *trace.Benchmark
	NumPhases int
	// Representative[p] is the slice index chosen to represent phase p.
	Representative []int
	// Weight[p] is the fraction of slices belonging to phase p.
	Weight []float64
	// PhaseTrace[i] is the phase id of slice i.
	PhaseTrace []int
}

// Options controls the clustering.
type Options struct {
	MaxPhases  int    // upper bound on k (SimPoint's maxK)
	Iterations int    // k-means iterations per k
	Seed       uint64 // base seed for k-means++ initialization
	// BICThreshold selects the smallest k whose BIC score reaches this
	// fraction of the best score over all k (SimPoint default 0.9).
	BICThreshold float64
}

// DefaultOptions returns the settings used by the experimental methodology.
func DefaultOptions() Options {
	return Options{MaxPhases: 8, Iterations: 40, Seed: 0x51309, BICThreshold: 0.9}
}

// Analyze clusters the benchmark's slices into phases.
func Analyze(b *trace.Benchmark, opt Options) *Analysis {
	n := b.NumSlices()
	if n == 0 {
		panic("simpoint: benchmark has no slices")
	}
	if opt.MaxPhases < 1 {
		opt.MaxPhases = 1
	}
	if opt.MaxPhases > n {
		opt.MaxPhases = n
	}
	if opt.Iterations < 1 {
		opt.Iterations = 1
	}
	if opt.BICThreshold <= 0 || opt.BICThreshold > 1 {
		opt.BICThreshold = 0.9
	}

	// One contiguous backing array for all signatures: the k-means inner
	// loops then stream sequential memory instead of chasing per-slice
	// allocations.
	backing := make([]float64, n*trace.NumSignatureBlocks)
	points := make([][]float64, n)
	for i := 0; i < n; i++ {
		sig := b.SliceSignature(i)
		row := backing[i*trace.NumSignatureBlocks : (i+1)*trace.NumSignatureBlocks]
		copy(row, sig[:])
		points[i] = row
	}

	type kResult struct {
		assign []int
		cents  [][]float64
		bic    float64
	}
	results := make([]kResult, 0, opt.MaxPhases)
	best := math.Inf(-1)
	for k := 1; k <= opt.MaxPhases; k++ {
		seed := stats.SeedFrom(opt.Seed, fmt.Sprintf("%s/k=%d", b.Name, k))
		assign, cents := kmeans(points, k, opt.Iterations, seed)
		bic := bicScore(points, assign, cents)
		results = append(results, kResult{assign, cents, bic})
		if bic > best {
			best = bic
		}
	}
	chosen := results[len(results)-1]
	for _, r := range results {
		if r.bic >= opt.BICThreshold*best || (best < 0 && r.bic >= best/opt.BICThreshold) {
			chosen = r
			break
		}
	}

	k := len(chosen.cents)
	an := &Analysis{
		Bench:          b,
		NumPhases:      k,
		Representative: make([]int, k),
		Weight:         make([]float64, k),
		PhaseTrace:     chosen.assign,
	}
	// Representative: slice nearest to its cluster centroid.
	bestDist := make([]float64, k)
	for p := range bestDist {
		bestDist[p] = math.Inf(1)
		an.Representative[p] = -1
	}
	counts := make([]int, k)
	for i, p := range chosen.assign {
		counts[p]++
		d := sqDist(points[i], chosen.cents[p])
		if d < bestDist[p] {
			bestDist[p] = d
			an.Representative[p] = i
		}
	}
	for p := 0; p < k; p++ {
		an.Weight[p] = float64(counts[p]) / float64(n)
		if an.Representative[p] < 0 {
			// Empty cluster (possible when k exceeds natural structure):
			// collapse onto phase 0's representative with zero weight.
			an.Representative[p] = an.Representative[0]
		}
	}
	return an
}

// kmeans runs k-means++ initialization followed by Lloyd iterations.
func kmeans(points [][]float64, k, iters int, seed uint64) (assign []int, cents [][]float64) {
	n := len(points)
	dim := len(points[0])
	rng := stats.NewRNG(seed)

	// k-means++ seeding. d2[i] is maintained incrementally as the minimum
	// squared distance to the centroids chosen so far: folding in each new
	// centroid with the same left-to-right min as a full rescan keeps the
	// values (and therefore the seeded centroids) bit-identical to the
	// original O(k²n) recomputation.
	cents = make([][]float64, 0, k)
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, cents[0])
	}
	for len(cents) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), points[next]...))
		newest := cents[len(cents)-1]
		for i, p := range points {
			if dd := sqDist(p, newest); dd < d2[i] {
				d2[i] = dd
			}
		}
	}

	assign = make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c := range cents {
				if d, below := sqDistBelow(p, cents[c], bd); below {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		for c := range cents {
			for j := range cents[c] {
				cents[c][j] = 0
			}
		}
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j := 0; j < dim; j++ {
				cents[c][j] += p[j]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				continue // leave empty centroid in place
			}
			for j := range cents[c] {
				cents[c][j] /= float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return assign, cents
}

// bicScore computes a Bayesian-information-criterion-style score for a
// clustering (higher is better), following the X-means formulation SimPoint
// uses for model selection.
func bicScore(points [][]float64, assign []int, cents [][]float64) float64 {
	n := len(points)
	k := len(cents)
	dim := len(points[0])
	if n <= k {
		return math.Inf(-1)
	}
	// Pooled variance estimate.
	var ss float64
	for i, p := range points {
		ss += sqDist(p, cents[assign[i]])
	}
	variance := ss / float64(n-k)
	if variance <= 0 {
		variance = 1e-12
	}
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	var loglik float64
	for _, rn := range counts {
		if rn == 0 {
			continue
		}
		rnf := float64(rn)
		loglik += rnf*math.Log(rnf/float64(n)) -
			rnf*float64(dim)/2*math.Log(2*math.Pi*variance) -
			(rnf-1)/2
	}
	params := float64(k) * (float64(dim) + 1)
	return loglik - params/2*math.Log(float64(n))
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// sqDistBelow reports whether the squared distance between a and b is
// strictly below bound, returning the (exact) distance when it is. The
// accumulation order matches sqDist term for term; the early exit only
// skips work once the partial sum — a lower bound, all terms being
// non-negative — already reaches bound, so accept/reject decisions are
// bit-identical to comparing full sqDist values.
func sqDistBelow(a, b []float64, bound float64) (float64, bool) {
	var d float64
	n := len(a)
	for i := 0; i < n; i += 8 {
		end := i + 8
		if end > n {
			end = n
		}
		for j := i; j < end; j++ {
			diff := a[j] - b[j]
			d += diff * diff
		}
		if d >= bound {
			return d, false
		}
	}
	return d, true
}

// PhaseOfSlice returns the phase id for slice i.
func (a *Analysis) PhaseOfSlice(i int) int { return a.PhaseTrace[i] }

// Purity measures how well the recovered phases match the generative
// ground-truth behaviours (fraction of slices whose cluster's majority
// behaviour equals their own behaviour). Used by tests; the algorithms
// under study never see ground truth.
func (a *Analysis) Purity() float64 {
	// majority behaviour per cluster
	counts := make([]map[int]int, a.NumPhases)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, p := range a.PhaseTrace {
		counts[p][a.Bench.SliceBehavior[i]]++
	}
	majority := make([]int, a.NumPhases)
	for p, m := range counts {
		best, bestN := -1, -1
		for b, n := range m {
			if n > bestN {
				best, bestN = b, n
			}
		}
		majority[p] = best
	}
	correct := 0
	for i, p := range a.PhaseTrace {
		if a.Bench.SliceBehavior[i] == majority[p] {
			correct++
		}
	}
	return float64(correct) / float64(len(a.PhaseTrace))
}
