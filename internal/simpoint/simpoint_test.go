package simpoint

import (
	"math"
	"testing"

	"qosrma/internal/trace"
)

func TestAnalyzeRecoversPhases(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "lbm", "perlbench"} {
		b := trace.ByName(name)
		an := Analyze(b, DefaultOptions())
		if an.NumPhases < 1 || an.NumPhases > DefaultOptions().MaxPhases {
			t.Fatalf("%s: phases = %d", name, an.NumPhases)
		}
		if p := an.Purity(); p < 0.95 {
			t.Errorf("%s: clustering purity %.3f < 0.95 (phases=%d, truth=%d)",
				name, p, an.NumPhases, len(b.Behaviors))
		}
	}
}

func TestAnalyzeSinglePhaseProgram(t *testing.T) {
	b := trace.ByName("lbm") // one behaviour
	an := Analyze(b, DefaultOptions())
	if an.NumPhases != 1 {
		t.Fatalf("lbm phases = %d, want 1 (single-behaviour program)", an.NumPhases)
	}
	if an.Weight[0] != 1 {
		t.Fatalf("weight = %v, want 1", an.Weight[0])
	}
}

func TestWeightsSumToOne(t *testing.T) {
	for _, b := range trace.Suite() {
		an := Analyze(b, DefaultOptions())
		var sum float64
		for _, w := range an.Weight {
			if w < 0 {
				t.Fatalf("%s: negative weight", b.Name)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: weights sum to %v", b.Name, sum)
		}
	}
}

func TestPhaseTraceCoversAllSlices(t *testing.T) {
	b := trace.ByName("gcc")
	an := Analyze(b, DefaultOptions())
	if len(an.PhaseTrace) != b.NumSlices() {
		t.Fatalf("trace length %d != slices %d", len(an.PhaseTrace), b.NumSlices())
	}
	for i, p := range an.PhaseTrace {
		if p < 0 || p >= an.NumPhases {
			t.Fatalf("slice %d assigned to phase %d of %d", i, p, an.NumPhases)
		}
	}
}

func TestRepresentativeBelongsToPhase(t *testing.T) {
	for _, name := range []string{"gcc", "soplex", "mcf"} {
		b := trace.ByName(name)
		an := Analyze(b, DefaultOptions())
		for p := 0; p < an.NumPhases; p++ {
			if an.Weight[p] == 0 {
				continue
			}
			rep := an.Representative[p]
			if rep < 0 || rep >= b.NumSlices() {
				t.Fatalf("%s: representative %d out of range", name, rep)
			}
			if an.PhaseTrace[rep] != p {
				t.Fatalf("%s: representative %d of phase %d belongs to phase %d",
					name, rep, p, an.PhaseTrace[rep])
			}
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	b := trace.ByName("bzip2")
	a1 := Analyze(b, DefaultOptions())
	a2 := Analyze(b, DefaultOptions())
	if a1.NumPhases != a2.NumPhases {
		t.Fatal("phase count differs between runs")
	}
	for i := range a1.PhaseTrace {
		if a1.PhaseTrace[i] != a2.PhaseTrace[i] {
			t.Fatalf("phase trace differs at slice %d", i)
		}
	}
}

func TestOptionsClamping(t *testing.T) {
	b := trace.ByName("lbm")
	an := Analyze(b, Options{MaxPhases: 0, Iterations: 0, Seed: 1, BICThreshold: 5})
	if an.NumPhases != 1 {
		t.Fatalf("clamped analysis produced %d phases", an.NumPhases)
	}
}

func TestPhaseOfSlice(t *testing.T) {
	b := trace.ByName("gcc")
	an := Analyze(b, DefaultOptions())
	if an.PhaseOfSlice(0) != an.PhaseTrace[0] {
		t.Fatal("PhaseOfSlice mismatch")
	}
}
