package workload

import (
	"sort"

	"qosrma/internal/stats"
)

// Arrival is one job of an open-system workload: a benchmark that enters
// the cluster at an absolute time. Arrival traces are the dynamic
// counterpart of the fixed Mixes above — instead of one application per
// core for one round, jobs arrive, queue, run and depart.
type Arrival struct {
	ID      int
	Bench   string
	TimeSec float64
}

// ArrivalOptions configures the deterministic arrival-trace generators.
type ArrivalOptions struct {
	// Jobs is the number of arrivals to draw.
	Jobs int
	// MeanInterarrivalSec is the mean of the exponential interarrival
	// distribution (a Poisson arrival process); larger means a lighter
	// offered load.
	MeanInterarrivalSec float64
	// Seed fully determines the trace: the same (population, options)
	// always yields the same arrivals, bit for bit.
	Seed uint64
}

// PoissonArrivals draws an open-system arrival trace: interarrival times
// are exponential with the configured mean and benchmarks are drawn
// uniformly from the population, all from one RNG stream derived from the
// seed. The result is sorted by time (construction order) and is a pure
// function of its inputs.
func PoissonArrivals(benches []string, opt ArrivalOptions) []Arrival {
	if len(benches) == 0 || opt.Jobs <= 0 {
		return nil
	}
	rng := stats.NewRNG(stats.SeedFrom(opt.Seed, "workload/arrivals"))
	out := make([]Arrival, 0, opt.Jobs)
	t := 0.0
	for i := 0; i < opt.Jobs; i++ {
		t += rng.Exp(opt.MeanInterarrivalSec)
		out = append(out, Arrival{ID: i, Bench: benches[rng.Intn(len(benches))], TimeSec: t})
	}
	return out
}

// ClassArrivals draws a Poisson arrival trace whose benchmark population
// is restricted to the given Paper I classes — the open-system analogue of
// the category-patterned mixes (e.g. a cluster fed only cache-sensitive
// work). Profiles outside the classes are ignored; an empty filtered
// population yields no arrivals.
func ClassArrivals(profiles []*Profile, classes []Class, opt ArrivalOptions) []Arrival {
	want := make(map[Class]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	var benches []string
	for _, p := range profiles {
		if want[p.PaperIClass] {
			benches = append(benches, p.Bench)
		}
	}
	sort.Strings(benches) // profile order is caller-defined; fix the draw order
	return PoissonArrivals(benches, opt)
}
