package workload

import (
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	dbOnce.Do(func() {
		sys := arch.DefaultSystemConfig(4)
		dbInst, dbErr = simdb.Build(sys, trace.Suite(), simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

func TestCharacterizeKnownBenchmarks(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		bench      string
		memIntense bool
		cacheSens  bool
	}{
		{"mcf", true, true},
		{"omnetpp", true, true},
		{"libquantum", true, false},
		{"lbm", true, false},
		{"bzip2", false, true},
		{"hmmer", false, false},
		{"povray", false, false},
	}
	for _, c := range cases {
		p, err := Characterize(db, c.bench)
		if err != nil {
			t.Fatal(err)
		}
		if p.MemIntense != c.memIntense {
			t.Errorf("%s: MemIntense = %v (MPKI %.2f), want %v",
				c.bench, p.MemIntense, p.BaselineMPKI, c.memIntense)
		}
		if p.CacheSens != c.cacheSens {
			t.Errorf("%s: CacheSens = %v (drop %.2f rel %.2f), want %v",
				c.bench, p.CacheSens, p.MPKIDrop, p.RelDrop, c.cacheSens)
		}
	}
}

func TestParallelismSensitivity(t *testing.T) {
	db := testDB(t)
	sensitive := []string{"libquantum", "lbm", "soplex"}
	insensitive := []string{"mcf", "omnetpp", "hmmer"}
	for _, b := range sensitive {
		p, err := Characterize(db, b)
		if err != nil {
			t.Fatal(err)
		}
		if !p.ParSens {
			t.Errorf("%s: expected parallelism-sensitive (MLP %.2f -> %.2f)",
				b, p.MLPSmall, p.MLPLarge)
		}
	}
	for _, b := range insensitive {
		p, err := Characterize(db, b)
		if err != nil {
			t.Fatal(err)
		}
		if p.ParSens {
			t.Errorf("%s: expected parallelism-insensitive (MLP %.2f -> %.2f)",
				b, p.MLPSmall, p.MLPLarge)
		}
	}
}

func TestAllPaperIClassesPopulated(t *testing.T) {
	db := testDB(t)
	profiles, err := CharacterizeAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 20 {
		t.Fatalf("profiled %d benchmarks", len(profiles))
	}
	groups := ByClass(profiles)
	for c := Class(0); c < NumClasses; c++ {
		if len(groups[c]) < 2 {
			t.Errorf("class %s has only %d members", c, len(groups[c]))
		}
	}
}

func TestAllPaperIIClassesPopulated(t *testing.T) {
	db := testDB(t)
	profiles, err := CharacterizeAll(db)
	if err != nil {
		t.Fatal(err)
	}
	groups := ByPaperIIClass(profiles)
	for c := PaperIIClass(0); c < NumPaperIIClasses; c++ {
		if len(groups[c]) < 1 {
			t.Errorf("Paper II class %s empty", c)
		}
	}
}

func TestPaperIMixesShape(t *testing.T) {
	db := testDB(t)
	profiles, _ := CharacterizeAll(db)
	mixes := PaperIMixes(profiles, 4, 20)
	if len(mixes) != 20 {
		t.Fatalf("generated %d mixes", len(mixes))
	}
	seen := make(map[string]bool)
	for _, m := range mixes {
		if len(m.Apps) != 4 || len(m.ClassPattern) != 4 {
			t.Fatalf("%s malformed: %+v", m.Name, m)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate mix name %s", m.Name)
		}
		seen[m.Name] = true
		for i, app := range m.Apps {
			p, err := Characterize(db, app)
			if err != nil {
				t.Fatal(err)
			}
			if p.PaperIClass != m.ClassPattern[i] {
				t.Errorf("%s slot %d: app %s is %s, pattern says %s",
					m.Name, i, app, p.PaperIClass, m.ClassPattern[i])
			}
		}
	}
}

func TestPaperIMixes8Core(t *testing.T) {
	db := testDB(t)
	profiles, _ := CharacterizeAll(db)
	mixes := PaperIMixes(profiles, 8, 10)
	if len(mixes) != 10 {
		t.Fatalf("generated %d mixes", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 8 {
			t.Fatalf("%s has %d apps", m.Name, len(m.Apps))
		}
	}
}

func TestPaperIMixesRotateWithinCategory(t *testing.T) {
	db := testDB(t)
	profiles, _ := CharacterizeAll(db)
	mixes := PaperIMixes(profiles, 4, 20)
	// The same category appearing many times must not always pick the same
	// benchmark.
	used := make(map[Class]map[string]bool)
	for _, m := range mixes {
		for i, app := range m.Apps {
			c := m.ClassPattern[i]
			if used[c] == nil {
				used[c] = make(map[string]bool)
			}
			used[c][app] = true
		}
	}
	for c, apps := range used {
		if len(apps) < 2 {
			t.Errorf("class %s always picked the same benchmark", c)
		}
	}
}

func TestPaperIIMixes(t *testing.T) {
	db := testDB(t)
	profiles, _ := CharacterizeAll(db)
	mixes := PaperIIMixes(profiles)
	if len(mixes) != 16 {
		t.Fatalf("generated %d Paper II mixes, want 16", len(mixes))
	}
	names := make(map[string]bool)
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Fatalf("%s has %d apps", m.Name, len(m.Apps))
		}
		if names[m.Name] {
			t.Fatalf("duplicate mix %s", m.Name)
		}
		names[m.Name] = true
	}
}

func TestClassStrings(t *testing.T) {
	if MemSensitive.String() != "MS" || CompInsensitive.String() != "CI" {
		t.Fatal("Paper I class names wrong")
	}
	if CSPS.String() != "CS+PS" || CIPI.String() != "CI+PI" {
		t.Fatal("Paper II class names wrong")
	}
	if Class(9).String() == "" || PaperIIClass(9).String() == "" {
		t.Fatal("unknown classes must render")
	}
}

func TestCharacterizeUnknown(t *testing.T) {
	db := testDB(t)
	if _, err := Characterize(db, "nosuch"); err == nil {
		t.Fatal("expected error")
	}
}
