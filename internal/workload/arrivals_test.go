package workload

import (
	"reflect"
	"testing"
)

func TestPaperIMixesEmptyProfiles(t *testing.T) {
	// Degenerate/empty databases produce no profiles; the mix builders must
	// return an empty list instead of panicking with a zero modulus in the
	// in-group pick (the seed behaviour).
	if m := PaperIMixes(nil, 4, 20); len(m) != 0 {
		t.Fatalf("PaperIMixes(nil) = %v, want empty", m)
	}
	if m := PaperIMixes([]*Profile{}, 8, 5); len(m) != 0 {
		t.Fatalf("PaperIMixes(empty) = %v, want empty", m)
	}
	if m := PaperIIMixes(nil); len(m) != 0 {
		t.Fatalf("PaperIIMixes(nil) = %v, want empty", m)
	}
}

func TestPaperIMixesSingleProfile(t *testing.T) {
	// One profiled benchmark: every pick falls back to it, whatever class
	// pattern is requested.
	p := []*Profile{{Bench: "only", PaperIClass: CompInsensitive}}
	mixes := PaperIMixes(p, 4, 3)
	if len(mixes) != 3 {
		t.Fatalf("got %d mixes, want 3", len(mixes))
	}
	for _, m := range mixes {
		for _, app := range m.Apps {
			if app != "only" {
				t.Fatalf("fallback picked %q", app)
			}
		}
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	benches := []string{"a", "b", "c"}
	opt := ArrivalOptions{Jobs: 50, MeanInterarrivalSec: 2.5, Seed: 7}
	x := PoissonArrivals(benches, opt)
	y := PoissonArrivals(benches, opt)
	if !reflect.DeepEqual(x, y) {
		t.Fatal("arrival trace not deterministic")
	}
	if len(x) != 50 {
		t.Fatalf("got %d arrivals, want 50", len(x))
	}
	prev := 0.0
	var sum float64
	for i, a := range x {
		if a.ID != i {
			t.Fatalf("arrival %d has ID %d", i, a.ID)
		}
		if a.TimeSec <= prev {
			t.Fatalf("arrivals not strictly ordered at %d", i)
		}
		sum += a.TimeSec - prev
		prev = a.TimeSec
		if a.Bench != "a" && a.Bench != "b" && a.Bench != "c" {
			t.Fatalf("arrival drew unknown bench %q", a.Bench)
		}
	}
	// The sample mean of 50 exponential draws should be within a factor of
	// two of the configured mean (loose, deterministic bound).
	if mean := sum / 50; mean < 1.25 || mean > 5 {
		t.Fatalf("sample mean interarrival %.2f implausible for mean 2.5", mean)
	}

	if z := PoissonArrivals(benches, ArrivalOptions{Jobs: 50, MeanInterarrivalSec: 2.5, Seed: 8}); reflect.DeepEqual(x, z) {
		t.Fatal("different seeds produced the same trace")
	}
	if PoissonArrivals(nil, opt) != nil {
		t.Fatal("empty population must yield no arrivals")
	}
	if PoissonArrivals(benches, ArrivalOptions{Jobs: 0}) != nil {
		t.Fatal("zero jobs must yield no arrivals")
	}
}

func TestClassArrivalsFiltersPopulation(t *testing.T) {
	profiles := []*Profile{
		{Bench: "ms1", PaperIClass: MemSensitive},
		{Bench: "ci1", PaperIClass: CompInsensitive},
		{Bench: "ms2", PaperIClass: MemSensitive},
	}
	opt := ArrivalOptions{Jobs: 20, MeanInterarrivalSec: 1, Seed: 3}
	xs := ClassArrivals(profiles, []Class{MemSensitive}, opt)
	if len(xs) != 20 {
		t.Fatalf("got %d arrivals", len(xs))
	}
	for _, a := range xs {
		if a.Bench != "ms1" && a.Bench != "ms2" {
			t.Fatalf("class filter leaked %q", a.Bench)
		}
	}
	if ys := ClassArrivals(profiles, []Class{CompSensitive}, opt); ys != nil {
		t.Fatal("empty filtered population must yield no arrivals")
	}
}
