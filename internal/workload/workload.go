// Package workload implements the paper's benchmark categorization and
// workload-mix construction.
//
// Paper I classifies applications along two axes measured at the baseline
// allocation: memory intensity (MPKI above a threshold) and cache
// sensitivity (MPKI variation across allocations around the baseline above
// a threshold). Paper II replaces memory intensity with parallelism
// sensitivity (MLP variation across core sizes). Both classifications are
// computed here from the simulation-results database — from measurements,
// never from the generative ground truth.
package workload

import (
	"fmt"

	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

// Class is a Paper I application category.
type Class int

const (
	// MemSensitive: memory-intensive and cache-sensitive.
	MemSensitive Class = iota
	// MemInsensitive: memory-intensive, cache-insensitive.
	MemInsensitive
	// CompSensitive: compute-intensive, cache-sensitive.
	CompSensitive
	// CompInsensitive: compute-intensive, cache-insensitive.
	CompInsensitive
	// NumClasses is the number of Paper I categories.
	NumClasses = 4
)

// String returns the category mnemonic used in the tables.
func (c Class) String() string {
	switch c {
	case MemSensitive:
		return "MS"
	case MemInsensitive:
		return "MI"
	case CompSensitive:
		return "CS"
	case CompInsensitive:
		return "CI"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Thresholds for the measurement-based classification.
const (
	// MemIntensityMPKI: baseline MPKI above this is memory-intensive.
	MemIntensityMPKI = 3.0
	// CacheSensRelDrop: relative MPKI reduction across the allocation range
	// around the baseline above this is cache-sensitive.
	CacheSensRelDrop = 0.20
	// CacheSensAbsDrop: the reduction must also exceed this many MPKI.
	CacheSensAbsDrop = 0.4
	// ParSensMLPRatio: MLP(large)/MLP(small) above this is
	// parallelism-sensitive (Paper II).
	ParSensMLPRatio = 1.25
)

// Profile is the measured characterization of one benchmark, aggregated
// over its phases with SimPoint weights.
type Profile struct {
	Bench        string
	BaselineMPKI float64
	// MPKIDrop is MPKI(low ways) - MPKI(high ways) across the probed range.
	MPKIDrop    float64
	RelDrop     float64
	MLPSmall    float64
	MLPLarge    float64
	MemIntense  bool
	CacheSens   bool
	ParSens     bool
	PaperIClass Class
}

// Characterize measures one benchmark against the database.
func Characterize(db *simdb.DB, bench string) (*Profile, error) {
	an := db.Analysis(bench)
	if an == nil {
		return nil, fmt.Errorf("workload: unknown benchmark %s", bench)
	}
	assoc := db.Sys.LLC.Assoc
	wBase := db.Sys.BaselineWays()
	wLo, wHi := 2, 3*assoc/4
	if wLo >= wHi {
		wLo, wHi = 1, assoc
	}
	const kiloInstr = trace.SliceInstructions / 1000

	p := &Profile{Bench: bench}
	var mpkiBase, mpkiLo, mpkiHi float64
	var leadSmallBase, leadLargeBase, missBase float64
	for ph := 0; ph < an.NumPhases; ph++ {
		rec, err := db.Record(bench, ph)
		if err != nil {
			return nil, err
		}
		w := rec.Weight
		mpkiBase += w * rec.Misses[wBase] / kiloInstr
		mpkiLo += w * rec.Misses[wLo] / kiloInstr
		mpkiHi += w * rec.Misses[wHi] / kiloInstr
		missBase += w * rec.Misses[wBase]
		leadSmallBase += w * rec.Leading[0][wBase]
		leadLargeBase += w * rec.Leading[len(rec.Leading)-1][wBase]
	}
	p.BaselineMPKI = mpkiBase
	p.MPKIDrop = mpkiLo - mpkiHi
	if mpkiLo > 0 {
		p.RelDrop = p.MPKIDrop / mpkiLo
	}
	if leadSmallBase > 0 {
		p.MLPSmall = missBase / leadSmallBase
	} else {
		p.MLPSmall = 1
	}
	if leadLargeBase > 0 {
		p.MLPLarge = missBase / leadLargeBase
	} else {
		p.MLPLarge = 1
	}

	p.MemIntense = p.BaselineMPKI > MemIntensityMPKI
	p.CacheSens = p.RelDrop > CacheSensRelDrop && p.MPKIDrop > CacheSensAbsDrop
	p.ParSens = p.MLPLarge/p.MLPSmall > ParSensMLPRatio

	switch {
	case p.MemIntense && p.CacheSens:
		p.PaperIClass = MemSensitive
	case p.MemIntense:
		p.PaperIClass = MemInsensitive
	case p.CacheSens:
		p.PaperIClass = CompSensitive
	default:
		p.PaperIClass = CompInsensitive
	}
	return p, nil
}

// CharacterizeAll profiles every benchmark present in the database,
// sorted by name for determinism.
func CharacterizeAll(db *simdb.DB) ([]*Profile, error) {
	names := db.BenchNames()
	out := make([]*Profile, 0, len(names))
	for _, n := range names {
		p, err := Characterize(db, n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ByClass groups profile names by Paper I class.
func ByClass(profiles []*Profile) map[Class][]string {
	m := make(map[Class][]string)
	for _, p := range profiles {
		m[p.PaperIClass] = append(m[p.PaperIClass], p.Bench)
	}
	return m
}

// Mix is one multi-programmed workload: one benchmark per core.
type Mix struct {
	Name string
	Apps []string
	// ClassPattern records the category sequence the mix was built from.
	ClassPattern []Class
}

// PaperIMixes builds the Paper I workloads: numMixes mixes of `cores`
// applications each, cycling deterministically through category patterns
// that span homogeneous and heterogeneous combinations, and through the
// benchmarks within each category.
func PaperIMixes(profiles []*Profile, cores, numMixes int) []Mix {
	if len(profiles) == 0 {
		// Degenerate (empty) database: there is nothing to pick from, not
		// even through the any-class fallback below, so no mixes exist.
		return nil
	}
	groups := ByClass(profiles)
	// Category patterns for 4 apps; for more cores the pattern repeats.
	patterns := [][]Class{
		{MemSensitive, MemSensitive, MemSensitive, MemSensitive},
		{MemInsensitive, MemInsensitive, MemInsensitive, MemInsensitive},
		{CompSensitive, CompSensitive, CompSensitive, CompSensitive},
		{CompInsensitive, CompInsensitive, CompInsensitive, CompInsensitive},
		{MemSensitive, MemInsensitive, CompSensitive, CompInsensitive},
		{MemSensitive, MemSensitive, MemInsensitive, MemInsensitive},
		{MemSensitive, MemSensitive, CompSensitive, CompSensitive},
		{MemSensitive, MemSensitive, CompInsensitive, CompInsensitive},
		{MemInsensitive, MemInsensitive, CompSensitive, CompSensitive},
		{MemInsensitive, MemInsensitive, CompInsensitive, CompInsensitive},
		{CompSensitive, CompSensitive, CompInsensitive, CompInsensitive},
		{MemSensitive, MemInsensitive, MemInsensitive, CompInsensitive},
		{MemSensitive, CompSensitive, CompInsensitive, CompInsensitive},
		{MemSensitive, MemInsensitive, CompSensitive, CompSensitive},
		{MemInsensitive, CompSensitive, CompSensitive, CompInsensitive},
		{MemSensitive, MemSensitive, MemSensitive, CompInsensitive},
		{MemInsensitive, MemInsensitive, MemInsensitive, CompSensitive},
		{CompSensitive, CompSensitive, CompSensitive, MemInsensitive},
		{CompInsensitive, CompInsensitive, CompInsensitive, MemSensitive},
		{MemSensitive, CompSensitive, MemInsensitive, CompInsensitive},
	}
	next := make(map[Class]int)
	pick := func(c Class) string {
		g := groups[c]
		if len(g) == 0 {
			// Fall back to any profiled benchmark (degenerate databases).
			for _, alt := range []Class{MemSensitive, MemInsensitive, CompSensitive, CompInsensitive} {
				if len(groups[alt]) > 0 {
					g = groups[alt]
					c = alt
					break
				}
			}
		}
		b := g[next[c]%len(g)]
		next[c]++
		return b
	}

	mixes := make([]Mix, 0, numMixes)
	for i := 0; i < numMixes; i++ {
		pat := patterns[i%len(patterns)]
		m := Mix{Name: fmt.Sprintf("mix%02d", i)}
		for core := 0; core < cores; core++ {
			cls := pat[core%len(pat)]
			m.Apps = append(m.Apps, pick(cls))
			m.ClassPattern = append(m.ClassPattern, cls)
		}
		mixes = append(mixes, m)
	}
	return mixes
}

// PaperIIClass is the Paper II category of one application: cache
// sensitivity crossed with parallelism sensitivity.
type PaperIIClass int

const (
	// CSPS: cache-sensitive, parallelism-sensitive.
	CSPS PaperIIClass = iota
	// CSPI: cache-sensitive, parallelism-insensitive.
	CSPI
	// CIPS: cache-insensitive, parallelism-sensitive.
	CIPS
	// CIPI: cache-insensitive, parallelism-insensitive.
	CIPI
	// NumPaperIIClasses is the number of Paper II categories.
	NumPaperIIClasses = 4
)

// String returns the category mnemonic.
func (c PaperIIClass) String() string {
	switch c {
	case CSPS:
		return "CS+PS"
	case CSPI:
		return "CS+PI"
	case CIPS:
		return "CI+PS"
	case CIPI:
		return "CI+PI"
	default:
		return fmt.Sprintf("PaperIIClass(%d)", int(c))
	}
}

// PaperII returns the Paper II class of a profile.
func (p *Profile) PaperII() PaperIIClass {
	switch {
	case p.CacheSens && p.ParSens:
		return CSPS
	case p.CacheSens:
		return CSPI
	case p.ParSens:
		return CIPS
	default:
		return CIPI
	}
}

// ByPaperIIClass groups benchmarks by Paper II category.
func ByPaperIIClass(profiles []*Profile) map[PaperIIClass][]string {
	m := make(map[PaperIIClass][]string)
	for _, p := range profiles {
		m[p.PaperII()] = append(m[p.PaperII()], p.Bench)
	}
	return m
}

// PaperIIMixes builds the 16 four-core category-pair mixes of Paper II's
// systematic analysis: for every ordered pair (A, B) of the four Paper II
// categories, a mix with two applications from A and two from B.
func PaperIIMixes(profiles []*Profile) []Mix {
	if len(profiles) == 0 {
		// Same degenerate case as PaperIMixes: the fallback loop would find
		// every group empty and the in-group pick would divide by zero.
		return nil
	}
	groups := ByPaperIIClass(profiles)
	all := []PaperIIClass{CSPS, CSPI, CIPS, CIPI}
	next := make(map[PaperIIClass]int)
	pick := func(c PaperIIClass) string {
		g := groups[c]
		if len(g) == 0 {
			for _, alt := range all {
				if len(groups[alt]) > 0 {
					g = groups[alt]
					c = alt
					break
				}
			}
		}
		b := g[next[c]%len(g)]
		next[c]++
		return b
	}
	var mixes []Mix
	for _, a := range all {
		for _, b := range all {
			m := Mix{
				Name: fmt.Sprintf("%s/%s", a, b),
				Apps: []string{pick(a), pick(a), pick(b), pick(b)},
			}
			mixes = append(mixes, m)
		}
	}
	return mixes
}
