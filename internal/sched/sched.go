// Package sched implements the thesis' second future-work proposal
// (Chapter 4): use workload characteristics to guide the system scheduler
// so that applications are collocated where the coordinated resource
// manager can actually trade resources between them.
//
// The insight follows directly from the evaluation: the manager saves the
// most when cache-sensitive applications share a machine with insensitive
// donors, and almost nothing when a machine is homogeneous. The scheduler
// therefore wants to *mix* sensitivities per machine. This package scores a
// candidate collocation with the same machinery the manager itself uses —
// per-application energy curves reduced to an optimal static allocation —
// and searches the assignment space.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

// aggregateStats builds phase-weight-averaged oracle statistics for one
// application — the scheduler's coarse, whole-program view of it.
func aggregateStats(db *simdb.DB, bench string, coreID int) (*core.IntervalStats, error) {
	an := db.Analysis(bench)
	if an == nil {
		return nil, fmt.Errorf("sched: unknown benchmark %s", bench)
	}
	assoc := db.Sys.LLC.Assoc
	agg := &core.IntervalStats{
		Core:      coreID,
		Setting:   db.Sys.BaselineSetting(),
		Instr:     trace.SliceInstructions,
		ATDMisses: make([]float64, assoc+1),
	}
	agg.ATDLeading = make([][]float64, arch.NumCoreSizes)
	for c := range agg.ATDLeading {
		agg.ATDLeading[c] = make([]float64, assoc+1)
	}
	var ilp, branch, apki float64
	for p := 0; p < an.NumPhases; p++ {
		rec, err := db.Record(bench, p)
		if err != nil {
			return nil, err
		}
		w := rec.Weight
		ilp += w * rec.IlpIPC
		branch += w * rec.BranchMPKI
		apki += w * rec.APKI
		for i := 0; i <= assoc; i++ {
			agg.ATDMisses[i] += w * rec.Misses[i]
			for c := range agg.ATDLeading {
				agg.ATDLeading[c][i] += w * rec.Leading[c][i]
			}
		}
	}
	agg.IlpIPC = ilp
	agg.BranchMisses = branch * trace.SliceInstructions / 1000
	agg.LLCAccesses = apki * trace.SliceInstructions / 1000
	base := db.Sys.BaselineSetting()
	agg.TotalMisses = agg.ATDMisses[base.Ways]
	agg.LeadingMisses = agg.ATDLeading[base.Size][base.Ways]
	// Cycles consistent with the aggregate at the baseline setting.
	pred := core.Predictor{Sys: &db.Sys, Power: db.Power, Kind: core.Model3}
	agg.Cycles = pred.Cycles(agg, base)
	return agg, nil
}

// Scorer scores machine workloads for online placement: the per-benchmark
// whole-program statistics and energy curves behind the collocation score
// are memoized (curves per way cap, which varies with machine occupancy),
// so repeated Score calls — one per candidate machine per arrival in the
// cluster engine — reduce to one AllocateWays reduction over cached
// curves. A Scorer is safe for concurrent use; cached curves are shared
// read-only. Cold-cache builds run outside the scorer's lock behind
// per-key single-flight entries, so concurrent Score calls build
// *distinct* statistics and curves in parallel (the contention profile of
// parallel best-response rounds) while each key is still built exactly
// once — memoized results are bit-identical to a serialized build.
type Scorer struct {
	db     *simdb.DB
	mu     sync.Mutex // guards the maps and idle, never held across a build
	agg    map[string]*aggEntry
	curves map[curveKey]*curveEntry
	idle   *core.Curve
}

// aggEntry is the single-flight slot for one benchmark's whole-program
// statistics: the winning goroutine aggregates under the entry's once
// while other keys build concurrently.
type aggEntry struct {
	once sync.Once
	st   *core.IntervalStats
	err  error
}

// curveEntry is the single-flight slot for one memoized energy curve.
type curveEntry struct {
	once sync.Once
	cv   *core.Curve
}

// curveKey identifies one memoized energy curve.
type curveKey struct {
	bench   string
	maxWays int
}

// NewScorer builds a scorer over the database.
func NewScorer(db *simdb.DB) *Scorer {
	return &Scorer{
		db:     db,
		agg:    make(map[string]*aggEntry),
		curves: make(map[curveKey]*curveEntry),
	}
}

// Cores returns the database's machine width — the tenant capacity a
// single Score call accepts.
func (sc *Scorer) Cores() int { return sc.db.Sys.NumCores }

// stats returns the memoized whole-program statistics of one benchmark,
// aggregating outside the lock behind the entry's single-flight once.
func (sc *Scorer) stats(bench string) (*core.IntervalStats, error) {
	sc.mu.Lock()
	e, ok := sc.agg[bench]
	if !ok {
		e = &aggEntry{}
		sc.agg[bench] = e
	}
	sc.mu.Unlock()
	e.once.Do(func() { e.st, e.err = aggregateStats(sc.db, bench, 0) })
	return e.st, e.err
}

// curve returns the memoized energy curve and whole-program statistics of
// one benchmark under the given way cap. The curve build — the expensive
// (size × ways × frequency) search — runs outside sc.mu: the lock only
// publishes the entry, and the entry's once serializes builders of the
// *same* key while different keys proceed in parallel.
func (sc *Scorer) curve(bench string, maxWays int, pred core.Predictor) (*core.Curve, *core.IntervalStats, error) {
	st, err := sc.stats(bench)
	if err != nil {
		return nil, nil, err
	}
	key := curveKey{bench: bench, maxWays: maxWays}
	sc.mu.Lock()
	e, ok := sc.curves[key]
	if !ok {
		e = &curveEntry{}
		sc.curves[key] = e
	}
	sc.mu.Unlock()
	e.once.Do(func() { e.cv = pred.BuildCurve(st, core.LocalOptions{MaxWays: maxWays}) })
	return e.cv, st, nil
}

// idleCurve returns the scorer's shared zero-cost stand-in curve.
func (sc *Scorer) idleCurve() *core.Curve {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.idle == nil {
		sc.idle = core.IdleCurve(sc.db.Sys.LLC.Assoc, sc.db.Sys.BaselineSetting())
	}
	return sc.idle
}

// ScoreBuf is a reusable scratch buffer for ScoreInto: the per-call curve
// slice of Score plus the way-allocation DP scratch, owned by the caller
// so a serving shard (or placement loop) scoring thousands of candidate
// machines allocates once and is then allocation-free on warm caches. The
// zero value is ready to use; a ScoreBuf must not be shared between
// concurrent ScoreInto calls.
type ScoreBuf struct {
	curves []*core.Curve
	ways   core.WaysScratch
}

// Score predicts the energy savings the coordinated manager reaches on one
// machine running apps — between one application and a full machine. Each
// application's energy curve is reduced to the optimal static allocation
// and compared against the baseline allocation; unoccupied cores stand in
// with the zero-cost idle curve (core.IdleCurve), exactly as the online
// manager treats them. With a full machine the score equals PredictSavings.
func (sc *Scorer) Score(apps []string) (float64, error) {
	var buf ScoreBuf
	return sc.ScoreInto(apps, &buf)
}

// ScoreInto is Score with caller-owned scratch (see ScoreBuf); results are
// bit-identical to Score.
func (sc *Scorer) ScoreInto(apps []string, buf *ScoreBuf) (float64, error) {
	n := sc.db.Sys.NumCores
	if len(apps) == 0 || len(apps) > n {
		return 0, fmt.Errorf("sched: machine holds 1..%d apps, got %d", n, len(apps))
	}
	pred := core.Predictor{Sys: &sc.db.Sys, Power: sc.db.Power, Kind: core.Model3}
	// One way is reserved per *present* co-runner, so the ways of the
	// machine's unoccupied cores are genuinely available to the tenants —
	// the same occupancy-aware cap the online manager applies.
	maxWays := sc.db.Sys.LLC.Assoc - (len(apps) - 1)
	base := sc.db.Sys.BaselineSetting()

	if cap(buf.curves) < n {
		buf.curves = make([]*core.Curve, n)
	}
	curves := buf.curves[:n]
	var baseEPI float64
	for i, app := range apps {
		cv, st, err := sc.curve(app, maxWays, pred)
		if err != nil {
			return 0, err
		}
		curves[i] = cv
		baseEPI += pred.EPI(st, base)
	}
	if len(apps) < n {
		for i := len(apps); i < n; i++ {
			curves[i] = sc.idleCurve()
		}
	}
	alloc, ok := core.AllocateWaysInto(curves, sc.db.Sys.LLC.Assoc, &buf.ways)
	if !ok {
		return 0, nil
	}
	chosen := core.TotalEPI(curves, alloc)
	if baseEPI <= 0 {
		return 0, nil
	}
	return 1 - chosen/baseEPI, nil
}

// PredictSavings scores one machine's workload: the energy savings the
// coordinated manager is predicted to reach with an optimal static
// allocation, relative to the baseline allocation. It is the one-shot,
// full-machine form of Scorer.Score.
func PredictSavings(db *simdb.DB, apps []string) (float64, error) {
	n := db.Sys.NumCores
	if len(apps) != n {
		return 0, fmt.Errorf("sched: machine needs %d apps, got %d", n, len(apps))
	}
	return NewScorer(db).Score(apps)
}

// Assignment is one collocation of applications onto machines.
type Assignment struct {
	Machines [][]string
	// Predicted is the mean predicted savings across machines.
	Predicted float64
}

// Collocate partitions apps (len == machines x coresPerMachine) onto
// identical machines so that the mean predicted savings is maximized. For
// two machines the space is searched exhaustively; for more, greedily by
// repeated exhaustive two-machine improvement (swap descent).
func Collocate(db *simdb.DB, apps []string, machines int) (*Assignment, error) {
	per := db.Sys.NumCores
	if len(apps) != machines*per {
		return nil, fmt.Errorf("sched: %d apps cannot fill %d machines of %d cores",
			len(apps), machines, per)
	}
	if machines == 1 {
		p, err := PredictSavings(db, apps)
		if err != nil {
			return nil, err
		}
		return &Assignment{Machines: [][]string{apps}, Predicted: p}, nil
	}

	// Start from the given order, then swap-descend on the positive
	// objective: try exchanging every cross-machine pair and keep
	// improvements until a fixed point. With two machines this converges
	// to the exhaustive optimum on all inputs we generate; one shared
	// Scorer makes each step a cached-curve reduction rather than a
	// from-scratch prediction.
	assign := make([][]string, machines)
	for m := range assign {
		assign[m] = append([]string(nil), apps[m*per:(m+1)*per]...)
	}
	sc := NewScorer(db)
	best, err := swapDescend(sc, assign, false)
	if err != nil {
		return nil, err
	}
	return &Assignment{Machines: assign, Predicted: best}, nil
}

// swapDescend runs the exhaustive cross-machine swap descent over assign
// in place, maximizing the mean per-machine score (or minimizing it when
// negate is set), and returns the converged mean. Each candidate swap
// rescores only the two touched machines; the mean is re-summed over the
// per-machine score table in machine order, so every accepted/rejected
// decision — and the converged result — is bit-identical to the full
// fleet rescore it replaces, at two Score calls per swap instead of one
// per machine.
func swapDescend(sc *Scorer, assign [][]string, negate bool) (float64, error) {
	machines := len(assign)
	var buf ScoreBuf
	scores := make([]float64, machines)
	for m, machine := range assign {
		s, err := sc.ScoreInto(machine, &buf)
		if err != nil {
			return 0, err
		}
		scores[m] = s
	}
	mean := func() float64 {
		var total float64
		for _, s := range scores {
			total += s
		}
		return total / float64(machines)
	}
	sign := 1.0
	if negate {
		sign = -1
	}
	best := mean()
	for improved := true; improved; {
		improved = false
		for a := 0; a < machines; a++ {
			for b := a + 1; b < machines; b++ {
				for i := range assign[a] {
					for j := range assign[b] {
						assign[a][i], assign[b][j] = assign[b][j], assign[a][i]
						oldA, oldB := scores[a], scores[b]
						sA, err := sc.ScoreInto(assign[a], &buf)
						if err != nil {
							return 0, err
						}
						sB, err := sc.ScoreInto(assign[b], &buf)
						if err != nil {
							return 0, err
						}
						scores[a], scores[b] = sA, sB
						if cand := mean(); sign*cand > sign*best+1e-12 {
							best = cand
							improved = true
						} else {
							assign[a][i], assign[b][j] = assign[b][j], assign[a][i]
							scores[a], scores[b] = oldA, oldB
						}
					}
				}
			}
		}
	}
	return best, nil
}

// WorstCollocation returns the assignment minimizing the predicted savings
// — the adversarial reference the experiment compares against. It starts
// from a sorted grouping (similar apps together, the pathological case for
// the coordinated manager) and then genuinely descends on the negated
// objective with the same swap machinery Collocate uses, so the returned
// assignment is a local minimum, not just the sorted heuristic.
func WorstCollocation(db *simdb.DB, apps []string, machines int) (*Assignment, error) {
	per := db.Sys.NumCores
	if len(apps) != machines*per {
		return nil, fmt.Errorf("sched: %d apps cannot fill %d machines of %d cores",
			len(apps), machines, per)
	}
	// Sort by individual cache utility so similar applications cluster.
	type scored struct {
		app  string
		util float64
	}
	var xs []scored
	for _, app := range apps {
		st, err := aggregateStats(db, app, 0)
		if err != nil {
			return nil, err
		}
		lo := st.ATDMisses[2]
		hi := st.ATDMisses[len(st.ATDMisses)-1]
		xs = append(xs, scored{app: app, util: lo - hi})
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].util > xs[j].util })
	assign := make([][]string, machines)
	for i, x := range xs {
		m := i / per
		assign[m] = append(assign[m], x.app)
	}
	sc := NewScorer(db)
	worst, err := swapDescend(sc, assign, true)
	if err != nil {
		return nil, err
	}
	return &Assignment{Machines: assign, Predicted: worst}, nil
}
