package sched

import (
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second database build in -short mode")
	}
	dbOnce.Do(func() {
		dbInst, dbErr = simdb.Build(arch.DefaultSystemConfig(4), trace.Suite(),
			simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

// eightApps is 2 MS + 2 CS + 4 CI applications: mixing them across two
// machines is clearly better than clustering.
var eightApps = []string{
	"mcf", "omnetpp", "perlbench", "xalancbmk",
	"gamess", "hmmer", "namd", "povray",
}

func TestPredictSavingsFavorsMixedMachine(t *testing.T) {
	db := testDB(t)
	mixed, err := PredictSavings(db, []string{"mcf", "omnetpp", "gamess", "hmmer"})
	if err != nil {
		t.Fatal(err)
	}
	homog, err := PredictSavings(db, []string{"gamess", "hmmer", "namd", "povray"})
	if err != nil {
		t.Fatal(err)
	}
	if mixed <= homog {
		t.Fatalf("mixed machine predicted %.3f, homogeneous %.3f", mixed, homog)
	}
	if mixed < 0.05 {
		t.Fatalf("mixed machine predicted only %.3f", mixed)
	}
}

func TestPredictSavingsSizeCheck(t *testing.T) {
	db := testDB(t)
	if _, err := PredictSavings(db, []string{"mcf"}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := PredictSavings(db, []string{"mcf", "nosuch", "hmmer", "namd"}); err == nil {
		t.Fatal("expected unknown-benchmark error")
	}
}

func TestCollocateBeatsWorst(t *testing.T) {
	db := testDB(t)
	best, err := Collocate(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstCollocation(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Predicted <= worst.Predicted {
		t.Fatalf("guided collocation %.3f not above adversarial %.3f",
			best.Predicted, worst.Predicted)
	}
	// Structural validity: every app placed exactly once.
	seen := map[string]int{}
	for _, m := range best.Machines {
		if len(m) != 4 {
			t.Fatalf("machine with %d apps", len(m))
		}
		for _, a := range m {
			seen[a]++
		}
	}
	for _, a := range eightApps {
		if seen[a] != 1 {
			t.Fatalf("app %s placed %d times", a, seen[a])
		}
	}
}

func TestCollocateSingleMachine(t *testing.T) {
	db := testDB(t)
	a, err := Collocate(db, []string{"mcf", "omnetpp", "gamess", "hmmer"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Machines) != 1 || a.Predicted <= 0 {
		t.Fatalf("single machine assignment broken: %+v", a)
	}
}

func TestCollocateSizeValidation(t *testing.T) {
	db := testDB(t)
	if _, err := Collocate(db, eightApps, 3); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := WorstCollocation(db, eightApps, 3); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestWorstCollocationClustersSimilarApps(t *testing.T) {
	db := testDB(t)
	worst, err := WorstCollocation(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The adversarial grouping puts the cache-hungry apps together: count
	// how many of the four MS/CS apps share machine 0 or 1 exclusively.
	sensitive := map[string]bool{"mcf": true, "omnetpp": true, "perlbench": true, "xalancbmk": true}
	perMachine := make([]int, 2)
	for m, machine := range worst.Machines {
		for _, a := range machine {
			if sensitive[a] {
				perMachine[m]++
			}
		}
	}
	if perMachine[0] != 4 && perMachine[1] != 4 {
		t.Fatalf("adversarial grouping did not cluster: %v", perMachine)
	}
}

// fullRescoreDescend is the reference swap descent the optimized
// swapDescend replaced: every candidate swap rescores the whole fleet.
// The test keeps it alive to pin the optimization's bit-identity.
func fullRescoreDescend(sc *Scorer, assign [][]string, negate bool) (float64, error) {
	machines := len(assign)
	mean := func() (float64, error) {
		var total float64
		for _, m := range assign {
			s, err := sc.Score(m)
			if err != nil {
				return 0, err
			}
			total += s
		}
		return total / float64(machines), nil
	}
	sign := 1.0
	if negate {
		sign = -1
	}
	best, err := mean()
	if err != nil {
		return 0, err
	}
	for improved := true; improved; {
		improved = false
		for a := 0; a < machines; a++ {
			for b := a + 1; b < machines; b++ {
				for i := range assign[a] {
					for j := range assign[b] {
						assign[a][i], assign[b][j] = assign[b][j], assign[a][i]
						cand, err := mean()
						if err != nil {
							return 0, err
						}
						if sign*cand > sign*best+1e-12 {
							best = cand
							improved = true
						} else {
							assign[a][i], assign[b][j] = assign[b][j], assign[a][i]
						}
					}
				}
			}
		}
	}
	return best, nil
}

// TestSwapDescendMatchesFullRescore pins the incremental two-machine
// rescore in swapDescend to the full fleet rescore it replaced: identical
// assignments and bit-identical converged scores, on both the positive
// (Collocate) and negated (WorstCollocation) objectives, at two and three
// machines.
func TestSwapDescendMatchesFullRescore(t *testing.T) {
	db := testDB(t)
	apps12 := db.BenchNames()[:12]
	cases := []struct {
		name     string
		apps     []string
		machines int
		negate   bool
	}{
		{"best-2", eightApps, 2, false},
		{"best-3", apps12, 3, false},
		{"worst-2", eightApps, 2, true},
		{"worst-3", apps12, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			per := db.Sys.NumCores
			split := func() [][]string {
				out := make([][]string, tc.machines)
				for m := range out {
					out[m] = append([]string(nil), tc.apps[m*per:(m+1)*per]...)
				}
				return out
			}
			ref := split()
			want, err := fullRescoreDescend(NewScorer(db), ref, tc.negate)
			if err != nil {
				t.Fatal(err)
			}
			got := split()
			have, err := swapDescend(NewScorer(db), got, tc.negate)
			if err != nil {
				t.Fatal(err)
			}
			if have != want {
				t.Fatalf("incremental descent converged to %v, full rescore to %v", have, want)
			}
			for m := range ref {
				for c := range ref[m] {
					if got[m][c] != ref[m][c] {
						t.Fatalf("machine %d differs: %v vs %v", m, got[m], ref[m])
					}
				}
			}
		})
	}
}

// TestWorstCollocationIsLocalMinimum pins the WorstCollocation bugfix:
// the adversarial assignment must actually descend (its score can only be
// at or below the sorted-grouping start it begins from) and must never
// beat the guided assignment.
func TestWorstCollocationIsLocalMinimum(t *testing.T) {
	db := testDB(t)
	worst, err := WorstCollocation(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Collocate(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Predicted > best.Predicted {
		t.Fatalf("adversarial %.6f above guided %.6f", worst.Predicted, best.Predicted)
	}
	// No single cross-machine swap may lower the adversarial score
	// further: the returned assignment is a genuine local minimum of the
	// negated objective, not just the sorted heuristic.
	sc := NewScorer(db)
	assign := [][]string{
		append([]string(nil), worst.Machines[0]...),
		append([]string(nil), worst.Machines[1]...),
	}
	mean := func() float64 {
		var total float64
		for _, m := range assign {
			s, err := sc.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			total += s
		}
		return total / float64(len(assign))
	}
	base := mean()
	if base != worst.Predicted {
		t.Fatalf("recomputed adversarial score %v, reported %v", base, worst.Predicted)
	}
	for i := range assign[0] {
		for j := range assign[1] {
			assign[0][i], assign[1][j] = assign[1][j], assign[0][i]
			if cand := mean(); cand < base-1e-12 {
				t.Fatalf("swap (%d,%d) lowers the adversarial score: %v < %v", i, j, cand, base)
			}
			assign[0][i], assign[1][j] = assign[1][j], assign[0][i]
		}
	}
}

// TestScorerConcurrentColdCache hammers a cold scorer from many
// goroutines under -race: the single-flight entries must build each
// statistics/curve key exactly once without holding the scorer lock
// across builds, and every concurrent result must be bit-identical to a
// serial cold run.
func TestScorerConcurrentColdCache(t *testing.T) {
	db := testDB(t)
	names := db.BenchNames()
	var machines [][]string
	for i := 0; i+4 <= len(names); i += 2 {
		machines = append(machines, names[i:i+4])
	}
	// Partial machines exercise distinct way caps (distinct curve keys).
	for n := 1; n <= db.Sys.NumCores; n++ {
		machines = append(machines, names[:n])
	}
	ref := NewScorer(db)
	want := make([]float64, len(machines))
	for i, m := range machines {
		s, err := ref.Score(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}

	sc := NewScorer(db) // cold again: the hammer builds everything in parallel
	const workers = 8
	got := make([][]float64, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf ScoreBuf
			out := make([]float64, len(machines))
			for k := range machines {
				i := (k + w) % len(machines) // staggered orders collide on cold keys
				s, err := sc.ScoreInto(machines[i], &buf)
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = s
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		for i := range machines {
			if got[w][i] != want[i] {
				t.Fatalf("worker %d machine %d: concurrent %v, serial %v", w, i, got[w][i], want[i])
			}
		}
	}
}

func TestScorerMatchesPredictSavings(t *testing.T) {
	db := testDB(t)
	sc := NewScorer(db)
	machines := [][]string{
		{"mcf", "omnetpp", "gamess", "hmmer"},
		{"gamess", "hmmer", "namd", "povray"},
		{"mcf", "xalancbmk", "perlbench", "namd"},
	}
	for _, apps := range machines {
		want, err := PredictSavings(db, apps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Score(apps)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Score(%v) = %v, PredictSavings = %v", apps, got, want)
		}
		// Memoized second call must be bit-identical.
		again, err := sc.Score(apps)
		if err != nil || again != got {
			t.Fatalf("memoized Score differs: %v vs %v (%v)", again, got, err)
		}
	}
}

func TestScorerPartialMachine(t *testing.T) {
	db := testDB(t)
	sc := NewScorer(db)
	// A lone application always meets its QoS with the whole surplus at its
	// disposal: the score must be finite and non-negative.
	solo, err := sc.Score([]string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if solo < 0 || solo > 1 {
		t.Fatalf("solo score %v out of range", solo)
	}
	// Adding a compute-bound donor to a cache-hungry app must not destroy
	// the prediction (scores stay in range and defined for every load).
	for n := 2; n <= db.Sys.NumCores; n++ {
		s, err := sc.Score(eightApps[:n])
		if err != nil {
			t.Fatal(err)
		}
		if s < -1 || s > 1 {
			t.Fatalf("score %v for %d apps out of range", s, n)
		}
	}
	if _, err := sc.Score(nil); err == nil {
		t.Fatal("empty machine must be rejected")
	}
	if _, err := sc.Score(eightApps[:5]); err == nil {
		t.Fatal("overfull machine must be rejected")
	}
	if _, err := sc.Score([]string{"nosuch"}); err == nil {
		t.Fatal("unknown benchmark must be rejected")
	}
}
