package sched

import (
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second database build in -short mode")
	}
	dbOnce.Do(func() {
		dbInst, dbErr = simdb.Build(arch.DefaultSystemConfig(4), trace.Suite(),
			simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

// eightApps is 2 MS + 2 CS + 4 CI applications: mixing them across two
// machines is clearly better than clustering.
var eightApps = []string{
	"mcf", "omnetpp", "perlbench", "xalancbmk",
	"gamess", "hmmer", "namd", "povray",
}

func TestPredictSavingsFavorsMixedMachine(t *testing.T) {
	db := testDB(t)
	mixed, err := PredictSavings(db, []string{"mcf", "omnetpp", "gamess", "hmmer"})
	if err != nil {
		t.Fatal(err)
	}
	homog, err := PredictSavings(db, []string{"gamess", "hmmer", "namd", "povray"})
	if err != nil {
		t.Fatal(err)
	}
	if mixed <= homog {
		t.Fatalf("mixed machine predicted %.3f, homogeneous %.3f", mixed, homog)
	}
	if mixed < 0.05 {
		t.Fatalf("mixed machine predicted only %.3f", mixed)
	}
}

func TestPredictSavingsSizeCheck(t *testing.T) {
	db := testDB(t)
	if _, err := PredictSavings(db, []string{"mcf"}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := PredictSavings(db, []string{"mcf", "nosuch", "hmmer", "namd"}); err == nil {
		t.Fatal("expected unknown-benchmark error")
	}
}

func TestCollocateBeatsWorst(t *testing.T) {
	db := testDB(t)
	best, err := Collocate(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstCollocation(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Predicted <= worst.Predicted {
		t.Fatalf("guided collocation %.3f not above adversarial %.3f",
			best.Predicted, worst.Predicted)
	}
	// Structural validity: every app placed exactly once.
	seen := map[string]int{}
	for _, m := range best.Machines {
		if len(m) != 4 {
			t.Fatalf("machine with %d apps", len(m))
		}
		for _, a := range m {
			seen[a]++
		}
	}
	for _, a := range eightApps {
		if seen[a] != 1 {
			t.Fatalf("app %s placed %d times", a, seen[a])
		}
	}
}

func TestCollocateSingleMachine(t *testing.T) {
	db := testDB(t)
	a, err := Collocate(db, []string{"mcf", "omnetpp", "gamess", "hmmer"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Machines) != 1 || a.Predicted <= 0 {
		t.Fatalf("single machine assignment broken: %+v", a)
	}
}

func TestCollocateSizeValidation(t *testing.T) {
	db := testDB(t)
	if _, err := Collocate(db, eightApps, 3); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := WorstCollocation(db, eightApps, 3); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestWorstCollocationClustersSimilarApps(t *testing.T) {
	db := testDB(t)
	worst, err := WorstCollocation(db, eightApps, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The adversarial grouping puts the cache-hungry apps together: count
	// how many of the four MS/CS apps share machine 0 or 1 exclusively.
	sensitive := map[string]bool{"mcf": true, "omnetpp": true, "perlbench": true, "xalancbmk": true}
	perMachine := make([]int, 2)
	for m, machine := range worst.Machines {
		for _, a := range machine {
			if sensitive[a] {
				perMachine[m]++
			}
		}
	}
	if perMachine[0] != 4 && perMachine[1] != 4 {
		t.Fatalf("adversarial grouping did not cluster: %v", perMachine)
	}
}

func TestScorerMatchesPredictSavings(t *testing.T) {
	db := testDB(t)
	sc := NewScorer(db)
	machines := [][]string{
		{"mcf", "omnetpp", "gamess", "hmmer"},
		{"gamess", "hmmer", "namd", "povray"},
		{"mcf", "xalancbmk", "perlbench", "namd"},
	}
	for _, apps := range machines {
		want, err := PredictSavings(db, apps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Score(apps)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Score(%v) = %v, PredictSavings = %v", apps, got, want)
		}
		// Memoized second call must be bit-identical.
		again, err := sc.Score(apps)
		if err != nil || again != got {
			t.Fatalf("memoized Score differs: %v vs %v (%v)", again, got, err)
		}
	}
}

func TestScorerPartialMachine(t *testing.T) {
	db := testDB(t)
	sc := NewScorer(db)
	// A lone application always meets its QoS with the whole surplus at its
	// disposal: the score must be finite and non-negative.
	solo, err := sc.Score([]string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if solo < 0 || solo > 1 {
		t.Fatalf("solo score %v out of range", solo)
	}
	// Adding a compute-bound donor to a cache-hungry app must not destroy
	// the prediction (scores stay in range and defined for every load).
	for n := 2; n <= db.Sys.NumCores; n++ {
		s, err := sc.Score(eightApps[:n])
		if err != nil {
			t.Fatal(err)
		}
		if s < -1 || s > 1 {
			t.Fatalf("score %v for %d apps out of range", s, n)
		}
	}
	if _, err := sc.Score(nil); err == nil {
		t.Fatal("empty machine must be rejected")
	}
	if _, err := sc.Score(eightApps[:5]); err == nil {
		t.Fatal("overfull machine must be rejected")
	}
	if _, err := sc.Score([]string{"nosuch"}); err == nil {
		t.Fatal("unknown benchmark must be rejected")
	}
}
