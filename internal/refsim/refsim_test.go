package refsim

import (
	"math"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/timing"
	"qosrma/internal/trace"
)

// window generates a sample window for one behaviour; cache.Distances is
// the one shared implementation of the warmed exact ATD pass.
func window(bh trace.Behavior, seed uint64) (*trace.Stream, []int16) {
	s := bh.Generate(seed, trace.SampleParams{Accesses: 20000, WarmupAccesses: 4000})
	return s, cache.Distances(1024, 16, s.Warmup, s.Measured)
}

func refConfig(bh trace.Behavior, sys arch.SystemConfig, size arch.CoreSize, ways int, stream *trace.Stream) Config {
	return Config{
		Core:        sys.Cores[size],
		FreqGHz:     2.0,
		MemLatNs:    sys.Mem.LatencyNs,
		Ways:        ways,
		IlpIPC:      bh.IlpIPC,
		BranchMPKI:  bh.BranchMPKI,
		WindowInstr: stream.WindowInstr,
	}
}

// behaviours under test: a pointer chaser, a bursty streamer, and a
// compute-bound phase.
var testBehaviors = []trace.Behavior{
	{Name: "chaser", IlpIPC: 1.6, BranchMPKI: 5, APKI: 20,
		HotLines: 1800, WarmLines: 4500, PHot: 0.45, PWarm: 0.4,
		PBurst: 0.15, BurstLen: 3, BurstGap: 25, PDep: 0.75},
	{Name: "streamer", IlpIPC: 3.2, BranchMPKI: 0.5, APKI: 20,
		HotLines: 200, PHot: 0.15,
		PBurst: 0.5, BurstLen: 10, BurstGap: 6, PDep: 0.05},
	{Name: "compute", IlpIPC: 4.2, BranchMPKI: 2, APKI: 1.5,
		HotLines: 600, PHot: 0.9,
		PBurst: 0.2, BurstLen: 4, BurstGap: 15, PDep: 0.2},
}

// modelCycles evaluates the interval model for one configuration.
func modelCycles(bh trace.Behavior, sys arch.SystemConfig, size arch.CoreSize, ways int, stream *trace.Stream, dists []int16) float64 {
	cp := sys.Cores[size]
	mlp := cache.AnalyzeMLP(stream.Measured, dists, ways, cp.ROB, cp.MSHRs)
	return timing.Cycles(timing.Inputs{
		Instr:         stream.WindowInstr,
		IlpIPC:        bh.IlpIPC,
		BranchMPKI:    bh.BranchMPKI,
		LeadingMisses: float64(mlp.LeadingMisses),
		FreqGHz:       2.0,
		MemLatNs:      sys.Mem.LatencyNs,
		Core:          cp,
	}).Total()
}

// TestIntervalModelConsistentWithReference validates the closed-form model
// against the mechanistic reference in the way that matters for the
// resource manager: every *decision* the manager makes compares two
// configurations of the same phase, so the model must get configuration
// RATIOS right. An absolute bias is acceptable — the interval model charges
// leading misses the full latency while the reference hides part of it
// behind continued dispatch (ROB run-ahead), a known, consistent
// overestimate that cancels between candidate and baseline.
func TestIntervalModelConsistentWithReference(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	for _, bh := range testBehaviors {
		stream, dists := window(bh, 101)
		var ratios []float64
		type config struct {
			size arch.CoreSize
			ways int
		}
		var configs []config
		for _, size := range []arch.CoreSize{arch.SizeSmall, arch.SizeMedium, arch.SizeLarge} {
			for _, ways := range []int{2, 4, 8, 12} {
				configs = append(configs, config{size, ways})
			}
		}
		for _, c := range configs {
			cfg := refConfig(bh, sys, c.size, c.ways, stream)
			ref := Run(cfg, stream.Measured, dists)
			model := modelCycles(bh, sys, c.size, c.ways, stream, dists)
			ratios = append(ratios, model/ref.Cycles)
		}
		// The bias must be consistent across the configuration space: the
		// spread of model/reference ratios bounds the error of any
		// model-based comparison between two configurations.
		min, max := math.Inf(1), math.Inf(-1)
		var sum float64
		for _, r := range ratios {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
		}
		mean := sum / float64(len(ratios))
		if spread := (max - min) / mean; spread > 0.15 {
			t.Errorf("%s: model/reference ratio spread %.1f%% (min %.2f max %.2f) — "+
				"configuration comparisons unreliable", bh.Name, spread*100, min, max)
		}
		if mean < 1.0 || mean > 1.45 {
			t.Errorf("%s: mean model/reference ratio %.2f outside the expected "+
				"full-latency-vs-run-ahead band [1.0, 1.45]", bh.Name, mean)
		}
	}
}

func TestReferenceMissAccounting(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	bh := testBehaviors[1]
	stream, dists := window(bh, 202)
	cfg := refConfig(bh, sys, arch.SizeMedium, 4, stream)
	ref := Run(cfg, stream.Measured, dists)
	if want := cache.MissCount(dists, 4); ref.TotalMisses != want {
		t.Fatalf("reference saw %d misses, stack distances say %d", ref.TotalMisses, want)
	}
	if ref.StalledMisses > ref.TotalMisses {
		t.Fatal("stalled misses exceed total")
	}
	if ref.StalledMisses == 0 && ref.TotalMisses > 0 {
		t.Fatal("no miss ever stalled retirement")
	}
}

func TestReferenceMoreWaysNeverSlower(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	for _, bh := range testBehaviors {
		stream, dists := window(bh, 303)
		prev := math.Inf(1)
		for _, ways := range []int{2, 4, 8, 12} {
			cfg := refConfig(bh, sys, arch.SizeMedium, ways, stream)
			ref := Run(cfg, stream.Measured, dists)
			if ref.Cycles > prev*1.001 {
				t.Fatalf("%s: more ways slowed the reference sim at w=%d", bh.Name, ways)
			}
			prev = ref.Cycles
		}
	}
}

func TestReferenceBiggerCoreHelpsStreamer(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	bh := testBehaviors[1] // independent bursty misses
	stream, dists := window(bh, 404)
	small := Run(refConfig(bh, sys, arch.SizeSmall, 4, stream), stream.Measured, dists)
	large := Run(refConfig(bh, sys, arch.SizeLarge, 4, stream), stream.Measured, dists)
	if large.Cycles >= small.Cycles {
		t.Fatalf("large core not faster on bursty stream: %v vs %v", large.Cycles, small.Cycles)
	}
	if large.StalledMisses >= small.StalledMisses {
		t.Fatalf("large core did not overlap more misses: %d vs %d",
			large.StalledMisses, small.StalledMisses)
	}
}

func TestReferencePointerChaseInsensitiveToCoreSize(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	bh := testBehaviors[0]
	stream, dists := window(bh, 505)
	small := Run(refConfig(bh, sys, arch.SizeSmall, 4, stream), stream.Measured, dists)
	large := Run(refConfig(bh, sys, arch.SizeLarge, 4, stream), stream.Measured, dists)
	// Dependent misses serialize; the large core may only win on the
	// compute component, which is small for this behaviour.
	if gain := small.Cycles / large.Cycles; gain > 1.35 {
		t.Fatalf("pointer chase gained %.2fx from core size, want < 1.35x", gain)
	}
}

func TestReferenceFrequencyScaling(t *testing.T) {
	// Memory-bound windows must speed up sublinearly with frequency.
	sys := arch.DefaultSystemConfig(4)
	bh := testBehaviors[1]
	stream, dists := window(bh, 606)
	cfg := refConfig(bh, sys, arch.SizeMedium, 2, stream)
	atF2 := Run(cfg, stream.Measured, dists)
	cfg.FreqGHz = 3.2
	atF32 := Run(cfg, stream.Measured, dists)
	t2 := atF2.Cycles / 2.0
	t32 := atF32.Cycles / 3.2
	speedup := t2 / t32
	if speedup > 1.35 {
		t.Fatalf("memory-bound speedup %.2f from 1.6x frequency, want < 1.35", speedup)
	}
	if speedup < 1.0 {
		t.Fatalf("higher frequency slowed the window: %.2f", speedup)
	}
}

func TestReferenceEmptyStream(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	cfg := Config{
		Core: sys.Cores[arch.SizeMedium], FreqGHz: 2, MemLatNs: 100,
		Ways: 4, IlpIPC: 2, BranchMPKI: 1, WindowInstr: 1000,
	}
	res := Run(cfg, nil, nil)
	if res.TotalMisses != 0 || res.Cycles <= 0 {
		t.Fatalf("empty stream result: %+v", res)
	}
}
