// Package refsim is a cycle-approximate reference core simulator used to
// validate the interval-analysis timing model (internal/timing) and the
// leading-loads MLP analysis (internal/cache) against a mechanistic
// execution of the sampled access stream.
//
// Where the interval model *counts* leading misses and charges each the
// full memory latency, this simulator actually executes the window as a
// discrete-event process: instructions dispatch at the dependency- and
// width-limited rate, branch mispredictions flush, and LLC misses occupy
// MSHR entries for the full latency while the reorder buffer lets
// execution run ahead a bounded number of instructions. The two must agree
// on total cycles within a modest tolerance — that agreement is what
// justifies building the simulation-results database from the closed-form
// model (tested in refsim_test.go).
package refsim

import (
	"qosrma/internal/arch"
	"qosrma/internal/trace"
)

// Config describes one execution of a sample window.
type Config struct {
	Core     arch.CoreParams
	FreqGHz  float64
	MemLatNs float64
	// Ways is the LLC allocation; an access misses when its stack distance
	// is negative or >= Ways.
	Ways int
	// IlpIPC and BranchMPKI describe the phase (as in timing.Inputs).
	IlpIPC     float64
	BranchMPKI float64
	// WindowInstr is the total instruction count of the window.
	WindowInstr float64
}

// Result is the simulated outcome.
type Result struct {
	Cycles        float64
	TotalMisses   int
	StalledMisses int // misses that stalled retirement (≈ leading misses)
}

// miss tracks one outstanding LLC miss.
type miss struct {
	instr uint32  // instruction index that issued it
	ready float64 // cycle at which data returns
}

// Run executes the window. accs is the measured sample access stream and
// dists its per-access LRU stack distances, as computed by
// cache.Distances(sets, assoc, warmup, accs) — the shared exact-ATD pass,
// which warms the tag stacks with the warm-up prefix before measuring.
func Run(cfg Config, accs []trace.Access, dists []int16) Result {
	effIPC := cfg.IlpIPC
	if w := float64(cfg.Core.Width); effIPC > w {
		effIPC = w
	}
	if effIPC <= 0 {
		effIPC = 0.1
	}
	latCycles := cfg.MemLatNs * cfg.FreqGHz
	// Branch mispredictions are spread uniformly: one flush every
	// 1000/BranchMPKI instructions costs BranchPenal cycles. Amortize as a
	// per-instruction dispatch surcharge, as hardware averages do.
	branchPerInstr := cfg.BranchMPKI / 1000 * float64(cfg.Core.BranchPenal)
	dispatch := 1/effIPC + branchPerInstr // cycles per instruction, no memory

	var (
		clock       float64
		lastInstr   uint32 // last dispatched instruction index
		firstInstr  uint32 // window origin (stream indices continue past warm-up)
		outstanding []miss
		res         Result
	)
	if len(accs) > 0 {
		firstInstr = accs[0].Instr
		lastInstr = firstInstr
	}

	// retire removes completed misses given the current clock.
	retire := func(now float64) {
		kept := outstanding[:0]
		for _, m := range outstanding {
			if m.ready > now {
				kept = append(kept, m)
			}
		}
		outstanding = kept
	}

	for i, acc := range accs {
		d := dists[i]
		if d >= 0 && int(d) < cfg.Ways {
			continue // hit: costs nothing beyond dispatch
		}
		res.TotalMisses++

		// Advance the clock to this access's dispatch point.
		clock += float64(acc.Instr-lastInstr) * dispatch
		lastInstr = acc.Instr
		retire(clock)

		// The ROB bounds run-ahead: if the oldest outstanding miss is more
		// than ROB instructions behind, dispatch stalls until it completes.
		// A dependent access must wait for the previous miss regardless.
		stalled := false
		for len(outstanding) > 0 {
			oldest := outstanding[0]
			blockedByROB := acc.Instr-oldest.instr >= uint32(cfg.Core.ROB)
			blockedByMSHR := len(outstanding) >= cfg.Core.MSHRs
			blockedByDep := acc.Dep
			if !blockedByROB && !blockedByMSHR && !blockedByDep {
				break
			}
			// Wait for the relevant miss to return.
			wait := outstanding[0].ready
			if blockedByDep || blockedByMSHR {
				wait = outstanding[len(outstanding)-1].ready
				if blockedByMSHR && !blockedByDep {
					wait = outstanding[0].ready
				}
			}
			if wait > clock {
				clock = wait
				stalled = true
			}
			retire(clock)
			if blockedByDep {
				break // the dependence is now satisfied
			}
		}
		if stalled || len(outstanding) == 0 {
			res.StalledMisses++
		}
		outstanding = append(outstanding, miss{instr: acc.Instr, ready: clock + latCycles})
	}

	// Drain: the window ends when the last instruction dispatches and all
	// misses complete.
	if end := float64(firstInstr) + cfg.WindowInstr; end > float64(lastInstr) {
		clock += (end - float64(lastInstr)) * dispatch
	}
	for _, m := range outstanding {
		if m.ready > clock {
			clock = m.ready
		}
	}
	res.Cycles = clock
	return res
}
