package ops

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryExposition pins the Prometheus text rendering: family
// ordering, HELP/TYPE headers, label escaping, histogram cumulation.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "trailing family", "")
	c.Add(3)
	r.CounterFunc("aa_total", "leading family", Labels("shard", "0"), func() float64 { return 7 })
	g := r.Gauge("mid_gauge", "a gauge", Labels("k", `va"l`))
	g.Set(1.5)
	r.InfoFunc("build_info", "version payload", func() string { return Labels("hash", "abc") })
	h := r.Histogram("lat_seconds", "latency", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	wantLines := []string{
		`aa_total{shard="0"} 7`,
		`build_info{hash="abc"} 1`,
		`mid_gauge{k="va\"l"} 1.5`,
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_sum 6.05`,
		`lat_seconds_count 4`,
		`zz_total 3`,
		`# TYPE lat_seconds histogram`,
		`# HELP aa_total leading family`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") && !strings.HasSuffix(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out sorted by name.
	if ia, iz := strings.Index(out, "aa_total"), strings.Index(out, "zz_total"); ia > iz {
		t.Errorf("families not sorted:\n%s", out)
	}
}

// TestRegistryHandler: the registry serves itself over HTTP with the
// exposition content type.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestHistogramLabeledBuckets: a labeled histogram merges le into the
// existing label set.
func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz", "", Labels("shard", "2"), []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `sz_bucket{shard="2",le="1"} 1`) {
		t.Fatalf("labeled bucket malformed:\n%s", b.String())
	}
}

// TestHistogramConcurrent: concurrent observation is safe and loses no
// samples (run with -race).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per*0.25 {
		t.Fatalf("sum %g", h.Sum())
	}
}

// TestNilRegistry: a nil registry hands out working instruments and
// renders nothing — instrumented code needs no registry plumbed through.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("n_total", "", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter broken")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}

// TestDuplicateSeriesPanics: re-registering a series is a wiring bug.
func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", "")
}

// TestCheckerRunNowAndLast: manual audits store the latest report, and
// Pass reflects mismatches and errors.
func TestCheckerRunNowAndLast(t *testing.T) {
	calls := 0
	c := NewChecker(func(samples int) AuditReport {
		calls++
		if samples != 4 {
			t.Fatalf("samples %d, want 4", samples)
		}
		return AuditReport{Sampled: samples, Mismatches: calls - 1}
	}, 0, 4)
	if _, ok := c.Last(); ok {
		t.Fatal("fresh checker has a report")
	}
	if r := c.RunNow(0); !r.Pass() {
		t.Fatalf("first audit failed: %+v", r)
	}
	if r := c.RunNow(0); r.Pass() {
		t.Fatal("mismatching audit passed")
	}
	last, ok := c.Last()
	if !ok || last.Mismatches != 1 {
		t.Fatalf("last report wrong: %+v ok=%v", last, ok)
	}
	if (AuditReport{Error: "boom"}).Pass() {
		t.Fatal("errored audit passed")
	}
}

// TestCheckerPeriodic: the periodic goroutine audits on the interval and
// Stop is clean and idempotent.
func TestCheckerPeriodic(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	c := NewChecker(func(int) AuditReport {
		mu.Lock()
		calls++
		mu.Unlock()
		return AuditReport{Sampled: 1}
	}, time.Millisecond, 1)
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := calls
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checker never fired")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if _, ok := c.Last(); !ok {
		t.Fatal("no report after periodic audits")
	}
}
