package ops

import (
	"sync"
	"sync/atomic"
	"time"
)

// AuditReport is the outcome of one self-check audit.
type AuditReport struct {
	// Time is when the audit finished.
	Time time.Time `json:"time"`
	// Sampled is how many cached decisions were re-derived and compared.
	Sampled int `json:"sampled"`
	// Mismatches counts sampled decisions that differed from the fresh
	// library computation — any nonzero value is a serving-correctness
	// failure and degrades health.
	Mismatches int `json:"mismatches"`
	// Error is a non-comparison failure (e.g. the audit could not run).
	Error string `json:"error,omitempty"`
}

// Pass reports whether the audit found the serving state healthy.
func (r AuditReport) Pass() bool { return r.Error == "" && r.Mismatches == 0 }

// AuditFunc performs one spot audit over at most samples cached entries.
type AuditFunc func(samples int) AuditReport

// Checker periodically runs an audit function and retains the latest
// report. It is the service's bit-identity watchdog: the audit re-derives
// cached decisions from first principles and any divergence flips the
// health endpoint to degraded until a later audit passes.
type Checker struct {
	fn       AuditFunc
	samples  int
	interval time.Duration

	last atomic.Pointer[AuditReport]

	mu      sync.Mutex
	quit    chan struct{}
	done    chan struct{}
	started bool
}

// NewChecker builds a checker over fn auditing up to samples entries per
// round every interval. An interval of zero or less disables the periodic
// goroutine — RunNow still works, which is how tests and the /admin/check
// endpoint force an audit on demand.
func NewChecker(fn AuditFunc, interval time.Duration, samples int) *Checker {
	if samples <= 0 {
		samples = 16
	}
	return &Checker{fn: fn, samples: samples, interval: interval}
}

// Start launches the periodic audit goroutine (no-op when the interval is
// unset or the checker already runs).
func (c *Checker) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.interval <= 0 {
		return
	}
	c.started = true
	c.quit = make(chan struct{})
	c.done = make(chan struct{})
	go c.run(c.quit, c.done)
}

// run is the periodic loop.
func (c *Checker) run(quit, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
			c.RunNow(0)
		}
	}
}

// Stop halts the periodic goroutine and waits for any in-flight audit to
// finish. Idempotent; RunNow remains usable afterwards.
func (c *Checker) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	quit, done := c.quit, c.done
	c.mu.Unlock()
	close(quit)
	<-done
}

// RunNow performs one audit synchronously, stores it as the latest report
// and returns it. samples overrides the configured per-round sample count;
// zero or less keeps it.
func (c *Checker) RunNow(samples int) AuditReport {
	if samples <= 0 {
		samples = c.samples
	}
	r := c.fn(samples)
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	c.last.Store(&r)
	return r
}

// Last returns the most recent report, or ok=false when no audit has run
// yet.
func (c *Checker) Last() (AuditReport, bool) {
	p := c.last.Load()
	if p == nil {
		return AuditReport{}, false
	}
	return *p, true
}
