// Package ops is qosrmad's live-operations toolkit: a dependency-free
// Prometheus-text metrics registry and a periodic self-checker.
//
// The registry (Registry) holds counters, gauges, histograms and
// callback-backed series, and renders them in the Prometheus text
// exposition format (version 0.0.4) for a GET /metrics endpoint. It is a
// deliberate miniature: fixed label sets chosen at registration time,
// lock-free observation on the hot path (all instruments are built from
// atomics), and deterministic output order (families sorted by name,
// series in registration order), so the scrape output is diffable in
// tests. Everything a decision shard touches per query is a single atomic
// add — the metrics layer adds no locks to the serving hot path.
//
// The checker (Checker) runs an audit callback on a fixed period and
// retains the latest report; the service wires it to spot-audit cached
// decisions against fresh library computations and degrades its health
// endpoint when an audit fails (see internal/service).
package ops

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; instances handed out by Registry.Counter are registered for scrape.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observations are lock-free
// atomic adds; the scrape renders cumulative Prometheus buckets plus the
// _sum and _count series.
type Histogram struct {
	// bounds are the inclusive bucket upper limits, strictly increasing;
	// counts has one extra slot for the +Inf overflow bucket.
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds an unregistered histogram over the given bucket
// upper bounds (must be strictly increasing). Most callers should use
// Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("ops: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; len(bounds) is +Inf.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one registered time series: a rendered label set and a
// callback that appends its sample lines at scrape time.
type series struct {
	labels string
	write  func(w io.Writer, name, labels string)
}

// family groups the series of one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry is a collection of metrics rendered in the Prometheus text
// format. Registration takes a lock; observation of the returned
// instruments does not. A nil *Registry is a valid no-op sink: every
// registration returns a working (but unscraped) instrument, so library
// code can be instrumented unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register appends one series to the named family, creating it on first
// use. Registering the same (name, labels) twice panics: that is a wiring
// bug, and silently double-reporting a series corrupts scrapes.
func (r *Registry) register(name, help, typ, labels string, write func(io.Writer, string, string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("ops: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == labels {
			panic(fmt.Sprintf("ops: duplicate series %s%s", name, labels))
		}
	}
	f.series = append(f.series, &series{labels: labels, write: write})
}

// Labels renders a label set from key/value pairs, in the given order:
// Labels("shard", "0") → `{shard="0"}`. Values are escaped per the text
// exposition format. No pairs renders the empty string.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("ops: Labels needs key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a sample value.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter registers and returns a counter with the given rendered label
// set (use Labels to build it; "" for none).
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters that already live elsewhere as atomics
// (per-shard task counts, cache statistics).
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(g.Value()))
	})
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "gauge", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// InfoFunc registers a gauge that is always 1 and carries its payload in
// labels rendered fresh at scrape time (the snapshot-version idiom:
// qosrmad_snapshot_info{hash="...",source="..."} 1). fn returns the
// rendered label set.
func (r *Registry) InfoFunc(name, help string, fn func() string) {
	r.register(name, help, "gauge", "", func(w io.Writer, n, _ string) {
		fmt.Fprintf(w, "%s%s 1\n", n, fn())
	})
}

// Histogram registers and returns a histogram over the given bucket upper
// bounds.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", labels, func(w io.Writer, n, l string) {
		writeHistogram(w, n, l, h)
	})
	return h
}

// writeHistogram renders the cumulative bucket, sum and count series.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	// The le label joins any existing labels inside one brace set.
	prefix, suffix := "{", "}"
	if labels != "" {
		prefix = labels[:len(labels)-1] + ","
		suffix = "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"%s %d\n", name, prefix, formatFloat(b), suffix, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, prefix, suffix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// WritePrometheus renders every registered metric in the text exposition
// format: families sorted by name, each preceded by its HELP and TYPE
// headers, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.write(w, f.name, s.labels)
		}
	}
}

// ServeHTTP renders the registry — a Registry is mountable directly as
// the /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}
