// Package resilience is the dependency-free fault-handling kit the
// serving tier is built on: exponential backoff with jitter, per-replica
// circuit breakers (closed → open → half-open with bounded probe
// admission), an active health prober that ejects and readmits targets,
// and a concurrency-limited load-shed gate. The routing tier
// (internal/route) composes these around every forward; qosrmad's own
// handlers use the gate to answer 503 + Retry-After before queues grow
// unbounded; cmd/loadgen reuses the backoff for wire reconnects.
//
// Everything here is deliberately mechanism, not policy: no package-level
// state, no background goroutines except the prober's (explicitly
// started and stopped), and every time- or randomness-dependent decision
// accepts an injected clock or RNG so tests — and the seeded chaos wall
// in internal/chaos — stay deterministic.
package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff computes retry delays: Base doubling (Factor) per attempt up
// to Max, with a Jitter fraction of each delay randomized so synchronized
// clients de-correlate. The zero value selects the defaults below.
type Backoff struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps the grown delay (default 1s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay drawn uniformly at
	// random: delay = d*(1-Jitter) + d*Jitter*rnd (default 0.5). A nil
	// rnd disables jitter regardless.
	Jitter float64
}

// withDefaults fills unset fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay returns the sleep before retry attempt (attempt 0 = the delay
// after the first failure). rnd, when non-nil, supplies uniform [0,1)
// draws for jitter — pass a seeded source for reproducible schedules.
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if rnd != nil && b.Jitter > 0 {
		d = d*(1-b.Jitter) + d*b.Jitter*rnd()
	}
	return time.Duration(d)
}

// Sleep blocks for the attempt's backoff delay or until ctx is done,
// returning ctx.Err() in the latter case.
func (b Backoff) Sleep(ctx context.Context, attempt int, rnd func() float64) error {
	t := time.NewTimer(b.Delay(attempt, rnd))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerState is a circuit breaker's admission state.
type BreakerState int32

const (
	// BreakerClosed admits every request (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of concurrent probes; one
	// success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerOptions configures a Breaker. The zero value selects defaults.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker refuses before admitting
	// half-open probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes bounds the concurrent requests admitted while
	// half-open (default 1).
	HalfOpenProbes int
	// Clock is the time source (default time.Now) — injectable for tests.
	Clock func() time.Time
	// OnStateChange, when set, observes every transition (called with the
	// breaker's mutex held; keep it cheap — a counter increment).
	OnStateChange func(from, to BreakerState)
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Breaker is a per-target circuit breaker. Call Allow before an attempt;
// when it admits, report the outcome with exactly one Success or Failure
// call (the half-open probe accounting depends on it). Safe for
// concurrent use.
type Breaker struct {
	opt BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight half-open probes
}

// NewBreaker builds a breaker with the options' defaults applied.
func NewBreaker(opt BreakerOptions) *Breaker {
	return &Breaker{opt: opt.withDefaults()}
}

// transition moves the breaker to a new state, notifying the observer.
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.opt.OnStateChange != nil {
		b.opt.OnStateChange(from, to)
	}
}

// Allow reports whether an attempt may proceed. An open breaker whose
// cooldown has elapsed becomes half-open and admits up to HalfOpenProbes
// concurrent probes.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opt.Clock().Sub(b.openedAt) < b.opt.Cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= b.opt.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Success reports a completed attempt. Any success fully closes the
// breaker (the replica answered; stale failure history is discarded).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
	b.fails = 0
	b.transition(BreakerClosed)
}

// Failure reports a failed attempt: the Threshold'th consecutive failure
// opens the breaker, and any half-open failure re-opens it for a fresh
// cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probes = 0
		b.openedAt = b.opt.Clock()
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.opt.Threshold {
			b.fails = 0
			b.openedAt = b.opt.Clock()
			b.transition(BreakerOpen)
		}
	default: // already open: refresh nothing — cooldown runs from openedAt
	}
}

// State returns the current admission state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Gate is a concurrency-limited load-shed gate: TryAcquire admits up to
// the configured limit of concurrent holders and refuses beyond it, so a
// server answers "overloaded" immediately instead of queueing without
// bound. A nil *Gate admits everything (the disabled configuration).
type Gate struct {
	sem  chan struct{}
	shed atomic.Uint64
}

// NewGate builds a gate admitting limit concurrent holders; limit <= 0
// returns nil (unlimited).
func NewGate(limit int) *Gate {
	if limit <= 0 {
		return nil
	}
	return &Gate{sem: make(chan struct{}, limit)}
}

// TryAcquire attempts to enter the gate without blocking. A refusal is
// counted as a shed.
func (g *Gate) TryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		g.shed.Add(1)
		return false
	}
}

// Release exits the gate (pair with a successful TryAcquire).
func (g *Gate) Release() {
	if g != nil {
		<-g.sem
	}
}

// Inflight returns the current holder count.
func (g *Gate) Inflight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Shed returns how many acquisitions were refused.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// Limit returns the gate's capacity (0 when disabled).
func (g *Gate) Limit() int {
	if g == nil {
		return 0
	}
	return cap(g.sem)
}
