package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBackoffGrowthAndCap: delays grow geometrically from Base and clamp
// at Max; without an RNG the schedule is exact.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if d := b.Delay(i, nil); d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

// TestBackoffJitterBounds: with an injected RNG, jittered delays stay in
// [d*(1-J), d] and are reproducible for a fixed draw sequence.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for _, r := range []float64{0, 0.25, 0.5, 0.999} {
		d := b.Delay(0, func() float64 { return r })
		lo, hi := 50*time.Millisecond, 100*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("draw %g: delay %v outside [%v, %v]", r, d, lo, hi)
		}
	}
}

// TestBackoffSleepCancelled: Sleep honours context cancellation.
func TestBackoffSleepCancelled(t *testing.T) {
	b := Backoff{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Sleep(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
}

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle walks the full state machine: closed → open at
// the failure threshold → half-open after the cooldown (bounded probes)
// → closed on probe success; and half-open failure re-opens.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var transitions []string
	b := NewBreaker(BreakerOptions{
		Threshold: 3, Cooldown: time.Second, HalfOpenProbes: 1, Clock: clk.Now,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after 2 failures (threshold 3)", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure: opens
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}

	clk.Advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown admit, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe (HalfOpenProbes=1)")
	}
	b.Failure() // probe failed: re-open for a fresh cooldown
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}

	clk.Advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused the next probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Success()

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d: %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestBreakerSuccessResetsFailureCount: interleaved successes keep a
// closed breaker closed — only *consecutive* failures open it.
func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(BreakerOptions{Threshold: 2})
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Failure()
		b.Allow()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

// TestGateShedsAtLimit: the gate admits exactly limit concurrent holders
// and counts refusals; a nil gate admits everything.
func TestGateShedsAtLimit(t *testing.T) {
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate refused within its limit")
	}
	if g.TryAcquire() {
		t.Fatal("gate admitted beyond its limit")
	}
	if g.Inflight() != 2 || g.Shed() != 1 || g.Limit() != 2 {
		t.Fatalf("inflight=%d shed=%d limit=%d", g.Inflight(), g.Shed(), g.Limit())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("gate refused after a release")
	}
	g.Release()
	g.Release()

	var nilGate *Gate = NewGate(0)
	if nilGate != nil {
		t.Fatal("limit 0 should build the disabled (nil) gate")
	}
	if !nilGate.TryAcquire() || nilGate.Shed() != 0 {
		t.Fatal("nil gate must admit everything")
	}
	nilGate.Release()
}

// TestProberEjectsAndReadmits: FailThreshold consecutive failures eject;
// SuccessThreshold successes readmit; transitions are observed.
func TestProberEjectsAndReadmits(t *testing.T) {
	var mu sync.Mutex
	down := map[int]bool{}
	probe := func(_ context.Context, i int) error {
		mu.Lock()
		defer mu.Unlock()
		if down[i] {
			return errors.New("down")
		}
		return nil
	}
	var events []string
	p := NewProber(3, probe, ProberOptions{
		Interval: time.Hour, FailThreshold: 2, SuccessThreshold: 1,
	}, func(target int, healthy bool) {
		mu.Lock()
		if healthy {
			events = append(events, "up")
		} else {
			events = append(events, "down")
		}
		mu.Unlock()
		_ = target
	})
	defer p.Stop()

	for i := 0; i < 3; i++ {
		if !p.Healthy(i) {
			t.Fatalf("target %d not healthy at start", i)
		}
	}
	mu.Lock()
	down[1] = true
	mu.Unlock()
	p.RunNow()
	if !p.Healthy(1) {
		t.Fatal("ejected after one failure (threshold 2)")
	}
	p.RunNow()
	if p.Healthy(1) {
		t.Fatal("still healthy after threshold failures")
	}
	if p.Healthy(0) != true || p.Healthy(2) != true {
		t.Fatal("healthy targets ejected")
	}

	mu.Lock()
	down[1] = false
	mu.Unlock()
	p.RunNow()
	if !p.Healthy(1) {
		t.Fatal("not readmitted after a successful probe")
	}
	ej, re := p.Stats()
	if ej != 1 || re != 1 {
		t.Fatalf("stats ejections=%d readmits=%d, want 1/1", ej, re)
	}
	mu.Lock()
	got := append([]string(nil), events...)
	mu.Unlock()
	if len(got) != 2 || got[0] != "down" || got[1] != "up" {
		t.Fatalf("transition events %v, want [down up]", got)
	}
}

// TestProberPeriodic: the started loop ejects a failing target without
// manual rounds.
func TestProberPeriodic(t *testing.T) {
	p := NewProber(1, func(context.Context, int) error { return errors.New("down") },
		ProberOptions{Interval: 5 * time.Millisecond, FailThreshold: 1}, nil)
	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for p.Healthy(0) {
		if time.Now().After(deadline) {
			t.Fatal("periodic prober never ejected a permanently failing target")
		}
		time.Sleep(time.Millisecond)
	}
}
