// Active health probing: a Prober periodically runs a caller-supplied
// probe against a fixed set of targets, ejecting one after FailThreshold
// consecutive failures and readmitting it after SuccessThreshold
// consecutive successes. The routing tier consults Healthy when picking
// replicas, so a dead or draining backend stops receiving traffic within
// one probe interval and returns to rotation as soon as it answers again
// — without moving any consistent-hash placement (health is a filter over
// the ring, not an input to it).
package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ProberOptions configures a Prober. The zero value selects defaults.
type ProberOptions struct {
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// Timeout bounds one probe call (default half the interval).
	Timeout time.Duration
	// FailThreshold is the consecutive probe failures that eject a target
	// (default 2).
	FailThreshold int
	// SuccessThreshold is the consecutive probe successes that readmit an
	// ejected target (default 1).
	SuccessThreshold int
}

func (o ProberOptions) withDefaults() ProberOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval / 2
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.SuccessThreshold <= 0 {
		o.SuccessThreshold = 1
	}
	return o
}

// Prober tracks per-target health from active probes. Targets are
// addressed by index (the caller keeps the parallel address slice).
// Every target starts healthy — traffic flows before the first round, and
// the breaker layer covers the window until probing notices a failure.
type Prober struct {
	opt    ProberOptions
	probe  func(ctx context.Context, target int) error
	n      int
	health []atomic.Bool
	fails  []int // consecutive probe failures, probe-goroutine-owned
	succs  []int // consecutive probe successes while ejected

	ejections    atomic.Uint64
	readmits     atomic.Uint64
	startOnce    sync.Once
	stopOnce     sync.Once
	quit, done   chan struct{}
	onTransition func(target int, healthy bool)
}

// NewProber builds a prober over n targets. probe is called with the
// target index and a per-call timeout context; a nil error is a healthy
// answer. onTransition (optional) observes ejections and readmissions.
func NewProber(n int, probe func(ctx context.Context, target int) error,
	opt ProberOptions, onTransition func(target int, healthy bool)) *Prober {
	p := &Prober{
		opt:          opt.withDefaults(),
		probe:        probe,
		n:            n,
		health:       make([]atomic.Bool, n),
		fails:        make([]int, n),
		succs:        make([]int, n),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		onTransition: onTransition,
	}
	for i := range p.health {
		p.health[i].Store(true)
	}
	return p
}

// Start launches the probe loop. Idempotent.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		go p.run()
	})
}

// Stop halts the probe loop and waits for it to exit. Idempotent; safe
// to call without Start (the done channel is closed either way).
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.quit) })
	p.startOnce.Do(func() { close(p.done) })
	<-p.done
}

func (p *Prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-t.C:
			p.RunNow()
		}
	}
}

// RunNow probes every target once, synchronously (the loop's round body;
// exported so tests and operators can force a round without waiting an
// interval). Targets are probed concurrently — one slow target must not
// delay ejecting another.
func (p *Prober) RunNow() {
	var wg sync.WaitGroup
	for i := 0; i < p.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.opt.Timeout)
			err := p.probe(ctx, i)
			cancel()
			p.observe(i, err == nil)
		}(i)
	}
	wg.Wait()
}

// observe folds one probe outcome into the target's health.
func (p *Prober) observe(i int, ok bool) {
	if ok {
		p.fails[i] = 0
		if !p.health[i].Load() {
			p.succs[i]++
			if p.succs[i] >= p.opt.SuccessThreshold {
				p.succs[i] = 0
				p.health[i].Store(true)
				p.readmits.Add(1)
				if p.onTransition != nil {
					p.onTransition(i, true)
				}
			}
		}
		return
	}
	p.succs[i] = 0
	if p.health[i].Load() {
		p.fails[i]++
		if p.fails[i] >= p.opt.FailThreshold {
			p.fails[i] = 0
			p.health[i].Store(false)
			p.ejections.Add(1)
			if p.onTransition != nil {
				p.onTransition(i, false)
			}
		}
	}
}

// Healthy reports whether target i is currently admitted.
func (p *Prober) Healthy(i int) bool { return p.health[i].Load() }

// Stats reports lifetime ejections and readmissions.
func (p *Prober) Stats() (ejections, readmits uint64) {
	return p.ejections.Load(), p.readmits.Load()
}
