package cache

import "qosrma/internal/trace"

// CoreMLPParams are the parameters of one core configuration that the
// leading-miss (MLP) analysis depends on: the reorder-buffer window that
// bounds run-ahead and the MSHR count that bounds outstanding misses.
type CoreMLPParams struct {
	ROB   int
	MSHRs int
}

// StreamProfile is the complete build-side analysis of one phase's sample
// window: the exact per-access stack distances, the exact and sampled-set
// miss histograms, and the leading-miss surface for every (core
// configuration, way allocation) pair. It carries everything the detailed
// simulator (internal/simdb) needs to assemble a phase record, and it is
// produced by ProfileStream in a single epoch-structured traversal of the
// stream instead of one AnalyzeMLP pass per (core, ways) point.
//
// All counts are integers, so derived float profiles are bit-identical to
// the naive multi-pass computation (pinned by the property tests).
type StreamProfile struct {
	Assoc    int
	SampleIn int
	Cores    []CoreMLPParams

	// Dists[i] is the LRU stack distance of measured access i, exactly as
	// returned by Distances.
	Dists []int16
	// MissCount[w] is the exact miss count at an allocation of w ways, for
	// w in 0..Assoc (bit-identical to MissCount(Dists, w)).
	MissCount []int
	// SampledMissCount[w] is the miss count restricted to sampled sets (one
	// in SampleIn), unscaled. float64(SampledMissCount[w]) *
	// float64(SampleIn) reproduces a sampled ATD's Misses(w) exactly,
	// because per-set LRU stacks are independent: the sampled ATD's stack
	// for a sampled set is identical to the exact ATD's stack for that set.
	SampledMissCount []int
	// Leading[c][w] is the leading-miss count of core configuration c at an
	// allocation of w ways (bit-identical to
	// AnalyzeMLP(measured, Dists, w, Cores[c].ROB, Cores[c].MSHRs)).
	Leading [][]int
}

// SampledMisses returns the set-sampling-scaled miss estimate at w ways —
// what a hardware ATD with SampleIn-set sampling would report.
func (p *StreamProfile) SampledMisses(w int) float64 {
	return float64(p.SampledMissCount[w]) * float64(p.SampleIn)
}

// mlpState is the per-(core, ways) epoch state of the fused leading-miss
// scan — the same three variables AnalyzeMLP tracks for a single (core,
// ways) point, flattened into one contiguous array so the inner update
// loop stays in cache.
type mlpState struct {
	leadingInstr uint32
	outstanding  int32 // 0 means no epoch open yet
	leading      int32
}

// ProfileStream computes the full build-side profile of one sample window
// in O(1) traversals of the stream: one exact-ATD pass for stack distances
// (warm-up included), then one fused pass that accumulates the exact and
// sampled miss histograms and advances the leading-miss epoch state of
// every (core, ways) combination at once.
//
// The fusion exploits that an access with stack distance d is a miss
// exactly for allocations w <= d (every allocation when d < 0): instead of
// re-scanning the stream per (c, w), each access updates only the states
// for which it is a miss. The per-state update is bit-identical to
// AnalyzeMLP's epoch rule, so the resulting surface equals the naive
// per-(c, w) loop exactly.
func ProfileStream(sets, assoc, sampleIn int, warmup, measured []trace.Access, cores []CoreMLPParams) *StreamProfile {
	if sets <= 0 || assoc <= 0 || sampleIn <= 0 || sets%sampleIn != 0 {
		panic("cache: invalid profile geometry")
	}
	dists := Distances(sets, assoc, warmup, measured)

	p := &StreamProfile{
		Assoc:            assoc,
		SampleIn:         sampleIn,
		Cores:            cores,
		Dists:            dists,
		MissCount:        make([]int, assoc+1),
		SampledMissCount: make([]int, assoc+1),
		Leading:          make([][]int, len(cores)),
	}

	// Histograms over stack distance; suffix sums yield the miss profiles.
	var (
		hist        = make([]int, assoc)
		sampledHist = make([]int, assoc)
		deep        int
		sampledDeep int
	)

	// Flattened epoch state: states[c*(assoc+1)+w].
	ways := assoc + 1
	states := make([]mlpState, len(cores)*ways)

	// Power-of-two geometries (the defaults) get mask arithmetic instead
	// of two divisions per access, mirroring the ATD hot path: with
	// sampleIn dividing sets and both powers of two, the sampled-set test
	// (line % sets) % sampleIn == 0 is just line & (sampleIn-1) == 0.
	sampMask := -1
	if sets&(sets-1) == 0 && sampleIn&(sampleIn-1) == 0 {
		sampMask = sampleIn - 1
	}

	for i, acc := range measured {
		d := int(dists[i])

		// Histogram accumulation (exact and sampled-set-restricted).
		var sampled bool
		if sampMask >= 0 {
			sampled = int(acc.Line)&sampMask == 0
		} else {
			sampled = (int(acc.Line)%sets)%sampleIn == 0
		}
		if d >= 0 {
			hist[d]++
			if sampled {
				sampledHist[d]++
			}
		} else {
			deep++
			if sampled {
				sampledDeep++
			}
		}

		// Leading-miss epoch update for every state this access misses in:
		// allocations 0..d (all of them when the distance exceeds assoc).
		maxW := assoc
		if d >= 0 {
			maxW = d
		}
		instr := acc.Instr
		if acc.Dep {
			// A dependent miss never overlaps: it starts a new epoch in
			// every affected state, unconditionally.
			for c := range cores {
				base := c * ways
				st := states[base : base+maxW+1]
				for w := range st {
					st[w].leading++
					st[w].leadingInstr = instr
					st[w].outstanding = 1
				}
			}
			continue
		}
		for c := range cores {
			rob := uint32(cores[c].ROB)
			mshrs := int32(cores[c].MSHRs)
			base := c * ways
			st := states[base : base+maxW+1]
			for w := range st {
				if o := st[w].outstanding; o > 0 && o < mshrs && instr-st[w].leadingInstr <= rob {
					st[w].outstanding = o + 1
				} else {
					st[w].leading++
					st[w].leadingInstr = instr
					st[w].outstanding = 1
				}
			}
		}
	}

	// Suffix-sum the histograms into miss profiles: a miss at w ways is an
	// access with distance >= w or deeper than the directory.
	exact, smp := deep, sampledDeep
	p.MissCount[assoc] = exact
	p.SampledMissCount[assoc] = smp
	for w := assoc - 1; w >= 0; w-- {
		exact += hist[w]
		smp += sampledHist[w]
		p.MissCount[w] = exact
		p.SampledMissCount[w] = smp
	}

	for c := range cores {
		lead := make([]int, ways)
		base := c * ways
		for w := 0; w < ways; w++ {
			lead[w] = int(states[base+w].leading)
		}
		p.Leading[c] = lead
	}
	return p
}
