// Package cache implements the shared last-level cache substrate: a
// way-partitioned set-associative cache with LRU replacement, the auxiliary
// tag directory (ATD) of Qureshi & Patt's utility-based cache partitioning
// (MICRO 2006), the MLP-aware ATD extension of Paper II (leading-miss
// detection for different core sizes), and the UCP lookahead partitioning
// algorithm used as a baseline.
package cache

// Line is a cache line identified by a 32-bit line address; the set index
// is derived by modulo over the number of sets.
type line struct {
	tag     uint32
	owner   int8
	valid   bool
	lastUse uint64
}

// LLC is a structural model of a shared, way-partitioned, set-associative
// last-level cache with true LRU replacement within each core's partition.
// Cores have disjoint address spaces (multi-programmed workload), so a core
// can only ever hit on its own lines.
type LLC struct {
	sets  int
	assoc int
	quota []int // ways allocated per core
	data  [][]line
	clock uint64

	// Statistics per core.
	Hits   []uint64
	Misses []uint64
}

// NewLLC builds a cache with the given geometry and an initial equal
// partition across numCores cores.
func NewLLC(sets, assoc, numCores int) *LLC {
	if sets <= 0 || assoc <= 0 || numCores <= 0 {
		panic("cache: invalid LLC geometry")
	}
	c := &LLC{
		sets:   sets,
		assoc:  assoc,
		quota:  make([]int, numCores),
		data:   make([][]line, sets),
		Hits:   make([]uint64, numCores),
		Misses: make([]uint64, numCores),
	}
	for i := range c.data {
		c.data[i] = make([]line, assoc)
	}
	for i := range c.quota {
		c.quota[i] = assoc / numCores
	}
	return c
}

// SetPartition installs a new way allocation. The quotas must be positive
// and sum to at most the associativity. Lines beyond a core's new quota are
// evicted lazily by subsequent replacements, which mirrors how hardware
// repartitioning behaves.
func (c *LLC) SetPartition(quota []int) {
	if len(quota) != len(c.quota) {
		panic("cache: partition core-count mismatch")
	}
	total := 0
	for _, q := range quota {
		if q < 1 {
			panic("cache: every core needs at least one way")
		}
		total += q
	}
	if total > c.assoc {
		panic("cache: partition exceeds associativity")
	}
	copy(c.quota, quota)
}

// Quota returns the current way allocation of the given core.
func (c *LLC) Quota(core int) int { return c.quota[core] }

// Access performs one cache access by the given core and reports whether it
// hit. Addresses are line addresses; each core's address space is disjoint.
func (c *LLC) Access(core int, lineAddr uint32) bool {
	c.clock++
	setIdx := int(lineAddr) % c.sets
	set := c.data[setIdx]

	// Hit path.
	for i := range set {
		if set[i].valid && set[i].owner == int8(core) && set[i].tag == lineAddr {
			set[i].lastUse = c.clock
			c.Hits[core]++
			return true
		}
	}
	c.Misses[core]++

	// Miss path: choose a victim way.
	victim := c.victim(set, core)
	set[victim] = line{tag: lineAddr, owner: int8(core), valid: true, lastUse: c.clock}
	return false
}

// victim selects the way to replace for a miss by core in the given set,
// honouring the partition quotas.
func (c *LLC) victim(set []line, core int) int {
	// First, any invalid way.
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	// Count occupancy per owner and find per-owner LRU.
	occ := make([]int, len(c.quota))
	lru := make([]int, len(c.quota))
	for i := range lru {
		lru[i] = -1
	}
	for i := range set {
		o := set[i].owner
		occ[o]++
		if lru[o] == -1 || set[i].lastUse < set[lru[o]].lastUse {
			lru[o] = i
		}
	}
	if occ[core] >= c.quota[core] {
		// Replace within own partition.
		return lru[core]
	}
	// Borrow from the owner most over quota (break ties by older LRU line).
	best, bestOver := -1, 0
	for o := range occ {
		if o == core {
			continue
		}
		over := occ[o] - c.quota[o]
		if over <= 0 || lru[o] < 0 {
			continue
		}
		if over > bestOver ||
			(over == bestOver && best >= 0 && set[lru[o]].lastUse < set[best].lastUse) {
			best, bestOver = lru[o], over
		}
	}
	if best >= 0 {
		return best
	}
	// Everyone is within quota yet the set is full (partition sums below
	// associativity): steal the globally least recently used line not owned
	// by a core at/below its quota... fall back to global LRU.
	g := 0
	for i := range set {
		if set[i].lastUse < set[g].lastUse {
			g = i
		}
	}
	return g
}

// ResetStats clears the hit/miss counters.
func (c *LLC) ResetStats() {
	for i := range c.Hits {
		c.Hits[i] = 0
		c.Misses[i] = 0
	}
}
