package cache

import "qosrma/internal/trace"

// ATD is an auxiliary tag directory: a tags-only shadow of the LLC that
// records, for one core's access stream, the LRU stack-distance histogram.
// From a single pass it yields the miss count the core would suffer for
// *every* possible way allocation w in 1..assoc, which is the profile the
// paper's resource manager consumes (Figure 3 of Paper I).
//
// With SampleIn > 1 the ATD holds tags for one in SampleIn sets only (set
// sampling, as in the UCP hardware), and Misses scales counts back up; this
// is the realistic, noisy profile. SampleIn == 1 gives the exact profile.
type ATD struct {
	sets     int
	assoc    int
	sampleIn int
	stacks   [][]uint32 // per sampled set: line tags, most recent first

	hits []uint64 // hits[d]: accesses with stack distance d
	deep uint64   // accesses with distance >= assoc (miss at any allocation)
	n    uint64   // sampled accesses
}

// NewATD builds an ATD for the given LLC geometry. sampleIn must divide sets.
func NewATD(sets, assoc, sampleIn int) *ATD {
	if sets <= 0 || assoc <= 0 || sampleIn <= 0 || sets%sampleIn != 0 {
		panic("cache: invalid ATD geometry")
	}
	return &ATD{
		sets:     sets,
		assoc:    assoc,
		sampleIn: sampleIn,
		stacks:   make([][]uint32, sets/sampleIn),
		hits:     make([]uint64, assoc),
	}
}

// Access records one access. It returns the LRU stack distance of the line
// within its set (-1 if the line was not resident in the tag stack, i.e. a
// miss for every allocation), or -2 if the set is not sampled.
func (a *ATD) Access(lineAddr uint32) int {
	setIdx := int(lineAddr) % a.sets
	if setIdx%a.sampleIn != 0 {
		return -2
	}
	sIdx := setIdx / a.sampleIn
	stack := a.stacks[sIdx]
	a.n++

	dist := -1
	for i, tag := range stack {
		if tag == lineAddr {
			dist = i
			break
		}
	}
	switch {
	case dist >= 0:
		a.hits[dist]++
		// Move to front.
		copy(stack[1:dist+1], stack[:dist])
		stack[0] = lineAddr
	default:
		a.deep++
		if len(stack) < a.assoc {
			stack = append(stack, 0)
		}
		copy(stack[1:], stack)
		stack[0] = lineAddr
		a.stacks[sIdx] = stack
	}
	return dist
}

// Misses returns the estimated total miss count for an allocation of w ways,
// scaled up by the sampling factor. Under LRU inclusion this is exact when
// SampleIn == 1.
func (a *ATD) Misses(w int) float64 {
	if w < 0 {
		w = 0
	}
	if w > a.assoc {
		w = a.assoc
	}
	m := a.deep
	for d := w; d < a.assoc; d++ {
		m += a.hits[d]
	}
	return float64(m) * float64(a.sampleIn)
}

// Profile returns Misses(w) for every w in 0..assoc.
func (a *ATD) Profile() []float64 {
	p := make([]float64, a.assoc+1)
	for w := 0; w <= a.assoc; w++ {
		p[w] = a.Misses(w)
	}
	return p
}

// SampledAccesses returns the number of accesses that landed in sampled sets.
func (a *ATD) SampledAccesses() uint64 { return a.n }

// ResetCounters clears the hit/miss counters while keeping the tag stacks
// warm, so that a warm-up stream can precede the measured stream (the 100M
// warm-up slice of the thesis methodology).
func (a *ATD) ResetCounters() {
	for i := range a.hits {
		a.hits[i] = 0
	}
	a.deep = 0
	a.n = 0
}

// Reset clears counters and tag stacks.
func (a *ATD) Reset() {
	for i := range a.stacks {
		a.stacks[i] = a.stacks[i][:0]
	}
	for i := range a.hits {
		a.hits[i] = 0
	}
	a.deep = 0
	a.n = 0
}

// Distances computes, in one pass over a full (unsampled) tag directory, the
// stack distance of every access in the stream: distances[i] is the LRU
// depth of access i within its set, or -1 if deeper than assoc (a miss for
// every allocation). An access misses under an allocation of w ways exactly
// when its distance is -1 or >= w. This drives the detailed simulator and
// the MLP analysis.
func Distances(sets, assoc int, accs []trace.Access) []int16 {
	atd := NewATD(sets, assoc, 1)
	out := make([]int16, len(accs))
	for i, acc := range accs {
		d := atd.Access(acc.Line)
		out[i] = int16(d)
	}
	return out
}

// MissCount returns the number of misses in the stream for an allocation of
// w ways given precomputed distances.
func MissCount(dists []int16, w int) int {
	n := 0
	for _, d := range dists {
		if d < 0 || int(d) >= w {
			n++
		}
	}
	return n
}
