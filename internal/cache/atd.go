package cache

import "qosrma/internal/trace"

// ATD is an auxiliary tag directory: a tags-only shadow of the LLC that
// records, for one core's access stream, the LRU stack-distance histogram.
// From a single pass it yields the miss count the core would suffer for
// *every* possible way allocation w in 1..assoc, which is the profile the
// paper's resource manager consumes (Figure 3 of Paper I).
//
// With SampleIn > 1 the ATD holds tags for one in SampleIn sets only (set
// sampling, as in the UCP hardware), and Misses scales counts back up; this
// is the realistic, noisy profile. SampleIn == 1 gives the exact profile.
//
// The per-set tag stacks live in one contiguous backing array (stack s
// occupies tags[s*assoc : s*assoc+lens[s]]), so the inner stack scan walks
// sequential memory instead of chasing a per-set slice header.
type ATD struct {
	sets     int
	assoc    int
	sampleIn int
	setMask  int      // sets-1 when sets is a power of two, else -1
	sampMask int      // sampleIn-1 when sampleIn is a power of two, else -1
	sampSh   uint     // log2(sampleIn) when sampMask >= 0
	tags     []uint32 // flattened stacks: most recent first within each set
	lens     []int32  // current depth of each sampled set's stack

	hits []uint64 // hits[d]: accesses with stack distance d
	deep uint64   // accesses with distance >= assoc (miss at any allocation)
	n    uint64   // sampled accesses
}

// NewATD builds an ATD for the given LLC geometry. sampleIn must divide sets.
func NewATD(sets, assoc, sampleIn int) *ATD {
	if sets <= 0 || assoc <= 0 || sampleIn <= 0 || sets%sampleIn != 0 {
		panic("cache: invalid ATD geometry")
	}
	stacks := sets / sampleIn
	a := &ATD{
		sets:     sets,
		assoc:    assoc,
		sampleIn: sampleIn,
		setMask:  -1,
		sampMask: -1,
		tags:     make([]uint32, stacks*assoc),
		lens:     make([]int32, stacks),
		hits:     make([]uint64, assoc),
	}
	// The default geometries are powers of two; the set-index and sampling
	// checks then reduce to mask-and-shift instead of two integer
	// divisions on the per-access hot path.
	if sets&(sets-1) == 0 {
		a.setMask = sets - 1
	}
	if sampleIn&(sampleIn-1) == 0 {
		a.sampMask = sampleIn - 1
		a.sampSh = uint(log2(sampleIn))
	}
	return a
}

// log2 returns floor(log2(x)) for x >= 1.
func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Access records one access. It returns the LRU stack distance of the line
// within its set (-1 if the line was not resident in the tag stack, i.e. a
// miss for every allocation), or -2 if the set is not sampled.
func (a *ATD) Access(lineAddr uint32) int {
	var setIdx int
	if a.setMask >= 0 {
		setIdx = int(lineAddr) & a.setMask
	} else {
		setIdx = int(lineAddr) % a.sets
	}
	var sIdx int
	if a.sampMask >= 0 {
		if setIdx&a.sampMask != 0 {
			return -2
		}
		sIdx = setIdx >> a.sampSh
	} else {
		if setIdx%a.sampleIn != 0 {
			return -2
		}
		sIdx = setIdx / a.sampleIn
	}
	base := sIdx * a.assoc
	n := int(a.lens[sIdx])
	stack := a.tags[base : base+n]
	a.n++

	// Fast path: re-reference of the set's MRU line (no reordering needed).
	if n > 0 && stack[0] == lineAddr {
		a.hits[0]++
		return 0
	}

	// Single search-and-shift pass: displace entries one slot toward the
	// LRU end while scanning, so a hit at depth d (or a full-stack miss)
	// touches each entry exactly once instead of scan-then-memmove.
	cur := lineAddr
	for i := 0; i < n; i++ {
		t := stack[i]
		stack[i] = cur
		if t == lineAddr {
			a.hits[i]++
			return i
		}
		cur = t
	}
	a.deep++
	if n < a.assoc {
		a.tags[base+n] = cur
		a.lens[sIdx] = int32(n + 1)
	}
	return -1
}

// Misses returns the estimated total miss count for an allocation of w ways,
// scaled up by the sampling factor. Under LRU inclusion this is exact when
// SampleIn == 1.
func (a *ATD) Misses(w int) float64 {
	if w < 0 {
		w = 0
	}
	if w > a.assoc {
		w = a.assoc
	}
	m := a.deep
	for d := w; d < a.assoc; d++ {
		m += a.hits[d]
	}
	return float64(m) * float64(a.sampleIn)
}

// Profile returns Misses(w) for every w in 0..assoc.
func (a *ATD) Profile() []float64 {
	p := make([]float64, a.assoc+1)
	for w := 0; w <= a.assoc; w++ {
		p[w] = a.Misses(w)
	}
	return p
}

// SampledAccesses returns the number of accesses that landed in sampled sets.
func (a *ATD) SampledAccesses() uint64 { return a.n }

// ResetCounters clears the hit/miss counters while keeping the tag stacks
// warm, so that a warm-up stream can precede the measured stream (the 100M
// warm-up slice of the thesis methodology).
func (a *ATD) ResetCounters() {
	for i := range a.hits {
		a.hits[i] = 0
	}
	a.deep = 0
	a.n = 0
}

// Reset clears counters and tag stacks.
func (a *ATD) Reset() {
	for i := range a.lens {
		a.lens[i] = 0
	}
	for i := range a.hits {
		a.hits[i] = 0
	}
	a.deep = 0
	a.n = 0
}

// Distances is the one exact-pass implementation shared by the detailed
// simulator (internal/simdb), the reference core simulator's tests and the
// cache tests: it computes, with a full (unsampled) tag directory, the
// stack distance of every measured access. The warmup prefix drives the tag
// stacks without being measured (the 100M-instruction warm-up slice of the
// thesis methodology); pass nil when no warm-up is wanted. distances[i] is
// the LRU depth of measured access i within its set, or -1 if deeper than
// assoc (a miss for every allocation). An access misses under an allocation
// of w ways exactly when its distance is -1 or >= w.
func Distances(sets, assoc int, warmup, measured []trace.Access) []int16 {
	atd := NewATD(sets, assoc, 1)
	out := make([]int16, len(warmup)+len(measured))
	atd.distances(out[:len(warmup)], warmup)
	atd.distances(out[len(warmup):], measured)
	return out[len(warmup):]
}

// distances drives the full (sampleIn == 1) directory over accs, writing
// each access's stack distance to out. It is Access specialized for the
// exact pass: no sampling test, no histogram bookkeeping — the tag-stack
// discipline (MRU fast path, single search-and-shift) is identical, and a
// test pins it element-for-element equal to per-access Access calls.
func (a *ATD) distances(out []int16, accs []trace.Access) {
	tags, lens, assoc := a.tags, a.lens, a.assoc
	setMask, sets := a.setMask, a.sets
	for i, acc := range accs {
		line := acc.Line
		var setIdx int
		if setMask >= 0 {
			setIdx = int(line) & setMask
		} else {
			setIdx = int(line) % sets
		}
		base := setIdx * assoc
		n := int(lens[setIdx])
		stack := tags[base : base+n]
		if n > 0 && stack[0] == line {
			out[i] = 0
			continue
		}
		d := int16(-1)
		cur := line
		for j := 0; j < n; j++ {
			t := stack[j]
			stack[j] = cur
			if t == line {
				d = int16(j)
				break
			}
			cur = t
		}
		if d < 0 && n < assoc {
			tags[base+n] = cur
			lens[setIdx] = int32(n + 1)
		}
		out[i] = d
	}
}

// MissCount returns the number of misses in the stream for an allocation of
// w ways given precomputed distances.
func MissCount(dists []int16, w int) int {
	n := 0
	for _, d := range dists {
		if d < 0 || int(d) >= w {
			n++
		}
	}
	return n
}
