package cache

// MaskedLLC is the hardware-faithful variant of the partitioned cache: each
// core owns a bitmask of ways (the "LLC partitioning bit-masks" of the
// paper's Figure 3) and replacement victims are chosen only among the
// core's masked ways. Lines left in a way after a re-mask are evicted
// lazily by the new owner's replacements, as real way-partitioning
// hardware behaves.
//
// With disjoint masks the ways assigned to a core form an isolated
// k-way cache, which is the property the quota-based LLC and the ATD
// approximate; the equivalence is verified in the tests.
type MaskedLLC struct {
	sets  int
	assoc int
	masks []uint64
	data  [][]line
	clock uint64

	Hits   []uint64
	Misses []uint64
}

// NewMaskedLLC builds the cache with an equal contiguous mask per core.
func NewMaskedLLC(sets, assoc, numCores int) *MaskedLLC {
	if sets <= 0 || assoc <= 0 || assoc > 64 || numCores <= 0 {
		panic("cache: invalid masked LLC geometry")
	}
	c := &MaskedLLC{
		sets:   sets,
		assoc:  assoc,
		masks:  make([]uint64, numCores),
		data:   make([][]line, sets),
		Hits:   make([]uint64, numCores),
		Misses: make([]uint64, numCores),
	}
	for i := range c.data {
		c.data[i] = make([]line, assoc)
	}
	per := assoc / numCores
	for i := range c.masks {
		c.masks[i] = ((1 << per) - 1) << (i * per)
	}
	return c
}

// SetMask installs a core's way bitmask. The mask must select at least one
// way within the associativity.
func (c *MaskedLLC) SetMask(core int, mask uint64) {
	valid := uint64(1)<<c.assoc - 1
	if mask&valid == 0 {
		panic("cache: empty way mask")
	}
	c.masks[core] = mask & valid
}

// Mask returns a core's current way bitmask.
func (c *MaskedLLC) Mask(core int) uint64 { return c.masks[core] }

// MaskFromQuotas builds disjoint contiguous masks from a way-count vector.
func MaskFromQuotas(quotas []int) []uint64 {
	masks := make([]uint64, len(quotas))
	shift := 0
	for i, q := range quotas {
		if q < 1 {
			panic("cache: quota below one way")
		}
		masks[i] = ((1 << q) - 1) << shift
		shift += q
	}
	return masks
}

// Access performs one access by the given core and reports a hit.
func (c *MaskedLLC) Access(core int, lineAddr uint32) bool {
	c.clock++
	set := c.data[int(lineAddr)%c.sets]
	for i := range set {
		if set[i].valid && set[i].owner == int8(core) && set[i].tag == lineAddr {
			set[i].lastUse = c.clock
			c.Hits[core]++
			return true
		}
	}
	c.Misses[core]++

	// Victim: invalid way within the mask first, else LRU within the mask.
	mask := c.masks[core]
	victim, victimValid := -1, true
	for i := range set {
		if mask&(1<<i) == 0 {
			continue
		}
		switch {
		case !set[i].valid:
			if victimValid {
				victim, victimValid = i, false
			}
		case victimValid && (victim < 0 || set[i].lastUse < set[victim].lastUse):
			victim = i
		}
	}
	set[victim] = line{tag: lineAddr, owner: int8(core), valid: true, lastUse: c.clock}
	return false
}

// ResetStats clears the hit/miss counters.
func (c *MaskedLLC) ResetStats() {
	for i := range c.Hits {
		c.Hits[i] = 0
		c.Misses[i] = 0
	}
}
