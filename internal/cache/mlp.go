package cache

import "qosrma/internal/trace"

// MLPResult summarizes the memory-level-parallelism analysis of one miss
// stream for one (core size, way allocation) combination.
type MLPResult struct {
	TotalMisses   int
	LeadingMisses int // misses that contribute full latency to stall time
}

// MLP returns total/leading misses; a leading miss is charged the full
// memory latency while overlapped misses hide behind it (leading-loads
// model, cf. Su et al. ATC'14 / Miftakhutdinov et al. MICRO'12).
func (r MLPResult) MLP() float64 {
	if r.LeadingMisses == 0 {
		return 1
	}
	return float64(r.TotalMisses) / float64(r.LeadingMisses)
}

// AnalyzeMLP implements the Paper II MLP-aware ATD extension in software:
// given the access stream, its precomputed stack distances, a way allocation
// w, and the core's ROB size and MSHR count, it detects which misses overlap
// a leading miss and which start a new miss epoch.
//
// A miss overlaps the current leading miss when all hold:
//   - it is independent (no serialized pointer-chase dependence),
//   - it issues within robWindow instructions of the leading miss (both
//     must be in flight in the reorder buffer together), and
//   - fewer than mshrs misses are already outstanding in the epoch.
//
// Otherwise it becomes the new leading miss. The hardware version of this
// heuristic costs under 300 bytes per core (thesis §3.2); here it runs over
// the sampled stream.
func AnalyzeMLP(accs []trace.Access, dists []int16, w, robWindow, mshrs int) MLPResult {
	var res MLPResult
	var (
		leadingInstr uint32
		outstanding  int
		haveEpoch    bool
	)
	for i, acc := range accs {
		d := dists[i]
		if d >= 0 && int(d) < w {
			continue // hit at this allocation
		}
		res.TotalMisses++
		overlaps := haveEpoch &&
			!acc.Dep &&
			acc.Instr-leadingInstr <= uint32(robWindow) &&
			outstanding < mshrs
		if overlaps {
			outstanding++
			continue
		}
		res.LeadingMisses++
		leadingInstr = acc.Instr
		outstanding = 1
		haveEpoch = true
	}
	return res
}

// MLPProfile computes leading-miss counts for every way allocation in
// 0..maxWays for one core configuration, in a single pass per allocation.
// The result is the software equivalent of the per-configuration counters
// the Paper II hardware extension maintains.
func MLPProfile(accs []trace.Access, dists []int16, maxWays, robWindow, mshrs int) []MLPResult {
	out := make([]MLPResult, maxWays+1)
	for w := 0; w <= maxWays; w++ {
		out[w] = AnalyzeMLP(accs, dists, w, robWindow, mshrs)
	}
	return out
}
