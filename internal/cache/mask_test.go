package cache

import (
	"testing"
	"testing/quick"

	"qosrma/internal/stats"
)

func TestMaskedLLCBasic(t *testing.T) {
	c := NewMaskedLLC(4, 4, 2)
	if c.Access(0, 0) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0, 0) {
		t.Fatal("second access must hit")
	}
}

func TestMaskedLLCDefaultMasksDisjoint(t *testing.T) {
	c := NewMaskedLLC(16, 16, 4)
	var union uint64
	for i := 0; i < 4; i++ {
		m := c.Mask(i)
		if m == 0 {
			t.Fatalf("core %d has empty mask", i)
		}
		if union&m != 0 {
			t.Fatalf("core %d mask overlaps earlier cores", i)
		}
		union |= m
	}
	if union != (1<<16)-1 {
		t.Fatalf("masks do not cover the cache: %b", union)
	}
}

func TestMaskFromQuotas(t *testing.T) {
	masks := MaskFromQuotas([]int{3, 5, 8})
	if masks[0] != 0b111 || masks[1] != 0b11111000 || masks[2] != 0xFF00 {
		t.Fatalf("masks wrong: %b %b %b", masks[0], masks[1], masks[2])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero quota must panic")
		}
	}()
	MaskFromQuotas([]int{0, 4})
}

func TestMaskedLLCIsolationExactness(t *testing.T) {
	// With disjoint masks, each core's masked ways form an isolated k-way
	// cache: per-core misses must match a standalone cache of the same
	// geometry exactly.
	const sets = 64
	quotas := []int{3, 7, 6}
	masked := NewMaskedLLC(sets, 16, 3)
	for core, m := range MaskFromQuotas(quotas) {
		masked.SetMask(core, m)
	}
	streams := make([][]uint32, 3)
	for core := range streams {
		rng := stats.NewRNG(uint64(900 + core))
		for i := 0; i < 20000; i++ {
			streams[core] = append(streams[core], uint32(rng.Intn(3000)))
		}
	}
	// Interleave the cores' accesses.
	for i := 0; i < 20000; i++ {
		for core := range streams {
			masked.Access(core, streams[core][i])
		}
	}
	for core, q := range quotas {
		solo := NewLLC(sets, q, 1)
		for _, addr := range streams[core] {
			solo.Access(0, addr)
		}
		if masked.Misses[core] != solo.Misses[0] {
			t.Fatalf("core %d: masked %d misses vs standalone %d",
				core, masked.Misses[core], solo.Misses[0])
		}
	}
}

func TestMaskedMatchesATDUnderDisjointMasks(t *testing.T) {
	const sets = 64
	stream := randomStream(77, 20000, 1200)
	for _, q := range []int{2, 5, 9} {
		masked := NewMaskedLLC(sets, 16, 2)
		masked.SetMask(0, uint64(1<<q)-1)
		masked.SetMask(1, ((1<<(16-q))-1)<<q)
		atd := NewATD(sets, 16, 1)
		for _, a := range stream {
			masked.Access(0, a.Line)
			atd.Access(a.Line)
		}
		if got, want := float64(masked.Misses[0]), atd.Misses(q); got != want {
			t.Fatalf("q=%d: masked %v vs ATD %v", q, got, want)
		}
	}
}

func TestMaskedLLCRemaskLazyEviction(t *testing.T) {
	c := NewMaskedLLC(1, 4, 2)
	c.SetMask(0, 0b0011)
	c.SetMask(1, 0b1100)
	c.Access(0, 0)
	c.Access(0, 1)
	// Hand core 0's ways to core 1 and let core 1 churn.
	c.SetMask(1, 0b1111)
	for i := uint32(0); i < 8; i++ {
		c.Access(1, 100+i)
	}
	if c.Access(0, 0) || c.Access(0, 1) {
		t.Fatal("core 0's lines should have been lazily evicted after re-mask")
	}
}

func TestMaskedLLCPanics(t *testing.T) {
	c := NewMaskedLLC(4, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask must panic")
		}
	}()
	c.SetMask(0, 0)
}

func TestQuickMaskedEqualsQuotaSteadyState(t *testing.T) {
	// The quota-based LLC and the masked LLC implement the same policy for
	// static disjoint partitions once the cache is saturated (during cold
	// start the quota design may transiently use any invalid way, which is
	// also how flexible-partitioning hardware behaves). After a warm-up,
	// per-core miss counts on identical interleaved traffic must agree
	// closely.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		q0 := 1 + rng.Intn(7)
		quotas := []int{q0, 8 - q0}
		masked := NewMaskedLLC(16, 8, 2)
		for core, m := range MaskFromQuotas(quotas) {
			masked.SetMask(core, m)
		}
		quota := NewLLC(16, 8, 2)
		quota.SetPartition(quotas)
		access := func() {
			core := rng.Intn(2)
			addr := uint32(core*1_000_000 + rng.Intn(800))
			masked.Access(core, addr)
			quota.Access(core, addr)
		}
		for i := 0; i < 6000; i++ {
			access()
		}
		masked.ResetStats()
		quota.ResetStats()
		for i := 0; i < 6000; i++ {
			access()
		}
		for core := 0; core < 2; core++ {
			a, b := float64(masked.Misses[core]), float64(quota.Misses[core])
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.02*(b+50) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
