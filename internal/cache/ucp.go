package cache

// UCPLookahead implements the greedy "lookahead" partitioning algorithm of
// utility-based cache partitioning (Qureshi & Patt, MICRO 2006). Given one
// miss profile per core (misses as a function of allocated ways, index 0 =
// zero ways) and the total number of ways, it returns an allocation that
// greedily maximizes marginal utility (miss reduction per way), giving every
// core at least minWays.
//
// This is the classic miss-minimizing partitioner the paper contrasts with:
// it has no notion of per-application QoS.
func UCPLookahead(profiles [][]float64, totalWays, minWays int) []int {
	n := len(profiles)
	if n == 0 {
		return nil
	}
	if minWays < 0 {
		minWays = 0
	}
	alloc := make([]int, n)
	remaining := totalWays
	for i := range alloc {
		alloc[i] = minWays
		remaining -= minWays
	}
	if remaining < 0 {
		panic("cache: totalWays cannot satisfy minWays")
	}

	maxUtility := func(core int) (bestWays int, bestPerWay float64) {
		p := profiles[core]
		cur := alloc[core]
		bestPerWay = -1
		for w := cur + 1; w < len(p) && w-cur <= remaining; w++ {
			gain := p[cur] - p[w]
			perWay := gain / float64(w-cur)
			if perWay > bestPerWay {
				bestPerWay = perWay
				bestWays = w - cur
			}
		}
		return bestWays, bestPerWay
	}

	for remaining > 0 {
		bestCore, bestWays := -1, 0
		bestPerWay := -1.0
		for c := 0; c < n; c++ {
			w, u := maxUtility(c)
			if w > 0 && u > bestPerWay {
				bestCore, bestWays, bestPerWay = c, w, u
			}
		}
		if bestCore < 0 {
			// No core benefits from more ways; hand out the rest evenly so
			// the full cache stays in use.
			for c := 0; remaining > 0; c = (c + 1) % n {
				alloc[c]++
				remaining--
			}
			break
		}
		alloc[bestCore] += bestWays
		remaining -= bestWays
	}
	return alloc
}

// TotalMisses evaluates an allocation against the profiles.
func TotalMisses(profiles [][]float64, alloc []int) float64 {
	var total float64
	for i, p := range profiles {
		w := alloc[i]
		if w >= len(p) {
			w = len(p) - 1
		}
		total += p[w]
	}
	return total
}
