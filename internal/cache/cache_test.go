package cache

import (
	"testing"
	"testing/quick"

	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

// randomStream builds a deterministic synthetic access stream with a mix of
// reuse and streaming.
func randomStream(seed uint64, n, hotLines int) []trace.Access {
	rng := stats.NewRNG(seed)
	accs := make([]trace.Access, n)
	next := uint32(hotLines)
	instr := uint32(0)
	for i := range accs {
		instr += uint32(1 + rng.Intn(50))
		var l uint32
		if rng.Float64() < 0.7 {
			l = uint32(rng.Intn(hotLines))
		} else {
			l = next
			next++
		}
		accs[i] = trace.Access{Line: l, Instr: instr, Dep: rng.Float64() < 0.3}
	}
	return accs
}

func TestLLCBasicHitMiss(t *testing.T) {
	c := NewLLC(4, 2, 1)
	if c.Access(0, 0) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0, 0) {
		t.Fatal("second access must hit")
	}
	if c.Hits[0] != 1 || c.Misses[0] != 1 {
		t.Fatalf("stats wrong: %d hits, %d misses", c.Hits[0], c.Misses[0])
	}
}

func TestLLCLRUWithinSet(t *testing.T) {
	// 1 set, 2 ways, single core: lines 0,1 fill; touching 0 then inserting
	// 2 must evict 1.
	c := NewLLC(1, 2, 1)
	c.Access(0, 0)
	c.Access(0, 1)
	c.Access(0, 0) // 0 is MRU
	c.Access(0, 2) // evicts 1
	if !c.Access(0, 0) {
		t.Fatal("line 0 should have survived")
	}
	if c.Access(0, 1) {
		t.Fatal("line 1 should have been evicted")
	}
}

func TestLLCPartitionIsolation(t *testing.T) {
	// Two cores, 4 ways, quota 2+2. Core 1's heavy traffic must not evict
	// core 0's lines once occupancy is at quota.
	c := NewLLC(1, 4, 2)
	c.SetPartition([]int{2, 2})
	c.Access(0, 0)
	c.Access(0, 1)
	for i := uint32(0); i < 100; i++ {
		c.Access(1, 1000+i)
	}
	if !c.Access(0, 0) || !c.Access(0, 1) {
		t.Fatal("partitioning failed to protect core 0's lines")
	}
}

func TestLLCRepartitionReclaimsLazily(t *testing.T) {
	c := NewLLC(1, 4, 2)
	c.SetPartition([]int{3, 1})
	c.Access(0, 0)
	c.Access(0, 1)
	c.Access(0, 2) // core 0 holds 3 lines
	c.SetPartition([]int{1, 3})
	// Core 1 misses should steal from over-quota core 0.
	c.Access(1, 100)
	c.Access(1, 101)
	hits := 0
	for _, l := range []uint32{0, 1, 2} {
		if c.Access(0, l) {
			hits++
		}
	}
	if hits > 1 {
		t.Fatalf("core 0 kept %d lines, quota is 1", hits)
	}
}

func TestLLCPanicsOnBadPartition(t *testing.T) {
	c := NewLLC(4, 4, 2)
	for _, quota := range [][]int{{0, 4}, {3, 3}, {1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetPartition(%v) did not panic", quota)
				}
			}()
			c.SetPartition(quota)
		}()
	}
}

func TestATDMatchesRealCache(t *testing.T) {
	// LRU inclusion: ATD misses(w) must equal a real w-way cache's misses.
	const sets = 64
	stream := randomStream(11, 20000, 800)
	atd := NewATD(sets, 16, 1)
	for _, a := range stream {
		atd.Access(a.Line)
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		c := NewLLC(sets, w, 1)
		for _, a := range stream {
			c.Access(0, a.Line)
		}
		if got, want := atd.Misses(w), float64(c.Misses[0]); got != want {
			t.Errorf("w=%d: ATD %v vs real cache %v", w, got, want)
		}
	}
}

func TestATDProfileMonotone(t *testing.T) {
	stream := randomStream(12, 30000, 2000)
	atd := NewATD(128, 16, 1)
	for _, a := range stream {
		atd.Access(a.Line)
	}
	p := atd.Profile()
	if len(p) != 17 {
		t.Fatalf("profile length %d", len(p))
	}
	for w := 1; w < len(p); w++ {
		if p[w] > p[w-1] {
			t.Fatalf("misses increased with more ways at w=%d: %v > %v", w, p[w], p[w-1])
		}
	}
	if p[0] != float64(len(stream)) {
		t.Fatalf("misses(0) = %v, want every access (%d)", p[0], len(stream))
	}
}

func TestATDSamplingApproximatesExact(t *testing.T) {
	stream := randomStream(13, 60000, 3000)
	exact := NewATD(1024, 16, 1)
	sampled := NewATD(1024, 16, 32)
	for _, a := range stream {
		exact.Access(a.Line)
		sampled.Access(a.Line)
	}
	for _, w := range []int{2, 4, 8, 12} {
		e, s := exact.Misses(w), sampled.Misses(w)
		if e == 0 {
			continue
		}
		rel := (s - e) / e
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.15 {
			t.Errorf("w=%d: sampled %v vs exact %v (rel err %.3f)", w, s, e, rel)
		}
	}
}

func TestATDReset(t *testing.T) {
	atd := NewATD(16, 4, 1)
	atd.Access(1)
	atd.Access(1)
	atd.Reset()
	if atd.SampledAccesses() != 0 || atd.Misses(4) != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestDistancesMatchesAccessPath(t *testing.T) {
	// The specialized exact-pass loop must agree element-for-element with
	// per-access ATD.Access calls, warm-up included.
	stream := randomStream(21, 12000, 900)
	warm, meas := stream[:3000], stream[3000:]
	for _, geo := range []struct{ sets, assoc int }{{256, 16}, {100, 12}, {64, 4}} {
		got := Distances(geo.sets, geo.assoc, warm, meas)
		atd := NewATD(geo.sets, geo.assoc, 1)
		for _, a := range warm {
			atd.Access(a.Line)
		}
		for i, a := range meas {
			if want := int16(atd.Access(a.Line)); got[i] != want {
				t.Fatalf("sets=%d assoc=%d: distance %d = %d, Access says %d",
					geo.sets, geo.assoc, i, got[i], want)
			}
		}
	}
}

func TestDistancesConsistentWithMissCount(t *testing.T) {
	stream := randomStream(14, 20000, 1500)
	dists := Distances(256, 16, nil, stream)
	atd := NewATD(256, 16, 1)
	for _, a := range stream {
		atd.Access(a.Line)
	}
	for w := 0; w <= 16; w++ {
		if got, want := float64(MissCount(dists, w)), atd.Misses(w); got != want {
			t.Fatalf("w=%d: MissCount %v != ATD %v", w, got, want)
		}
	}
}

func TestMLPLeadingNeverExceedsTotal(t *testing.T) {
	stream := randomStream(15, 20000, 1000)
	dists := Distances(256, 16, nil, stream)
	for _, w := range []int{1, 4, 8} {
		r := AnalyzeMLP(stream, dists, w, 128, 8)
		if r.LeadingMisses > r.TotalMisses {
			t.Fatalf("w=%d: leading %d > total %d", w, r.LeadingMisses, r.TotalMisses)
		}
		if r.TotalMisses > 0 && r.LeadingMisses == 0 {
			t.Fatalf("w=%d: misses with no leading miss", w)
		}
		if got := r.MLP(); got < 1 {
			t.Fatalf("w=%d: MLP %v < 1", w, got)
		}
	}
}

func TestMLPGrowsWithCoreSize(t *testing.T) {
	// A bursty independent stream must expose more MLP on a bigger core.
	bh := trace.Behavior{
		Name: "t", IlpIPC: 3, APKI: 20,
		HotLines: 100, PHot: 0.1,
		PBurst: 0.5, BurstLen: 12, BurstGap: 5, PDep: 0.05,
	}
	s := bh.Generate(42, trace.SampleParams{Accesses: 30000})
	dists := Distances(1024, 16, nil, s.Measured)
	small := AnalyzeMLP(s.Measured, dists, 4, 48, 4)
	large := AnalyzeMLP(s.Measured, dists, 4, 256, 16)
	if large.MLP() <= small.MLP()*1.2 {
		t.Fatalf("MLP did not grow with core size: small %.2f, large %.2f",
			small.MLP(), large.MLP())
	}
}

func TestMLPDependentStreamStaysSerial(t *testing.T) {
	bh := trace.Behavior{
		Name: "chase", IlpIPC: 1.5, APKI: 25,
		HotLines: 100, PHot: 0.1,
		PBurst: 0.2, BurstLen: 3, BurstGap: 20, PDep: 0.95,
	}
	s := bh.Generate(43, trace.SampleParams{Accesses: 30000})
	dists := Distances(1024, 16, nil, s.Measured)
	small := AnalyzeMLP(s.Measured, dists, 4, 48, 4)
	large := AnalyzeMLP(s.Measured, dists, 4, 256, 16)
	if large.MLP() > small.MLP()*1.15 {
		t.Fatalf("pointer chase gained MLP from core size: %.2f -> %.2f",
			small.MLP(), large.MLP())
	}
	if large.MLP() > 1.5 {
		t.Fatalf("pointer chase MLP %.2f, want near-serial", large.MLP())
	}
}

func TestMLPProfileShape(t *testing.T) {
	stream := randomStream(16, 10000, 600)
	dists := Distances(256, 8, nil, stream)
	prof := MLPProfile(stream, dists, 8, 128, 8)
	if len(prof) != 9 {
		t.Fatalf("profile length %d", len(prof))
	}
	for w := 1; w <= 8; w++ {
		if prof[w].TotalMisses > prof[w-1].TotalMisses {
			t.Fatalf("total misses grew with ways at %d", w)
		}
	}
}

func TestUCPLookaheadPrefersSensitiveCore(t *testing.T) {
	// Core 0: steep utility; core 1: flat. UCP should give core 0 the ways.
	sensitive := []float64{1000, 700, 450, 250, 120, 60, 30, 20, 15}
	flat := []float64{500, 495, 490, 487, 485, 484, 483, 482, 481}
	alloc := UCPLookahead([][]float64{sensitive, flat}, 8, 1)
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not use all ways", alloc)
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("UCP gave sensitive core %d ways vs flat core %d", alloc[0], alloc[1])
	}
}

func TestUCPAllocationsAlwaysValid(t *testing.T) {
	// UCP lookahead is a heuristic: on non-convex profiles it can lose to
	// other allocations (this matches the published algorithm). What must
	// always hold is structural validity.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(3) // 2..4 cores
		total := n * 4
		profiles := make([][]float64, n)
		for i := range profiles {
			p := make([]float64, total+1)
			p[0] = 1000 + rng.Float64()*9000
			for w := 1; w <= total; w++ {
				p[w] = p[w-1] * (0.5 + rng.Float64()*0.5)
			}
			profiles[i] = p
		}
		alloc := UCPLookahead(profiles, total, 1)
		sum := 0
		for _, a := range alloc {
			if a < 1 {
				return false
			}
			sum += a
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUCPOptimalOnConvexProfiles(t *testing.T) {
	// With diminishing returns (convex miss curves), greedy allocation is
	// optimal; verify against exhaustive search for two cores.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const total = 8
		profiles := make([][]float64, 2)
		for i := range profiles {
			p := make([]float64, total+1)
			p[0] = 1000 + rng.Float64()*9000
			gain := p[0] * (0.1 + rng.Float64()*0.3)
			for w := 1; w <= total; w++ {
				p[w] = p[w-1] - gain
				if p[w] < 0 {
					p[w] = 0
				}
				gain *= 0.4 + rng.Float64()*0.5 // shrinking marginal gain
			}
			profiles[i] = p
		}
		alloc := UCPLookahead(profiles, total, 1)
		got := TotalMisses(profiles, alloc)
		best := got
		for w0 := 1; w0 < total; w0++ {
			m := profiles[0][w0] + profiles[1][total-w0]
			if m < best {
				best = m
			}
		}
		return got <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUCPHandsOutAllWaysWhenNoUtility(t *testing.T) {
	flat := []float64{10, 10, 10, 10, 10}
	alloc := UCPLookahead([][]float64{flat, flat}, 4, 1)
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("allocation %v wastes ways", alloc)
	}
}

func TestQuickATDMonotoneOnRandomStreams(t *testing.T) {
	f := func(seed uint64, hot16 uint16) bool {
		stream := randomStream(seed, 3000, 1+int(hot16%4000))
		atd := NewATD(64, 16, 1)
		for _, a := range stream {
			atd.Access(a.Line)
		}
		p := atd.Profile()
		for w := 1; w < len(p); w++ {
			if p[w] > p[w-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartitionedLLCNeverExceedsQuotaLongRun(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := NewLLC(8, 8, 2)
		q0 := 1 + rng.Intn(7)
		c.SetPartition([]int{q0, 8 - q0})
		// Heavy interleaved traffic.
		for i := 0; i < 8000; i++ {
			core := rng.Intn(2)
			c.Access(core, uint32(core*100000+rng.Intn(500)))
		}
		// After steady state, occupancy per set must respect quotas.
		for s := 0; s < 8; s++ {
			occ := [2]int{}
			for _, ln := range c.data[s] {
				if ln.valid {
					occ[ln.owner]++
				}
			}
			if occ[0] > q0 || occ[1] > 8-q0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func FuzzATDProfileMonotone(f *testing.F) {
	f.Add(uint64(3), uint16(800))
	f.Add(uint64(99), uint16(3000))
	f.Fuzz(func(t *testing.T, seed uint64, hot16 uint16) {
		stream := randomStream(seed, 2000, 1+int(hot16%5000))
		atd := NewATD(64, 16, 1)
		for _, a := range stream {
			atd.Access(a.Line)
		}
		p := atd.Profile()
		if p[0] != float64(len(stream)) {
			t.Fatalf("misses(0) = %v, want every access", p[0])
		}
		for w := 1; w < len(p); w++ {
			if p[w] > p[w-1] {
				t.Fatalf("misses increased with ways at w=%d", w)
			}
		}
	})
}
