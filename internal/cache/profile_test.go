package cache

import (
	"testing"
	"testing/quick"

	"qosrma/internal/trace"
)

// testCores are three core configurations spanning the MLP-relevant space,
// matching arch.DefaultCoreParams without importing arch (cycle-free).
var testCores = []CoreMLPParams{
	{ROB: 64, MSHRs: 8},
	{ROB: 128, MSHRs: 8},
	{ROB: 256, MSHRs: 16},
}

// naiveProfile recomputes everything ProfileStream produces the pre-fusion
// way: one full AnalyzeMLP pass per (core, ways) point, MissCount per w,
// and a separately driven sampled ATD — the reference the fused pass is
// pinned against.
func naiveProfile(sets, assoc, sampleIn int, warmup, measured []trace.Access, cores []CoreMLPParams) *StreamProfile {
	dists := Distances(sets, assoc, warmup, measured)

	sampled := NewATD(sets, assoc, sampleIn)
	for _, a := range warmup {
		sampled.Access(a.Line)
	}
	sampled.ResetCounters()
	for _, a := range measured {
		sampled.Access(a.Line)
	}

	p := &StreamProfile{
		Assoc:            assoc,
		SampleIn:         sampleIn,
		Cores:            cores,
		Dists:            dists,
		MissCount:        make([]int, assoc+1),
		SampledMissCount: make([]int, assoc+1),
		Leading:          make([][]int, len(cores)),
	}
	for w := 0; w <= assoc; w++ {
		p.MissCount[w] = MissCount(dists, w)
		p.SampledMissCount[w] = int(sampled.Misses(w)) / sampleIn
	}
	for c, cp := range cores {
		p.Leading[c] = make([]int, assoc+1)
		for w := 0; w <= assoc; w++ {
			p.Leading[c][w] = AnalyzeMLP(measured, dists, w, cp.ROB, cp.MSHRs).LeadingMisses
		}
	}
	return p
}

func profilesEqual(t *testing.T, label string, fused, naive *StreamProfile) {
	t.Helper()
	for i := range naive.Dists {
		if fused.Dists[i] != naive.Dists[i] {
			t.Fatalf("%s: distance %d differs: %d vs %d", label, i, fused.Dists[i], naive.Dists[i])
		}
	}
	for w := range naive.MissCount {
		if fused.MissCount[w] != naive.MissCount[w] {
			t.Fatalf("%s: miss count at w=%d: fused %d, naive %d",
				label, w, fused.MissCount[w], naive.MissCount[w])
		}
		if fused.SampledMissCount[w] != naive.SampledMissCount[w] {
			t.Fatalf("%s: sampled miss count at w=%d: fused %d, naive %d",
				label, w, fused.SampledMissCount[w], naive.SampledMissCount[w])
		}
	}
	for c := range naive.Leading {
		for w := range naive.Leading[c] {
			if fused.Leading[c][w] != naive.Leading[c][w] {
				t.Fatalf("%s: leading at c=%d w=%d: fused %d, naive %d",
					label, c, w, fused.Leading[c][w], naive.Leading[c][w])
			}
		}
	}
}

// TestProfileStreamMatchesNaive pins the fused one-pass profiler
// bit-identical to the per-(core, ways) AnalyzeMLP loop and the two-ATD
// miss profiling it replaces, over generated behaviours.
func TestProfileStreamMatchesNaive(t *testing.T) {
	behaviors := []trace.Behavior{
		{Name: "hotset", IlpIPC: 2.5, APKI: 15,
			HotLines: 2000, WarmLines: 5000, PHot: 0.45, PWarm: 0.35,
			PBurst: 0.3, BurstLen: 6, BurstGap: 10, PDep: 0.2},
		{Name: "streamer", IlpIPC: 3.2, APKI: 22,
			HotLines: 150, PHot: 0.15,
			PBurst: 0.5, BurstLen: 12, BurstGap: 5, PDep: 0.03},
		{Name: "chaser", IlpIPC: 1.5, APKI: 25,
			HotLines: 1800, WarmLines: 4200, PHot: 0.44, PWarm: 0.44,
			PBurst: 0.15, BurstLen: 3, BurstGap: 30, PDep: 0.80},
	}
	for _, bh := range behaviors {
		s := bh.Generate(17, trace.SampleParams{Accesses: 12000, WarmupAccesses: 4000})
		for _, geo := range []struct{ sets, assoc, sampleIn int }{
			{1024, 16, 32}, {1024, 32, 32}, {256, 8, 4}, {64, 16, 1},
		} {
			fused := ProfileStream(geo.sets, geo.assoc, geo.sampleIn, s.Warmup, s.Measured, testCores)
			naive := naiveProfile(geo.sets, geo.assoc, geo.sampleIn, s.Warmup, s.Measured, testCores)
			profilesEqual(t, bh.Name, fused, naive)
		}
	}
}

// TestProfileStreamMatchesNaiveQuick fuzzes the equivalence over random
// synthetic streams (the same generator the cache tests use).
func TestProfileStreamMatchesNaiveQuick(t *testing.T) {
	f := func(seed uint64, hot16 uint16) bool {
		stream := randomStream(seed, 3000, 1+int(hot16%4000))
		warm, meas := stream[:500], stream[500:]
		fused := ProfileStream(64, 16, 4, warm, meas, testCores)
		naive := naiveProfile(64, 16, 4, warm, meas, testCores)
		for w := range naive.MissCount {
			if fused.MissCount[w] != naive.MissCount[w] ||
				fused.SampledMissCount[w] != naive.SampledMissCount[w] {
				return false
			}
		}
		for c := range naive.Leading {
			for w := range naive.Leading[c] {
				if fused.Leading[c][w] != naive.Leading[c][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileStreamPrefixConsistent pins the truncation property the
// cross-database profile cache relies on: a profile taken with a deeper
// directory (larger assoc) restricted to w <= A equals the profile taken
// at assoc A directly. LRU stack order is capacity-independent, so the
// shallow directory's stacks are prefixes of the deep directory's.
func TestProfileStreamPrefixConsistent(t *testing.T) {
	bh := trace.Behavior{
		Name: "mix", IlpIPC: 2.2, APKI: 18,
		HotLines: 1200, WarmLines: 3000, PHot: 0.4, PWarm: 0.4,
		PBurst: 0.3, BurstLen: 7, BurstGap: 9, PDep: 0.25,
	}
	s := bh.Generate(23, trace.SampleParams{Accesses: 15000, WarmupAccesses: 5000})
	deep := ProfileStream(1024, 32, 32, s.Warmup, s.Measured, testCores)
	shallow := ProfileStream(1024, 16, 32, s.Warmup, s.Measured, testCores)
	for w := 0; w <= 16; w++ {
		if deep.MissCount[w] != shallow.MissCount[w] {
			t.Fatalf("miss count at w=%d: deep %d, shallow %d", w, deep.MissCount[w], shallow.MissCount[w])
		}
		if deep.SampledMissCount[w] != shallow.SampledMissCount[w] {
			t.Fatalf("sampled miss count at w=%d: deep %d, shallow %d",
				w, deep.SampledMissCount[w], shallow.SampledMissCount[w])
		}
		for c := range testCores {
			if deep.Leading[c][w] != shallow.Leading[c][w] {
				t.Fatalf("leading at c=%d w=%d: deep %d, shallow %d",
					c, w, deep.Leading[c][w], shallow.Leading[c][w])
			}
		}
	}
	// Distances agree wherever the shallow directory can express them.
	for i := range shallow.Dists {
		ds, dd := shallow.Dists[i], deep.Dists[i]
		if ds >= 0 && ds != dd {
			t.Fatalf("distance %d: shallow %d, deep %d", i, ds, dd)
		}
		if ds < 0 && dd >= 0 && dd < 16 {
			t.Fatalf("distance %d: shallow miss but deep says %d", i, dd)
		}
	}
}
