// Package route is qosrmad's consistent-hash routing tier: it partitions
// the decide key space across replicated backend groups so a fleet of
// decision servers behaves like one big one. Every query's canonical
// co-phase key hashes onto a ring of virtual nodes; the owning group is
// stable under group addition/removal (only ~1/N of keys move when a
// group joins — the property that keeps backend decision LRUs warm
// through fleet resizes), and each group may list several replica
// addresses that serve the same key range interchangeably.
//
// The package has two layers: Ring (pure placement — bytes in, group
// out) and Proxy (an http.Handler speaking the service's own JSON API
// that splits decide batches by owning group, forwards the sub-batches
// concurrently with per-group replica rotation and failover, and merges
// the answers back into request order). cmd/qosrmad -route wraps Proxy;
// cmd/loadgen's -addrs flag drives the backends directly with the same
// placement assumption.
package route

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Backend is one replicated group of decision servers: every address
// serves the same slice of the key space (same database, same
// configuration), so the proxy may use any replica and fail over to the
// others.
type Backend struct {
	// Name identifies the group on the ring; the virtual-node positions
	// are derived from it, so renaming a group moves its keys while
	// adding/removing replicas does not.
	Name string
	// Addrs are the replica HTTP addresses (host:port).
	Addrs []string
	// WireAddrs, when non-empty, is parallel to Addrs and holds each
	// replica's binary wire-protocol address ("" = replica exposes no
	// wire listener). Only consulted by the wire proxy.
	WireAddrs []string
}

// point is one virtual node: a position on the ring owned by a group.
type point struct {
	h   uint64
	idx int // index into Ring.backends
}

// Ring places keys onto backend groups by consistent hashing with
// virtual nodes. Immutable after New; safe for concurrent use.
type Ring struct {
	backends []Backend
	points   []point
}

// DefaultVnodes is the per-group virtual-node count used when the caller
// passes 0: enough that group loads balance within a few percent, small
// enough that ring construction and lookup stay trivial.
const DefaultVnodes = 128

// New builds a ring over the groups. vnodes ≤ 0 selects DefaultVnodes.
func New(backends []Backend, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("route: no backend groups")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		backends: append([]Backend(nil), backends...),
		points:   make([]point, 0, vnodes*len(backends)),
	}
	for i, b := range backends {
		if b.Name == "" {
			return nil, fmt.Errorf("route: group %d has no name", i)
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("route: duplicate group name %q", b.Name)
		}
		seen[b.Name] = true
		if len(b.Addrs) == 0 {
			return nil, fmt.Errorf("route: group %q has no replica addresses", b.Name)
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: Hash([]byte(b.Name + "#" + strconv.Itoa(v))), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].h < r.points[b].h })
	return r, nil
}

// Backends returns the groups in construction order.
func (r *Ring) Backends() []Backend { return r.backends }

// Pick returns the index of the group owning key (the first virtual node
// clockwise of the key's hash).
func (r *Ring) Pick(key []byte) int { return r.PickHash(Hash(key)) }

// PickHash is Pick for a pre-computed key hash.
func (r *Ring) PickHash(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].idx
}

// PickAvailableHash walks clockwise from the key's owning virtual node to
// the first group avail reports true for. With every group available it
// equals PickHash, so placement is unchanged in the healthy fleet; when a
// group's replicas are all down its keys spill to the next group on the
// ring (every backend serves the same database — a spill answers
// correctly, just from a colder cache) and return the moment the owner
// heals. If no group is available the true owner is returned and the
// forward fails there.
func (r *Ring) PickAvailableHash(h uint64, avail func(group int) bool) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	for k := 0; k < len(r.points); k++ {
		idx := r.points[(i+k)%len(r.points)].idx
		if avail(idx) {
			return idx
		}
	}
	return r.points[i].idx
}

// Hash is the routing hash: 64-bit FNV-1a, the same function the service
// uses to spread canonical keys over its internal shards.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ParseGroups parses the -route flag syntax: groups separated by ';',
// replica addresses within a group by ','. Each replica is either an
// HTTP address or "httpaddr|wireaddr" when the backend also exposes the
// binary wire listener (the wire proxy only uses replicas that declare
// one). Groups are named g0, g1, ... in order (names derive ring
// positions, so the flag order is part of the fleet's placement
// contract).
//
//	"10.0.0.1:7743,10.0.0.2:7743;10.0.1.1:7743|10.0.1.1:7744"
//	→ g0{10.0.0.1:7743 10.0.0.2:7743}, g1{10.0.1.1:7743 wire 10.0.1.1:7744}
func ParseGroups(spec string) ([]Backend, error) {
	var groups []Backend
	for _, g := range strings.Split(spec, ";") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		var addrs, wireAddrs []string
		anyWire := false
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a == "" {
				continue
			}
			http, wire, found := strings.Cut(a, "|")
			http, wire = strings.TrimSpace(http), strings.TrimSpace(wire)
			if http == "" {
				return nil, fmt.Errorf("route: replica %q has no HTTP address", a)
			}
			if found && wire == "" {
				return nil, fmt.Errorf("route: replica %q declares an empty wire address", a)
			}
			addrs = append(addrs, http)
			wireAddrs = append(wireAddrs, wire)
			anyWire = anyWire || wire != ""
		}
		if len(addrs) == 0 {
			continue
		}
		b := Backend{Name: "g" + strconv.Itoa(len(groups)), Addrs: addrs}
		if anyWire {
			b.WireAddrs = wireAddrs
		}
		groups = append(groups, b)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("route: %q names no backend groups", spec)
	}
	return groups, nil
}
