package route

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/ops"
	"qosrma/internal/resilience"
	"qosrma/internal/wire"
)

// WireProxy extends the routing tier to the binary wire protocol: it
// accepts wire connections, splits each DecideRequest micro-batch by the
// same consistent-hash placement the JSON proxy uses (the canonical
// routing key is rendered from the Meta frame's interned benchmark
// table, so both codecs agree on ownership), forwards the sub-batches
// over pooled backend wire connections, and merges the answers into one
// response echoing the client's sequence number.
//
// Failover semantics match the JSON path: per-replica circuit breakers
// (separate from the HTTP breakers — the wire listener can die alone),
// the shared health prober, bounded retries with backoff, and ring
// spill when a whole group is out. A backend's drain goaway (Error
// frame, code Unavailable) is a retryable replica failure, so draining
// backends hand their in-flight keys to siblings without client-visible
// errors. Pooled connections that died while idle are rebuilt on demand
// (dial-with-backoff happens inside the same retry loop).
type WireProxy struct {
	p  *Proxy
	ln net.Listener

	// Wire-capable replicas (indices into p.replicas with a wire addr).
	pools   []*wirePool // parallel to p.replicas; nil = no wire listener
	byGroup [][]int
	all     []int
	rr      []atomic.Uint32
	ar      atomic.Uint32

	metaMu  sync.Mutex
	metaRaw []byte            // cached complete Meta frame (header+payload)
	benches map[uint16]string // interned bench ID → name, from Meta

	requests atomic.Uint64
	splits   atomic.Uint64
	failures atomic.Uint64
	retried  *ops.Counter
	attempts *ops.Counter
	dials    *ops.Counter

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// wirePool is one replica's wire-connection pool: idle connections are
// reused, dead ones dropped, and a breaker isolates the replica.
type wirePool struct {
	addr    string
	breaker *resilience.Breaker

	mu   sync.Mutex
	idle []*wireConn
}

// defaultWireTimeout floors every wire-connection deadline when the
// operator disabled the per-attempt timeout: raw conn I/O has no
// context to fall back on and must never be unbounded.
const defaultWireTimeout = 2 * time.Second

// wireConn is one pooled backend connection with its framing reader and
// write scratch.
type wireConn struct {
	c   net.Conn
	r   *wire.Reader
	buf []byte
}

// ServeWire starts proxying the binary wire protocol on ln. Call once;
// the returned WireProxy is also closed by Proxy.Close.
func (p *Proxy) ServeWire(ln net.Listener) *WireProxy {
	wp := &WireProxy{
		p:       p,
		ln:      ln,
		pools:   make([]*wirePool, len(p.replicas)),
		byGroup: make([][]int, len(p.groups)),
		rr:      make([]atomic.Uint32, len(p.groups)),
		benches: make(map[uint16]string),
		conns:   make(map[net.Conn]struct{}),
	}
	for ri := range p.replicas {
		rep := &p.replicas[ri]
		if rep.wireAddr == "" {
			continue
		}
		bopt := p.opt.Breaker
		prev := bopt.OnStateChange
		bopt.OnStateChange = func(from, to resilience.BreakerState) {
			p.breakTo[to].Inc()
			if prev != nil {
				prev(from, to)
			}
		}
		wp.pools[ri] = &wirePool{addr: rep.wireAddr, breaker: resilience.NewBreaker(bopt)}
		wp.byGroup[rep.group] = append(wp.byGroup[rep.group], ri)
		wp.all = append(wp.all, ri)
	}
	wp.retried = p.reg.Counter("qosrmad_route_wire_retries_total",
		"Wire forward attempts retried after a failure.", "")
	wp.attempts = p.reg.Counter("qosrmad_route_wire_attempt_failures_total",
		"Individual wire forward attempts that failed.", "")
	wp.dials = p.reg.Counter("qosrmad_route_wire_dials_total",
		"Backend wire connections dialed (reconnects included).", "")
	p.reg.CounterFunc("qosrmad_route_wire_requests_total",
		"Wire decide requests handled by the routing tier.", "",
		func() float64 { return float64(wp.requests.Load()) })
	p.reg.CounterFunc("qosrmad_route_wire_splits_total",
		"Wire decide requests that spanned more than one backend group.", "",
		func() float64 { return float64(wp.splits.Load()) })
	p.reg.CounterFunc("qosrmad_route_wire_exhausted_total",
		"Wire forwards that exhausted every attempt.", "",
		func() float64 { return float64(wp.failures.Load()) })
	p.wire = wp
	wp.wg.Add(1)
	go wp.serve()
	return wp
}

// Addr is the wire listener's address.
func (wp *WireProxy) Addr() string { return wp.ln.Addr().String() }

// Stats reports wire decide requests handled, splits and exhausted
// forwards.
func (wp *WireProxy) Stats() (requests, splits, failures uint64) {
	return wp.requests.Load(), wp.splits.Load(), wp.failures.Load()
}

// Close stops accepting, closes client connections and the pools.
func (wp *WireProxy) Close() {
	wp.closeOnce.Do(func() { wp.ln.Close() })
	wp.mu.Lock()
	for c := range wp.conns {
		c.Close()
	}
	wp.mu.Unlock()
	wp.wg.Wait()
	for _, pool := range wp.pools {
		if pool != nil {
			pool.drop()
		}
	}
}

func (wp *WireProxy) track(c net.Conn) bool {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.conns == nil {
		return false
	}
	wp.conns[c] = struct{}{}
	return true
}

func (wp *WireProxy) untrack(c net.Conn) {
	wp.mu.Lock()
	delete(wp.conns, c)
	wp.mu.Unlock()
}

func (wp *WireProxy) serve() {
	defer wp.wg.Done()
	for {
		c, err := wp.ln.Accept()
		if err != nil {
			return
		}
		if !wp.track(c) {
			c.Close()
			continue
		}
		wp.wg.Add(1)
		go wp.serveConn(c)
	}
}

// serveConn is one client connection's frame loop.
func (wp *WireProxy) serveConn(c net.Conn) {
	defer wp.wg.Done()
	defer wp.untrack(c)
	defer c.Close()
	r := wire.NewReader(c)
	var (
		req   wire.DecideRequest
		out   []byte
		errB  []byte
		merge mergeState
	)
	for {
		typ, payload, err := r.Next()
		// Bound every write this iteration makes: a client that stops
		// reading its responses must not wedge the proxy goroutine.
		// (Reads stay unbounded — an idle connection is legal, a
		// stalled write is not.)
		wd := wp.p.opt.attemptTimeout()
		if wd <= 0 {
			wd = defaultWireTimeout
		}
		c.SetWriteDeadline(time.Now().Add(wd)) //nolint:errcheck // net.TCPConn deadlines cannot fail
		if err != nil {
			if errors.Is(err, wire.ErrVersion) || errors.Is(err, wire.ErrTooLarge) {
				code := wire.ErrCodeUnsupported
				if errors.Is(err, wire.ErrTooLarge) {
					code = wire.ErrCodeTooLarge
				}
				errB = wire.AppendError(errB[:0], 0, code, err.Error())
				c.Write(errB) //nolint:errcheck // closing anyway
			}
			return
		}
		switch typ {
		case wire.TypeHello:
			meta, err := wp.ensureMeta()
			if err != nil {
				errB = wire.AppendError(errB[:0], 0, wire.ErrCodeUnavailable,
					"no backend answered Hello: "+err.Error())
				if _, werr := c.Write(errB); werr != nil {
					return
				}
				continue
			}
			if _, err := c.Write(meta); err != nil {
				return
			}
		case wire.TypeDecideRequest:
			wp.requests.Add(1)
			if err := wire.ParseDecideRequest(payload, &req); err != nil {
				errB = wire.AppendError(errB[:0], req.Seq, wire.ErrCodeMalformed, err.Error())
				if _, werr := c.Write(errB); werr != nil {
					return
				}
				continue
			}
			out = wp.handleDecide(out[:0], payload, &req, &merge)
			if _, err := c.Write(out); err != nil {
				return
			}
		default:
			errB = wire.AppendError(errB[:0], 0, wire.ErrCodeUnsupported,
				fmt.Sprintf("unexpected frame type %#x", typ))
			if _, err := c.Write(errB); err != nil {
				return
			}
		}
	}
}

// mergeState is per-connection scratch for split decide merging.
type mergeState struct {
	key      []byte
	groups   [][]int
	sub      wire.DecideRequest
	subFrame []byte
	respBuf  []byte
	resp     wire.DecideResponse
	decided  []bool
	settings []wire.Setting
}

// handleDecide routes one parsed decide request and appends the complete
// response frame (DecideResponse or Error) to dst. payload is the raw
// request payload, reused verbatim for the single-group fast path.
func (wp *WireProxy) handleDecide(dst []byte, payload []byte, req *wire.DecideRequest, m *mergeState) []byte {
	count := req.Count()
	n := int(req.NCores)

	// Benchmark names for the canonical routing key come from Meta; if no
	// backend has answered one yet the interned IDs stand in (placement
	// is still deterministic, just not aligned with the JSON path's).
	wp.ensureMeta() //nolint:errcheck // fallback rendering below

	if m.groups == nil || len(m.groups) != len(wp.p.groups) {
		m.groups = make([][]int, len(wp.p.groups))
	}
	for g := range m.groups {
		m.groups[g] = m.groups[g][:0]
	}
	pick := wp.p.groupPicker()
	distinct, split := -1, false
	for qi := 0; qi < count; qi++ {
		m.key = wp.routingKey(m.key[:0], req, qi)
		g := pick(m.key)
		m.groups[g] = append(m.groups[g], qi)
		if distinct == -1 {
			distinct = g
		} else if g != distinct {
			split = true
		}
	}

	if !split {
		// One owning group: forward the original frame bytes untouched.
		m.subFrame = wire.AppendHeader(m.subFrame[:0], wire.TypeDecideRequest, len(payload))
		m.subFrame = append(m.subFrame, payload...)
		typ, resp, err := wp.forward(distinct, m.subFrame, m.respBuf[:0])
		m.respBuf = resp[:0]
		if err != nil {
			return wire.AppendError(dst, req.Seq, wire.ErrCodeUnavailable, err.Error())
		}
		return wp.relay(dst, req.Seq, typ, resp)
	}
	wp.splits.Add(1)

	if cap(m.decided) < count {
		m.decided = make([]bool, count)
	}
	m.decided = m.decided[:count]
	if cap(m.settings) < count*n {
		m.settings = make([]wire.Setting, count*n)
	}
	m.settings = m.settings[:count*n]

	for g, idx := range m.groups {
		if len(idx) == 0 {
			continue
		}
		m.sub = wire.DecideRequest{
			Seq:    req.Seq,
			DBHash: req.DBHash,
			Scheme: req.Scheme,
			Model:  req.Model,
			Flags:  req.Flags,
			NCores: req.NCores,
			Slack:  req.Slack,
			Slacks: append(m.sub.Slacks[:0], req.Slacks...),
			Apps:   m.sub.Apps[:0],
		}
		for _, qi := range idx {
			m.sub.Apps = append(m.sub.Apps, req.Apps[qi*n:(qi+1)*n]...)
		}
		m.subFrame = wire.AppendDecideRequest(m.subFrame[:0], &m.sub)
		typ, resp, err := wp.forward(g, m.subFrame, m.respBuf[:0])
		m.respBuf = resp[:0]
		if err != nil {
			return wire.AppendError(dst, req.Seq, wire.ErrCodeUnavailable,
				fmt.Sprintf("backend group %s: %v", wp.p.ring.Backends()[g].Name, err))
		}
		if typ != wire.TypeDecideResponse {
			// Propagate the backend's own error (stale DB, malformed)
			// verbatim — it already echoes the client's sequence number.
			return wp.relay(dst, req.Seq, typ, resp)
		}
		if err := wire.ParseDecideResponse(resp, &m.resp); err != nil {
			return wire.AppendError(dst, req.Seq, wire.ErrCodeMalformed,
				"backend response: "+err.Error())
		}
		if len(m.resp.Decided) != len(idx) || int(m.resp.NCores) != n {
			return wire.AppendError(dst, req.Seq, wire.ErrCodeMalformed,
				fmt.Sprintf("backend group %s answered %d results for %d queries",
					wp.p.ring.Backends()[g].Name, len(m.resp.Decided), len(idx)))
		}
		for j, qi := range idx {
			m.decided[qi] = m.resp.Decided[j]
			copy(m.settings[qi*n:(qi+1)*n], m.resp.Settings[j*n:(j+1)*n])
		}
	}
	return wire.AppendDecideResponse(dst, &wire.DecideResponse{
		Seq:      req.Seq,
		NCores:   req.NCores,
		Decided:  m.decided,
		Settings: m.settings,
	})
}

// relay appends a backend frame (response or error) for the client,
// rebuilding the header around the payload bytes.
func (wp *WireProxy) relay(dst []byte, seq uint32, typ byte, payload []byte) []byte {
	if typ != wire.TypeDecideResponse && typ != wire.TypeError {
		return wire.AppendError(dst, seq, wire.ErrCodeMalformed,
			fmt.Sprintf("backend answered unexpected frame type %#x", typ))
	}
	dst = wire.AppendHeader(dst, typ, len(payload))
	return append(dst, payload...)
}

// errFrame reports a backend Error frame treated as an attempt failure
// (code Unavailable: the replica is draining or closed).
type errFrame struct {
	code wire.ErrCode
	msg  string
}

func (e *errFrame) Error() string {
	return fmt.Sprintf("backend error frame code %d: %s", e.code, e.msg)
}

// forward runs the retry loop for one request frame against group g,
// mirroring the JSON proxy: bounded retries with backoff, per-replica
// breakers, prober health, ring spill when the group has no wire-capable
// replica left. The response payload is appended to respBuf (a copy —
// it must outlive the pooled connection's read buffer).
func (wp *WireProxy) forward(g int, frame []byte, respBuf []byte) (byte, []byte, error) {
	attempts := 1 + wp.p.opt.retries() // decide frames are idempotent
	var lastErr error
	tried := -1
	for a := 0; a < attempts; a++ {
		if a > 0 {
			wp.retried.Inc()
			time.Sleep(wp.p.opt.Backoff.Delay(a-1, wp.p.rnd))
		}
		ri := wp.pick(g, tried)
		if ri < 0 {
			ri = wp.pick(-1, tried)
		}
		if ri < 0 {
			lastErr = errNoReplica
			continue
		}
		tried = ri
		pool := wp.pools[ri]
		typ, resp, err := pool.roundTrip(wp.dials, wp.p.opt.attemptTimeout(), frame, respBuf)
		if err == nil && typ == wire.TypeError {
			if _, code, msg, perr := wire.ParseError(resp); perr == nil && code == wire.ErrCodeUnavailable {
				err = &errFrame{code: code, msg: msg}
			}
		}
		if err != nil {
			pool.breaker.Failure()
			wp.attempts.Inc()
			lastErr = err
			continue
		}
		pool.breaker.Success()
		return typ, resp, nil
	}
	wp.failures.Add(1)
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return 0, respBuf, lastErr
}

// pick selects the next admitted wire-capable replica of group g
// (rotating), skipping skip; g < 0 means any group.
func (wp *WireProxy) pick(g, skip int) int {
	idxs := wp.all
	var ctr *atomic.Uint32
	if g >= 0 {
		idxs = wp.byGroup[g]
		ctr = &wp.rr[g]
	} else {
		ctr = &wp.ar
	}
	if len(idxs) == 0 {
		return -1
	}
	start := int(ctr.Add(1))
	for k := 0; k < len(idxs); k++ {
		ri := idxs[(start+k)%len(idxs)]
		if ri == skip || !wp.p.replicaHealthy(ri) {
			continue
		}
		if !wp.pools[ri].breaker.Allow() {
			continue
		}
		return ri
	}
	return -1
}

// ensureMeta returns the cached complete Meta frame, fetching it from
// the first wire replica that answers a Hello when not yet cached. The
// benchmark table it carries also feeds the canonical routing key.
func (wp *WireProxy) ensureMeta() ([]byte, error) {
	wp.metaMu.Lock()
	defer wp.metaMu.Unlock()
	if wp.metaRaw != nil {
		return wp.metaRaw, nil
	}
	hello := wire.AppendHello(nil)
	var lastErr error
	for _, ri := range wp.all {
		pool := wp.pools[ri]
		if !pool.breaker.Allow() {
			continue
		}
		typ, resp, err := pool.roundTrip(wp.dials, wp.p.opt.attemptTimeout(), hello, nil)
		if err != nil || typ != wire.TypeMeta {
			pool.breaker.Failure()
			if err == nil {
				err = fmt.Errorf("replica %s answered frame type %#x to Hello", pool.addr, typ)
			}
			lastErr = err
			continue
		}
		pool.breaker.Success()
		var meta wire.Meta
		if err := wire.ParseMeta(resp, &meta); err != nil {
			lastErr = err
			continue
		}
		for _, b := range meta.Benches {
			wp.benches[b.ID] = b.Name
		}
		wp.metaRaw = wire.AppendHeader(nil, wire.TypeMeta, len(resp))
		wp.metaRaw = append(wp.metaRaw, resp...)
		return wp.metaRaw, nil
	}
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return nil, lastErr
}

// wireSchemeNames maps interned scheme IDs to the canonical lowercased
// names the JSON path routes by, keeping both codecs' placement aligned.
var wireSchemeNames = [...]string{"static", "dvfs", "rm1", "rm2", "rm3", "ucp"}

// routingKey renders query qi of req in the same canonical form as
// RoutingKey renders a JSON query, so a key decided over HTTP and the
// same key decided over the wire land on the same backend LRU.
func (wp *WireProxy) routingKey(dst []byte, req *wire.DecideRequest, qi int) []byte {
	if int(req.Scheme) < len(wireSchemeNames) {
		dst = append(dst, wireSchemeNames[req.Scheme]...)
	} else {
		dst = strconv.AppendInt(dst, int64(req.Scheme), 10)
	}
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(req.Model), 10)
	dst = append(dst, '/')
	switch {
	case req.Flags&wire.FlagSlackPerCore != 0:
		for i, v := range req.Slacks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		}
	case req.Flags&wire.FlagSlackUniform != 0 && req.Slack != 0:
		dst = strconv.AppendFloat(dst, req.Slack, 'g', -1, 64)
	}
	n := int(req.NCores)
	wp.metaMu.Lock()
	for _, a := range req.Apps[qi*n : (qi+1)*n] {
		dst = append(dst, '|')
		if name, ok := wp.benches[a.Bench]; ok {
			dst = append(dst, name...)
		} else {
			dst = append(dst, '#')
			dst = strconv.AppendInt(dst, int64(a.Bench), 10)
		}
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(a.Phase), 10)
	}
	wp.metaMu.Unlock()
	return dst
}

// get pops an idle connection or dials a fresh one.
func (pool *wirePool) get(dials *ops.Counter, timeout time.Duration) (*wireConn, error) {
	pool.mu.Lock()
	if n := len(pool.idle); n > 0 {
		wc := pool.idle[n-1]
		pool.idle = pool.idle[:n-1]
		pool.mu.Unlock()
		return wc, nil
	}
	pool.mu.Unlock()
	if timeout <= 0 {
		timeout = defaultWireTimeout
	}
	c, err := net.DialTimeout("tcp", pool.addr, timeout)
	if err != nil {
		return nil, err
	}
	dials.Inc()
	return &wireConn{c: c, r: wire.NewReader(c)}, nil
}

// put returns a healthy connection to the pool.
func (pool *wirePool) put(wc *wireConn) {
	pool.mu.Lock()
	pool.idle = append(pool.idle, wc)
	pool.mu.Unlock()
}

// drop closes every idle connection.
func (pool *wirePool) drop() {
	pool.mu.Lock()
	idle := pool.idle
	pool.idle = nil
	pool.mu.Unlock()
	for _, wc := range idle {
		wc.c.Close()
	}
}

// roundTrip writes one request frame and reads one response frame,
// appending the payload to respBuf (copied out of the connection's read
// buffer). Any error closes the connection instead of pooling it — the
// next attempt reconnects.
func (pool *wirePool) roundTrip(dials *ops.Counter, timeout time.Duration, frame []byte, respBuf []byte) (byte, []byte, error) {
	wc, err := pool.get(dials, timeout)
	if err != nil {
		return 0, respBuf, err
	}
	// A forward attempt must always be bounded. Unlike the HTTP path
	// there is no caller context to fall back on, so a disabled
	// per-attempt timeout (AttemptTimeout < 0) is floored rather than
	// skipped — a backend that accepts the connection and then goes
	// silent would otherwise wedge this goroutine forever.
	if timeout <= 0 {
		timeout = defaultWireTimeout
	}
	wc.c.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck // net.TCPConn deadlines cannot fail
	if _, err := wc.c.Write(frame); err != nil {
		wc.c.Close()
		return 0, respBuf, fmt.Errorf("replica %s: %w", pool.addr, err)
	}
	typ, payload, err := wc.r.Next()
	if err != nil {
		wc.c.Close()
		return 0, respBuf, fmt.Errorf("replica %s: %w", pool.addr, err)
	}
	respBuf = append(respBuf, payload...)
	wc.c.SetDeadline(time.Time{}) //nolint:errcheck // net.TCPConn deadlines cannot fail
	pool.put(wc)
	return typ, respBuf, nil
}
