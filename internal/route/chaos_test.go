// The chaos wall: real service.Servers behind seeded fault-injecting
// chaos proxies, fronted by the resilient routing tier, on both codecs.
// The invariants (the acceptance criteria of the fault-injection issue):
//
//  1. Correctness under faults — every *successful* decide answer through
//     the routed path is bit-identical to an unfaulted control server
//     over the same database (retries and spills may change which
//     replica answers, never what it answers).
//  2. Bounded errors — with retries, breakers and ring spill, the error
//     rate under injected latency/resets/partial writes stays a small
//     fraction of the offered load.
//  3. Heal convergence — a killed backend group is ejected by the health
//     prober (deep healthz goes degraded, traffic spills and still
//     succeeds), and after the backends heal the ring readmits them and
//     placement affinity returns (no further spills).
package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/chaos"
	"qosrma/internal/resilience"
	"qosrma/internal/service"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
	"qosrma/internal/wire"
)

var (
	chaosDBOnce sync.Once
	chaosDB     *simdb.DB
	chaosDBErr  error
)

// chaosTestDB builds the small shared 4-core database once per process.
func chaosTestDB(t testing.TB) *simdb.DB {
	t.Helper()
	chaosDBOnce.Do(func() {
		sys := arch.DefaultSystemConfig(4)
		chaosDB, chaosDBErr = simdb.Build(sys, trace.Suite()[:8], simdb.DefaultBuildOptions())
	})
	if chaosDBErr != nil {
		t.Fatal(chaosDBErr)
	}
	return chaosDB
}

// chaosBackend is one real replica: a service.Server with an HTTP and a
// wire listener, each reachable only through its own chaos proxy.
type chaosBackend struct {
	srv      *service.Server
	httpCP   *chaos.Proxy // fronts the HTTP listener
	wireCP   *chaos.Proxy // fronts the wire listener
	httpAddr string       // direct (unfaulted) HTTP address
}

func startChaosBackend(t *testing.T, db *simdb.DB, faults chaos.Faults) *chaosBackend {
	t.Helper()
	srv := service.New(db, nil, service.Options{Shards: 2})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(wln) //nolint:errcheck // exits nil on Close
	httpAddr := strings.TrimPrefix(hs.URL, "http://")
	hcp, err := chaos.NewProxy(httpAddr, faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hcp.Close)
	wf := faults
	wf.Seed = faults.Seed + 1
	wcp, err := chaos.NewProxy(wln.Addr().String(), wf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wcp.Close)
	return &chaosBackend{srv: srv, httpCP: hcp, wireCP: wcp, httpAddr: httpAddr}
}

// chaosQueries draws the deterministic workload: reqs[i] is a JSON batch
// and wireFrames[i] the same batch in the binary codec (same seq, same
// co-phase vectors), against the database's bench/phase tables.
func chaosQueries(t *testing.T, db *simdb.DB, seed uint64, count, batch int) ([][]byte, [][]byte) {
	t.Helper()
	n := db.Sys.NumCores
	names := db.BenchNames()
	rng := stats.NewRNG(stats.SeedFrom(seed, "chaos/queries"))
	jsonBodies := make([][]byte, count)
	wireFrames := make([][]byte, count)
	for i := 0; i < count; i++ {
		var jq []service.DecideQuery
		wr := wire.DecideRequest{Seq: uint32(i), Scheme: 3 /* rm2 */, NCores: uint8(n),
			Flags: wire.FlagSlackUniform, Slack: 0.2}
		for b := 0; b < batch; b++ {
			apps := make([]service.AppQuery, n)
			for c := 0; c < n; c++ {
				name := names[rng.Intn(len(names))]
				phase := rng.Intn(db.NumPhases(name))
				apps[c] = service.AppQuery{Bench: name, Phase: phase}
				id, ok := db.BenchIDOf(name)
				if !ok {
					t.Fatalf("unknown bench %q", name)
				}
				wr.Apps = append(wr.Apps, wire.App{Bench: uint16(id), Phase: uint16(phase)})
			}
			jq = append(jq, service.DecideQuery{Scheme: "rm2", Slack: 0.2, Apps: apps})
		}
		body, err := json.Marshal(service.DecideRequest{Queries: jq})
		if err != nil {
			t.Fatal(err)
		}
		jsonBodies[i] = body
		wireFrames[i] = wire.AppendDecideRequest(nil, &wr)
	}
	return jsonBodies, wireFrames
}

// canonicalDecide re-marshals a decide response body so split-and-merged
// answers compare bit-for-bit against single-server ones.
func canonicalDecide(t *testing.T, body []byte) []byte {
	t.Helper()
	var resp service.DecideResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode decide response: %v (%s)", err, body)
	}
	out, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func postDecide(t *testing.T, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil
	}
	return resp.StatusCode, buf.Bytes()
}

// routeHealth fetches the routing tier's deep healthz.
func routeHealth(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return resp.StatusCode, h.Status
}

// scrapeCounter reads one un-labelled counter from the tier's /metrics.
func scrapeCounter(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %f", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestChaosWall is the end-to-end fault-injection suite. Two replicated
// groups (2×2 real servers) serve through seeded chaos proxies; the
// routed answers are checked bit-for-bit against an unfaulted control
// server, then one whole group is killed and healed.
func TestChaosWall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos wall needs a real database build")
	}
	db := chaosTestDB(t)

	// Control: same database, no chaos, answers straight from the library
	// path. Its wire listener provides the binary ground truth.
	control := service.New(db, nil, service.Options{Shards: 2})
	cs := httptest.NewServer(control)
	defer func() { cs.Close(); control.Close() }()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go control.ServeWire(cln) //nolint:errcheck // exits nil on Close

	// The faulted fleet: latency jitter on every chunk, occasional hard
	// resets and partial writes. Seeds differ per replica so the fault
	// schedules interleave.
	faults := func(seed uint64) chaos.Faults {
		return chaos.Faults{
			Seed:             seed,
			LatencyMin:       100 * time.Microsecond,
			LatencyMax:       time.Millisecond,
			ResetProb:        0.02,
			PartialWriteProb: 0.01,
		}
	}
	backends := []*chaosBackend{
		startChaosBackend(t, db, faults(11)),
		startChaosBackend(t, db, faults(22)),
		startChaosBackend(t, db, faults(33)),
		startChaosBackend(t, db, faults(44)),
	}
	groups := []Backend{
		{Name: "g0",
			Addrs:     []string{backends[0].httpCP.Addr(), backends[1].httpCP.Addr()},
			WireAddrs: []string{backends[0].wireCP.Addr(), backends[1].wireCP.Addr()}},
		{Name: "g1",
			Addrs:     []string{backends[2].httpCP.Addr(), backends[3].httpCP.Addr()},
			WireAddrs: []string{backends[2].wireCP.Addr(), backends[3].wireCP.Addr()}},
	}
	ring, err := New(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxyWithOptions(ring, nil, Options{
		AttemptTimeout: 5 * time.Second,
		Retries:        3,
		Backoff:        resilience.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		Breaker:        resilience.BreakerOptions{Threshold: 8, Cooldown: 50 * time.Millisecond},
		ProbeInterval:  time.Hour, // probe rounds driven manually via ProbeNow
		Prober:         resilience.ProberOptions{FailThreshold: 1, SuccessThreshold: 1},
		Seed:           7,
	})
	defer p.Close()
	tier := httptest.NewServer(p)
	defer tier.Close()
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.ServeWire(wln)

	client := &http.Client{}
	jsonBodies, wireFrames := chaosQueries(t, db, 97, 40, 8)

	// Phase 1: JSON through injected faults. Every 200 must match the
	// control bit-for-bit; failures must stay a small minority.
	jsonErrs := 0
	for i, body := range jsonBodies {
		code, got := postDecide(t, client, tier.URL, body)
		if code != http.StatusOK {
			jsonErrs++
			continue
		}
		ccode, want := postDecide(t, client, cs.URL, body)
		if ccode != http.StatusOK {
			t.Fatalf("control refused batch %d: status %d", i, ccode)
		}
		if !bytes.Equal(canonicalDecide(t, got), canonicalDecide(t, want)) {
			t.Fatalf("batch %d: routed answer differs from control under faults", i)
		}
	}
	if jsonErrs*5 > len(jsonBodies) {
		t.Fatalf("json error rate too high under faults: %d/%d", jsonErrs, len(jsonBodies))
	}

	// Phase 2: the binary codec through the same faulted fleet. The
	// client speaks only to the tier; a fresh connection per hiccup
	// mirrors loadgen's reconnect behaviour.
	controlWire := dialChaosWire(t, cln.Addr().String())
	wireErrs := 0
	var tierWire *chaosWireClient
	for i, frame := range wireFrames {
		if tierWire == nil {
			tierWire = dialChaosWire(t, wln.Addr().String())
		}
		got, ok := tierWire.roundTrip(frame)
		if !ok {
			wireErrs++
			tierWire.close()
			tierWire = nil
			continue
		}
		want, ok := controlWire.roundTrip(frame)
		if !ok {
			t.Fatalf("control wire refused frame %d", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: routed wire payload differs from control under faults", i)
		}
	}
	if tierWire != nil {
		tierWire.close()
	}
	if wireErrs*5 > len(wireFrames) {
		t.Fatalf("wire error rate too high under faults: %d/%d", wireErrs, len(wireFrames))
	}

	// Phase 3: kill group g1 (both replicas, both protocols), eject via a
	// probe round, and verify the fleet degrades without losing answers.
	for _, b := range backends {
		b.httpCP.SetFaults(chaos.Faults{})
		b.wireCP.SetFaults(chaos.Faults{})
	}
	backends[2].httpCP.SetCut(true)
	backends[2].wireCP.SetCut(true)
	backends[3].httpCP.SetCut(true)
	backends[3].wireCP.SetCut(true)
	p.ProbeNow()
	if code, status := routeHealth(t, tier.URL); code != http.StatusServiceUnavailable || status != "degraded" {
		t.Fatalf("healthz after group kill: %d %q, want 503 degraded", code, status)
	}
	for i, body := range jsonBodies[:10] {
		code, got := postDecide(t, client, tier.URL, body)
		if code != http.StatusOK {
			t.Fatalf("batch %d refused during group outage: status %d (spill failed)", i, code)
		}
		_, want := postDecide(t, client, cs.URL, body)
		if !bytes.Equal(canonicalDecide(t, got), canonicalDecide(t, want)) {
			t.Fatalf("batch %d: spilled answer differs from control", i)
		}
	}
	spillWire := dialChaosWire(t, wln.Addr().String())
	for i, frame := range wireFrames[:10] {
		got, ok := spillWire.roundTrip(frame)
		if !ok {
			t.Fatalf("wire frame %d refused during group outage (spill failed)", i)
		}
		want, _ := controlWire.roundTrip(frame)
		if !bytes.Equal(got, want) {
			t.Fatalf("wire frame %d: spilled payload differs from control", i)
		}
	}
	spillWire.close()

	// Phase 4: heal. The prober readmits the group, deep health returns
	// to ok (breaker cooldowns may need a beat), and placement affinity
	// returns — a clean run adds no further ring spills.
	backends[2].httpCP.SetCut(false)
	backends[2].wireCP.SetCut(false)
	backends[3].httpCP.SetCut(false)
	backends[3].wireCP.SetCut(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		p.ProbeNow()
		if code, status := routeHealth(t, tier.URL); code == http.StatusOK && status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			code, status := routeHealth(t, tier.URL)
			t.Fatalf("ring did not readmit healed group: healthz %d %q", code, status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	spillsBefore := scrapeCounter(t, tier.URL, "qosrmad_route_spills_total")
	for i, body := range jsonBodies[:10] {
		if code, _ := postDecide(t, client, tier.URL, body); code != http.StatusOK {
			t.Fatalf("batch %d refused after heal: status %d", i, code)
		}
	}
	if spillsAfter := scrapeCounter(t, tier.URL, "qosrmad_route_spills_total"); spillsAfter != spillsBefore {
		t.Fatalf("healed ring still spilling: %v -> %v", spillsBefore, spillsAfter)
	}
	if eject := scrapeCounter(t, tier.URL, "qosrmad_route_probe_ejections_total"); eject < 2 {
		t.Fatalf("probe ejections %v, want >= 2 (one per killed replica)", eject)
	}
	if readmit := scrapeCounter(t, tier.URL, "qosrmad_route_probe_readmissions_total"); readmit < 2 {
		t.Fatalf("probe readmissions %v, want >= 2", readmit)
	}
}

// chaosWireClient is a minimal blocking wire client for the wall.
type chaosWireClient struct {
	c net.Conn
	r *wire.Reader
}

func dialChaosWire(t *testing.T, addr string) *chaosWireClient {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial wire %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return &chaosWireClient{c: c, r: wire.NewReader(c)}
}

func (w *chaosWireClient) close() { w.c.Close() }

// roundTrip writes one frame and returns a copy of the DecideResponse
// payload, or ok=false on any transport- or protocol-level failure.
func (w *chaosWireClient) roundTrip(frame []byte) ([]byte, bool) {
	w.c.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // best effort
	if _, err := w.c.Write(frame); err != nil {
		return nil, false
	}
	typ, payload, err := w.r.Next()
	if err != nil || typ != wire.TypeDecideResponse {
		return nil, false
	}
	return append([]byte(nil), payload...), true
}
