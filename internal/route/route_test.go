package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qosrma/internal/service"
)

func testGroups(n, replicas int) []Backend {
	groups := make([]Backend, n)
	for i := range groups {
		addrs := make([]string, replicas)
		for j := range addrs {
			addrs[j] = fmt.Sprintf("10.0.%d.%d:7743", i, j)
		}
		groups[i] = Backend{Name: fmt.Sprintf("g%d", i), Addrs: addrs}
	}
	return groups
}

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("rm2/0/0.2|mcf:%d|lbm:%d|milc:%d|gcc:%d", i%7, i%11, i%13, i))
	}
	return keys
}

// TestRingDeterministicPlacement: placement is a pure function of the
// group names — two independently built rings agree on every key.
func TestRingDeterministicPlacement(t *testing.T) {
	a, err := New(testGroups(4, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testGroups(4, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(2000) {
		if ga, gb := a.Pick(key), b.Pick(key); ga != gb {
			t.Fatalf("key %q: ring A→%d, ring B→%d", key, ga, gb)
		}
	}
}

// TestRingBalance: with the default virtual-node count, 4 groups each own
// a reasonable share of a large key population (no starved or hot group).
func TestRingBalance(t *testing.T) {
	r, err := New(testGroups(4, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	keys := testKeys(20000)
	for _, key := range keys {
		counts[r.Pick(key)]++
	}
	for g, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("group %d owns %.1f%% of keys (counts %v)", g, share*100, counts)
		}
	}
}

// TestRingMinimalDisruption is the property the tier exists for: adding a
// group moves only the keys the new group takes over — every other key
// keeps its owner, so the surviving backends' decision LRUs stay warm.
func TestRingMinimalDisruption(t *testing.T) {
	old, err := New(testGroups(3, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(testGroups(4, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(20000)
	moved := 0
	for _, key := range keys {
		was, now := old.Pick(key), grown.Pick(key)
		if was == now {
			continue
		}
		if now != 3 {
			t.Fatalf("key %q moved from group %d to old group %d — consistent hashing must only shed to the new group", key, was, now)
		}
		moved++
	}
	share := float64(moved) / float64(len(keys))
	if share < 0.10 || share > 0.45 {
		t.Fatalf("%.1f%% of keys moved when growing 3→4 groups, want ≈25%%", share*100)
	}
}

// TestRingReplicasDoNotMoveKeys: replica membership is a group-local
// concern — changing it must not move any key.
func TestRingReplicasDoNotMoveKeys(t *testing.T) {
	one, _ := New(testGroups(4, 1), 0)
	three, _ := New(testGroups(4, 3), 0)
	for _, key := range testKeys(2000) {
		if one.Pick(key) != three.Pick(key) {
			t.Fatalf("key %q moved when replica count changed", key)
		}
	}
}

func TestParseGroups(t *testing.T) {
	groups, err := ParseGroups("10.0.0.1:7743 , 10.0.0.2:7743; 10.0.1.1:7743 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("parsed %d groups, want 2", len(groups))
	}
	if groups[0].Name != "g0" || len(groups[0].Addrs) != 2 || groups[0].Addrs[1] != "10.0.0.2:7743" {
		t.Fatalf("group 0 parsed as %+v", groups[0])
	}
	if groups[1].Name != "g1" || len(groups[1].Addrs) != 1 {
		t.Fatalf("group 1 parsed as %+v", groups[1])
	}
	if _, err := ParseGroups(" ; ,"); err == nil {
		t.Fatal("degenerate spec parsed")
	}
}

// fakeBackend answers decide requests with a per-query signature derived
// from the query content (so the merger's index alignment is checkable)
// and records which backend served each routing key.
func fakeBackend(t *testing.T, name string, seen *sync.Map) *httptest.Server {
	t.Helper()
	answer := func(q *service.DecideQuery) service.DecideAnswer {
		a := service.DecideAnswer{Decided: true}
		for _, app := range q.Apps {
			a.Settings = append(a.Settings, service.SettingJSON{
				Size: name, FreqIdx: len(app.Bench), Ways: app.Phase,
			})
		}
		return a
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/decide":
			var req service.DecideRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var resp service.DecideResponse
			if len(req.Queries) == 0 {
				a := answer(&req.DecideQuery)
				resp.Result = &a
				recordOwner(t, seen, &req.DecideQuery, name)
			} else {
				for i := range req.Queries {
					resp.Results = append(resp.Results, answer(&req.Queries[i]))
					recordOwner(t, seen, &req.Queries[i], name)
				}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(&resp) //nolint:errcheck
		case r.URL.Path == "/v1/meta":
			fmt.Fprintf(w, `{"backend":%q}`, name)
		case r.URL.Path == "/v1/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// recordOwner asserts every routing key is only ever served by one
// backend group.
func recordOwner(t *testing.T, seen *sync.Map, q *service.DecideQuery, name string) {
	key := string(RoutingKey(nil, q))
	if prev, loaded := seen.LoadOrStore(key, name); loaded && prev != name {
		t.Errorf("key %q served by both %v and %v", key, prev, name)
	}
}

func backendAddr(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

// proxyQueries builds a batch with known per-query signatures spanning
// many distinct routing keys.
func proxyQueries(n int) []service.DecideQuery {
	benches := []string{"mcf", "lbm", "milc", "soplex", "gcc"}
	queries := make([]service.DecideQuery, n)
	for i := range queries {
		queries[i] = service.DecideQuery{
			Scheme: "rm2",
			Slack:  0.2,
			Apps: []service.AppQuery{
				{Bench: benches[i%len(benches)], Phase: i % 9},
				{Bench: benches[(i+1)%len(benches)], Phase: i % 7},
			},
		}
	}
	return queries
}

// TestProxySplitsAndMerges: a batch spanning several groups is split by
// the ring, answered by the owning backends, and merged back in request
// order with nothing lost, duplicated or reordered.
func TestProxySplitsAndMerges(t *testing.T) {
	var seen sync.Map
	b0 := fakeBackend(t, "b0", &seen)
	b1 := fakeBackend(t, "b1", &seen)
	ring, err := New([]Backend{
		{Name: "g0", Addrs: []string{backendAddr(b0)}},
		{Name: "g1", Addrs: []string{backendAddr(b1)}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(NewProxy(ring, nil))
	t.Cleanup(proxy.Close)

	queries := proxyQueries(64)
	body, _ := json.Marshal(service.DecideRequest{Queries: queries})
	resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy status %d", resp.StatusCode)
	}
	var out service.DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(queries) {
		t.Fatalf("merged %d results for %d queries", len(out.Results), len(queries))
	}
	owners := map[string]bool{}
	for i, q := range queries {
		a := out.Results[i]
		if !a.Decided || len(a.Settings) != len(q.Apps) {
			t.Fatalf("query %d: answer %+v", i, a)
		}
		owners[a.Settings[0].Size] = true
		for c, app := range q.Apps {
			if a.Settings[c].FreqIdx != len(app.Bench) || a.Settings[c].Ways != app.Phase {
				t.Fatalf("query %d core %d: answer %+v does not match query %+v (merge misaligned)", i, c, a.Settings[c], app)
			}
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all queries landed on %v — the split path was never exercised", owners)
	}
	requests, splits, failures := proxyStats(proxy)
	if requests == 0 {
		t.Fatal("requests counter never moved")
	}
	if splits == 0 {
		t.Fatal("splits counter never moved")
	}
	if failures != 0 {
		t.Fatalf("%d forward failures against healthy backends", failures)
	}
}

// proxyStats digs the counters back out of the handler under test.
func proxyStats(ts *httptest.Server) (requests, splits, failures uint64) {
	return ts.Config.Handler.(*Proxy).Stats()
}

// TestProxySingleKeyForwardsVerbatim: a single-query request maps to one
// group and is forwarded untouched, preserving the single-result shape.
func TestProxySingleKeyForwardsVerbatim(t *testing.T) {
	var seen sync.Map
	b0 := fakeBackend(t, "b0", &seen)
	b1 := fakeBackend(t, "b1", &seen)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{backendAddr(b0)}},
		{Name: "g1", Addrs: []string{backendAddr(b1)}},
	}, 0)
	proxy := httptest.NewServer(NewProxy(ring, nil))
	t.Cleanup(proxy.Close)

	q := proxyQueries(1)[0]
	body, _ := json.Marshal(service.DecideRequest{DecideQuery: q})
	resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || len(out.Results) != 0 {
		t.Fatalf("single query answered with %+v — the verbatim forward must preserve shape", out)
	}
	if out.Result.Settings[0].Ways != q.Apps[0].Phase {
		t.Fatalf("answer %+v does not match query", out.Result)
	}
}

// TestProxyFailover: a dead replica is skipped; the group's surviving
// replica answers.
func TestProxyFailover(t *testing.T) {
	var seen sync.Map
	live := fakeBackend(t, "live", &seen)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{"127.0.0.1:1", backendAddr(live)}},
	}, 0)
	proxy := httptest.NewServer(NewProxy(ring, nil))
	t.Cleanup(proxy.Close)

	for i := 0; i < 4; i++ {
		q := proxyQueries(4)[i]
		body, _ := json.Marshal(service.DecideRequest{DecideQuery: q})
		resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d despite a live replica", i, resp.StatusCode)
		}
	}
}

// TestProxyForwardsOtherEndpoints: non-decide requests reach a backend
// whole (the proxy is a drop-in front for the entire API surface).
func TestProxyForwardsOtherEndpoints(t *testing.T) {
	var seen sync.Map
	b0 := fakeBackend(t, "b0", &seen)
	ring, _ := New([]Backend{{Name: "g0", Addrs: []string{backendAddr(b0)}}}, 0)
	proxy := httptest.NewServer(NewProxy(ring, nil))
	t.Cleanup(proxy.Close)

	resp, err := http.Get(proxy.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Backend != "b0" {
		t.Fatalf("meta answered by %q", m.Backend)
	}
}
