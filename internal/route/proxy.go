package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/ops"
	"qosrma/internal/resilience"
	"qosrma/internal/service"
	"qosrma/internal/stats"
)

// Proxy is the routing tier's http.Handler: it speaks the decision
// service's own JSON API, owns no database, and makes no decisions
// itself. POST /v1/decide bodies are split by the ring — each query goes
// to the group owning its canonical key — and the per-group sub-batches
// are forwarded concurrently and merged back into request order. Every
// other request is forwarded whole to a rotating replica, so operators
// can point any client at the proxy.
//
// Every forward runs through the resilience layer: a per-attempt
// deadline, bounded retries with jittered exponential backoff (only for
// idempotent requests — GET/HEAD and the pure-compute decide/score
// POSTs; sweeps and admin mutations get exactly one attempt), a circuit
// breaker per replica, optional active health probing that ejects dead
// replicas from rotation, and optional hedged decide requests. When
// every replica of a group is out, its keys spill to the next available
// group on the ring — correct because the whole fleet serves one
// database — and return the moment the owner heals.
//
// Two endpoints are answered locally instead of forwarded: /v1/healthz
// reports the proxy's own deep health (a group with zero available
// replicas makes the tier degraded) and /metrics exposes the routing
// tier's counters.
type Proxy struct {
	ring   *Ring
	client *http.Client
	opt    Options

	replicas []replica
	groups   [][]int // group index → indices into replicas
	rr       []atomic.Uint32
	ar       atomic.Uint32 // any-replica rotation (whole-request forwards)

	prober *resilience.Prober
	wire   *WireProxy // attached by ServeWire; shares breakers and health

	reg *ops.Registry
	// Legacy counters kept for Stats().
	requests atomic.Uint64 // decide requests handled
	splits   atomic.Uint64 // decide requests that spanned >1 group
	failures atomic.Uint64 // forwards that exhausted every attempt

	retried  *ops.Counter // retry attempts after a failure
	attempts *ops.Counter // attempt failures (transport, truncation, 5xx)
	hedges   *ops.Counter // hedged decide requests launched
	spills   *ops.Counter // decide queries routed off-owner (group down)
	breakTo  map[resilience.BreakerState]*ops.Counter

	rngMu sync.Mutex
	rng   *stats.RNG
}

// replica is one flattened backend address with its failure-isolation
// state. Health (prober) and breaker state are per replica, not per
// group: one dead process must not poison its siblings.
type replica struct {
	group    int
	addr     string // HTTP host:port
	wireAddr string // binary wire host:port ("" = none)
	breaker  *resilience.Breaker
}

// Options tunes the proxy's resilience behaviour. The zero value selects
// the defaults noted per field; NewProxy uses it.
type Options struct {
	// AttemptTimeout bounds one forward attempt (default 2s; negative
	// disables the per-attempt deadline — the client's own context still
	// applies).
	AttemptTimeout time.Duration
	// Retries is the extra attempts granted to idempotent requests after
	// the first failure (default 2; negative disables retries).
	Retries int
	// Backoff schedules the delay between attempts.
	Backoff resilience.Backoff
	// Breaker configures every replica's circuit breaker.
	Breaker resilience.BreakerOptions
	// HedgeAfter, when positive, launches a second decide forward if the
	// first has not answered within the duration; first answer wins
	// (default 0 = off).
	HedgeAfter time.Duration
	// ProbeInterval, when positive, enables active health probing of
	// every replica's /v1/healthz at the interval (default 0 = off;
	// passive breaker-based isolation still applies).
	ProbeInterval time.Duration
	// Prober tunes the probe thresholds (Interval is taken from
	// ProbeInterval).
	Prober resilience.ProberOptions
	// Seed keys the backoff-jitter stream for reproducible schedules.
	Seed uint64
}

func (o Options) attemptTimeout() time.Duration {
	if o.AttemptTimeout == 0 {
		return 2 * time.Second
	}
	if o.AttemptTimeout < 0 {
		return 0
	}
	return o.AttemptTimeout
}

func (o Options) retries() int {
	if o.Retries == 0 {
		return 2
	}
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

// NewProxy builds a proxy with default resilience options (retries on,
// probing and hedging off). client nil selects a transport sized for
// backend connection reuse.
func NewProxy(ring *Ring, client *http.Client) *Proxy {
	return NewProxyWithOptions(ring, client, Options{})
}

// NewProxyWithOptions builds a proxy over the ring. Call Close when done
// (it stops the prober, when one is running).
func NewProxyWithOptions(ring *Ring, client *http.Client, opt Options) *Proxy {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}}
	}
	p := &Proxy{
		ring:   ring,
		client: client,
		opt:    opt,
		groups: make([][]int, len(ring.Backends())),
		rr:     make([]atomic.Uint32, len(ring.Backends())),
		reg:    ops.NewRegistry(),
		rng:    stats.NewRNG(stats.SeedFrom(opt.Seed, "route/jitter")),
	}
	p.initMetrics()
	for g, b := range ring.Backends() {
		for i, addr := range b.Addrs {
			ri := len(p.replicas)
			bopt := opt.Breaker
			prev := bopt.OnStateChange
			bopt.OnStateChange = func(from, to resilience.BreakerState) {
				p.breakTo[to].Inc()
				if prev != nil {
					prev(from, to)
				}
			}
			var wireAddr string
			if len(b.WireAddrs) > i {
				wireAddr = b.WireAddrs[i]
			}
			p.replicas = append(p.replicas, replica{
				group:    g,
				addr:     addr,
				wireAddr: wireAddr,
				breaker:  resilience.NewBreaker(bopt),
			})
			p.groups[g] = append(p.groups[g], ri)
		}
	}
	if opt.ProbeInterval > 0 {
		popt := opt.Prober
		popt.Interval = opt.ProbeInterval
		p.prober = resilience.NewProber(len(p.replicas), p.probeReplica, popt, nil)
		p.prober.Start()
	}
	p.registerReplicaMetrics()
	return p
}

// Close stops background work (the health prober and any wire proxy).
func (p *Proxy) Close() {
	if p.prober != nil {
		p.prober.Stop()
	}
	if p.wire != nil {
		p.wire.Close()
	}
}

// Registry exposes the routing tier's metrics registry (served on
// /metrics).
func (p *Proxy) Registry() *ops.Registry { return p.reg }

// ProbeNow forces one synchronous probe round (no-op with probing off).
// Tests and operators use it to observe ejection without waiting an
// interval.
func (p *Proxy) ProbeNow() {
	if p.prober != nil {
		p.prober.RunNow()
	}
}

func (p *Proxy) initMetrics() {
	p.reg.CounterFunc("qosrmad_route_requests_total",
		"Decide requests handled by the routing tier.", "",
		func() float64 { return float64(p.requests.Load()) })
	p.reg.CounterFunc("qosrmad_route_splits_total",
		"Decide requests that spanned more than one backend group.", "",
		func() float64 { return float64(p.splits.Load()) })
	p.reg.CounterFunc("qosrmad_route_exhausted_total",
		"Forwards that exhausted every attempt and answered an error.", "",
		func() float64 { return float64(p.failures.Load()) })
	p.retried = p.reg.Counter("qosrmad_route_retries_total",
		"Forward attempts retried after a failure.", "")
	p.attempts = p.reg.Counter("qosrmad_route_attempt_failures_total",
		"Individual forward attempts that failed (transport error, truncated body, or 5xx).", "")
	p.hedges = p.reg.Counter("qosrmad_route_hedges_total",
		"Hedged decide forwards launched.", "")
	p.spills = p.reg.Counter("qosrmad_route_spills_total",
		"Decide forwards served off-owner because the owning group had no available replica.", "")
	p.breakTo = map[resilience.BreakerState]*ops.Counter{}
	for _, s := range []resilience.BreakerState{
		resilience.BreakerClosed, resilience.BreakerOpen, resilience.BreakerHalfOpen,
	} {
		p.breakTo[s] = p.reg.Counter("qosrmad_route_breaker_transitions_total",
			"Replica circuit-breaker transitions by destination state.",
			ops.Labels("to", s.String()))
	}
	p.reg.CounterFunc("qosrmad_route_probe_ejections_total",
		"Replicas ejected from rotation by the health prober.", "",
		func() float64 { e, _ := p.proberStats(); return float64(e) })
	p.reg.CounterFunc("qosrmad_route_probe_readmissions_total",
		"Ejected replicas readmitted to rotation by the health prober.", "",
		func() float64 { _, r := p.proberStats(); return float64(r) })
}

// registerReplicaMetrics runs after the replica slice is final.
func (p *Proxy) registerReplicaMetrics() {
	for i := range p.replicas {
		rep := &p.replicas[i]
		ri := i
		labels := ops.Labels("group", p.ring.Backends()[rep.group].Name, "replica", rep.addr)
		p.reg.GaugeFunc("qosrmad_route_replica_available",
			"1 when the replica is in rotation (probe-healthy, breaker not open).",
			labels, func() float64 {
				if p.replicaAvailable(ri) {
					return 1
				}
				return 0
			})
	}
}

func (p *Proxy) proberStats() (uint64, uint64) {
	if p.prober == nil {
		return 0, 0
	}
	return p.prober.Stats()
}

// probeReplica is the active health probe: GET /v1/healthz on the
// replica, healthy iff it answers 200 (a draining or degraded backend
// answers 503 and leaves rotation until it recovers). The verdict also
// feeds the replica's breaker: a replica whose breaker opened under
// live traffic gets no more attempts (the pick loop skips unavailable
// replicas), so without this a breaker opened just before an ejection
// would stay open forever and block readmission — the passing probe is
// the evidence that closes it.
func (p *Proxy) probeReplica(ctx context.Context, ri int) error {
	err := p.probeReplicaHTTP(ctx, ri)
	if err != nil {
		p.replicas[ri].breaker.Failure()
	} else {
		p.replicas[ri].breaker.Success()
	}
	return err
}

func (p *Proxy) probeReplicaHTTP(ctx context.Context, ri int) error {
	//qosrma:allow(ctxdeadline) ctx comes from Prober.RunNow, which wraps every probe in context.WithTimeout(p.opt.Timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+p.replicas[ri].addr+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	return nil
}

// replicaHealthy reports the prober's verdict (true when probing is off
// — the breaker still isolates passively).
func (p *Proxy) replicaHealthy(ri int) bool {
	return p.prober == nil || p.prober.Healthy(ri)
}

// replicaAvailable reports whether the replica is in rotation:
// probe-healthy and breaker not refusing.
func (p *Proxy) replicaAvailable(ri int) bool {
	return p.replicaHealthy(ri) && p.replicas[ri].breaker.State() != resilience.BreakerOpen
}

// groupAvailable reports whether any replica of group g is in rotation.
func (p *Proxy) groupAvailable(g int) bool {
	for _, ri := range p.groups[g] {
		if p.replicaAvailable(ri) {
			return true
		}
	}
	return false
}

// Stats reports decide requests handled, how many spanned multiple
// groups, and how many forwards exhausted every attempt.
func (p *Proxy) Stats() (requests, splits, failures uint64) {
	return p.requests.Load(), p.splits.Load(), p.failures.Load()
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/decide":
		p.serveDecide(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/v1/healthz":
		p.serveHealthz(w)
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		p.reg.ServeHTTP(w, r)
	default:
		p.forwardWhole(w, r)
	}
}

// RoutingKey renders the canonical routing form of one query: lowercased
// scheme, model, slack vector and the (bench, phase) co-phase vector. It
// is the name-interned analog of the service's internal cache key — the
// proxy has no database to intern against — and the only property the
// tier needs: equal queries land on equal groups, so each backend's
// decision LRU sees a stable partition of the key space.
func RoutingKey(dst []byte, q *service.DecideQuery) []byte {
	dst = append(dst, strings.ToLower(q.Scheme)...)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(q.Model), 10)
	dst = append(dst, '/')
	switch {
	case len(q.Slacks) > 0:
		for i, v := range q.Slacks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		}
	case q.Slack != 0:
		dst = strconv.AppendFloat(dst, q.Slack, 'g', -1, 64)
	}
	for _, app := range q.Apps {
		dst = append(dst, '|')
		dst = append(dst, app.Bench...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(app.Phase), 10)
	}
	return dst
}

// groupPicker returns the health-aware owner function for one request:
// availability is snapshotted once so every query in the batch sees a
// consistent fleet view. In the healthy fleet it is exactly Ring.Pick.
func (p *Proxy) groupPicker() func(key []byte) int {
	ng := len(p.groups)
	if ng == 1 {
		return func([]byte) int { return 0 }
	}
	avail := make([]bool, ng)
	allUp := true
	for g := range avail {
		avail[g] = p.groupAvailable(g)
		allUp = allUp && avail[g]
	}
	if allUp {
		return p.ring.Pick
	}
	return func(key []byte) int {
		owner := p.ring.PickHash(Hash(key))
		g := p.ring.PickAvailableHash(Hash(key), func(g int) bool { return avail[g] })
		if g != owner {
			p.spills.Inc()
		}
		return g
	}
}

// serveDecide splits a decide request by owning group and merges the
// answers. A request whose queries all map to one group is forwarded
// verbatim (the common case under key-affine clients).
func (p *Proxy) serveDecide(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var req service.DecideRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	single := len(req.Queries) == 0
	queries := req.Queries
	if single {
		queries = []service.DecideQuery{req.DecideQuery}
	}

	pick := p.groupPicker()
	groups := make([][]int, len(p.ring.Backends()))
	var key []byte
	distinct := -1
	split := false
	for i := range queries {
		key = RoutingKey(key[:0], &queries[i])
		g := pick(key)
		groups[g] = append(groups[g], i)
		if distinct == -1 {
			distinct = g
		} else if g != distinct {
			split = true
		}
	}

	if !split {
		// One owning group: forward the original body untouched so the
		// backend sees exactly what the client sent (single/batch shape
		// included).
		resp, err := p.forwardDecide(r.Context(), distinct, body)
		if err != nil {
			p.writeForwardError(w, err)
			return
		}
		writeBackendResponse(w, resp)
		return
	}
	p.splits.Add(1)

	// Fan the sub-batches out concurrently; merge preserves request order
	// because each group's answer slice is index-aligned with the subset
	// it was sent.
	type groupResult struct {
		g    int
		resp service.DecideResponse
		err  error
		back *backendResponse
	}
	var wg sync.WaitGroup
	results := make([]groupResult, 0, len(groups))
	for g, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		results = append(results, groupResult{g: g})
	}
	for i := range results {
		wg.Add(1)
		go func(gr *groupResult) {
			defer wg.Done()
			idx := groups[gr.g]
			sub := service.DecideRequest{Queries: make([]service.DecideQuery, len(idx))}
			for j, qi := range idx {
				sub.Queries[j] = queries[qi]
			}
			b, err := json.Marshal(&sub)
			if err != nil {
				gr.err = err
				return
			}
			back, err := p.forwardDecide(r.Context(), gr.g, b)
			if err != nil {
				gr.err = err
				return
			}
			gr.back = back
			if back.code == http.StatusOK {
				gr.err = json.Unmarshal(back.body, &gr.resp)
			}
		}(&results[i])
	}
	wg.Wait()

	merged := service.DecideResponse{Results: make([]service.DecideAnswer, len(queries))}
	for _, gr := range results {
		if gr.err != nil {
			p.writeForwardError(w,
				fmt.Errorf("backend group %s: %w", p.ring.Backends()[gr.g].Name, gr.err))
			return
		}
		if gr.back.code != http.StatusOK {
			// Propagate the backend's own error verbatim (validation
			// failures carry the offending sub-batch index, which is still
			// meaningful to the caller after remapping is lost — the error
			// text names the query content).
			writeBackendResponse(w, gr.back)
			return
		}
		idx := groups[gr.g]
		if len(gr.resp.Results) != len(idx) {
			writeProxyError(w, http.StatusBadGateway,
				fmt.Errorf("backend group %s answered %d results for %d queries",
					p.ring.Backends()[gr.g].Name, len(gr.resp.Results), len(idx)))
			return
		}
		for j, qi := range idx {
			merged.Results[qi] = gr.resp.Results[j]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(&merged) //nolint:errcheck // client gone; nothing to report
}

// errNoReplica marks a forward that found no admitted replica anywhere:
// answered as 503 + Retry-After so well-behaved clients back off instead
// of hammering a fleet that is already down.
var errNoReplica = errors.New("no replica available")

// backendResponse is one fully-buffered backend answer. Buffering is
// deliberate: a connection reset mid-body is then an attempt failure the
// retry loop handles (next replica) instead of a truncated response
// relayed to the client.
type backendResponse struct {
	code        int
	contentType string
	retryAfter  string
	body        []byte
}

// attempt runs exactly one forward to one replica under the per-attempt
// deadline and reports the outcome to its breaker. Transport errors,
// truncated bodies and 5xx answers count as failures; any completed
// non-5xx answer (a 4xx is the backend authoritatively rejecting the
// request) counts as success.
func (p *Proxy) attempt(ctx context.Context, ri int, method, uri, contentType string, body []byte) (*backendResponse, error) {
	rep := &p.replicas[ri]
	if t := p.opt.attemptTimeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	//qosrma:allow(ctxdeadline) deadline is attached above unless the operator set AttemptTimeout<0 to disable it; the inbound request's ctx still cancels the attempt
	req, err := http.NewRequestWithContext(ctx, method, "http://"+rep.addr+uri, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		rep.breaker.Failure()
		p.attempts.Inc()
		return nil, fmt.Errorf("replica %s: %w", rep.addr, err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// The status line arrived but the body did not (reset mid-body):
		// a replica failure like any other, retried on the next replica
		// rather than relayed as a truncated answer.
		rep.breaker.Failure()
		p.attempts.Inc()
		return nil, fmt.Errorf("replica %s: response truncated: %w", rep.addr, err)
	}
	if resp.StatusCode >= 500 {
		rep.breaker.Failure()
		p.attempts.Inc()
	} else {
		rep.breaker.Success()
	}
	return &backendResponse{
		code:        resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        payload,
	}, nil
}

// pickReplica returns the next admitted replica of group g (rotating),
// skipping index skip (the previous attempt's choice), or -1 when the
// group has none. g < 0 means any group.
func (p *Proxy) pickReplica(g, skip int) int {
	if g < 0 {
		n := len(p.replicas)
		start := int(p.ar.Add(1))
		for k := 0; k < n; k++ {
			ri := (start + k) % n
			if ri != skip && p.admit(ri) {
				return ri
			}
		}
		return -1
	}
	idxs := p.groups[g]
	start := int(p.rr[g].Add(1))
	for k := 0; k < len(idxs); k++ {
		ri := idxs[(start+k)%len(idxs)]
		if ri != skip && p.admit(ri) {
			return ri
		}
	}
	return -1
}

// admit checks prober health and reserves breaker admission. A true
// return must be followed by exactly one attempt (the breaker's
// half-open probe accounting depends on it).
func (p *Proxy) admit(ri int) bool {
	return p.replicaHealthy(ri) && p.replicas[ri].breaker.Allow()
}

// rnd is the locked jitter source for backoff delays.
func (p *Proxy) rnd() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64()
}

// forward runs the retry loop for one request against group g (g < 0 =
// any group). Idempotent requests get the configured extra attempts and
// fail over across replicas — spilling out of the group when it has none
// left — with backoff between attempts; non-idempotent requests get
// exactly one attempt. A 5xx answer is retried like a transport failure
// but relayed verbatim when attempts run out (the backend's own error
// beats a synthetic one).
func (p *Proxy) forward(ctx context.Context, g int, method, uri, contentType string, body []byte, idempotent bool) (*backendResponse, error) {
	attempts := 1
	if idempotent {
		attempts += p.opt.retries()
	}
	var lastResp *backendResponse
	var lastErr error
	tried := -1
	for a := 0; a < attempts; a++ {
		if a > 0 {
			p.retried.Inc()
			if err := p.opt.Backoff.Sleep(ctx, a-1, p.rnd); err != nil {
				break
			}
		}
		ri := p.pickReplica(g, tried)
		if ri < 0 && g >= 0 && idempotent {
			// The owning group is out mid-request: any backend answers
			// the same decide (one fleet, one database).
			ri = p.pickReplica(-1, tried)
		}
		if ri < 0 {
			lastErr = errNoReplica
			continue // backoff: a breaker may half-open meanwhile
		}
		tried = ri
		resp, err := p.attempt(ctx, ri, method, uri, contentType, body)
		if err != nil {
			lastResp, lastErr = nil, err
			continue
		}
		if resp.code >= 500 && idempotent && a < attempts-1 {
			lastResp, lastErr = resp, nil
			continue
		}
		return resp, nil
	}
	if lastResp != nil {
		return lastResp, nil
	}
	p.failures.Add(1)
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return nil, lastErr
}

// forwardDecide forwards one decide body to group g, hedging with a
// second concurrent forward when the first exceeds HedgeAfter. Decide is
// idempotent and answer-deterministic, so whichever forward wins is the
// canonical answer.
func (p *Proxy) forwardDecide(ctx context.Context, g int, body []byte) (*backendResponse, error) {
	if p.opt.HedgeAfter <= 0 {
		return p.forward(ctx, g, http.MethodPost, "/v1/decide", "application/json", body, true)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type out struct {
		resp *backendResponse
		err  error
	}
	ch := make(chan out, 2)
	launch := func() {
		go func() {
			resp, err := p.forward(cctx, g, http.MethodPost, "/v1/decide", "application/json", body, true)
			ch <- out{resp, err}
		}()
	}
	launch()
	inflight, hedged := 1, false
	timer := time.NewTimer(p.opt.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				p.hedges.Inc()
				launch()
				inflight++
			}
		}
	}
}

// forwardWhole proxies any non-decide request to a rotating replica
// (meta, score, sweep, admin). Decide-independent state is assumed
// fleet-uniform — every backend serves the same database. Only
// read-only requests and the pure-compute score POST are retried;
// sweeps and admin mutations are not idempotent and get one attempt.
func (p *Proxy) forwardWhole(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, err)
		return
	}
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead ||
		(r.Method == http.MethodPost && (r.URL.Path == "/v1/decide" || r.URL.Path == "/v1/score"))
	resp, err := p.forward(r.Context(), -1, r.Method, r.URL.RequestURI(),
		r.Header.Get("Content-Type"), body, idempotent)
	if err != nil {
		p.writeForwardError(w, err)
		return
	}
	writeBackendResponse(w, resp)
}

// serveHealthz answers the routing tier's own deep health: ok while
// every group has at least one available replica, degraded (503)
// otherwise — degraded traffic still flows via ring spill, but placement
// affinity is lost and operators should treat it as an incident.
func (p *Proxy) serveHealthz(w http.ResponseWriter) {
	type groupHealth struct {
		Name      string `json:"name"`
		Replicas  int    `json:"replicas"`
		Available int    `json:"available"`
	}
	out := struct {
		Status string        `json:"status"`
		Groups []groupHealth `json:"groups"`
	}{Status: "ok"}
	for g, b := range p.ring.Backends() {
		gh := groupHealth{Name: b.Name, Replicas: len(p.groups[g])}
		for _, ri := range p.groups[g] {
			if p.replicaAvailable(ri) {
				gh.Available++
			}
		}
		if gh.Available == 0 {
			out.Status = "degraded"
		}
		out.Groups = append(out.Groups, gh)
	}
	w.Header().Set("Content-Type", "application/json")
	if out.Status != "ok" {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	} else {
		w.WriteHeader(http.StatusOK)
	}
	json.NewEncoder(w).Encode(&out) //nolint:errcheck // client gone; nothing to report
}

// writeForwardError maps a forward failure onto the wire: exhausted
// availability is 503 + Retry-After (back off, the fleet is down),
// anything else is 502.
func (p *Proxy) writeForwardError(w http.ResponseWriter, err error) {
	if errors.Is(err, errNoReplica) {
		w.Header().Set("Retry-After", "1")
		writeProxyError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeProxyError(w, http.StatusBadGateway, err)
}

// writeBackendResponse relays a buffered backend answer.
func writeBackendResponse(w http.ResponseWriter, resp *backendResponse) {
	if resp.contentType != "" {
		w.Header().Set("Content-Type", resp.contentType)
	}
	if resp.retryAfter != "" {
		w.Header().Set("Retry-After", resp.retryAfter)
	}
	w.WriteHeader(resp.code)
	w.Write(resp.body) //nolint:errcheck // client gone; nothing to report
}

// writeProxyError mirrors the service's error body shape.
func writeProxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
