package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"qosrma/internal/service"
)

// Proxy is the routing tier's http.Handler: it speaks the decision
// service's own JSON API, owns no database, and makes no decisions
// itself. POST /v1/decide bodies are split by the ring — each query goes
// to the group owning its canonical key — and the per-group sub-batches
// are forwarded concurrently and merged back into request order. Every
// other request (meta, healthz, score, sweep, admin) is forwarded whole
// to a rotating replica, so operators can point any client at the proxy.
type Proxy struct {
	ring   *Ring
	client *http.Client
	// rr rotates replica choice per group (and, for whole-request
	// forwarding, across groups).
	rr []atomic.Uint32
	gr atomic.Uint32

	// Counters for tests and the /admin-style status line.
	requests atomic.Uint64 // decide requests handled
	splits   atomic.Uint64 // decide requests that spanned >1 group
	failures atomic.Uint64 // forwards that exhausted a group's replicas
}

// NewProxy builds a proxy over the ring. client nil selects a transport
// sized for backend connection reuse.
func NewProxy(ring *Ring, client *http.Client) *Proxy {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}}
	}
	return &Proxy{
		ring:   ring,
		client: client,
		rr:     make([]atomic.Uint32, len(ring.Backends())),
	}
}

// Stats reports decide requests handled, how many spanned multiple
// groups, and how many forwards exhausted a replica set.
func (p *Proxy) Stats() (requests, splits, failures uint64) {
	return p.requests.Load(), p.splits.Load(), p.failures.Load()
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/decide" {
		p.serveDecide(w, r)
		return
	}
	p.forwardWhole(w, r)
}

// RoutingKey renders the canonical routing form of one query: lowercased
// scheme, model, slack vector and the (bench, phase) co-phase vector. It
// is the name-interned analog of the service's internal cache key — the
// proxy has no database to intern against — and the only property the
// tier needs: equal queries land on equal groups, so each backend's
// decision LRU sees a stable partition of the key space.
func RoutingKey(dst []byte, q *service.DecideQuery) []byte {
	dst = append(dst, strings.ToLower(q.Scheme)...)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(q.Model), 10)
	dst = append(dst, '/')
	switch {
	case len(q.Slacks) > 0:
		for i, v := range q.Slacks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		}
	case q.Slack != 0:
		dst = strconv.AppendFloat(dst, q.Slack, 'g', -1, 64)
	}
	for _, app := range q.Apps {
		dst = append(dst, '|')
		dst = append(dst, app.Bench...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(app.Phase), 10)
	}
	return dst
}

// serveDecide splits a decide request by owning group and merges the
// answers. A request whose queries all map to one group is forwarded
// verbatim (the common case under key-affine clients).
func (p *Proxy) serveDecide(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var req service.DecideRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	single := len(req.Queries) == 0
	queries := req.Queries
	if single {
		queries = []service.DecideQuery{req.DecideQuery}
	}

	groups := make([][]int, len(p.ring.Backends()))
	var key []byte
	distinct := -1
	split := false
	for i := range queries {
		key = RoutingKey(key[:0], &queries[i])
		g := p.ring.Pick(key)
		groups[g] = append(groups[g], i)
		if distinct == -1 {
			distinct = g
		} else if g != distinct {
			split = true
		}
	}

	if !split {
		// One owning group: forward the original body untouched so the
		// backend sees exactly what the client sent (single/batch shape
		// included).
		resp, err := p.forwardGroup(distinct, bytes.NewReader(body))
		if err != nil {
			writeProxyError(w, http.StatusBadGateway, err)
			return
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	p.splits.Add(1)

	// Fan the sub-batches out concurrently; merge preserves request order
	// because each group's answer slice is index-aligned with the subset
	// it was sent.
	type groupResult struct {
		g    int
		resp service.DecideResponse
		err  error
		code int
		body []byte
	}
	var wg sync.WaitGroup
	results := make([]groupResult, 0, len(groups))
	for g, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		results = append(results, groupResult{g: g})
	}
	for i := range results {
		wg.Add(1)
		go func(gr *groupResult) {
			defer wg.Done()
			idx := groups[gr.g]
			sub := service.DecideRequest{Queries: make([]service.DecideQuery, len(idx))}
			for j, qi := range idx {
				sub.Queries[j] = queries[qi]
			}
			b, err := json.Marshal(&sub)
			if err != nil {
				gr.err = err
				return
			}
			resp, err := p.forwardGroup(gr.g, bytes.NewReader(b))
			if err != nil {
				gr.err = err
				return
			}
			defer resp.Body.Close()
			payload, err := io.ReadAll(resp.Body)
			if err != nil {
				gr.err = err
				return
			}
			gr.code = resp.StatusCode
			gr.body = payload
			if resp.StatusCode == http.StatusOK {
				gr.err = json.Unmarshal(payload, &gr.resp)
			}
		}(&results[i])
	}
	wg.Wait()

	merged := service.DecideResponse{Results: make([]service.DecideAnswer, len(queries))}
	for _, gr := range results {
		if gr.err != nil {
			writeProxyError(w, http.StatusBadGateway,
				fmt.Errorf("backend group %s: %v", p.ring.Backends()[gr.g].Name, gr.err))
			return
		}
		if gr.code != http.StatusOK {
			// Propagate the backend's own error verbatim (validation
			// failures carry the offending sub-batch index, which is still
			// meaningful to the caller after remapping is lost — the error
			// text names the query content).
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(gr.code)
			w.Write(gr.body) //nolint:errcheck // client gone; nothing to report
			return
		}
		idx := groups[gr.g]
		if len(gr.resp.Results) != len(idx) {
			writeProxyError(w, http.StatusBadGateway,
				fmt.Errorf("backend group %s answered %d results for %d queries",
					p.ring.Backends()[gr.g].Name, len(gr.resp.Results), len(idx)))
			return
		}
		for j, qi := range idx {
			merged.Results[qi] = gr.resp.Results[j]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(&merged) //nolint:errcheck // client gone; nothing to report
}

// forwardGroup posts a decide body to group g, rotating through its
// replicas and failing over on connection errors.
func (p *Proxy) forwardGroup(g int, body *bytes.Reader) (*http.Response, error) {
	addrs := p.ring.Backends()[g].Addrs
	start := int(p.rr[g].Add(1))
	var lastErr error
	for i := 0; i < len(addrs); i++ {
		addr := addrs[(start+i)%len(addrs)]
		body.Seek(0, io.SeekStart) //nolint:errcheck // bytes.Reader cannot fail
		resp, err := p.client.Post("http://"+addr+"/v1/decide", "application/json", body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	p.failures.Add(1)
	return nil, fmt.Errorf("all %d replicas failed: %w", len(addrs), lastErr)
}

// forwardWhole proxies any non-decide request to a rotating replica
// (meta, healthz, metrics, admin, sweep). Decide-independent state is
// assumed fleet-uniform — every backend serves the same database.
func (p *Proxy) forwardWhole(w http.ResponseWriter, r *http.Request) {
	backends := p.ring.Backends()
	g := int(p.gr.Add(1)) % len(backends)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, err)
		return
	}
	var lastErr error
	for i := 0; i < len(backends); i++ {
		b := backends[(g+i)%len(backends)]
		for j := 0; j < len(b.Addrs); j++ {
			addr := b.Addrs[(int(p.rr[(g+i)%len(backends)].Add(1))+j)%len(b.Addrs)]
			req, err := http.NewRequestWithContext(r.Context(), r.Method,
				"http://"+addr+r.URL.RequestURI(), bytes.NewReader(body))
			if err != nil {
				writeProxyError(w, http.StatusInternalServerError, err)
				return
			}
			if ct := r.Header.Get("Content-Type"); ct != "" {
				req.Header.Set("Content-Type", ct)
			}
			resp, err := p.client.Do(req)
			if err != nil {
				lastErr = err
				continue
			}
			defer resp.Body.Close()
			copyResponse(w, resp)
			return
		}
	}
	p.failures.Add(1)
	writeProxyError(w, http.StatusBadGateway, fmt.Errorf("no backend reachable: %w", lastErr))
}

// copyResponse relays a backend response (status, content type, body).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone; nothing to report
}

// writeProxyError mirrors the service's error body shape.
func writeProxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
