package route

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosrma/internal/resilience"
	"qosrma/internal/service"
	"qosrma/internal/wire"
)

// TestRingPickAvailable: with every group available the health-aware
// pick IS the plain pick (placement unchanged in the healthy fleet);
// with one group down only that group's keys move, and they come back
// on heal.
func TestRingPickAvailable(t *testing.T) {
	r, err := New(testGroups(4, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(5000)
	allUp := func(int) bool { return true }
	for _, key := range keys {
		if got, want := r.PickAvailableHash(Hash(key), allUp), r.Pick(key); got != want {
			t.Fatalf("key %q: all-available pick %d != plain pick %d", key, got, want)
		}
	}

	down := 2
	avail := func(g int) bool { return g != down }
	moved := 0
	for _, key := range keys {
		owner := r.Pick(key)
		got := r.PickAvailableHash(Hash(key), avail)
		if owner != down {
			if got != owner {
				t.Fatalf("key %q owned by healthy group %d moved to %d", key, owner, got)
			}
			continue
		}
		if got == down {
			t.Fatalf("key %q still routed to the down group", key)
		}
		moved++
		// Heal: the key returns to its owner.
		if back := r.PickAvailableHash(Hash(key), allUp); back != owner {
			t.Fatalf("key %q did not return to group %d after heal", key, owner)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the down group — test keys degenerate")
	}

	// Nothing available: the true owner is returned (the forward fails
	// there; placement must not become random).
	for _, key := range keys[:100] {
		if got := r.PickAvailableHash(Hash(key), func(int) bool { return false }); got != r.Pick(key) {
			t.Fatalf("key %q: all-down pick %d != owner %d", key, got, r.Pick(key))
		}
	}
}

// TestParseGroupsWireAddrs: the "httpaddr|wireaddr" replica syntax.
func TestParseGroupsWireAddrs(t *testing.T) {
	groups, err := ParseGroups("10.0.0.1:7743|10.0.0.1:7744,10.0.0.2:7743;10.0.1.1:7743")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("parsed %d groups, want 2", len(groups))
	}
	g0 := groups[0]
	if len(g0.Addrs) != 2 || g0.Addrs[0] != "10.0.0.1:7743" {
		t.Fatalf("group 0 HTTP addrs %v", g0.Addrs)
	}
	if len(g0.WireAddrs) != 2 || g0.WireAddrs[0] != "10.0.0.1:7744" || g0.WireAddrs[1] != "" {
		t.Fatalf("group 0 wire addrs %v", g0.WireAddrs)
	}
	if groups[1].WireAddrs != nil {
		t.Fatalf("group 1 without wire syntax got wire addrs %v", groups[1].WireAddrs)
	}
	if _, err := ParseGroups("10.0.0.1:7743|"); err == nil {
		t.Fatal("empty wire address parsed")
	}
}

// truncatingBackend answers /v1/decide with a Content-Length larger
// than the bytes it writes, then slams the connection — the classic
// reset-mid-body. The proxy must treat it as a replica failure and
// retry, not relay a truncated 502.
func truncatingBackend(t *testing.T) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "4096")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"results": [`)) //nolint:errcheck // truncation is the point
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestProxyRetriesTruncatedBody: a connection reset mid-response-body
// fails over to the next replica instead of answering a truncated body.
func TestProxyRetriesTruncatedBody(t *testing.T) {
	var seen sync.Map
	trunc, hits := truncatingBackend(t)
	live := fakeBackend(t, "live", &seen)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{backendAddr(trunc), backendAddr(live)}},
	}, 0)
	p := NewProxy(ring, nil)
	defer p.Close()
	proxy := httptest.NewServer(p)
	t.Cleanup(proxy.Close)

	sawTrunc := false
	for i := 0; i < 8; i++ {
		q := proxyQueries(8)[i]
		body, _ := json.Marshal(service.DecideRequest{DecideQuery: q})
		resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d: proxy relayed a truncated body: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s) despite a live replica", i, resp.StatusCode, payload)
		}
		var out service.DecideResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			t.Fatalf("request %d: merged body does not parse: %v", i, err)
		}
		sawTrunc = sawTrunc || hits.Load() > 0
	}
	if !sawTrunc {
		t.Fatal("the truncating replica was never tried — rotation is broken")
	}
}

// TestProxyBreakerShortCircuits: once the dead replica's breaker opens,
// an all-dead group answers 503 + Retry-After immediately (no replica
// admitted) instead of dialing the corpse forever.
func TestProxyBreakerShortCircuits(t *testing.T) {
	ring, _ := New([]Backend{{Name: "g0", Addrs: []string{"127.0.0.1:1"}}}, 0)
	p := NewProxyWithOptions(ring, nil, Options{
		Retries: -1, // one attempt per request: breaker state is observable per request
		Breaker: resilience.BreakerOptions{Threshold: 1, Cooldown: time.Hour},
	})
	defer p.Close()
	proxy := httptest.NewServer(p)
	t.Cleanup(proxy.Close)

	post := func() *http.Response {
		body, _ := json.Marshal(service.DecideRequest{DecideQuery: proxyQueries(1)[0]})
		resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("first request answered %d, want 502 (transport failure)", resp.StatusCode)
	}
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request answered %d, want 503 (breaker open, no replica)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestProxyHealthzDeepAndSpill: /v1/healthz is answered by the proxy
// itself; a group whose only replica dies turns it degraded (503) once
// the prober notices, while decide traffic spills to the surviving
// group and keeps answering 200.
func TestProxyHealthzDeepAndSpill(t *testing.T) {
	var seen sync.Map
	b0 := fakeBackend(t, "b0", &seen)
	b1 := fakeBackend(t, "b1", &seen)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{backendAddr(b0)}},
		{Name: "g1", Addrs: []string{backendAddr(b1)}},
	}, 0)
	p := NewProxyWithOptions(ring, nil, Options{
		ProbeInterval: time.Hour, // rounds driven manually via ProbeNow
		Prober:        resilience.ProberOptions{FailThreshold: 1, SuccessThreshold: 1},
	})
	defer p.Close()
	proxy := httptest.NewServer(p)
	t.Cleanup(proxy.Close)

	getHealth := func() (int, string) {
		resp, err := http.Get(proxy.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out.Status
	}

	// fakeBackend has no /v1/healthz — register reachability via probe
	// failure only after the process is actually gone, so the healthy
	// assertion must run before any probe round ejects on 404.
	if code, status := getHealth(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthy fleet answered %d/%s", code, status)
	}

	// Kill group g1's only replica and let the prober notice.
	b1.Close()
	p.ProbeNow()
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, status := getHealth()
		if code == http.StatusServiceUnavailable && status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz still %d/%s after killing group g1", code, status)
		}
		p.ProbeNow()
		time.Sleep(10 * time.Millisecond)
	}

	// Decide traffic spills to g0 and still answers.
	queries := proxyQueries(32)
	body, _ := json.Marshal(service.DecideRequest{Queries: queries})
	resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded fleet answered decide with %d — spill failed", resp.StatusCode)
	}
	var out service.DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(queries) {
		t.Fatalf("spilled decide merged %d results for %d queries", len(out.Results), len(queries))
	}
	for i, a := range out.Results {
		if !a.Decided || a.Settings[0].Size != "b0" {
			t.Fatalf("query %d answered by %+v, want survivor b0", i, a)
		}
	}
}

// restartableBackend is a minimal fake replica that can be killed and
// brought back on the same address — the shape of a kill -9'd process
// under a supervisor.
type restartableBackend struct {
	t    *testing.T
	addr string
	srv  *http.Server
}

func newRestartableBackend(t *testing.T) *restartableBackend {
	t.Helper()
	b := &restartableBackend{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.start(ln)
	t.Cleanup(func() { b.srv.Close() })
	return b
}

func (b *restartableBackend) start(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/decide", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // drain for reuse
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"result":{"decided":false}}`)
	})
	b.srv = &http.Server{Handler: mux}
	go b.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
}

func (b *restartableBackend) kill() { b.srv.Close() }

func (b *restartableBackend) restart() {
	b.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", b.addr)
		if err == nil {
			b.start(ln)
			return
		}
		if time.Now().After(deadline) {
			b.t.Fatalf("rebinding %s: %v", b.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProbeClosesOpenBreaker: a breaker opened by live traffic just
// before the prober ejects the dying replica must not stay open after
// the replica heals. The pick loop never offers an unavailable replica
// an attempt, so the breaker's own half-open path can never run — only
// the passing health probe can close it. Regression test for the
// readmission deadlock the multi-process chaos drill exposed.
func TestProbeClosesOpenBreaker(t *testing.T) {
	b := newRestartableBackend(t)
	ring, _ := New([]Backend{{Name: "g0", Addrs: []string{b.addr}}}, 0)
	p := NewProxyWithOptions(ring, nil, Options{
		Retries:       -1, // one attempt per request: failures reach the breaker fast
		Breaker:       resilience.BreakerOptions{Threshold: 1, Cooldown: time.Hour},
		ProbeInterval: time.Hour, // rounds driven manually via ProbeNow
		Prober:        resilience.ProberOptions{FailThreshold: 1, SuccessThreshold: 1},
	})
	defer p.Close()
	proxy := httptest.NewServer(p)
	t.Cleanup(proxy.Close)

	post := func() int {
		body, _ := json.Marshal(service.DecideRequest{DecideQuery: proxyQueries(1)[0]})
		resp, err := http.Post(proxy.URL+"/v1/decide", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("healthy replica answered %d", code)
	}

	// Kill. Live traffic opens the breaker (threshold 1) before any
	// probe round has run — the drill's exact interleaving.
	b.kill()
	if code := post(); code == http.StatusOK {
		t.Fatal("decide answered 200 against a dead replica")
	}
	if p.replicaAvailable(0) {
		t.Fatal("replica still available after the breaker opened")
	}
	p.ProbeNow() // the prober ejects it too

	// Heal. The hour-long cooldown proves it is the passing probe, not
	// a cooldown lapse, that closes the breaker.
	b.restart()
	p.ProbeNow()
	if !p.replicaAvailable(0) {
		t.Fatal("replica not back in rotation after a passing probe — breaker stuck open")
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("healed replica answered %d", code)
	}
}

// TestProxyMetricsLocal: /metrics is the routing tier's own registry,
// not a forwarded backend page.
func TestProxyMetricsLocal(t *testing.T) {
	var seen sync.Map
	b0 := fakeBackend(t, "b0", &seen)
	ring, _ := New([]Backend{{Name: "g0", Addrs: []string{backendAddr(b0)}}}, 0)
	p := NewProxy(ring, nil)
	defer p.Close()
	proxy := httptest.NewServer(p)
	t.Cleanup(proxy.Close)

	resp, err := http.Get(proxy.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	for _, series := range []string{
		"qosrmad_route_requests_total",
		"qosrmad_route_retries_total",
		"qosrmad_route_breaker_transitions_total",
		"qosrmad_route_replica_available",
	} {
		if !strings.Contains(string(page), series) {
			t.Fatalf("metrics page missing %s:\n%s", series, page)
		}
	}
}

// fakeWireBackend is a minimal wire-protocol decision server: Hello is
// answered with a fixed Meta, and every decide query is answered with a
// per-core signature (Size = backend id, Freq = bench id, Ways = phase)
// so merge alignment is checkable. unavailable makes it answer every
// decide with an Error frame code Unavailable — a draining backend.
func fakeWireBackend(t *testing.T, id uint8, unavailable bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	meta := wire.Meta{DBHash: 42, NCores: 2, Benches: []wire.MetaBench{
		{ID: 1, Phases: 16, Name: "mcf"}, {ID: 2, Phases: 16, Name: "lbm"},
		{ID: 3, Phases: 16, Name: "milc"}, {ID: 4, Phases: 16, Name: "gcc"},
	}}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := wire.NewReader(c)
				var req wire.DecideRequest
				var out []byte
				for {
					typ, payload, err := r.Next()
					if err != nil {
						return
					}
					switch typ {
					case wire.TypeHello:
						out = wire.AppendMeta(out[:0], &meta)
					case wire.TypeDecideRequest:
						if err := wire.ParseDecideRequest(payload, &req); err != nil {
							out = wire.AppendError(out[:0], req.Seq, wire.ErrCodeMalformed, err.Error())
							break
						}
						if unavailable {
							out = wire.AppendError(out[:0], req.Seq, wire.ErrCodeUnavailable, "draining")
							break
						}
						n, count := int(req.NCores), req.Count()
						resp := wire.DecideResponse{Seq: req.Seq, NCores: req.NCores,
							Decided: make([]bool, count), Settings: make([]wire.Setting, count*n)}
						for i := 0; i < count; i++ {
							resp.Decided[i] = true
							for ci := 0; ci < n; ci++ {
								a := req.Apps[i*n+ci]
								resp.Settings[i*n+ci] = wire.Setting{
									Size: id, Freq: uint8(a.Bench), Ways: uint8(a.Phase)}
							}
						}
						out = wire.AppendDecideResponse(out[:0], &resp)
					default:
						out = wire.AppendError(out[:0], 0, wire.ErrCodeUnsupported, "unexpected frame")
					}
					if _, err := c.Write(out); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// wireDecide sends one DecideRequest through conn and returns the
// parsed answer (failing the test on an Error frame).
func wireDecide(t *testing.T, c net.Conn, r *wire.Reader, req *wire.DecideRequest) wire.DecideResponse {
	t.Helper()
	frame := wire.AppendDecideRequest(nil, req)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if typ == wire.TypeError {
		_, code, msg, _ := wire.ParseError(payload)
		t.Fatalf("wire proxy answered error code %d: %s", code, msg)
	}
	if typ != wire.TypeDecideResponse {
		t.Fatalf("wire proxy answered frame type %#x", typ)
	}
	var resp wire.DecideResponse
	if err := wire.ParseDecideResponse(payload, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// wireTestRequest builds a micro-batch spanning many routing keys.
func wireTestRequest(n int) *wire.DecideRequest {
	req := &wire.DecideRequest{
		Seq: 7, Scheme: 3, Model: 2, Flags: wire.FlagSlackUniform,
		NCores: 2, Slack: 0.2,
	}
	for i := 0; i < n; i++ {
		req.Apps = append(req.Apps,
			wire.App{Bench: uint16(1 + i%4), Phase: uint16(i % 9)},
			wire.App{Bench: uint16(1 + (i+1)%4), Phase: uint16(i % 7)})
	}
	return req
}

// TestWireProxySplitsAndMerges: the binary protocol is split by the
// same ring, forwarded to the owning groups' wire listeners, and merged
// in request order with per-query answers intact.
func TestWireProxySplitsAndMerges(t *testing.T) {
	w0 := fakeWireBackend(t, 10, false)
	w1 := fakeWireBackend(t, 20, false)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{"10.255.0.1:1"}, WireAddrs: []string{w0}},
		{Name: "g1", Addrs: []string{"10.255.0.2:1"}, WireAddrs: []string{w1}},
	}, 0)
	p := NewProxy(ring, nil)
	defer p.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wp := p.ServeWire(ln)

	c, err := net.Dial("tcp", wp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := wire.NewReader(c)

	// Hello must answer the backends' Meta.
	if _, err := c.Write(wire.AppendHello(nil)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := r.Next()
	if err != nil || typ != wire.TypeMeta {
		t.Fatalf("Hello answered type %#x err %v, want Meta", typ, err)
	}
	var meta wire.Meta
	if err := wire.ParseMeta(payload, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.DBHash != 42 || len(meta.Benches) != 4 {
		t.Fatalf("relayed meta %+v", meta)
	}

	req := wireTestRequest(64)
	resp := wireDecide(t, c, r, req)
	if resp.Seq != req.Seq {
		t.Fatalf("response seq %d, want %d", resp.Seq, req.Seq)
	}
	if len(resp.Decided) != req.Count() {
		t.Fatalf("merged %d results for %d queries", len(resp.Decided), req.Count())
	}
	owners := map[uint8]bool{}
	n := int(req.NCores)
	for i := 0; i < req.Count(); i++ {
		if !resp.Decided[i] {
			t.Fatalf("query %d undecided", i)
		}
		for ci := 0; ci < n; ci++ {
			a, s := req.Apps[i*n+ci], resp.Settings[i*n+ci]
			if s.Freq != uint8(a.Bench) || s.Ways != uint8(a.Phase) {
				t.Fatalf("query %d core %d: setting %+v does not match app %+v (merge misaligned)", i, ci, s, a)
			}
		}
		owners[resp.Settings[i*n].Size] = true
	}
	if len(owners) < 2 {
		t.Fatalf("all wire queries landed on %v — the split path was never exercised", owners)
	}
	requests, splits, failures := wp.Stats()
	if requests == 0 || splits == 0 {
		t.Fatalf("wire counters requests=%d splits=%d", requests, splits)
	}
	if failures != 0 {
		t.Fatalf("%d wire forwards exhausted against healthy backends", failures)
	}
}

// TestWireProxyFailover: a dead wire replica is failed over, and a
// replica answering drain goaway (Error code Unavailable) hands the
// request to its sibling — the drain path clients never see.
func TestWireProxyFailover(t *testing.T) {
	live := fakeWireBackend(t, 10, false)
	draining := fakeWireBackend(t, 20, true)
	ring, _ := New([]Backend{
		{Name: "g0", Addrs: []string{"10.255.0.1:1", "10.255.0.2:1", "10.255.0.3:1"},
			WireAddrs: []string{"127.0.0.1:1", draining, live}},
	}, 0)
	p := NewProxy(ring, nil)
	defer p.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wp := p.ServeWire(ln)

	c, err := net.Dial("tcp", wp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := wire.NewReader(c)
	for i := 0; i < 6; i++ {
		req := wireTestRequest(4)
		req.Seq = uint32(100 + i)
		resp := wireDecide(t, c, r, req)
		if resp.Seq != req.Seq || len(resp.Decided) != req.Count() {
			t.Fatalf("request %d: seq %d count %d", i, resp.Seq, len(resp.Decided))
		}
		for ci := range resp.Settings {
			if resp.Settings[ci].Size != 10 {
				t.Fatalf("request %d answered by backend %d, want live 10", i, resp.Settings[ci].Size)
			}
		}
	}
}
