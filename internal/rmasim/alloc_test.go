package rmasim

import (
	"testing"

	"qosrma/internal/core"
)

// Pins backing the //qosrma:noalloc annotations on the stepper: once the
// finished-scratch and per-core statistics buffers (gatherStats) are
// warm, advancing the simulation allocates nothing under the static
// scheme. The coordinated schemes add exactly the manager's documented
// per-decision settings copy, which the core package pins separately.

func TestStepSteadyStateAllocs(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeStatic, core.Model2, nil)
	sim, err := New(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm the scratch buffers
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("Step allocated %.0f times per event under the static scheme, want 0 (gatherStats and the finished scratch must reuse their buffers)", got)
	}

	c := sim.cores[0]
	got = testing.AllocsPerRun(200, func() {
		c.gatherStats(db, 0, 0, false)
	})
	if got != 0 {
		t.Fatalf("gatherStats allocated %.0f times per call, want 0 (it must fill the core's reusable buffer)", got)
	}
}
