package rmasim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

// runReference is a direct port of the pre-stepper one-shot event loop
// (with this PR's exact-completion accounting and additive interval
// audit): the property tests pin Run — now a thin wrapper over the
// resumable Sim — to it, so any drift in the stepper's event ordering,
// stall handling or scoring shows up as a bit-level mismatch.
func runReference(db *simdb.DB, workload []string, mgr *core.Manager, opt Options) (*Result, error) {
	n := db.Sys.NumCores
	if len(workload) != n {
		return nil, nil
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultOptions().MaxEvents
	}
	baseSetting := db.Sys.BaselineSetting()
	baseIdx := db.Lattice.Index(baseSetting)
	cores := make([]*coreState, n)
	for i, bench := range workload {
		id, ok := db.BenchIDOf(bench)
		if !ok {
			return nil, nil
		}
		cores[i] = &coreState{
			bench:      bench,
			id:         id,
			phases:     db.PhaseTraceAt(id),
			rem:        trace.SliceInstructions,
			setting:    baseSetting,
			setIdx:     baseIdx,
			firstRound: true,
		}
		cores[i].refreshRates(db)
		cores[i].refreshBaseTPI(db, baseIdx)
	}

	var timeline []TimelineEvent
	apply := func(settings []arch.Setting, tNow float64) {
		sw := db.Sys.Switch
		for i, c := range cores {
			ns := settings[i]
			old := c.setting
			if ns == old {
				continue
			}
			if opt.Timeline {
				timeline = append(timeline, TimelineEvent{TimeSec: tNow, Core: i, Setting: ns})
			}
			var stallNs, extraJ float64
			if ns.FreqIdx != old.FreqIdx {
				stallNs += sw.DVFSTransNs
				extraJ += sw.DVFSTransJ
			}
			if ns.Size != old.Size {
				stallNs += sw.CoreResizeNs
				extraJ += sw.CoreResizeJ
			}
			if gained := ns.Ways - old.Ways; gained > 0 {
				stallNs += sw.WayMigrateNs * float64(gained)
				extraJ += sw.WayMigrateJ * float64(gained)
			}
			c.stall += stallNs * 1e-9
			if c.firstRound {
				c.energy += extraJ
			}
			c.setting = ns
			c.setIdx = db.Lattice.Index(ns)
			c.refreshRates(db)
		}
	}

	remaining := n
	tNow := 0.0
	var audit stats.Running
	auditIntervals, auditViolations := 0, 0
	horizon := make([]float64, n)
	for ev := 0; ev < opt.MaxEvents && remaining > 0; ev++ {
		next := math.Inf(1)
		for i, c := range cores {
			t := c.stall + c.rem*c.tpi
			horizon[i] = t
			if t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			return nil, nil
		}
		for i, c := range cores {
			if horizon[i] == next {
				if c.stall > 0 {
					if c.firstRound {
						c.energy += c.watts * c.stall
					}
					c.stall = 0
				}
				instr := c.rem
				c.rem = 0
				if c.firstRound {
					c.energy += instr * c.epi
					c.usedInstr += instr
					c.usedFreq += instr * db.Sys.DVFS[c.setting.FreqIdx].FreqGHz
					c.usedWays += instr * float64(c.setting.Ways)
				}
				continue
			}
			dt := next
			if c.stall > 0 {
				burn := math.Min(c.stall, dt)
				c.stall -= burn
				dt -= burn
				if c.firstRound {
					c.energy += c.watts * burn
				}
			}
			if dt <= 0 {
				continue
			}
			instr := dt / c.tpi
			if instr > c.rem {
				instr = c.rem
			}
			c.rem -= instr
			if c.firstRound {
				c.energy += instr * c.epi
				c.usedInstr += instr
				c.usedFreq += instr * db.Sys.DVFS[c.setting.FreqIdx].FreqGHz
				c.usedWays += instr * float64(c.setting.Ways)
			}
		}
		tNow += next

		for coreID, c := range cores {
			if c.rem != 0 || c.stall != 0 {
				continue
			}
			completed := c.slice
			auditIntervals++
			base := c.baseTPI * trace.SliceInstructions
			if bad, pct := intervalViolation(tNow-c.intervalStart, base, mgr.Slack(coreID)); bad {
				auditViolations++
				audit.Add(pct)
			}
			c.intervalStart = tNow

			c.slice++
			if c.slice == len(c.phases) {
				if c.firstRound {
					c.time = tNow
					c.firstRound = false
					remaining--
				}
				c.round++
				c.slice = 0
			}
			c.rem = trace.SliceInstructions

			st := c.gatherStats(db, coreID, completed, opt.Oracle)
			newSettings, changed := mgr.Decide(coreID, st)
			if changed {
				apply(newSettings, tNow)
			}
			c.refreshRates(db)
			c.refreshBaseTPI(db, baseIdx)
		}
	}
	if remaining > 0 {
		return nil, nil
	}

	res := &Result{Scheme: mgr.Scheme().String(), Invocations: mgr.Invocations}
	var sumE, sumBaseE float64
	for i, c := range cores {
		bt, be := baselineRound(db, c.id)
		app := AppResult{
			Core:           i,
			Bench:          c.bench,
			Time:           c.time,
			Energy:         c.energy,
			BaselineTime:   bt,
			BaselineEnergy: be,
			ExcessTime:     (c.time - bt) / bt,
			AllowedSlack:   mgr.Slack(i),
		}
		if c.usedInstr > 0 {
			app.MeanFreqGHz = c.usedFreq / c.usedInstr
			app.MeanWays = c.usedWays / c.usedInstr
		}
		if app.Violated() {
			res.Violations++
		}
		res.Apps = append(res.Apps, app)
		sumE += c.energy
		sumBaseE += be
	}
	res.EnergySavings = 1 - sumE/sumBaseE
	res.Intervals = auditIntervals
	res.IntervalViolations = auditViolations
	res.ViolationMeanPct = audit.Mean()
	res.ViolationStdPct = audit.StdDev()
	res.Timeline = timeline
	return res, nil
}

var (
	customOnce sync.Once
	customDB   *simdb.DB
	customErr  error
)

// customDB2 builds the tiny two-benchmark 2-core database shared by the
// stepper tests (fast enough to run even in -short mode... it is not: the
// detailed simulation still takes a second, so short mode skips).
func customDB2(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping database build in -short mode")
	}
	customOnce.Do(func() {
		sys := arch.DefaultSystemConfig(2)
		customDB, customErr = simdb.Build(sys, customSuite(), simdb.DefaultBuildOptions())
	})
	if customErr != nil {
		t.Fatal(customErr)
	}
	return customDB
}

var customWorkload = []string{"it-hungry", "it-frugal"}

func TestRunMatchesReferenceLoop(t *testing.T) {
	db := customDB2(t)
	cases := []struct {
		name   string
		scheme core.Scheme
		model  core.ModelKind
		slack  []float64
		oracle bool
		tl     bool
	}{
		{"static", core.SchemeStatic, core.Model2, nil, false, false},
		{"dvfs-only", core.SchemeDVFSOnly, core.Model2, nil, false, false},
		{"rm2-realistic", core.SchemeCoordDVFSCache, core.Model2, nil, false, false},
		{"rm2-slack-timeline", core.SchemeCoordDVFSCache, core.Model2, []float64{0.4, 0.2}, false, true},
		{"rm3-oracle", core.SchemeCoordCoreDVFSCache, core.Model3, nil, true, false},
		{"ucp-uncoordinated", core.SchemeUCPDVFS, core.Model2, nil, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Oracle = tc.oracle
			opt.Timeline = tc.tl
			got, err := Run(db, customWorkload, newMgr(db, tc.scheme, tc.model, tc.slack), opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := runReference(db, customWorkload, newMgr(db, tc.scheme, tc.model, tc.slack), opt)
			if err != nil || want == nil {
				t.Fatalf("reference run failed: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stepper Run diverged from the reference loop:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestRunMatchesReferenceLoopFullSuite(t *testing.T) {
	db := testDB(t)
	opt := DefaultOptions()
	got, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil), opt)
	if err != nil || want == nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stepper Run diverged from the reference loop on the full suite")
	}
}

// TestExactInstructionAccounting pins the satellite fix for the asymmetric
// completion epsilons: interval completions are exact (rem and stall reach
// exactly zero), so the retired-instruction total equals completed
// intervals x SliceInstructions plus the in-flight partial intervals, with
// only accumulated rounding — no 1e-3-instruction drops per interval.
func TestExactInstructionAccounting(t *testing.T) {
	db := customDB2(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	sim, err := New(db, customWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for sim.InFirstRound() > 0 {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	expected := float64(sim.CompletedIntervals()) * trace.SliceInstructions
	for _, c := range sim.cores {
		expected += trace.SliceInstructions - c.rem // in-flight partial interval
	}
	if sim.CompletedIntervals() < 100 {
		t.Fatalf("scenario too small to be meaningful: %d intervals", sim.CompletedIntervals())
	}
	// The two totals are computed by different summations (incremental
	// retirement vs completed-interval count), so they agree only up to
	// accumulator rounding — ~1e-14 relative at the 1e11-instruction scale
	// of this run, far below any real instruction drop.
	if diff := math.Abs(sim.Retired() - expected); diff > 1e-12*expected {
		t.Fatalf("retired %.6f instructions, want %.6f (diff %g): completion drops instructions",
			sim.Retired(), expected, diff)
	}
}

// TestIntervalAuditAdditive pins the satellite fix for the QoS-violation
// definition mismatch: the interval audit and AppResult.Violated now share
// the additive thesis definition (excess beyond slack larger than 1% of
// the baseline). The old multiplicative audit margin (dt > allowed*1.01,
// with allowed already slack-adjusted) accepted dt = base*1.412 at 40%
// slack; the additive rule correctly flags it.
func TestIntervalAuditAdditive(t *testing.T) {
	const base, slack = 1.0, 0.4
	cases := []struct {
		dt       float64
		violated bool
	}{
		{base * 1.405, false}, // within slack + 1%
		{base * 1.409, false}, // just inside the additive margin
		{base * 1.412, true},  // regression: multiplicative margin accepted this
		{base * 1.5, true},
	}
	for _, tc := range cases {
		bad, pct := intervalViolation(tc.dt, base, slack)
		if bad != tc.violated {
			t.Fatalf("intervalViolation(%v, %v, %v) = %v, want %v", tc.dt, base, slack, bad, tc.violated)
		}
		// The two counters must agree: an application whose whole run shows
		// the same relative excess is violated under the same conditions.
		app := AppResult{ExcessTime: (tc.dt - base) / base, AllowedSlack: slack}
		if app.Violated() != tc.violated {
			t.Fatalf("AppResult.Violated disagrees with the interval audit at dt=%v", tc.dt)
		}
		if bad && pct <= 0 {
			t.Fatalf("violating interval with non-positive magnitude %v", pct)
		}
	}
	// Zero slack: the 1%-of-baseline margin is unchanged from the paper.
	if bad, _ := intervalViolation(1.009, 1, 0); bad {
		t.Fatal("sub-1% interval excess must not count")
	}
	if bad, _ := intervalViolation(1.011, 1, 0); !bad {
		t.Fatal("1.1% interval excess must count")
	}
}

// TestSetRatesZeroDuration pins the satellite fix for stale stall power: a
// degenerate zero-duration performance point must zero the stall wattage
// rather than keep charging the previous setting's rate.
func TestSetRatesZeroDuration(t *testing.T) {
	c := &coreState{watts: 42}
	c.setRates(&simdb.PerfPoint{Seconds: 0, TPI: 1e-9, EPI: 1e-9})
	if c.watts != 0 {
		t.Fatalf("watts = %v after zero-duration point, want 0", c.watts)
	}
	c.setRates(&simdb.PerfPoint{Seconds: 2, TPI: 1e-9, EPI: 1e-9,
		Energy: power.Breakdown{CoreStat: 4, Uncore: 2}})
	if c.watts != 3 {
		t.Fatalf("watts = %v, want 3", c.watts)
	}
}

func TestArriveDepartLifecycle(t *testing.T) {
	db := customDB2(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil)
	sim := NewIdle(db, mgr, DefaultOptions())

	if n := sim.Occupied(); n != 0 {
		t.Fatalf("idle sim occupied = %d", n)
	}
	if !math.IsInf(sim.NextEventTime(), 1) {
		t.Fatal("idle sim must have no next event")
	}
	if _, err := sim.Step(); err == nil {
		t.Fatal("stepping an empty sim must fail")
	}
	if _, err := sim.Depart(0); err == nil {
		t.Fatal("departing an idle core must fail")
	}
	if err := sim.Arrive(0, "nosuch"); err == nil {
		t.Fatal("arriving an unknown benchmark must fail")
	}

	if err := sim.Arrive(0, "it-hungry"); err != nil {
		t.Fatal(err)
	}
	if err := sim.Arrive(0, "it-frugal"); err == nil {
		t.Fatal("double occupancy must fail")
	}

	// Run the lone application to round completion and depart it.
	var done bool
	for !done {
		finished, err := sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range finished {
			if id != 0 {
				t.Fatalf("unexpected finisher %d", id)
			}
			done = true
		}
	}
	app, err := sim.Depart(0)
	if err != nil {
		t.Fatal(err)
	}
	if app.Bench != "it-hungry" || app.Time <= 0 || app.Energy <= 0 {
		t.Fatalf("degenerate departure result %+v", app)
	}
	// Alone on the machine the application must meet its QoS.
	if app.Violated() {
		t.Fatalf("lone application violated QoS: excess %.4f", app.ExcessTime)
	}
	if sim.Occupied() != 0 {
		t.Fatal("core still occupied after departure")
	}

	// The core is reusable, and the second tenant starts a fresh round at
	// the current (advanced) time.
	if err := sim.Arrive(0, "it-frugal"); err != nil {
		t.Fatal(err)
	}
	snap := sim.Snapshot()
	if !snap.Cores[0].Occupied || snap.Cores[0].Bench != "it-frugal" || snap.Cores[0].StartSec != sim.Now() {
		t.Fatalf("bad snapshot after re-arrival: %+v", snap.Cores[0])
	}
}

// TestStaggeredArrivalsDeterministic drives an open-system scenario — a
// second application arriving mid-run, both departing on completion — and
// pins determinism across independent executions.
func TestStaggeredArrivalsDeterministic(t *testing.T) {
	db := customDB2(t)
	scenario := func() []AppResult {
		mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil)
		sim := NewIdle(db, mgr, DefaultOptions())
		if err := sim.Arrive(0, "it-hungry"); err != nil {
			t.Fatal(err)
		}
		// Let the first app run for a while, then inject the second at an
		// arbitrary instant between interval completions.
		mid := sim.NextEventTime() * 7.5
		if _, err := sim.RunUntil(mid); err != nil {
			t.Fatal(err)
		}
		if err := sim.Arrive(1, "it-frugal"); err != nil {
			t.Fatal(err)
		}
		var out []AppResult
		for sim.Occupied() > 0 {
			finished, err := sim.Step()
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range finished {
				app, err := sim.Depart(id)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, app)
			}
		}
		return out
	}
	a, b := scenario(), scenario()
	if len(a) != 2 {
		t.Fatalf("expected 2 departures, got %d", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("open-system scenario not deterministic:\n%+v\n%+v", a, b)
	}
	for _, app := range a {
		if app.Time <= 0 || app.Violated() {
			t.Fatalf("departure %+v violated or degenerate", app)
		}
	}
}
