// Package rmasim implements the co-phase RMA simulator of the thesis
// (Chapter 2, Figure 2.2): a global-event-driven proxy simulation of a full
// multi-programmed execution under the control of a resource-management
// algorithm. Each application advances through its SimPoint phase trace;
// the time and energy of every interval at the current resource setting
// come from the simulation-results database; the RMA is invoked each time a
// core retires a 100M-instruction interval; reconfiguration overheads are
// charged when settings change; and applications that finish restart
// (co-phase methodology) so that contention stays realistic until every
// application has completed at least one full round, which is the scored
// portion.
//
// The interval loop is allocation-free and map-free: benchmark names are
// interned to dense simdb.BenchIDs up front, the current setting is carried
// as a lattice index, and every database query is a precompiled-table read.
package rmasim

import (
	"fmt"
	"math"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

// Options controls one simulation run.
type Options struct {
	// Oracle: when true the RMA receives perfect statistics — the exact
	// profiles and true ILP of the *upcoming* interval (the paper's
	// "perfect models with no prediction error" experiment). When false it
	// receives the set-sampled profiles of the interval that just ended.
	Oracle bool
	// MaxEvents bounds the event loop as a safety net.
	MaxEvents int
	// Timeline records every setting change (time-series of allocations,
	// as in the papers' run-time behaviour figures).
	Timeline bool
}

// DefaultOptions returns the standard run configuration.
func DefaultOptions() Options { return Options{MaxEvents: 2_000_000} }

// AppResult is the scored outcome of one application's first round.
type AppResult struct {
	Core  int
	Bench string

	Time   float64 // seconds to complete the first full round
	Energy float64 // joules consumed by the core during its first round

	BaselineTime   float64 // same round under the static baseline
	BaselineEnergy float64

	// ExcessTime is (Time - BaselineTime) / BaselineTime; positive values
	// mean the application ran slower than the baseline.
	ExcessTime float64
	// MeanFreqGHz and MeanWays are the instruction-weighted averages of the
	// resource allocation the application actually ran with.
	MeanFreqGHz float64
	MeanWays    float64
	// AllowedSlack is the QoS relaxation the RMA was granted for this core.
	AllowedSlack float64
}

// Violated reports whether the application's QoS was violated: execution
// more than 1% slower than the (slack-adjusted) baseline — the thesis
// counts values below 1% as negligible.
func (a AppResult) Violated() bool {
	return a.ExcessTime > a.AllowedSlack+0.01
}

// Result is the outcome of one workload simulation.
type Result struct {
	Scheme string
	Apps   []AppResult

	// EnergySavings is 1 - sum(app energy) / sum(baseline app energy).
	EnergySavings float64
	// Violations is the number of applications with a QoS violation.
	Violations int
	// Invocations counts RMA invocations during the run.
	Invocations int

	// Interval-level QoS audit (Paper II §V): for every completed interval,
	// the achieved interval time is compared against the same interval's
	// slack-adjusted baseline time.
	Intervals          int     // intervals audited
	IntervalViolations int     // intervals more than 1% beyond the target
	ViolationMeanPct   float64 // mean violation magnitude (percent, violating intervals)
	ViolationStdPct    float64 // standard deviation of the magnitude

	// Timeline holds the allocation time-series when Options.Timeline is
	// set: one event per setting change per core.
	Timeline []TimelineEvent
}

// TimelineEvent is one resource-allocation change.
type TimelineEvent struct {
	TimeSec float64
	Core    int
	Setting arch.Setting
}

// coreState tracks one application's progress through its phase trace.
type coreState struct {
	bench   string
	id      simdb.BenchID
	phases  []int
	slice   int     // index into phases
	rem     float64 // instructions remaining in the current interval
	stall   float64 // pending reconfiguration stall (seconds)
	setting arch.Setting
	setIdx  int // lattice index of setting

	round      int
	time       float64 // first-round completion time
	energy     float64 // energy accumulated during round 0
	tpi        float64 // current time per instruction
	epi        float64 // current energy per instruction
	watts      float64 // current power (for stall energy)
	firstRound bool    // true while in round 0

	intervalStart float64 // wall time when the current interval began
	baseTPI       float64 // baseline TPI of the current interval's phase

	// Instruction-weighted allocation usage during round 0.
	usedInstr float64
	usedFreq  float64 // sum of freqGHz x instructions
	usedWays  float64 // sum of ways x instructions

	// stats is the reusable IntervalStats buffer handed to the RMA. The
	// manager DOES retain the pointer beyond Decide (lastStats, read by
	// the uncoordinated scheme on later invocations), so the buffer must
	// be owned by exactly this core: it is rewritten only immediately
	// before this core's own Decide re-stores it, which preserves the
	// per-snapshot semantics a freshly allocated struct would have. The
	// profile slices alias the immutable database records.
	stats core.IntervalStats
}

// Run simulates the workload (one benchmark name per core) under the given
// manager and returns the scored result. The manager must be configured for
// the same system as the database.
func Run(db *simdb.DB, workload []string, mgr *core.Manager, opt Options) (*Result, error) {
	n := db.Sys.NumCores
	if len(workload) != n {
		return nil, fmt.Errorf("rmasim: workload has %d apps, system has %d cores", len(workload), n)
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultOptions().MaxEvents
	}

	baseSetting := db.Sys.BaselineSetting()
	baseIdx := db.Lattice.Index(baseSetting)
	cores := make([]*coreState, n)
	for i, bench := range workload {
		id, ok := db.BenchIDOf(bench)
		if !ok {
			return nil, fmt.Errorf("rmasim: no analysis for %s", bench)
		}
		cores[i] = &coreState{
			bench:      bench,
			id:         id,
			phases:     db.PhaseTraceAt(id),
			rem:        trace.SliceInstructions,
			setting:    baseSetting,
			setIdx:     baseIdx,
			firstRound: true,
		}
		cores[i].refreshRates(db)
		cores[i].refreshBaseTPI(db, baseIdx)
	}

	var timeline []TimelineEvent
	record := func(t float64, core int, s arch.Setting) {
		if opt.Timeline {
			timeline = append(timeline, TimelineEvent{TimeSec: t, Core: core, Setting: s})
		}
	}

	remaining := n // cores still in round 0
	tNow := 0.0
	var audit stats.Running
	auditIntervals, auditViolations := 0, 0
	for ev := 0; ev < opt.MaxEvents && remaining > 0; ev++ {
		// Find the earliest interval completion.
		next := math.Inf(1)
		for _, c := range cores {
			if t := c.stall + c.rem*c.tpi; t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("rmasim: no progress possible")
		}

		// Advance every core by `next` seconds.
		for _, c := range cores {
			dt := next
			if c.stall > 0 {
				burn := math.Min(c.stall, dt)
				c.stall -= burn
				dt -= burn
				if c.firstRound {
					c.energy += c.watts * burn // stalled core still leaks
				}
			}
			if dt <= 0 {
				continue
			}
			instr := dt / c.tpi
			if instr > c.rem {
				instr = c.rem
			}
			c.rem -= instr
			if c.firstRound {
				c.energy += instr * c.epi
				c.usedInstr += instr
				c.usedFreq += instr * db.Sys.DVFS[c.setting.FreqIdx].FreqGHz
				c.usedWays += instr * float64(c.setting.Ways)
			}
		}
		tNow += next

		// Handle completions (ties complete together).
		for coreID, c := range cores {
			if c.rem > 1e-3 || c.stall > 1e-18 {
				continue
			}
			completed := c.slice

			// Interval-level QoS audit: achieved interval time against the
			// slack-adjusted baseline of the same interval.
			auditIntervals++
			allowed := c.baseTPI * trace.SliceInstructions * (1 + mgr.Slack(coreID))
			if dt := tNow - c.intervalStart; dt > allowed*1.01 {
				auditViolations++
				audit.Add((dt - allowed) / allowed * 100)
			}
			c.intervalStart = tNow

			// Advance to the next interval.
			c.slice++
			if c.slice == len(c.phases) {
				if c.firstRound {
					c.time = tNow
					c.firstRound = false
					remaining--
				}
				c.round++
				c.slice = 0
			}
			c.rem = trace.SliceInstructions

			// Invoke the RMA with this core's statistics.
			st := c.gatherStats(db, coreID, completed, opt.Oracle)
			newSettings, changed := mgr.Decide(coreID, st)
			if changed {
				applySettings(db, cores, newSettings, record, tNow)
			}
			// The completing core entered a new interval (possibly a new
			// phase); its rates must be refreshed even when its setting is
			// unchanged.
			c.refreshRates(db)
			c.refreshBaseTPI(db, baseIdx)
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("rmasim: event budget exhausted with %d apps unfinished", remaining)
	}

	res := score(db, mgr, cores)
	res.Intervals = auditIntervals
	res.IntervalViolations = auditViolations
	res.ViolationMeanPct = audit.Mean()
	res.ViolationStdPct = audit.StdDev()
	res.Timeline = timeline
	return res, nil
}

// refreshBaseTPI caches the baseline TPI of the core's current interval.
func (c *coreState) refreshBaseTPI(db *simdb.DB, baseIdx int) {
	c.baseTPI = db.PerfAt(c.id, c.phases[c.slice], baseIdx).TPI
}

// refreshRates updates a core's TPI/EPI for its current interval + setting.
func (c *coreState) refreshRates(db *simdb.DB) {
	pt := db.PerfAt(c.id, c.phases[c.slice], c.setIdx)
	c.tpi = pt.TPI
	c.epi = pt.EPI
	if pt.Seconds > 0 {
		// Power drawn while stalled on a reconfiguration: leakage + uncore.
		c.watts = (pt.Energy.CoreStat + pt.Energy.Uncore) / pt.Seconds
	}
}

// applySettings installs new settings on all cores, charging
// reconfiguration overheads for every core whose allocation changed.
func applySettings(db *simdb.DB, cores []*coreState, settings []arch.Setting, record func(float64, int, arch.Setting), tNow float64) {
	sw := db.Sys.Switch
	for i, c := range cores {
		s := settings[i]
		old := c.setting
		if s == old {
			continue
		}
		record(tNow, i, s)
		var stallNs, extraJ float64
		if s.FreqIdx != old.FreqIdx {
			stallNs += sw.DVFSTransNs
			extraJ += sw.DVFSTransJ
		}
		if s.Size != old.Size {
			stallNs += sw.CoreResizeNs
			extraJ += sw.CoreResizeJ
		}
		if gained := s.Ways - old.Ways; gained > 0 {
			stallNs += sw.WayMigrateNs * float64(gained)
			extraJ += sw.WayMigrateJ * float64(gained)
		}
		c.stall += stallNs * 1e-9
		if c.firstRound {
			c.energy += extraJ
		}
		c.setting = s
		c.setIdx = db.Lattice.Index(s)
		c.refreshRates(db)
	}
}

// gatherStats fills the core's reusable IntervalStats buffer with what the
// RMA observes after the core completed interval `completed`.
func (c *coreState) gatherStats(db *simdb.DB, coreID, completed int, oracle bool) *core.IntervalStats {
	// Realistic statistics describe the interval that just ended; oracle
	// statistics describe the upcoming one.
	sliceIdx := completed
	if oracle {
		sliceIdx = c.slice
	}
	phase := c.phases[sliceIdx]
	rec := db.RecordAt(c.id, phase)
	pt := db.PerfAt(c.id, phase, c.setIdx)
	st := &c.stats
	*st = core.IntervalStats{
		Core:          coreID,
		Setting:       c.setting,
		Instr:         trace.SliceInstructions,
		Cycles:        pt.Cycles,
		LLCAccesses:   pt.LLCAccesses,
		BranchMisses:  rec.BranchMPKI * trace.SliceInstructions / 1000,
		TotalMisses:   pt.Misses,
		LeadingMisses: pt.Leading,
	}
	if oracle {
		st.ATDMisses = rec.Misses
		st.ATDLeading = rec.Leading
		st.IlpIPC = rec.IlpIPC
	} else {
		st.ATDMisses = rec.SampledMisses
		st.ATDLeading = rec.SampledLeading
	}
	return st
}

// score computes per-app baselines and aggregates the result.
func score(db *simdb.DB, mgr *core.Manager, cores []*coreState) *Result {
	res := &Result{
		Scheme:      mgr.Scheme().String(),
		Invocations: mgr.Invocations,
	}
	var sumE, sumBaseE float64
	for i, c := range cores {
		bt, be := baselineRound(db, c.id)
		app := AppResult{
			Core:           i,
			Bench:          c.bench,
			Time:           c.time,
			Energy:         c.energy,
			BaselineTime:   bt,
			BaselineEnergy: be,
			ExcessTime:     (c.time - bt) / bt,
			AllowedSlack:   mgr.Slack(i),
		}
		if c.usedInstr > 0 {
			app.MeanFreqGHz = c.usedFreq / c.usedInstr
			app.MeanWays = c.usedWays / c.usedInstr
		}
		if app.Violated() {
			res.Violations++
		}
		res.Apps = append(res.Apps, app)
		sumE += c.energy
		sumBaseE += be
	}
	res.EnergySavings = 1 - sumE/sumBaseE
	return res
}

// BaselineRound returns the time and energy of one full round of the
// benchmark at the static baseline setting. Under strict partitioning the
// baseline is independent of co-runners, so it can be computed directly
// from the database.
func BaselineRound(db *simdb.DB, bench string) (seconds, joules float64, err error) {
	id, ok := db.BenchIDOf(bench)
	if !ok {
		return 0, 0, fmt.Errorf("rmasim: no analysis for %s", bench)
	}
	seconds, joules = baselineRound(db, id)
	return seconds, joules, nil
}

// baselineRound is the interned fast path of BaselineRound.
func baselineRound(db *simdb.DB, id simdb.BenchID) (seconds, joules float64) {
	baseIdx := db.Lattice.Index(db.Sys.BaselineSetting())
	for _, phase := range db.PhaseTraceAt(id) {
		pt := db.PerfAt(id, phase, baseIdx)
		seconds += pt.Seconds
		joules += pt.EPI * pt.Instr
	}
	return seconds, joules
}
