// Package rmasim implements the co-phase RMA simulator of the thesis
// (Chapter 2, Figure 2.2): a global-event-driven proxy simulation of a full
// multi-programmed execution under the control of a resource-management
// algorithm. Each application advances through its SimPoint phase trace;
// the time and energy of every interval at the current resource setting
// come from the simulation-results database; the RMA is invoked each time a
// core retires a 100M-instruction interval; reconfiguration overheads are
// charged when settings change; and applications that finish restart
// (co-phase methodology) so that contention stays realistic until every
// application has completed at least one full round, which is the scored
// portion.
//
// The simulator is a resumable stepper: Sim carries the full machine state
// between events, so callers can interleave Step with Arrive and Depart to
// express open-system scenarios — applications entering and leaving a
// machine at arbitrary times — on the same event loop and accounting the
// closed-world Run wrapper uses (internal/cluster drives whole fleets of
// Sims this way). Run itself remains the one-shot paper entry point: one
// application per core, simulated until every first round completes.
//
// The interval loop is allocation-free and map-free: benchmark names are
// interned to dense simdb.BenchIDs up front, the current setting is carried
// as a lattice index, and every database query is a precompiled-table read.
// Interval completions are exact — the core whose completion defines an
// event horizon retires precisely its remaining instructions, so rem and
// stall reach exactly zero and no epsilon of work is ever dropped.
package rmasim

import (
	"fmt"
	"math"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

// Options controls one simulation run.
type Options struct {
	// Oracle: when true the RMA receives perfect statistics — the exact
	// profiles and true ILP of the *upcoming* interval (the paper's
	// "perfect models with no prediction error" experiment). When false it
	// receives the set-sampled profiles of the interval that just ended.
	Oracle bool
	// MaxEvents bounds the event loop as a safety net.
	MaxEvents int
	// Timeline records every setting change (time-series of allocations,
	// as in the papers' run-time behaviour figures).
	Timeline bool
}

// DefaultOptions returns the standard run configuration.
func DefaultOptions() Options { return Options{MaxEvents: 2_000_000} }

// AppResult is the scored outcome of one application's first round.
type AppResult struct {
	Core  int
	Bench string

	Time   float64 // seconds to complete the first full round
	Energy float64 // joules consumed by the core during its first round

	BaselineTime   float64 // same round under the static baseline
	BaselineEnergy float64

	// ExcessTime is (Time - BaselineTime) / BaselineTime; positive values
	// mean the application ran slower than the baseline.
	ExcessTime float64
	// MeanFreqGHz and MeanWays are the instruction-weighted averages of the
	// resource allocation the application actually ran with.
	MeanFreqGHz float64
	MeanWays    float64
	// AllowedSlack is the QoS relaxation the RMA was granted for this core.
	AllowedSlack float64
}

// Violated reports whether the application's QoS was violated: execution
// more than 1% slower than the (slack-adjusted) baseline — the thesis
// counts values below 1% as negligible.
func (a AppResult) Violated() bool {
	return a.ExcessTime > a.AllowedSlack+0.01
}

// Result is the outcome of one workload simulation.
type Result struct {
	Scheme string
	Apps   []AppResult

	// EnergySavings is 1 - sum(app energy) / sum(baseline app energy).
	EnergySavings float64
	// Violations is the number of applications with a QoS violation.
	Violations int
	// Invocations counts RMA invocations during the run.
	Invocations int

	// Interval-level QoS audit (Paper II §V): for every completed interval,
	// the achieved interval time is compared against the same interval's
	// slack-adjusted baseline time, under the same additive thesis
	// definition AppResult.Violated applies at whole-run granularity.
	Intervals          int     // intervals audited
	IntervalViolations int     // intervals beyond the slack-adjusted target
	ViolationMeanPct   float64 // mean violation magnitude (percent, violating intervals)
	ViolationStdPct    float64 // standard deviation of the magnitude

	// Timeline holds the allocation time-series when Options.Timeline is
	// set: one event per setting change per core.
	Timeline []TimelineEvent
}

// TimelineEvent is one resource-allocation change.
type TimelineEvent struct {
	TimeSec float64
	Core    int
	Setting arch.Setting
}

// coreState tracks one application's progress through its phase trace.
type coreState struct {
	bench   string
	id      simdb.BenchID
	phases  []int
	slice   int     // index into phases
	rem     float64 // instructions remaining in the current interval
	stall   float64 // pending reconfiguration stall (seconds)
	setting arch.Setting
	setIdx  int // lattice index of setting

	round      int
	start      float64 // wall time the application was placed on the core
	time       float64 // first-round completion time (relative to start)
	energy     float64 // energy accumulated during round 0
	tpi        float64 // current time per instruction
	epi        float64 // current energy per instruction
	watts      float64 // current power (for stall energy)
	firstRound bool    // true while in round 0

	intervalStart float64 // wall time when the current interval began
	baseTPI       float64 // baseline TPI of the current interval's phase

	// Instruction-weighted allocation usage during round 0.
	usedInstr float64
	usedFreq  float64 // sum of freqGHz x instructions
	usedWays  float64 // sum of ways x instructions

	// stats is the reusable IntervalStats buffer handed to the RMA. The
	// manager DOES retain the pointer beyond Decide (lastStats, read by
	// the uncoordinated scheme on later invocations), so the buffer must
	// be owned by exactly this core: it is rewritten only immediately
	// before this core's own Decide re-stores it, which preserves the
	// per-snapshot semantics a freshly allocated struct would have. The
	// profile slices alias the immutable database records.
	stats core.IntervalStats
}

// Sim is a resumable co-phase simulation: the event loop of Run broken
// into single-event steps, with cores that can be populated (Arrive) and
// vacated (Depart) between events. A Sim is not safe for concurrent use.
type Sim struct {
	db  *simdb.DB
	mgr *core.Manager
	opt Options

	baseIdx int
	cores   []*coreState // index = core ID; nil = unoccupied
	tNow    float64
	events  int

	inFirstRound int // occupied cores still executing their first round

	auditIntervals  int
	auditViolations int
	audit           stats.Running

	completedIntervals int
	retired            float64 // instructions retired across all cores

	timeline []TimelineEvent
	horizon  []float64 // scratch: per-core completion horizon of one step
	finished []int     // scratch: Step's round-completion result buffer
}

// New builds a simulation with one application per core (the closed-world
// workload shape of the papers), every core at the baseline setting. The
// manager must be configured for the same system as the database.
func New(db *simdb.DB, workload []string, mgr *core.Manager, opt Options) (*Sim, error) {
	n := db.Sys.NumCores
	if len(workload) != n {
		return nil, fmt.Errorf("rmasim: workload has %d apps, system has %d cores", len(workload), n)
	}
	s := NewIdle(db, mgr, opt)
	for i, bench := range workload {
		if err := s.Arrive(i, bench); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewIdle builds a simulation with every core unoccupied; applications are
// placed with Arrive as they enter the system (the open-system shape the
// cluster engine drives).
func NewIdle(db *simdb.DB, mgr *core.Manager, opt Options) *Sim {
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultOptions().MaxEvents
	}
	n := db.Sys.NumCores
	s := &Sim{
		db:      db,
		mgr:     mgr,
		opt:     opt,
		baseIdx: db.BaselineIdx(),
		cores:   make([]*coreState, n),
		horizon: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		mgr.Vacate(i)
	}
	return s
}

// Arrive places an application on an idle core at the current simulation
// time. The core starts its first interval at the baseline setting; the
// manager begins optimizing it after its first completed interval.
func (s *Sim) Arrive(coreID int, bench string) error {
	if coreID < 0 || coreID >= len(s.cores) {
		return fmt.Errorf("rmasim: core %d out of range", coreID)
	}
	if s.cores[coreID] != nil {
		return fmt.Errorf("rmasim: core %d is already occupied", coreID)
	}
	id, ok := s.db.BenchIDOf(bench)
	if !ok {
		return fmt.Errorf("rmasim: no analysis for %s", bench)
	}
	c := &coreState{
		bench:         bench,
		id:            id,
		phases:        s.db.PhaseTraceAt(id),
		rem:           trace.SliceInstructions,
		setting:       s.db.Sys.BaselineSetting(),
		setIdx:        s.baseIdx,
		firstRound:    true,
		start:         s.tNow,
		intervalStart: s.tNow,
	}
	c.refreshRates(s.db)
	c.refreshBaseTPI(s.db, s.baseIdx)
	s.cores[coreID] = c
	s.inFirstRound++
	s.mgr.Occupy(coreID)
	// An arrival invalidates the current partition (the running cores may
	// hold ways the idle curve had released): fall back to the safe equal
	// baseline partition, charging reconfiguration overheads where
	// allocations change, until fresh statistics repartition. At
	// construction time every core is already at the baseline and this is
	// a no-op, keeping Run's closed-world accounting untouched.
	s.applySettings(s.mgr.Rebaseline())
	return nil
}

// Depart removes the application from the core and returns its scored
// result, clearing the manager's per-core history so the next arrival
// inherits nothing. The result is QoS-meaningful once the application has
// completed its first full round (Step reports that); departing earlier
// scores the elapsed time of the unfinished round.
func (s *Sim) Depart(coreID int) (AppResult, error) {
	if coreID < 0 || coreID >= len(s.cores) {
		return AppResult{}, fmt.Errorf("rmasim: core %d out of range", coreID)
	}
	c := s.cores[coreID]
	if c == nil {
		return AppResult{}, fmt.Errorf("rmasim: core %d is idle", coreID)
	}
	app := s.appResult(coreID, c)
	if c.firstRound {
		s.inFirstRound--
	}
	s.cores[coreID] = nil
	s.mgr.Vacate(coreID)
	return app, nil
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.tNow }

// Events returns the number of processed completion events.
func (s *Sim) Events() int { return s.events }

// InFirstRound returns how many occupied cores have not yet completed
// their first full round.
func (s *Sim) InFirstRound() int { return s.inFirstRound }

// Occupied returns the number of cores currently hosting an application.
func (s *Sim) Occupied() int {
	n := 0
	for _, c := range s.cores {
		if c != nil {
			n++
		}
	}
	return n
}

// Retired returns the total instructions retired across all cores so far.
func (s *Sim) Retired() float64 { return s.retired }

// CompletedIntervals returns the number of completed 100M-instruction
// intervals across all cores.
func (s *Sim) CompletedIntervals() int { return s.completedIntervals }

// Audit returns the interval-level QoS audit counters so far.
func (s *Sim) Audit() (intervals, violations int) {
	return s.auditIntervals, s.auditViolations
}

// TimelineEvents returns the recorded allocation time-series (nil unless
// Options.Timeline is set). The slice is owned by the Sim.
func (s *Sim) TimelineEvents() []TimelineEvent { return s.timeline }

// NextEventTime returns the absolute simulation time of the next interval
// completion, or +Inf when no application is running.
func (s *Sim) NextEventTime() float64 {
	next := math.Inf(1)
	for _, c := range s.cores {
		if c == nil {
			continue
		}
		if t := c.stall + c.rem*c.tpi; t < next {
			next = t
		}
	}
	return s.tNow + next
}

// Snapshot is a point-in-time view of a simulation.
type Snapshot struct {
	TimeSec      float64
	Events       int
	InFirstRound int
	Cores        []CoreSnapshot
}

// CoreSnapshot describes one core's occupancy and progress.
type CoreSnapshot struct {
	Occupied   bool
	Bench      string
	Round      int
	Slice      int // index into the phase trace of the current interval
	NumSlices  int
	Setting    arch.Setting
	FirstRound bool
	StartSec   float64
}

// Snapshot captures the current simulation state (for diagnostics,
// progress reporting and per-machine dashboards).
func (s *Sim) Snapshot() Snapshot {
	snap := Snapshot{
		TimeSec:      s.tNow,
		Events:       s.events,
		InFirstRound: s.inFirstRound,
		Cores:        make([]CoreSnapshot, len(s.cores)),
	}
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		snap.Cores[i] = CoreSnapshot{
			Occupied:   true,
			Bench:      c.bench,
			Round:      c.round,
			Slice:      c.slice,
			NumSlices:  len(c.phases),
			Setting:    c.setting,
			FirstRound: c.firstRound,
			StartSec:   c.start,
		}
	}
	return snap
}

// retire advances a core by instr instructions, charging energy and the
// instruction-weighted allocation usage while the core is in its scored
// first round.
func (s *Sim) retire(c *coreState, instr float64) {
	c.rem -= instr
	s.retired += instr
	if c.firstRound {
		c.energy += instr * c.epi
		c.usedInstr += instr
		c.usedFreq += instr * s.db.Sys.DVFS[c.setting.FreqIdx].FreqGHz
		c.usedWays += instr * float64(c.setting.Ways)
	}
}

// Step advances the simulation past the next interval-completion event:
// every running core advances to the completion horizon, tied completions
// are processed together (QoS audit, RMA invocation, phase advance), and
// the clock moves. It returns the cores whose application finished a full
// execution round during this event — the open-system departure signal —
// in core order; the returned slice is reused by the next Step call. The
// Options.MaxEvents safety net is enforced here, so every caller — Run,
// RunUntil, the cluster engine, direct steppers — shares one budget guard.
//
// Cores whose own completion defines the horizon retire exactly their
// remaining instructions: rem and stall reach exactly zero, so completion
// detection is epsilon-free and no work is dropped between intervals.
//
//qosrma:noalloc
func (s *Sim) Step() ([]int, error) {
	// Find the earliest interval completion. The per-core horizons are
	// kept so the advance loop below can identify completing cores by the
	// exact value that defined the minimum.
	next := math.Inf(1)
	for i, c := range s.cores {
		if c == nil {
			s.horizon[i] = math.Inf(1)
			continue
		}
		t := c.stall + c.rem*c.tpi
		s.horizon[i] = t
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return nil, fmt.Errorf("rmasim: no progress possible")
	}
	if s.events >= s.opt.MaxEvents {
		return nil, fmt.Errorf("rmasim: event budget exhausted with %d apps unfinished", s.inFirstRound)
	}
	s.events++

	// Advance every core by `next` seconds.
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		if s.horizon[i] == next {
			// This core's completion defines the horizon: drain the stall
			// and retire the exact remainder of the interval.
			if c.stall > 0 {
				if c.firstRound {
					c.energy += c.watts * c.stall // stalled core still leaks
				}
				c.stall = 0
			}
			s.retire(c, c.rem)
			continue
		}
		dt := next
		if c.stall > 0 {
			burn := math.Min(c.stall, dt)
			c.stall -= burn
			dt -= burn
			if c.firstRound {
				c.energy += c.watts * burn
			}
		}
		if dt <= 0 {
			continue
		}
		instr := dt / c.tpi
		if instr > c.rem {
			instr = c.rem
		}
		s.retire(c, instr)
	}
	s.tNow += next

	// Handle completions (ties complete together).
	s.finished = s.finished[:0]
	for coreID, c := range s.cores {
		if c == nil || c.rem != 0 || c.stall != 0 {
			continue
		}
		completed := c.slice

		// Interval-level QoS audit: achieved interval time against the
		// slack-adjusted baseline of the same interval, under the additive
		// thesis definition (excess beyond slack larger than 1% of the
		// baseline), matching AppResult.Violated.
		s.auditIntervals++
		s.completedIntervals++
		base := c.baseTPI * trace.SliceInstructions
		if bad, pct := intervalViolation(s.tNow-c.intervalStart, base, s.mgr.Slack(coreID)); bad {
			s.auditViolations++
			s.audit.Add(pct)
		}
		c.intervalStart = s.tNow

		// Advance to the next interval.
		c.slice++
		if c.slice == len(c.phases) {
			if c.firstRound {
				c.time = s.tNow - c.start
				c.firstRound = false
				s.inFirstRound--
				s.finished = append(s.finished, coreID)
			}
			c.round++
			c.slice = 0
		}
		c.rem = trace.SliceInstructions

		// Invoke the RMA with this core's statistics.
		st := c.gatherStats(s.db, coreID, completed, s.opt.Oracle)
		newSettings, changed := s.mgr.Decide(coreID, st)
		if changed {
			s.applySettings(newSettings)
		}
		// The completing core entered a new interval (possibly a new
		// phase); its rates must be refreshed even when its setting is
		// unchanged.
		c.refreshRates(s.db)
		c.refreshBaseTPI(s.db, s.baseIdx)
	}
	return s.finished, nil
}

// intervalViolation evaluates the interval-level QoS audit: the achieved
// interval time dt against the slack-adjusted baseline base*(1+slack). The
// interval violates when the excess beyond the slack-adjusted target
// exceeds 1% of the baseline — the additive thesis definition, the same
// one AppResult.Violated applies at whole-run granularity. The magnitude
// is the percent excess over the slack-adjusted target.
func intervalViolation(dt, base, slack float64) (violated bool, magnitudePct float64) {
	allowed := base * (1 + slack)
	if dt-allowed > base*0.01 {
		return true, (dt - allowed) / allowed * 100
	}
	return false, 0
}

// AdvanceTo moves the clock to absolute time t without crossing an
// interval completion: every running core advances partially. The caller
// must ensure t does not exceed NextEventTime (RunUntil and the cluster
// engine do); t before the current time is an error.
func (s *Sim) AdvanceTo(t float64) error {
	span := t - s.tNow
	if span < 0 {
		return fmt.Errorf("rmasim: cannot advance to %g, clock is at %g", t, s.tNow)
	}
	if span == 0 {
		return nil
	}
	for _, c := range s.cores {
		if c == nil {
			continue
		}
		dt := span
		if c.stall > 0 {
			burn := math.Min(c.stall, dt)
			c.stall -= burn
			dt -= burn
			if c.firstRound {
				c.energy += c.watts * burn
			}
		}
		if dt <= 0 {
			continue
		}
		instr := dt / c.tpi
		if instr > c.rem {
			instr = c.rem
		}
		s.retire(c, instr)
	}
	s.tNow = t
	return nil
}

// RunUntil advances the simulation to absolute time t, processing every
// completion event scheduled up to and including t, and returns the cores
// whose applications finished a full round on the way (in event order).
func (s *Sim) RunUntil(t float64) ([]int, error) {
	var finished []int
	for s.NextEventTime() <= t {
		f, err := s.Step()
		if err != nil {
			return finished, err
		}
		finished = append(finished, f...)
	}
	if s.tNow < t {
		if err := s.AdvanceTo(t); err != nil {
			return finished, err
		}
	}
	return finished, nil
}

// Run simulates the workload (one benchmark name per core) under the given
// manager and returns the scored result: the classic closed-world entry
// point, a thin wrapper over the stepper. The manager must be configured
// for the same system as the database.
func Run(db *simdb.DB, workload []string, mgr *core.Manager, opt Options) (*Result, error) {
	sim, err := New(db, workload, mgr, opt)
	if err != nil {
		return nil, err
	}
	for sim.inFirstRound > 0 {
		if _, err := sim.Step(); err != nil {
			return nil, err
		}
	}
	return sim.Result(), nil
}

// Result scores the simulation: one AppResult per occupied core, plus the
// aggregate energy savings and the interval-level QoS audit accumulated so
// far. Run calls it once every first round has completed; open-system
// callers score departures individually through Depart instead.
func (s *Sim) Result() *Result {
	res := &Result{
		Scheme:      s.mgr.Scheme().String(),
		Invocations: s.mgr.Invocations,
	}
	var sumE, sumBaseE float64
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		app := s.appResult(i, c)
		if app.Violated() {
			res.Violations++
		}
		res.Apps = append(res.Apps, app)
		sumE += c.energy
		sumBaseE += app.BaselineEnergy
	}
	if sumBaseE > 0 {
		res.EnergySavings = 1 - sumE/sumBaseE
	}
	res.Intervals = s.auditIntervals
	res.IntervalViolations = s.auditViolations
	res.ViolationMeanPct = s.audit.Mean()
	res.ViolationStdPct = s.audit.StdDev()
	res.Timeline = s.timeline
	return res
}

// appResult scores one core's application against its static baseline.
func (s *Sim) appResult(coreID int, c *coreState) AppResult {
	bt, be := baselineRound(s.db, c.id)
	t := c.time
	if c.firstRound {
		// Unfinished round (early departure): score the elapsed time.
		t = s.tNow - c.start
	}
	app := AppResult{
		Core:           coreID,
		Bench:          c.bench,
		Time:           t,
		Energy:         c.energy,
		BaselineTime:   bt,
		BaselineEnergy: be,
		ExcessTime:     (t - bt) / bt,
		AllowedSlack:   s.mgr.Slack(coreID),
	}
	if c.usedInstr > 0 {
		app.MeanFreqGHz = c.usedFreq / c.usedInstr
		app.MeanWays = c.usedWays / c.usedInstr
	}
	return app
}

// refreshBaseTPI caches the baseline TPI of the core's current interval.
func (c *coreState) refreshBaseTPI(db *simdb.DB, baseIdx int) {
	c.baseTPI = db.PerfAt(c.id, c.phases[c.slice], baseIdx).TPI
}

// refreshRates updates a core's TPI/EPI for its current interval + setting.
func (c *coreState) refreshRates(db *simdb.DB) {
	c.setRates(db.PerfAt(c.id, c.phases[c.slice], c.setIdx))
}

// setRates installs an interval's performance point as the core's current
// rates. A degenerate zero-duration point sustains no power draw: watts is
// zeroed rather than left at the previous setting's value, which would
// charge reconfiguration-stall energy at a stale rate.
func (c *coreState) setRates(pt *simdb.PerfPoint) {
	c.tpi = pt.TPI
	c.epi = pt.EPI
	if pt.Seconds > 0 {
		// Power drawn while stalled on a reconfiguration: leakage + uncore.
		c.watts = (pt.Energy.CoreStat + pt.Energy.Uncore) / pt.Seconds
	} else {
		c.watts = 0
	}
}

// applySettings installs new settings on all occupied cores, charging
// reconfiguration overheads for every core whose allocation changed.
func (s *Sim) applySettings(settings []arch.Setting) {
	sw := s.db.Sys.Switch
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		ns := settings[i]
		old := c.setting
		if ns == old {
			continue
		}
		if s.opt.Timeline {
			s.timeline = append(s.timeline, TimelineEvent{TimeSec: s.tNow, Core: i, Setting: ns})
		}
		var stallNs, extraJ float64
		if ns.FreqIdx != old.FreqIdx {
			stallNs += sw.DVFSTransNs
			extraJ += sw.DVFSTransJ
		}
		if ns.Size != old.Size {
			stallNs += sw.CoreResizeNs
			extraJ += sw.CoreResizeJ
		}
		if gained := ns.Ways - old.Ways; gained > 0 {
			stallNs += sw.WayMigrateNs * float64(gained)
			extraJ += sw.WayMigrateJ * float64(gained)
		}
		c.stall += stallNs * 1e-9
		if c.firstRound {
			c.energy += extraJ
		}
		c.setting = ns
		c.setIdx = s.db.Lattice.Index(ns)
		c.refreshRates(s.db)
	}
}

// gatherStats fills the core's reusable IntervalStats buffer with what the
// RMA observes after the core completed interval `completed`.
//
//qosrma:noalloc
func (c *coreState) gatherStats(db *simdb.DB, coreID, completed int, oracle bool) *core.IntervalStats {
	// Realistic statistics describe the interval that just ended; oracle
	// statistics describe the upcoming one.
	sliceIdx := completed
	if oracle {
		sliceIdx = c.slice
	}
	phase := c.phases[sliceIdx]
	rec := db.RecordAt(c.id, phase)
	pt := db.PerfAt(c.id, phase, c.setIdx)
	st := &c.stats
	*st = core.IntervalStats{
		Core:          coreID,
		Setting:       c.setting,
		Instr:         trace.SliceInstructions,
		Cycles:        pt.Cycles,
		LLCAccesses:   pt.LLCAccesses,
		BranchMisses:  rec.BranchMPKI * trace.SliceInstructions / 1000,
		TotalMisses:   pt.Misses,
		LeadingMisses: pt.Leading,
	}
	if oracle {
		st.ATDMisses = rec.Misses
		st.ATDLeading = rec.Leading
		st.IlpIPC = rec.IlpIPC
	} else {
		st.ATDMisses = rec.SampledMisses
		st.ATDLeading = rec.SampledLeading
	}
	return st
}

// BaselineRound returns the time and energy of one full round of the
// benchmark at the static baseline setting. Under strict partitioning the
// baseline is independent of co-runners, so it can be computed directly
// from the database.
func BaselineRound(db *simdb.DB, bench string) (seconds, joules float64, err error) {
	id, ok := db.BenchIDOf(bench)
	if !ok {
		return 0, 0, fmt.Errorf("rmasim: no analysis for %s", bench)
	}
	seconds, joules = baselineRound(db, id)
	return seconds, joules, nil
}

// baselineRound is the interned fast path of BaselineRound.
func baselineRound(db *simdb.DB, id simdb.BenchID) (seconds, joules float64) {
	baseIdx := db.BaselineIdx()
	for _, phase := range db.PhaseTraceAt(id) {
		pt := db.PerfAt(id, phase, baseIdx)
		seconds += pt.Seconds
		joules += pt.EPI * pt.Instr
	}
	return seconds, joules
}
