package rmasim

import (
	"math"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

// customSuite builds a tiny two-benchmark suite that is NOT part of the
// shipped 20-application suite, proving the pipeline handles arbitrary
// generative inputs end to end.
func customSuite() []*trace.Benchmark {
	seg := func(pairs ...[2]int) []int {
		var out []int
		for _, p := range pairs {
			for i := 0; i < p[1]; i++ {
				out = append(out, p[0])
			}
		}
		return out
	}
	hungry := &trace.Benchmark{
		Name: "it-hungry",
		Seed: 0xabc1,
		Behaviors: []trace.Behavior{
			{Name: "hungry/a", IlpIPC: 1.8, BranchMPKI: 4, APKI: 20,
				HotLines: 1500, WarmLines: 4000, PHot: 0.45, PWarm: 0.4,
				PBurst: 0.2, BurstLen: 4, BurstGap: 15, PDep: 0.5},
			{Name: "hungry/b", IlpIPC: 2.4, BranchMPKI: 3, APKI: 10,
				HotLines: 1000, WarmLines: 2500, PHot: 0.55, PWarm: 0.33,
				PBurst: 0.2, BurstLen: 4, BurstGap: 15, PDep: 0.4},
		},
		SliceBehavior: seg([2]int{0, 60}, [2]int{1, 40}, [2]int{0, 50}),
	}
	frugal := &trace.Benchmark{
		Name: "it-frugal",
		Seed: 0xabc2,
		Behaviors: []trace.Behavior{
			{Name: "frugal/a", IlpIPC: 4.0, BranchMPKI: 1, APKI: 0.6,
				HotLines: 400, PHot: 0.93,
				PBurst: 0.15, BurstLen: 3, BurstGap: 20, PDep: 0.2},
		},
		SliceBehavior: seg([2]int{0, 120}),
	}
	return []*trace.Benchmark{hungry, frugal}
}

func TestFullPipelineOnCustomBenchmarks(t *testing.T) {
	sys := arch.DefaultSystemConfig(2)
	db, err := simdb.Build(sys, customSuite(), simdb.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil)
	res, err := Run(db, []string{"it-hungry", "it-frugal"}, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings <= 0.01 {
		t.Fatalf("hungry+frugal pair saved only %.3f", res.EnergySavings)
	}
	for _, a := range res.Apps {
		if a.ExcessTime > 0.15 {
			t.Fatalf("%s: excess %.3f", a.Bench, a.ExcessTime)
		}
	}
}

func TestStrictPartitioningAssumptionHolds(t *testing.T) {
	// The simulation database assumes each core's misses depend only on its
	// own allocation (strict partitioning). Validate against the real
	// partitioned LLC: drive two cores' streams through it under a fixed
	// partition and compare per-core misses with the per-core ATD
	// predictions at those way counts.
	sys := arch.DefaultSystemConfig(2)
	b := customSuite()[0]
	bh0 := b.Behaviors[0]
	bh1 := b.Behaviors[1]
	s0 := bh0.Generate(1, trace.SampleParams{Accesses: 30000, WarmupAccesses: 8000})
	s1 := bh1.Generate(2, trace.SampleParams{Accesses: 30000, WarmupAccesses: 8000})

	quotas := []int{5, 3}
	llc := cache.NewLLC(sys.LLC.Sets, 8, 2)
	llc.SetPartition(quotas)
	atd0 := cache.NewATD(sys.LLC.Sets, 8, 1)
	atd1 := cache.NewATD(sys.LLC.Sets, 8, 1)

	feed := func(a0, a1 trace.Access) {
		// Interleave; disjoint address spaces via the high bit.
		llc.Access(0, a0.Line)
		llc.Access(1, a1.Line|1<<30)
		atd0.Access(a0.Line)
		atd1.Access(a1.Line | 1<<30)
	}
	for i := range s0.Warmup {
		feed(s0.Warmup[i], s1.Warmup[i%len(s1.Warmup)])
	}
	llc.ResetStats()
	atd0.ResetCounters()
	atd1.ResetCounters()
	for i := range s0.Measured {
		feed(s0.Measured[i], s1.Measured[i%len(s1.Measured)])
	}

	check := func(core int, atd *cache.ATD, ways int) {
		real := float64(llc.Misses[core])
		pred := atd.Misses(ways)
		rel := math.Abs(real-pred) / math.Max(real, 1)
		if rel > 0.08 {
			t.Errorf("core %d: real misses %v vs ATD(%d ways) %v (%.1f%% apart) — "+
				"strict-partitioning assumption broken", core, real, ways, pred, rel*100)
		}
	}
	check(0, atd0, quotas[0])
	check(1, atd1, quotas[1])
}
