package rmasim

import (
	"math"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

// testDB builds one full-suite 4-core database shared across tests.
func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second database build in -short mode")
	}
	dbOnce.Do(func() {
		sys := arch.DefaultSystemConfig(4)
		dbInst, dbErr = simdb.Build(sys, trace.Suite(), simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

func newMgr(db *simdb.DB, scheme core.Scheme, kind core.ModelKind, slack []float64) *core.Manager {
	return core.NewManager(core.Config{
		Sys:    db.Sys,
		Power:  power.DefaultParams(db.Sys),
		Scheme: scheme,
		Model:  kind,
		Slack:  slack,
	})
}

var mixedWorkload = []string{"mcf", "soplex", "hmmer", "namd"}

func TestStaticRunMatchesBaseline(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeStatic, core.Model2, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("static run has %d violations", res.Violations)
	}
	if math.Abs(res.EnergySavings) > 1e-6 {
		t.Fatalf("static run saves %v, want 0", res.EnergySavings)
	}
	for _, a := range res.Apps {
		if math.Abs(a.ExcessTime) > 1e-6 {
			t.Fatalf("%s: static excess time %v", a.Bench, a.ExcessTime)
		}
		if math.Abs(a.Energy-a.BaselineEnergy)/a.BaselineEnergy > 1e-6 {
			t.Fatalf("%s: static energy %v vs baseline %v", a.Bench, a.Energy, a.BaselineEnergy)
		}
	}
}

func TestOracleRM2NoViolationsAndSaves(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil)
	opt := DefaultOptions()
	opt.Oracle = true
	res, err := Run(db, mixedWorkload, mgr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("oracle RM2 violations = %d", res.Violations)
	}
	if res.EnergySavings < 0.03 {
		t.Fatalf("oracle RM2 savings = %.3f, want >= 3%% on a favourable mix", res.EnergySavings)
	}
}

func TestOracleRM3BeatsRM2(t *testing.T) {
	db := testDB(t)
	opt := DefaultOptions()
	opt.Oracle = true
	rm2, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	rm3, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordCoreDVFSCache, core.Model3, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rm3.EnergySavings <= rm2.EnergySavings {
		t.Fatalf("RM3 (%.3f) did not beat RM2 (%.3f)", rm3.EnergySavings, rm2.EnergySavings)
	}
}

func TestRealisticRM2BoundedViolations(t *testing.T) {
	// Realistic (sampled, stale, constant-MLP) models do cause QoS
	// violations — the paper reports up to 9% excess; our substrate shows
	// the same mechanism. What must hold is that the excess stays bounded.
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.ExcessTime > 0.25 {
			t.Fatalf("%s: excess time %.3f, model error implausibly large", a.Bench, a.ExcessTime)
		}
	}
}

func TestDVFSOnlyCannotSaveWithoutSlack(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeDVFSOnly, core.Model2, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavings > 0.005 {
		t.Fatalf("DVFS-only saved %.3f without slack; the paper says it cannot", res.EnergySavings)
	}
}

func TestSlackIncreasesSavings(t *testing.T) {
	db := testDB(t)
	opt := DefaultOptions()
	opt.Oracle = true
	tight, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model3, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	slack := []float64{0.4, 0.4, 0.4, 0.4}
	relaxed, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model3, slack), opt)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.EnergySavings <= tight.EnergySavings {
		t.Fatalf("slack did not increase savings: %.3f vs %.3f",
			relaxed.EnergySavings, tight.EnergySavings)
	}
	// The relaxed run may be slower, but not beyond the allowed slack.
	if relaxed.Violations != 0 {
		t.Fatalf("relaxed run violated its relaxed QoS %d times", relaxed.Violations)
	}
}

func TestSlackRespectedPerApp(t *testing.T) {
	db := testDB(t)
	slack := []float64{0.4, 0, 0, 0}
	opt := DefaultOptions()
	opt.Oracle = true
	res, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model3, slack), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Apps {
		if a.AllowedSlack != slack[i] {
			t.Fatalf("app %d slack %v, want %v", i, a.AllowedSlack, slack[i])
		}
		if a.ExcessTime > a.AllowedSlack+0.01 {
			t.Fatalf("%s exceeded its slack: %.3f > %.3f", a.Bench, a.ExcessTime, a.AllowedSlack)
		}
	}
}

func TestRunRejectsWrongWorkloadSize(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeStatic, core.Model2, nil)
	if _, err := Run(db, []string{"mcf"}, mgr, DefaultOptions()); err == nil {
		t.Fatal("expected error for wrong workload size")
	}
}

func TestRunRejectsUnknownBench(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeStatic, core.Model2, nil)
	_, err := Run(db, []string{"mcf", "nosuch", "hmmer", "namd"}, mgr, DefaultOptions())
	if err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestRunDeterministic(t *testing.T) {
	db := testDB(t)
	r1, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(db, mixedWorkload, newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergySavings != r2.EnergySavings || r1.Invocations != r2.Invocations {
		t.Fatal("simulation not deterministic")
	}
	for i := range r1.Apps {
		if r1.Apps[i].Time != r2.Apps[i].Time {
			t.Fatalf("app %d time differs across runs", i)
		}
	}
}

func TestInvocationCountMatchesIntervals(t *testing.T) {
	// The RMA must be invoked once per completed interval; the count is at
	// least the total first-round interval count of the workload.
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	minIntervals := 0
	for _, b := range mixedWorkload {
		tr, err := db.PhaseTrace(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) > minIntervals {
			minIntervals = len(tr)
		}
	}
	if res.Invocations < minIntervals {
		t.Fatalf("invocations %d below longest app %d", res.Invocations, minIntervals)
	}
}

func TestBaselineRoundAdditive(t *testing.T) {
	db := testDB(t)
	secs, joules, err := BaselineRound(db, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := db.PhaseTrace("mcf")
	pt, _ := db.Perf("mcf", tr[0], db.Sys.BaselineSetting())
	if secs < pt.Seconds || joules < pt.EPI*pt.Instr {
		t.Fatal("baseline round smaller than its first interval")
	}
	if secs <= 0 || joules <= 0 {
		t.Fatal("degenerate baseline")
	}
}

func TestViolatedThreshold(t *testing.T) {
	a := AppResult{ExcessTime: 0.005}
	if a.Violated() {
		t.Fatal("sub-1% excess must not count as violation")
	}
	a.ExcessTime = 0.02
	if !a.Violated() {
		t.Fatal("2% excess must count")
	}
	a.AllowedSlack = 0.4
	a.ExcessTime = 0.35
	if a.Violated() {
		t.Fatal("excess within slack must not count")
	}
	a.ExcessTime = 0.45
	if !a.Violated() {
		t.Fatal("excess beyond slack must count")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeStatic, core.Model2, nil)
	opt := Options{MaxEvents: 3}
	if _, err := Run(db, mixedWorkload, mgr, opt); err == nil {
		t.Fatal("expected event-budget error")
	}
}

func TestEnergyConservation(t *testing.T) {
	// First-round energy must be positive and bounded by a plausible
	// power envelope: energy <= peakPower * time.
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordCoreDVFSCache, core.Model3, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.Energy <= 0 || a.Time <= 0 {
			t.Fatalf("%s: non-positive accounting", a.Bench)
		}
		if a.Energy > 50*a.Time {
			t.Fatalf("%s: implied power %v W implausible", a.Bench, a.Energy/a.Time)
		}
	}
}

func TestTimelineRecording(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	opt := DefaultOptions()
	opt.Timeline = true
	res, err := Run(db, mixedWorkload, mgr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline events recorded")
	}
	prev := 0.0
	for i, ev := range res.Timeline {
		if ev.TimeSec < prev {
			t.Fatalf("timeline not ordered at %d", i)
		}
		prev = ev.TimeSec
		if ev.Core < 0 || ev.Core >= len(mixedWorkload) {
			t.Fatalf("bad core id %d", ev.Core)
		}
		if ev.Setting.Ways < 1 || ev.Setting.Ways > db.Sys.LLC.Assoc {
			t.Fatalf("bad ways %d", ev.Setting.Ways)
		}
	}
	// Disabled by default.
	mgr2 := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	res2, err := Run(db, mixedWorkload, mgr2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Timeline) != 0 {
		t.Fatal("timeline recorded without the option")
	}
}

func TestMeanAllocationReporting(t *testing.T) {
	db := testDB(t)
	mgr := newMgr(db, core.SchemeCoordDVFSCache, core.Model2, nil)
	res, err := Run(db, mixedWorkload, mgr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var totalWays float64
	for _, a := range res.Apps {
		if a.MeanFreqGHz < 0.8 || a.MeanFreqGHz > 3.2 {
			t.Fatalf("%s: mean frequency %v outside the DVFS range", a.Bench, a.MeanFreqGHz)
		}
		if a.MeanWays < 1 || a.MeanWays > float64(db.Sys.LLC.Assoc) {
			t.Fatalf("%s: mean ways %v out of range", a.Bench, a.MeanWays)
		}
		totalWays += a.MeanWays
	}
	// Apps run different durations, so the sum of per-app means need not be
	// exactly the associativity, but it must be in its neighbourhood.
	if totalWays < 8 || totalWays > 2*float64(db.Sys.LLC.Assoc) {
		t.Fatalf("summed mean ways %v implausible", totalWays)
	}
}
