// Robustness tests for the two new server-side behaviors: graceful drain
// of the binary port (in-flight frames answered, goaway farewell, wireWG
// wait in Shutdown) and the decide/score load-shed gate.
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"qosrma/internal/stats"
	"qosrma/internal/wire"
)

// TestWireDrainGoaway: Shutdown drains the binary port — the open
// connection receives a goaway Error frame (code Unavailable) instead of
// a bare reset, the connection then closes, new dials are refused, and
// Shutdown itself completes (wireWG does not leak).
func TestWireDrainGoaway(t *testing.T) {
	srv, _, addr := wireServer(t, Options{Shards: 2})
	cl := dialWire(t, addr)
	cl.send(t, wire.AppendHello(nil))
	if typ, _ := cl.next(t); typ != wire.TypeMeta {
		t.Fatalf("hello answered frame type %#x, want Meta", typ)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	typ, payload := cl.next(t)
	if typ != wire.TypeError {
		t.Fatalf("drain sent frame type %#x, want Error (goaway)", typ)
	}
	_, code, msg, err := wire.ParseError(payload)
	if err != nil {
		t.Fatalf("parse goaway: %v", err)
	}
	if code != wire.ErrCodeUnavailable || !strings.Contains(msg, "goaway") {
		t.Fatalf("goaway frame code %d msg %q", code, msg)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, _, err := cl.r.Next(); err == nil {
		t.Fatal("connection still open after goaway")
	}
	if got := srv.wire.goaways.Load(); got == 0 {
		t.Fatal("goaway counter did not move")
	}
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("wire dial succeeded after drain")
	}
}

// TestWireDrainAnswersInFlightFrame: a DecideRequest sent just before the
// drain is answered (bit-for-bit a normal response) before the goaway
// arrives — draining finishes work it has accepted rather than dropping
// it.
func TestWireDrainAnswersInFlightFrame(t *testing.T) {
	srv, _, addr := wireServer(t, Options{Shards: 2})
	_, wireReqs := wireTrace(t, srv, 97, 1)

	cl := dialWire(t, addr)
	cl.send(t, wire.AppendDecideRequest(nil, &wireReqs[0]))
	// Wait until the serve loop has decoded the frame, so the drain below
	// provably starts with the request in flight (not still in a socket
	// buffer, where an immediate read deadline would discard it).
	waitFor(t, "frame decoded", func() bool { return srv.wire.frames.Load() >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	// Exactly two frames arrive, in order: the answer, then the goaway.
	typ, payload := cl.next(t)
	if typ != wire.TypeDecideResponse {
		if typ == wire.TypeError {
			_, code, msg, _ := wire.ParseError(payload)
			t.Fatalf("in-flight frame answered Error code %d %q, want DecideResponse", code, msg)
		}
		t.Fatalf("in-flight frame answered type %#x, want DecideResponse", typ)
	}
	var resp wire.DecideResponse
	if err := wire.ParseDecideResponse(payload, &resp); err != nil {
		t.Fatalf("parse response: %v", err)
	}
	if resp.Seq != wireReqs[0].Seq || len(resp.Decided) != wireReqs[0].Count() {
		t.Fatalf("response seq %d decided %d, want seq %d decided %d",
			resp.Seq, len(resp.Decided), wireReqs[0].Seq, wireReqs[0].Count())
	}
	if typ, _ := cl.next(t); typ != wire.TypeError {
		t.Fatalf("second frame type %#x, want Error (goaway)", typ)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDecideShedsAtMaxInflight: with MaxInflight 1 and one request parked
// inside the handler (held open by an unfinished body), a second decide is
// refused with the shed signature (503 + Retry-After) and the shed counter
// moves; once the slot frees, requests are served again.
func TestDecideShedsAtMaxInflight(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 1, MaxInflight: 1})
	rng := stats.NewRNG(stats.SeedFrom(31, "service/shed-test"))
	q := queryFor(db, rng, "rm2", 0.1)

	// Park a request inside handleDecide: headers promise a body that
	// never finishes, so the JSON decoder blocks while the gate slot is
	// held.
	raw, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	fmt.Fprintf(raw, "POST /v1/decide HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 64\r\n\r\n{")
	waitFor(t, "gate occupied", func() bool { return srv.gate.Inflight() == 1 })

	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Apps: db.BenchNames()[:1]}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("score while full: status %d, want 503", code)
	}
	if got := srv.gate.Shed(); got != 2 {
		t.Fatalf("shed counter %d, want 2", got)
	}

	// Free the slot and the same request is served normally.
	raw.Close()
	waitFor(t, "gate released", func() bool { return srv.gate.Inflight() == 0 })
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("decide after release: status %d", code)
	}
}

// waitFor polls cond (50µs cadence) until it holds or a 5s budget lapses.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
