// Self-audit: the live re-verification of the service's central
// invariant — every cached decision must be bit-identical to a fresh
// library computation. An audit fans one task per shard through the same
// channels decide queries use, so the shard worker itself samples its own
// LRU (preserving single-goroutine ownership of the cache) and recomputes
// each sampled entry on the trusted slow path (computeFresh: a brand-new
// manager, fresh statistics, nothing pooled). Go's randomized map
// iteration makes each audit a fresh random sample for free. A mismatch
// means shard-local pooled state leaked into an answer — exactly the bug
// class the architecture promises away — and degrades /v1/healthz to 503.
package service

import (
	"time"

	"qosrma/internal/ops"
)

// auditTask asks one shard worker to spot-check up to quota cached
// decisions against fresh library computations.
type auditTask struct {
	quota int
	reply chan<- auditShardReport
}

// auditShardReport is one shard's audit contribution.
type auditShardReport struct {
	sampled    int
	mismatches int
}

// runAudit executes on the shard worker, which owns the LRU: it samples
// up to quota cached entries in randomized map order and recomputes each
// from scratch against the snapshot the cache was built from.
func (sh *shard) runAudit(a *auditTask) {
	var r auditShardReport
	sh.lru.each(func(e *lruEntry) bool {
		if r.sampled >= a.quota {
			return false
		}
		r.sampled++
		if !computeFresh(sh.sn, e.q).equal(e.res) {
			r.mismatches++
		}
		return true
	})
	a.reply <- r
}

// Audit spot-checks up to samples cached decisions spread across the
// shards and reports how many were sampled and how many mismatched their
// fresh recomputation. It is what the periodic self-checker and
// POST /admin/check run. The read lock pairs with Close's write lock the
// same way decide's does: while held the workers cannot stop, so every
// audit task is processed and every reply arrives.
func (s *Server) Audit(samples int) ops.AuditReport {
	rep := ops.AuditReport{Time: time.Now()}
	if samples <= 0 {
		samples = 16
	}
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		rep.Error = errServerClosed.Error()
		return rep
	}
	n := len(s.shards)
	quota := (samples + n - 1) / n
	replies := make(chan auditShardReport, n)
	for _, sh := range s.shards {
		sh.ch <- task{audit: &auditTask{quota: quota, reply: replies}}
	}
	for i := 0; i < n; i++ {
		r := <-replies
		rep.Sampled += r.sampled
		rep.Mismatches += r.mismatches
	}
	return rep
}
