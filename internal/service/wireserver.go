// Binary serving path: the wire protocol (internal/wire) served over raw
// TCP beside the HTTP/JSON API. A connection is one goroutine running a
// decode → fan-out → encode loop over per-connection scratch: frames are
// parsed zero-copy out of the read buffer, queries are resolved into a
// reused arena (their canonical keys built by the same appendQueryKey the
// JSON path uses, so both codecs share shard placement and cached
// decisions), and the answer is encoded into a reused output buffer — the
// steady-state loop performs no per-request allocation beyond the one
// WaitGroup of the fan-out. Queries resolved here alias connection scratch,
// so their tasks are marked ephemeral: a shard clones a query before the
// cache may retain it.
//
// Error discipline mirrors the codec's contract: a malformed payload
// inside a well-formed frame answers a TypeError frame and the connection
// continues; an unframeable stream (bad version, oversized declared
// length) answers TypeError and closes, since resynchronization is
// impossible. Responses are bit-identical to the JSON path — both feed
// the same shard channels — which TestWireMatchesJSON pins.
package service

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/wire"
)

// wireStats are the binary path's counters, read by /metrics and healthz
// concurrently with the connection goroutines.
type wireStats struct {
	conns      atomic.Uint64 // connections accepted
	open       atomic.Int64  // connections currently open
	frames     atomic.Uint64 // frames decoded (any type)
	queries    atomic.Uint64 // decide queries answered over the wire
	decodeErrs atomic.Uint64 // malformed/unframeable input events
	goaways    atomic.Uint64 // drain farewell frames sent
}

// ServeWire accepts connections on ln and serves the binary decide
// protocol on each until ln fails or the server closes. It blocks like
// http.Server.Serve; run it on its own goroutine. Close (and Shutdown's
// final phase) closes the listener and every open wire connection;
// ServeWire then returns nil.
func (s *Server) ServeWire(ln net.Listener) error {
	if !s.trackWire(ln, nil) {
		ln.Close()
		return errServerClosed
	}
	defer s.untrackWire(ln, nil)
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.wireClosed() {
				return nil
			}
			return err
		}
		go s.serveWireConn(c)
	}
}

// trackWire registers a listener or connection for teardown by Close,
// refusing (false) once the server is closed or draining. A tracked
// connection joins wireWG, which Shutdown waits on; untrackWire leaves
// it.
func (s *Server) trackWire(ln net.Listener, c net.Conn) bool {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.wireDone || s.wireDraining {
		return false
	}
	if ln != nil {
		if s.wireLns == nil {
			s.wireLns = make(map[net.Listener]struct{})
		}
		s.wireLns[ln] = struct{}{}
	}
	if c != nil {
		if s.wireConns == nil {
			s.wireConns = make(map[net.Conn]struct{})
		}
		s.wireConns[c] = struct{}{}
		s.wireWG.Add(1)
	}
	return true
}

func (s *Server) untrackWire(ln net.Listener, c net.Conn) {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if ln != nil {
		delete(s.wireLns, ln)
	}
	if c != nil {
		delete(s.wireConns, c)
		s.wireWG.Done()
	}
}

func (s *Server) wireClosed() bool {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	return s.wireDone || s.wireDraining
}

// drainWire starts the binary path's graceful drain: listeners stop
// accepting, no new connection registers, and every open connection's
// blocked read is woken (via an immediate read deadline) so its serve
// loop can answer the frame it already holds, send the goaway Error
// frame and exit. Unlike closeWire it leaves established connections
// open for that farewell; Shutdown waits on wireWG for the loops.
func (s *Server) drainWire() {
	s.wireMu.Lock()
	s.wireDraining = true
	for ln := range s.wireLns {
		ln.Close()
	}
	s.wireLns = nil
	for c := range s.wireConns {
		c.SetReadDeadline(time.Now())
	}
	s.wireMu.Unlock()
}

// closeWire tears down the binary serving path: no new listeners or
// connections register, and every open one is closed (which unblocks
// their goroutines' reads). Called from Close.
func (s *Server) closeWire() {
	s.wireMu.Lock()
	s.wireDone = true
	for ln := range s.wireLns {
		ln.Close()
	}
	for c := range s.wireConns {
		c.Close()
	}
	s.wireLns, s.wireConns = nil, nil
	s.wireMu.Unlock()
}

// wireScratch is one connection's reusable decode/resolve/encode state.
// Everything grows to the connection's working set once and is reused for
// every later frame.
//
//qosrma:shardowned
type wireScratch struct {
	req     wire.DecideRequest
	queries []decideQuery  // query arena; each entry keeps its key buffer
	qptrs   []*decideQuery // fan-out view over the arena
	ids     []simdb.BenchID
	phases  []int
	slack   []float64
	results []decideResult
	resp    wire.DecideResponse
	out     []byte

	// Manager-configuration memo: frames on one connection overwhelmingly
	// repeat one (scheme, model, slack) configuration, so the canonical
	// slackKey string is built once and reused until the config changes.
	cfg      managerKey
	cfgSlack []float64
	cfgHasSl bool
	cfgValid bool
}

// serveWireConn runs one connection's serve loop.
func (s *Server) serveWireConn(c net.Conn) {
	if !s.trackWire(nil, c) {
		// Refused because the server is draining or closed: send the
		// goaway frame as a courtesy so the client fails over instead of
		// diagnosing a bare reset.
		s.writeWireGoaway(bufio.NewWriterSize(c, 256))
		c.Close()
		return
	}
	defer s.untrackWire(nil, c)
	defer c.Close()
	s.wire.conns.Add(1)
	s.wire.open.Add(1)
	defer s.wire.open.Add(-1)

	r := wire.NewReader(c)
	bw := bufio.NewWriterSize(c, 64<<10)
	var sc wireScratch
	for {
		typ, payload, err := r.Next()
		if err != nil {
			if s.wireClosed() {
				// drainWire woke the read (or ended it mid-frame): say
				// goodbye so the client retries against a sibling.
				s.writeWireGoaway(bw)
				return
			}
			// Unframeable streams get a last-gasp error frame; plain I/O
			// errors (including clean EOF) just end the connection.
			switch {
			case errors.Is(err, wire.ErrVersion):
				s.wire.decodeErrs.Add(1)
				s.writeWireError(bw, 0, wire.ErrCodeUnsupported, err.Error())
			case errors.Is(err, wire.ErrTooLarge):
				s.wire.decodeErrs.Add(1)
				s.writeWireError(bw, 0, wire.ErrCodeTooLarge, err.Error())
			case err == io.ErrUnexpectedEOF:
				s.wire.decodeErrs.Add(1)
			}
			return
		}
		s.wire.frames.Add(1)
		switch typ {
		case wire.TypeHello:
			if !s.writeWireMeta(bw) {
				return
			}
		case wire.TypeDecideRequest:
			if !s.handleWireDecide(bw, payload, &sc) {
				return
			}
		default:
			// A well-formed frame of a type the server does not accept is
			// recoverable: report it and keep the stream.
			s.wire.decodeErrs.Add(1)
			if !s.writeWireError(bw, wireSeqOf(payload), wire.ErrCodeUnsupported,
				fmt.Sprintf("unsupported frame type %#x", typ)) {
				return
			}
		}
		if s.wireClosed() {
			// The in-flight frame was answered above; now announce the
			// drain and end the connection.
			s.writeWireGoaway(bw)
			return
		}
	}
}

// writeWireGoaway emits the drain farewell: an Error frame (seq 0, code
// Unavailable) that clients interpret as "this replica is leaving,
// retry elsewhere".
func (s *Server) writeWireGoaway(bw *bufio.Writer) {
	s.wire.goaways.Add(1)
	s.writeWireError(bw, 0, wire.ErrCodeUnavailable, "server draining (goaway)")
}

// wireSeqOf best-effort extracts the leading sequence number of a payload
// so error frames can still be matched by pipelining clients.
func wireSeqOf(p []byte) uint32 {
	if len(p) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// writeWireError emits and flushes a TypeError frame, reporting whether
// the connection is still writable.
func (s *Server) writeWireError(bw *bufio.Writer, seq uint32, code wire.ErrCode, msg string) bool {
	out := wire.AppendError(nil, seq, code, msg)
	if _, err := bw.Write(out); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// writeWireMeta answers a Hello with the serving snapshot's Meta frame:
// the explicit BenchID → (phases, name) table clients intern against, the
// core count and the database content hash (the integer form of
// Fingerprint, which DecideRequest frames may pin via DBHash).
func (s *Server) writeWireMeta(bw *bufio.Writer) bool {
	sn := s.snap.Load()
	db := sn.db
	m := wire.Meta{DBHash: sn.hash64, NCores: uint8(db.Sys.NumCores)}
	for _, name := range db.BenchNames() {
		id, _ := db.BenchIDOf(name)
		m.Benches = append(m.Benches, wire.MetaBench{
			ID:     uint16(id),
			Phases: uint16(db.Benches[id].Analysis.NumPhases),
			Name:   name,
		})
	}
	out := wire.AppendMeta(nil, &m)
	if _, err := bw.Write(out); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// handleWireDecide answers one DecideRequest frame: parse, validate
// against the current snapshot, fan out through the same shard channels
// the JSON path uses, encode. Returns false when the connection is no
// longer writable; every request-level failure answers an Error frame and
// keeps the connection.
func (s *Server) handleWireDecide(bw *bufio.Writer, payload []byte, sc *wireScratch) bool {
	req := &sc.req
	if err := wire.ParseDecideRequest(payload, req); err != nil {
		s.wire.decodeErrs.Add(1)
		return s.writeWireError(bw, wireSeqOf(payload), wire.ErrCodeMalformed, err.Error())
	}
	sn := s.snap.Load()
	if req.DBHash != 0 && req.DBHash != sn.hash64 {
		return s.writeWireError(bw, req.Seq, wire.ErrCodeStaleDB,
			fmt.Sprintf("request pinned db %016x, serving %s", req.DBHash, sn.hash))
	}
	count, errCode, err := s.resolveWireQueries(sn, sc)
	if err != nil {
		if errCode == wire.ErrCodeMalformed {
			s.wire.decodeErrs.Add(1)
		}
		return s.writeWireError(bw, req.Seq, errCode, err.Error())
	}
	if err := s.decideInto(sn, sc.qptrs[:count], sc.results[:count], true); err != nil {
		return s.writeWireError(bw, req.Seq, wire.ErrCodeUnavailable, err.Error())
	}
	s.wire.queries.Add(uint64(count))

	resp := &sc.resp
	resp.Seq = req.Seq
	resp.NCores = req.NCores
	resp.Decided = resp.Decided[:0]
	resp.Settings = resp.Settings[:0]
	for i := 0; i < count; i++ {
		res := &sc.results[i]
		resp.Decided = append(resp.Decided, res.decided)
		for _, st := range res.settings {
			resp.Settings = append(resp.Settings, wire.Setting{
				Size: uint8(st.Size),
				Freq: uint8(st.FreqIdx),
				Ways: uint8(st.Ways),
			})
		}
	}
	sc.out = wire.AppendDecideResponse(sc.out[:0], resp)
	if _, err := bw.Write(sc.out); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// resolveWireQueries validates sc.req against the snapshot and fills the
// scratch arenas with resolved queries whose canonical keys are built by
// the same appendQueryKey as the JSON path. On success the first return
// is the query count and sc.qptrs/sc.results are sized to it.
func (s *Server) resolveWireQueries(sn *snapshot, sc *wireScratch) (int, wire.ErrCode, error) {
	req := &sc.req
	db := sn.db
	n := db.Sys.NumCores
	if int(req.NCores) != n {
		return 0, wire.ErrCodeMalformed,
			fmt.Errorf("co-phase vector needs %d apps (one per core), got %d", n, req.NCores)
	}
	if req.Scheme > uint8(core.SchemeUCPDVFS) {
		return 0, wire.ErrCodeMalformed, fmt.Errorf("unknown scheme id %d", req.Scheme)
	}
	scheme := core.Scheme(req.Scheme)
	model, err := parseModel(int(req.Model), scheme)
	if err != nil {
		return 0, wire.ErrCodeMalformed, err
	}
	count := req.Count()
	if count > s.opt.MaxBatch {
		return 0, wire.ErrCodeMalformed,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", count, s.opt.MaxBatch)
	}

	// Slack resolution mirrors resolveQuery exactly: a uniform slack of
	// zero is the nil (no-slack) configuration, a per-core vector is taken
	// verbatim (even all-zero), negatives are rejected.
	var slack []float64
	switch {
	case req.Flags&wire.FlagSlackUniform != 0 && req.Slack != 0:
		sc.slack = growFloat64s(sc.slack, n)
		for i := range sc.slack {
			sc.slack[i] = req.Slack
		}
		slack = sc.slack
	case req.Flags&wire.FlagSlackPerCore != 0:
		sc.slack = growFloat64s(sc.slack, n)
		copy(sc.slack, req.Slacks)
		slack = sc.slack
	}
	for i, v := range slack {
		if v < 0 {
			return 0, wire.ErrCodeMalformed, fmt.Errorf("slack[%d] = %g is negative", i, v)
		}
	}
	if !sc.cfgValid || scheme != sc.cfg.scheme || model != sc.cfg.model ||
		!slackEqual(slack, sc.cfgSlack, sc.cfgHasSl) {
		sc.cfg = managerKey{scheme: scheme, model: model, slackKey: slackKeyOf(slack)}
		sc.cfgSlack = append(sc.cfgSlack[:0], slack...)
		sc.cfgHasSl = slack != nil
		sc.cfgValid = true
	}

	total := count * n
	sc.ids = growBenchIDs(sc.ids, total)
	sc.phases = growInts(sc.phases, total)
	sc.queries = growQueries(sc.queries, count)
	sc.qptrs = growQueryPtrs(sc.qptrs, count)
	sc.results = growResults(sc.results, count)
	for qi := 0; qi < count; qi++ {
		ids := sc.ids[qi*n : (qi+1)*n]
		phases := sc.phases[qi*n : (qi+1)*n]
		for c, a := range req.Apps[qi*n : (qi+1)*n] {
			id := int(a.Bench)
			if id >= len(db.Benches) {
				return 0, wire.ErrCodeMalformed,
					fmt.Errorf("query %d: unknown benchmark id %d", qi, id)
			}
			np := db.Benches[id].Analysis.NumPhases
			if int(a.Phase) >= np {
				return 0, wire.ErrCodeMalformed,
					fmt.Errorf("query %d: benchmark %d has phases 0..%d, got %d", qi, id, np-1, a.Phase)
			}
			ids[c] = simdb.BenchID(id)
			phases[c] = int(a.Phase)
		}
		q := &sc.queries[qi]
		q.cfg = sc.cfg
		q.slack = slack
		q.ids = ids
		q.phases = phases
		q.key = appendQueryKey(q.key[:0], sc.cfg, ids, phases)
		sc.qptrs[qi] = q
	}
	return count, 0, nil
}

// slackEqual compares a candidate slack vector against the memoized one
// (hasPrev distinguishes the nil configuration from an empty slice).
func slackEqual(slack, prev []float64, hasPrev bool) bool {
	if (slack == nil) != !hasPrev || len(slack) != len(prev) {
		return false
	}
	for i, v := range slack {
		if v != prev[i] {
			return false
		}
	}
	return true
}

// The grow helpers resize scratch slices while reusing capacity; growing
// the query arena preserves existing entries so their key buffers keep
// amortizing.
func growFloat64s(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBenchIDs(s []simdb.BenchID, n int) []simdb.BenchID {
	if cap(s) < n {
		return make([]simdb.BenchID, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growResults(s []decideResult, n int) []decideResult {
	if cap(s) < n {
		return make([]decideResult, n)
	}
	return s[:n]
}

func growQueryPtrs(s []*decideQuery, n int) []*decideQuery {
	if cap(s) < n {
		return make([]*decideQuery, n)
	}
	return s[:n]
}

func growQueries(s []decideQuery, n int) []decideQuery {
	if cap(s) < n {
		ns := make([]decideQuery, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}
