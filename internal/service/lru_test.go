package service

import (
	"fmt"
	"testing"
)

// res builds a distinguishable dummy result.
func res(decided bool) decideResult { return decideResult{decided: decided} }

// put computes the key hash and admits+adds unconditionally via the
// public surface, the way the shard worker does on a miss.
func put(l *lru, key string, r decideResult) (admitted bool) {
	k := []byte(key)
	h := keyHash(k)
	if l.admit(h) {
		l.add(k, h, &decideQuery{}, r)
		return true
	}
	return false
}

func getKey(l *lru, key string) (decideResult, bool) {
	k := []byte(key)
	return l.get(k, keyHash(k))
}

// TestLRUGetAddEvict: plain cache mechanics below and at capacity —
// insertion order, recency promotion, LRU eviction of the coldest key.
func TestLRUGetAddEvict(t *testing.T) {
	l := newLRU(3)
	for i := 0; i < 3; i++ {
		if !put(l, fmt.Sprintf("k%d", i), res(i%2 == 0)) {
			t.Fatalf("below capacity, k%d must be admitted", i)
		}
	}
	if l.len() != 3 {
		t.Fatalf("len %d, want 3", l.len())
	}
	// Touch k0 and k2 so k1 is the LRU victim; a re-sighted new key (the
	// doorkeeper saw it once, the second sighting qualifies it) evicts k1.
	if _, ok := getKey(l, "k0"); !ok {
		t.Fatal("k0 missing")
	}
	if _, ok := getKey(l, "k2"); !ok {
		t.Fatal("k2 missing")
	}
	if put(l, "new", res(true)) {
		t.Fatal("first sighting of a new key at capacity must be turned away by the doorkeeper")
	}
	if !put(l, "new", res(true)) {
		t.Fatal("second sighting must be admitted (estimate 2 beats the once-seen victim)")
	}
	if _, ok := getKey(l, "k1"); ok {
		t.Fatal("k1 should have been evicted as the least recently used")
	}
	for _, k := range []string{"k0", "k2", "new"} {
		if _, ok := getKey(l, k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
}

// TestLRUAddUpdatesInPlace: adding a key that is already present must
// update the entry (and its recency) instead of growing the cache —
// callers no longer guarantee absence.
func TestLRUAddUpdatesInPlace(t *testing.T) {
	l := newLRU(2)
	put(l, "a", res(false))
	put(l, "b", res(false))
	k := []byte("a")
	h := keyHash(k)
	q2 := &decideQuery{}
	l.add(k, h, q2, res(true))
	if l.len() != 2 {
		t.Fatalf("len %d after duplicate add, want 2", l.len())
	}
	got, ok := l.get(k, h)
	if !ok || !got.decided {
		t.Fatalf("got %+v, want the updated result", got)
	}
	// The update promoted "a": inserting a qualified new key must now
	// evict "b".
	put(l, "c", res(true)) // doorkeeper sighting
	put(l, "c", res(true)) // admitted
	if _, ok := getKey(l, "b"); ok {
		t.Fatal("b should have been evicted (a was promoted by its update)")
	}
	if _, ok := getKey(l, "a"); !ok {
		t.Fatal("a should have survived its in-place update")
	}
	// The audit path must see the updated query pointer.
	found := false
	l.each(func(e *lruEntry) bool {
		if e.key == "a" {
			found = e.q == q2
		}
		return true
	})
	if !found {
		t.Fatal("entry a does not carry the updated query")
	}
}

// TestLRUEach: iteration visits every entry exactly once and honors an
// early stop.
func TestLRUEach(t *testing.T) {
	l := newLRU(8)
	for i := 0; i < 5; i++ {
		put(l, fmt.Sprintf("k%d", i), res(true))
	}
	seen := map[string]int{}
	l.each(func(e *lruEntry) bool {
		seen[e.key]++
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("visited %d entries, want 5", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("%s visited %d times", k, n)
		}
	}
	visits := 0
	l.each(func(e *lruEntry) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d entries, want 1", visits)
	}
}

// TestLRUDisabled: a non-positive capacity disables caching entirely —
// nothing admits, nothing stores.
func TestLRUDisabled(t *testing.T) {
	l := newLRU(-1)
	if put(l, "a", res(true)) {
		t.Fatal("disabled cache must not admit")
	}
	if l.len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
	if _, ok := getKey(l, "a"); ok {
		t.Fatal("disabled cache must miss")
	}
}

// TestAdmissionScanResistance is the filter's reason to exist: a
// scan-heavy trace of one-hit wonders must not displace a hot working
// set that fits the cache. Before the filter, every scan key evicted a
// hot entry (plain LRU admits everything); with the doorkeeper in front,
// the hot set survives a scan 100× the cache size.
func TestAdmissionScanResistance(t *testing.T) {
	const capacity = 16
	l := newLRU(capacity)
	hot := make([]string, capacity)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
		put(l, hot[i], res(true))
	}
	// Establish real frequency for the hot set.
	for round := 0; round < 4; round++ {
		for _, k := range hot {
			if _, ok := getKey(l, k); !ok {
				t.Fatalf("%s missing during warm-up", k)
			}
		}
	}
	// The scan: unique one-hit-wonder keys interleaved with the ongoing
	// hot traffic (what a scan-heavy service trace looks like — the hot
	// set keeps being queried while the scan washes past it).
	rejected, hotMisses := 0, 0
	for i := 0; i < 100*capacity; i++ {
		if !put(l, fmt.Sprintf("scan%d", i), res(false)) {
			rejected++
		}
		if _, ok := getKey(l, hot[i%capacity]); !ok {
			hotMisses++
			put(l, hot[i%capacity], res(true))
		}
	}
	if rejected == 0 {
		t.Fatal("a pure scan was fully admitted — the doorkeeper is not filtering")
	}
	// Plain LRU would evict a hot entry on every scan insertion (≈1600
	// hot misses); the admission filter must keep the hot hit rate near
	// perfect.
	if hotMisses > capacity {
		t.Fatalf("%d hot-set misses during the scan (plain LRU would show ~%d, a filter ~0)",
			hotMisses, 100*capacity)
	}
	surviving := 0
	for _, k := range hot {
		if _, ok := getKey(l, k); ok {
			surviving++
		}
	}
	if surviving < capacity*3/4 {
		t.Fatalf("only %d/%d hot entries survived the scan; plain LRU behaviour", surviving, capacity)
	}
}

// TestAdmissionRecurringKeyEnters: the filter must not be a wall — a new
// key that genuinely recurs gathers frequency and is eventually admitted
// over a cold victim.
func TestAdmissionRecurringKeyEnters(t *testing.T) {
	const capacity = 8
	l := newLRU(capacity)
	for i := 0; i < capacity; i++ {
		put(l, fmt.Sprintf("cold%d", i), res(false))
	}
	admitted := false
	for try := 0; try < 8 && !admitted; try++ {
		admitted = put(l, "riser", res(true))
	}
	if !admitted {
		t.Fatal("a recurring key was never admitted")
	}
	if _, ok := getKey(l, "riser"); !ok {
		t.Fatal("admitted key not retrievable")
	}
}

// TestAdmissionReset: the sample-window reset must halve history, not
// wedge the filter — after many windows the cache still admits recurring
// keys.
func TestAdmissionReset(t *testing.T) {
	const capacity = 4
	l := newLRU(capacity)
	for i := 0; i < capacity; i++ {
		put(l, fmt.Sprintf("k%d", i), res(false))
	}
	// Drive enough sightings through record() to cross several reset
	// windows.
	for i := 0; i < 20*l.adm.window; i++ {
		put(l, fmt.Sprintf("scan%d", i%997), res(false))
	}
	if l.adm.samples >= l.adm.window {
		t.Fatalf("samples %d never reset below window %d", l.adm.samples, l.adm.window)
	}
	admitted := false
	for try := 0; try < 8 && !admitted; try++ {
		admitted = put(l, "late-riser", res(true))
	}
	if !admitted {
		t.Fatal("filter wedged shut after resets")
	}
}
