package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

// testDB builds a small 4-core database over a subset of the suite once
// per test process. Kept light enough (≈1s with the shared profile cache)
// that the service determinism tests can run in the short CI lane.
func testDB(t testing.TB) *simdb.DB {
	t.Helper()
	dbOnce.Do(func() {
		sys := arch.DefaultSystemConfig(4)
		dbInst, dbErr = simdb.Build(sys, trace.Suite()[:8], simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

// testServer wraps a Server in an httptest listener.
func testServer(t testing.TB, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(testDB(t), nil, opt)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// postJSON posts a body and decodes the response into out, returning the
// HTTP status.
func postJSON(t testing.TB, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// libraryDecide is the reference: the sequential invocation order against
// a fresh manager, exactly as a library caller would drive it.
func libraryDecide(db *simdb.DB, scheme core.Scheme, model core.ModelKind, slack []float64, apps []AppQuery) (bool, []arch.Setting) {
	mgr := core.NewManager(core.Config{
		Sys:    db.Sys,
		Power:  power.DefaultParams(db.Sys),
		Scheme: scheme,
		Model:  model,
		Slack:  append([]float64(nil), slack...),
	})
	var (
		settings []arch.Setting
		ok       bool
	)
	for i, app := range apps {
		id, found := db.BenchIDOf(app.Bench)
		if !found {
			panic("unknown bench in reference path")
		}
		settings, ok = mgr.Decide(i, OracleStats(db, id, app.Phase, i))
	}
	return ok, settings
}

// queryFor builds a deterministic co-phase query from an RNG.
func queryFor(db *simdb.DB, rng *stats.RNG, scheme string, slack float64) DecideQuery {
	names := db.BenchNames()
	apps := make([]AppQuery, db.Sys.NumCores)
	for c := range apps {
		name := names[rng.Intn(len(names))]
		apps[c] = AppQuery{Bench: name, Phase: rng.Intn(db.NumPhases(name))}
	}
	return DecideQuery{Scheme: scheme, Slack: slack, Apps: apps}
}

// settingsOf converts a wire answer back to arch settings.
func settingsOf(db *simdb.DB, ans DecideAnswer) []arch.Setting {
	out := make([]arch.Setting, len(ans.Settings))
	for i, s := range ans.Settings {
		var size arch.CoreSize
		switch s.Size {
		case arch.SizeSmall.String():
			size = arch.SizeSmall
		case arch.SizeMedium.String():
			size = arch.SizeMedium
		case arch.SizeLarge.String():
			size = arch.SizeLarge
		}
		out[i] = arch.Setting{Size: size, FreqIdx: s.FreqIdx, Ways: s.Ways}
	}
	return out
}

// TestDecideMatchesLibrary pins the service's central invariant: for every
// scheme, the served answer is bit-identical to the direct library calls.
func TestDecideMatchesLibrary(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 3, Batch: 4, CacheSize: 8})
	schemes := []struct {
		wire   string
		scheme core.Scheme
		model  core.ModelKind
	}{
		{"static", core.SchemeStatic, core.Model2},
		{"dvfs", core.SchemeDVFSOnly, core.Model2},
		{"rm1", core.SchemePartitionOnly, core.Model2},
		{"rm2", core.SchemeCoordDVFSCache, core.Model2},
		{"rm3", core.SchemeCoordCoreDVFSCache, core.Model3},
		{"ucp", core.SchemeUCPDVFS, core.Model2},
	}
	rng := stats.NewRNG(stats.SeedFrom(7, "service/decide-test"))
	for _, sc := range schemes {
		for trial := 0; trial < 4; trial++ {
			q := queryFor(db, rng, sc.wire, 0.2)
			var resp DecideResponse
			if code := postJSON(t, ts.URL+"/v1/decide", q, &resp); code != http.StatusOK {
				t.Fatalf("%s: status %d", sc.wire, code)
			}
			wantOK, wantSettings := libraryDecide(db, sc.scheme, sc.model,
				[]float64{0.2, 0.2, 0.2, 0.2}, q.Apps)
			if resp.Result.Decided != wantOK {
				t.Fatalf("%s trial %d: decided=%v, library says %v", sc.wire, trial, resp.Result.Decided, wantOK)
			}
			if !wantOK {
				continue
			}
			got := settingsOf(db, *resp.Result)
			for i := range got {
				if got[i] != wantSettings[i] {
					t.Fatalf("%s trial %d core %d: served %v, library %v",
						sc.wire, trial, i, got[i], wantSettings[i])
				}
			}
		}
	}
}

// TestConcurrentDecideDeterministic pins the second acceptance invariant:
// concurrent batched requests answer identically to sequential library
// calls, independent of shard count, batch size and cache capacity.
func TestConcurrentDecideDeterministic(t *testing.T) {
	db := testDB(t)
	// Reference answers for a fixed query set.
	rng := stats.NewRNG(stats.SeedFrom(11, "service/concurrent-test"))
	const numQueries = 40
	queries := make([]DecideQuery, numQueries)
	want := make([][]arch.Setting, numQueries)
	wantOK := make([]bool, numQueries)
	for i := range queries {
		queries[i] = queryFor(db, rng, "rm2", 0.3)
		wantOK[i], want[i] = libraryDecide(db, core.SchemeCoordDVFSCache, core.Model2,
			[]float64{0.3, 0.3, 0.3, 0.3}, queries[i].Apps)
	}

	for _, opt := range []Options{
		{Shards: 1, Batch: 2, CacheSize: 4},
		{Shards: 4, Batch: 16, CacheSize: 1024},
	} {
		_, ts := testServer(t, opt)
		var wg sync.WaitGroup
		errCh := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Each goroutine sends overlapping batches, rotated so the
				// same keys hit the cache from different orders.
				for round := 0; round < 3; round++ {
					lo := (g*5 + round*7) % numQueries
					batch := make([]DecideQuery, 0, 10)
					for k := 0; k < 10; k++ {
						batch = append(batch, queries[(lo+k)%numQueries])
					}
					var resp DecideResponse
					code := postJSON(t, ts.URL+"/v1/decide", DecideRequest{Queries: batch}, &resp)
					if code != http.StatusOK {
						errCh <- fmt.Errorf("status %d", code)
						return
					}
					for k, ans := range resp.Results {
						qi := (lo + k) % numQueries
						if ans.Decided != wantOK[qi] {
							errCh <- fmt.Errorf("query %d: decided=%v, want %v", qi, ans.Decided, wantOK[qi])
							return
						}
						got := settingsOf(db, ans)
						for c := range got {
							if wantOK[qi] && got[c] != want[qi][c] {
								errCh <- fmt.Errorf("query %d core %d: %v != %v", qi, c, got[c], want[qi][c])
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("shards=%d: %v", opt.Shards, err)
		}
	}
}

// TestDecideRejectsBadRequests: malformed requests answer 4xx, never 5xx.
func TestDecideRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{Shards: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{"apps": [`},
		{"wrong arity", `{"apps":[{"bench":"mcf","phase":0}]}`},
		{"unknown bench", `{"apps":[{"bench":"nope","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
		{"phase out of range", `{"apps":[{"bench":"mcf","phase":99},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
		{"bad scheme", `{"scheme":"rm9","apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
		{"bad model", `{"model":7,"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
		{"negative slack", `{"slack":-1,"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
		{"bad slack arity", `{"slacks":[0.1],"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("%s: status %d, want 4xx", tc.name, resp.StatusCode)
		}
	}
}

// TestScoreMatchesScorer: the endpoint equals a direct sched.Scorer call,
// and placement picks the argmax machine.
func TestScoreMatchesScorer(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 1})
	names := db.BenchNames()

	apps := []string{names[0], names[1]}
	var resp ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Apps: apps}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := sched.NewScorer(db).Score(apps)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Score == nil || *resp.Score != want {
		t.Fatalf("served score %v, library %v", resp.Score, want)
	}

	machines := [][]string{{names[2]}, {names[0], names[1], names[2], names[3]}, {names[4], names[5]}}
	var place ScoreResponse
	code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Candidate: names[1], Machines: machines}, &place)
	if code != http.StatusOK {
		t.Fatalf("placement status %d", code)
	}
	if place.Best == nil || place.Scores[1] != nil {
		t.Fatalf("placement answer malformed: %+v", place)
	}
	sc := sched.NewScorer(db)
	best, bestScore := -1, 0.0
	for i, m := range machines {
		if len(m) >= db.Sys.NumCores {
			continue
		}
		v, err := sc.Score(append(append([]string{}, m...), names[1]))
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || v > bestScore {
			best, bestScore = i, v
		}
	}
	if *place.Best != best {
		t.Fatalf("placement chose machine %d, library argmax is %d", *place.Best, best)
	}

	// Full fleet: no room anywhere.
	full := [][]string{{names[0], names[1], names[2], names[3]}}
	code = postJSON(t, ts.URL+"/v1/score", ScoreRequest{Candidate: names[0], Machines: full}, nil)
	if code != http.StatusConflict {
		t.Fatalf("full fleet placement: status %d, want 409", code)
	}
}

// TestSweepJobLifecycle: submit, poll to completion, download both
// formats, and check the rows came in deterministic grid order.
func TestSweepJobLifecycle(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 1})
	names := db.BenchNames()
	req := SweepRequest{
		Name:      "svc-test",
		Workloads: [][]string{{names[0], names[1], names[2], names[3]}},
		Schemes:   []string{"dvfs", "rm2"},
		Slacks:    []float64{0, 0.4},
	}
	var status SweepJobStatus
	if code := postJSON(t, ts.URL+"/v1/sweep", req, &status); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if status.Points != 4 {
		t.Fatalf("compiled %d points, want 4", status.Points)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for status.State == "running" {
		if time.Now().After(deadline) {
			t.Fatal("sweep job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/sweep/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if status.State != "done" {
		t.Fatalf("job state %q: %s", status.State, status.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/sweep/" + status.ID + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	csvBuf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "sweep,index,") {
		t.Fatalf("CSV result malformed:\n%s", csvBuf.String())
	}
	resp, err = http.Get(ts.URL + "/v1/sweep/" + status.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	jsonBuf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if !strings.Contains(jsonBuf.String(), `"sweep":"svc-test"`) {
		t.Fatalf("JSON result malformed:\n%s", jsonBuf.String())
	}

	// Unknown job and bad spec answer 4xx.
	if resp, err = http.Get(ts.URL + "/v1/sweep/job-999"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty sweep: status %d", code)
	}
	// A wrong-arity slack vector must be rejected at submit time: it
	// would panic core.NewManager deep inside the engine's pool, where
	// no handler-side recover can reach.
	code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads:    [][]string{{names[0], names[1], names[2], names[3]}},
		Schemes:      []string{"rm2"},
		SlackVectors: [][]float64{{0.1, 0.2}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad slack vector: status %d, want 400", code)
	}
}

// TestHealthzAndMeta exercises the liveness and metadata endpoints.
func TestHealthzAndMeta(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 2})

	var m Meta
	resp, err := http.Get(ts.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.NumCores != 4 || len(m.Benches) != db.NumBenches() || m.Shards != 2 {
		t.Fatalf("meta malformed: %+v", m)
	}

	// One decision so the counters move.
	rng := stats.NewRNG(stats.SeedFrom(3, "service/healthz-test"))
	q := queryFor(db, rng, "rm2", 0)
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}
	var h HealthStats
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Decide.Queries != 1 || h.Decide.Shards != 2 {
		t.Fatalf("healthz malformed: %+v", h)
	}
}

// TestDecideAfterCloseFailsFast: a closed server answers 503 instead of
// queueing tasks into stopped shard workers.
func TestDecideAfterCloseFailsFast(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 1})
	rng := stats.NewRNG(stats.SeedFrom(9, "service/close-test"))
	q := queryFor(db, rng, "rm2", 0)
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("decide before close: status %d", code)
	}
	srv.Close()
	srv.Close() // idempotent
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("decide after close: status %d, want 503", code)
	}
}

// TestSweepJobEviction: the job table is bounded — at the cap the oldest
// finished job is evicted and its id stops resolving.
func TestSweepJobEviction(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 1, MaxJobs: 1})
	names := db.BenchNames()
	submit := func() SweepJobStatus {
		var st SweepJobStatus
		code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
			Workloads: [][]string{{names[0], names[1], names[2], names[3]}},
			Schemes:   []string{"static"},
		}, &st)
		if code != http.StatusAccepted {
			t.Fatalf("submit status %d", code)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for st.State == "running" {
			if time.Now().After(deadline) {
				t.Fatal("sweep job did not finish")
			}
			time.Sleep(10 * time.Millisecond)
			resp, err := http.Get(ts.URL + "/v1/sweep/" + st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		return st
	}
	first := submit()
	second := submit() // evicts the finished first job
	resp, err := http.Get(ts.URL + "/v1/sweep/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job answered %d, want 404", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/v1/sweep/" + second.ID); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained job answered %d", resp.StatusCode)
	}
}

// TestDecideCacheHits: repeating one query is served from the shard LRU.
func TestDecideCacheHits(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 1, CacheSize: 16})
	rng := stats.NewRNG(stats.SeedFrom(5, "service/cache-test"))
	q := queryFor(db, rng, "rm2", 0.1)
	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
			t.Fatalf("decide status %d", code)
		}
	}
	var hits uint64
	for _, sh := range srv.shards {
		hits += sh.hits.Load()
	}
	if hits != 4 {
		t.Fatalf("cache hits %d, want 4", hits)
	}
}
