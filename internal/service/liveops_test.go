// Tests for the live-ops control plane: the route contract, the metrics
// exposition, atomic hot-swap (including under concurrent load, where no
// response may ever mix two databases), graceful drain, and the
// self-checker's corruption detection with its healthz degradation.
package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/ops"
	"qosrma/internal/simdb"
	"qosrma/internal/stats"
)

// getJSON fetches a URL and decodes the JSON body, returning the status.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// altDB derives a second database from the shared test database by moving
// the baseline frequency: cheap (tables are shared) but answer-changing,
// which is exactly what the swap tests need.
func altDB(t testing.TB) *simdb.DB {
	t.Helper()
	db := testDB(t)
	sys := db.Sys
	sys.BaselineFreqIdx = (sys.BaselineFreqIdx + 1) % len(sys.DVFS)
	return db.WithSys(sys)
}

// TestRouteContract pins the full HTTP surface: adding or removing a
// route must be a conscious API change (and documented — the docs-check
// CI target greps this same list out of docs/api.md).
func TestRouteContract(t *testing.T) {
	srv, _ := testServer(t, Options{Shards: 1})
	want := []string{
		"GET /v1/healthz",
		"GET /v1/meta",
		"POST /v1/decide",
		"POST /v1/score",
		"POST /v1/sweep",
		"GET /v1/sweep/{id}",
		"GET /v1/sweep/{id}/result",
		"GET /metrics",
		"GET /admin/status",
		"POST /admin/reload",
		"POST /admin/check",
	}
	got := srv.Routes()
	if len(got) != len(want) {
		t.Fatalf("route surface changed:\ngot  %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("route %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMetricsExposition: /metrics speaks the Prometheus text format and
// carries the catalog documented in docs/operations.md.
func TestMetricsExposition(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 1, CacheSize: 16})
	rng := stats.NewRNG(stats.SeedFrom(21, "service/metrics-test"))
	q := queryFor(db, rng, "rm2", 0.1)
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
			t.Fatalf("decide status %d", code)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := copyBody(&sb, resp); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`qosrmad_decide_queries_total{shard="0"} 3`,
		`qosrmad_decide_cache_hits_total{shard="0"} 2`,
		`qosrmad_decide_cache_hit_ratio 0.6666666666666666`,
		`qosrmad_decide_request_seconds_count 3`,
		`qosrmad_decide_batch_size_bucket{le="1"} 3`,
		`qosrmad_snapshot_generation 1`,
		`qosrmad_snapshot_info{hash="` + db.Fingerprint() + `",source="built"} 1`,
		`qosrmad_reloads_total 0`,
		`qosrmad_draining 0`,
		`qosrmad_score_requests_total 0`,
		`qosrmad_sweep_jobs{state="running"} 0`,
		`qosrmad_audit_total{result="pass"} 0`,
		`# TYPE qosrmad_decide_request_seconds histogram`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// copyBody drains an HTTP response body into a builder.
func copyBody(sb *strings.Builder, resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	sb.Write(b)
	return int64(len(b)), err
}

// TestMetaAndStatusReportVersion: /v1/meta and /admin/status surface the
// snapshot hash, generation and source.
func TestMetaAndStatusReportVersion(t *testing.T) {
	db := testDB(t)
	_, ts := testServer(t, Options{Shards: 2})
	var m Meta
	if code := getJSON(t, ts.URL+"/v1/meta", &m); code != http.StatusOK {
		t.Fatalf("meta status %d", code)
	}
	if m.DBHash != db.Fingerprint() || m.DBGen != 1 || m.DBSource != "built" {
		t.Fatalf("meta version wrong: hash=%q gen=%d source=%q", m.DBHash, m.DBGen, m.DBSource)
	}
	var st AdminStatus
	if code := getJSON(t, ts.URL+"/admin/status", &st); code != http.StatusOK {
		t.Fatalf("status status %d", code)
	}
	if st.Snapshot.Hash != db.Fingerprint() || st.Snapshot.Generation != 1 || st.Snapshot.Source != "built" {
		t.Fatalf("admin snapshot wrong: %+v", st.Snapshot)
	}
	if len(st.Shards) != 2 || st.Draining || st.Reloads != 0 {
		t.Fatalf("admin status wrong: %+v", st)
	}
	found := false
	for _, r := range st.Routes {
		if r == "POST /v1/decide" {
			found = true
		}
	}
	if !found {
		t.Fatalf("admin routes missing decide: %v", st.Routes)
	}
}

// TestAdminReload: the reloader path, the explicit file path, and both
// error paths; served answers follow the swap, bit-identical to the
// library over the new database.
func TestAdminReload(t *testing.T) {
	db1 := testDB(t)
	db2 := altDB(t)
	srv := New(db1, nil, Options{
		Shards: 2,
		Reloader: func() (*simdb.DB, string, error) {
			return db2, "reload", nil
		},
	})
	ts := newTS(t, srv)

	rng := stats.NewRNG(stats.SeedFrom(31, "service/reload-test"))
	var q DecideQuery
	var want1, want2 []arch.Setting
	for try := 0; try < 50; try++ {
		q = queryFor(db1, rng, "rm2", 0.3)
		ok1, w1 := libraryDecide(db1, core.SchemeCoordDVFSCache, core.Model2, []float64{0.3, 0.3, 0.3, 0.3}, q.Apps)
		ok2, w2 := libraryDecide(db2, core.SchemeCoordDVFSCache, core.Model2, []float64{0.3, 0.3, 0.3, 0.3}, q.Apps)
		if ok1 && ok2 && !settingsEqual(w1, w2) {
			want1, want2 = w1, w2
			break
		}
	}
	if want1 == nil {
		t.Fatal("no query distinguishes the two databases")
	}

	var resp DecideResponse
	if code := postJSON(t, ts.URL+"/v1/decide", q, &resp); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}
	if !settingsEqual(settingsOf(db1, *resp.Result), want1) {
		t.Fatal("pre-swap answer does not match library on db1")
	}

	var rl ReloadResponse
	if code := postJSON(t, ts.URL+"/admin/reload", struct{}{}, &rl); code != http.StatusOK {
		t.Fatalf("reload status %d", code)
	}
	if rl.Hash != db2.Fingerprint() || rl.Generation != 2 || rl.Source != "reload" {
		t.Fatalf("reload response wrong: %+v", rl)
	}
	var m Meta
	getJSON(t, ts.URL+"/v1/meta", &m)
	if m.DBHash != db2.Fingerprint() || m.DBGen != 2 || m.DBSource != "reload" {
		t.Fatalf("meta did not follow the swap: %+v", m)
	}
	if code := postJSON(t, ts.URL+"/v1/decide", q, &resp); code != http.StatusOK {
		t.Fatalf("post-swap decide status %d", code)
	}
	if !settingsEqual(settingsOf(db2, *resp.Result), want2) {
		t.Fatal("post-swap answer does not match library on db2")
	}

	// Path-based reload round-trips through the on-disk format.
	path := filepath.Join(t.TempDir(), "db.bin")
	if err := db1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Path: path}, &rl); code != http.StatusOK {
		t.Fatalf("path reload status %d", code)
	}
	if rl.Hash != db1.Fingerprint() || rl.Generation != 3 || rl.Source != path {
		t.Fatalf("path reload response wrong: %+v", rl)
	}

	// Error paths: unreadable file is the caller's fault; a reloader
	// failure is the server's.
	if code := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Path: path + ".missing"}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing-file reload status %d, want 400", code)
	}
	bare := New(db1, nil, Options{Shards: 1})
	tsBare := newTS(t, bare)
	if code := postJSON(t, tsBare.URL+"/admin/reload", struct{}{}, nil); code != http.StatusBadRequest {
		t.Fatalf("no-reloader reload status %d, want 400", code)
	}
}

// settingsEqual compares two allocation vectors bitwise.
func settingsEqual(a, b []arch.Setting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReloadUnderConcurrentLoad is the torn-snapshot test: while swaps
// land continuously, every response must be internally consistent with
// exactly one database — per-query answers from different databases may
// alternate across responses, but never mix within one. Run under -race.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	db1 := testDB(t)
	db2 := altDB(t)
	srv, ts := testServer(t, Options{Shards: 2, CacheSize: 64})

	// Two fixed queries whose answers distinguish the databases.
	rng := stats.NewRNG(stats.SeedFrom(41, "service/torn-test"))
	type refs struct {
		q        DecideQuery
		on1, on2 []arch.Setting
	}
	var pair []refs
	for try := 0; try < 200 && len(pair) < 2; try++ {
		q := queryFor(db1, rng, "rm2", 0.3)
		ok1, w1 := libraryDecide(db1, core.SchemeCoordDVFSCache, core.Model2, []float64{0.3, 0.3, 0.3, 0.3}, q.Apps)
		ok2, w2 := libraryDecide(db2, core.SchemeCoordDVFSCache, core.Model2, []float64{0.3, 0.3, 0.3, 0.3}, q.Apps)
		if ok1 && ok2 && !settingsEqual(w1, w2) {
			pair = append(pair, refs{q: q, on1: w1, on2: w2})
		}
	}
	if len(pair) < 2 {
		t.Fatal("not enough distinguishing queries")
	}

	stop := make(chan struct{})
	errCh := make(chan string, 16)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp DecideResponse
				code := postJSON(t, ts.URL+"/v1/decide",
					DecideRequest{Queries: []DecideQuery{pair[0].q, pair[1].q}}, &resp)
				if code != http.StatusOK {
					errCh <- "status " + http.StatusText(code)
					return
				}
				a0 := settingsOf(db1, resp.Results[0])
				a1 := settingsOf(db1, resp.Results[1])
				from1 := settingsEqual(a0, pair[0].on1) && settingsEqual(a1, pair[1].on1)
				from2 := settingsEqual(a0, pair[0].on2) && settingsEqual(a1, pair[1].on2)
				if !from1 && !from2 {
					errCh <- "torn response: answers mix databases (or match neither)"
					return
				}
			}
		}()
	}
	dbs := []*simdb.DB{db2, db1}
	for i := 0; i < 40; i++ {
		srv.Swap(dbs[i%2], "swap-test")
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
	if _, gen, _, _ := srv.Snapshot(); gen != 41 {
		t.Fatalf("generation %d after 40 swaps, want 41", gen)
	}
}

// newTS wraps a server the test constructed itself.
func newTS(t testing.TB, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

// TestGracefulDrain: Shutdown lets a running sweep job and in-flight
// decides finish, refuses new work with 503 + Retry-After, and returns
// within the deadline.
func TestGracefulDrain(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 2})
	names := db.BenchNames()

	var job SweepJobStatus
	code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: [][]string{{names[0], names[1], names[2], names[3]}},
		Schemes:   []string{"dvfs", "rm2"},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	// Decide traffic in flight while the drain starts; every answer must
	// be a clean 200 or a clean 503, never anything else.
	rng := stats.NewRNG(stats.SeedFrom(51, "service/drain-test"))
	q := queryFor(db, rng, "rm2", 0.2)
	stop := make(chan struct{})
	errCh := make(chan int, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code := postJSON(t, ts.URL+"/v1/decide", q, nil)
				if code != http.StatusOK && code != http.StatusServiceUnavailable {
					errCh <- code
					return
				}
				if code == http.StatusServiceUnavailable {
					return // drained: clean stop
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for code := range errCh {
		t.Fatalf("decide answered %d during drain", code)
	}

	// The job the drain waited for is complete.
	if code := getJSON(t, ts.URL+"/v1/sweep/"+job.ID, &job); code != http.StatusOK {
		t.Fatalf("job status %d", code)
	}
	if job.State != "done" {
		t.Fatalf("job state %q after drain, want done (%s)", job.State, job.Error)
	}

	// New work is refused with the drain signature...
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"apps":[{"bench":"`+names[0]+`","phase":0},{"bench":"`+names[0]+`","phase":0},{"bench":"`+names[0]+`","phase":0},{"bench":"`+names[0]+`","phase":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain decide: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Apps: []string{names[0]}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain score: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain sweep: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/admin/reload", struct{}{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain reload: status %d", code)
	}

	// ...while observability keeps answering.
	var h HealthStats
	if code := getJSON(t, ts.URL+"/v1/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("post-drain healthz: status %d, %q", code, h.Status)
	}
	var st AdminStatus
	if code := getJSON(t, ts.URL+"/admin/status", &st); code != http.StatusOK || !st.Draining {
		t.Fatalf("post-drain admin status: %d draining=%v", code, st.Draining)
	}
}

// TestShutdownHonorsDeadline: with a sweep job still running, an
// already-tight deadline makes Shutdown return the context error instead
// of hanging (the drain continues in the background).
func TestShutdownHonorsDeadline(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 1})
	names := db.BenchNames()
	var job SweepJobStatus
	code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: [][]string{
			{names[0], names[1], names[2], names[3]},
			{names[4], names[5], names[6], names[7]},
		},
		Schemes: []string{"static", "dvfs", "rm1", "rm2", "rm3", "ucp"},
		Slacks:  []float64{0, 0.2},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown returned %v, want deadline exceeded", err)
	}
}

// TestSelfCheckerDetectsCorruption: a corrupted cached decision fails the
// audit, degrades /v1/healthz to 503 and counts in the metrics; a swap
// (which drops the poisoned cache) heals it.
func TestSelfCheckerDetectsCorruption(t *testing.T) {
	db := testDB(t)
	srv, ts := testServer(t, Options{Shards: 1, CacheSize: 16})
	rng := stats.NewRNG(stats.SeedFrom(61, "service/checker-test"))
	q := queryFor(db, rng, "rm2", 0.2)
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}

	// A clean audit passes.
	var rep ops.AuditReport
	if code := postJSON(t, ts.URL+"/admin/check", nil, &rep); code != http.StatusOK || rep.Sampled != 1 || rep.Mismatches != 0 {
		t.Fatalf("clean audit: status %d report %+v", code, rep)
	}

	// Poison the cached entry. The worker is idle (its last write
	// happened-before the decide response we already received) and the
	// next access happens-after the audit task's channel send, so this is
	// race-free despite reaching into worker-owned state.
	poisoned := 0
	srv.shards[0].lru.each(func(e *lruEntry) bool {
		e.res.decided = !e.res.decided
		poisoned++
		return true
	})
	if poisoned != 1 {
		t.Fatalf("poisoned %d entries, want 1", poisoned)
	}

	if code := postJSON(t, ts.URL+"/admin/check", nil, &rep); code != http.StatusServiceUnavailable || rep.Mismatches != 1 {
		t.Fatalf("poisoned audit: status %d report %+v", code, rep)
	}
	var h HealthStats
	if code := getJSON(t, ts.URL+"/v1/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("degraded healthz: status %d %q", code, h.Status)
	}
	if h.Checker == nil || h.Checker.Mismatches != 1 {
		t.Fatalf("healthz checker report missing: %+v", h.Checker)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	copyBody(&sb, resp) //nolint:errcheck
	if !strings.Contains(sb.String(), `qosrmad_audit_total{result="fail"} 1`) {
		t.Fatal("audit failure not counted in metrics")
	}

	// Swap in the same database: the next decide adopts the new
	// generation and drops the poisoned cache; the audit passes again and
	// health recovers.
	srv.Swap(db, "heal")
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("post-heal decide status %d", code)
	}
	if code := postJSON(t, ts.URL+"/admin/check", nil, &rep); code != http.StatusOK || rep.Mismatches != 0 {
		t.Fatalf("healed audit: status %d report %+v", code, rep)
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healed healthz: status %d %q", code, h.Status)
	}
}

// TestPeriodicCheckerRuns: with an interval set, audits happen without
// being asked and surface through /v1/healthz.
func TestPeriodicCheckerRuns(t *testing.T) {
	db := testDB(t)
	srv := New(db, nil, Options{Shards: 1, AuditInterval: 2 * time.Millisecond, AuditSamples: 4})
	ts := newTS(t, srv)
	rng := stats.NewRNG(stats.SeedFrom(71, "service/periodic-test"))
	q := queryFor(db, rng, "rm2", 0.1)
	if code := postJSON(t, ts.URL+"/v1/decide", q, nil); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h HealthStats
		getJSON(t, ts.URL+"/v1/healthz", &h)
		if h.Checker != nil && h.Checker.Sampled >= 1 {
			if h.Status != "ok" {
				t.Fatalf("periodic audit degraded a healthy server: %+v", h.Checker)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checker never audited")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
