package service

import "container/list"

// lruEntry is one cached decision. The resolved query is retained
// alongside the result so the self-checker can recompute a cached answer
// from scratch and compare; h is the key's 64-bit hash, kept so the
// admission filter can estimate the eviction victim's frequency without
// rehashing.
type lruEntry struct {
	key string
	h   uint64
	q   *decideQuery
	res decideResult
}

// lru is a least-recently-used map of decision results guarded by a
// TinyLFU-style admission filter: once the cache is full, a computed
// decision is only cached if its key has been seen recently (doorkeeper)
// and at least as often as the key it would evict (frequency sketch).
// One-hit-wonder queries from scan-heavy traces therefore pass through
// without displacing the hot working set. It is not safe for concurrent
// use: every instance is owned by exactly one shard worker, which is
// what keeps the decide hot path lock-free — admission decisions
// included.
//
//qosrma:shardowned
type lru struct {
	cap   int
	order *list.List               // front = most recent
	byKey map[string]*list.Element // -> *lruEntry
	adm   admission
}

func newLRU(capacity int) *lru {
	l := &lru{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, max(capacity, 0)),
	}
	if capacity > 0 {
		l.adm.init(capacity)
	}
	return l
}

// keyHash is the shared 64-bit key hash (FNV-1a, inlined so the hot path
// neither allocates a hash.Hash nor copies the key): it routes queries to
// shards and feeds the admission filter's probe derivation.
func keyHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// get returns the cached decision, marks it most recently used and
// records the access in the admission filter's frequency sketch (a hot
// key's estimate must keep growing, or the filter would evict-protect
// stale entries). The key may alias a transient buffer: the map lookup
// does not retain it.
func (l *lru) get(key []byte, h uint64) (decideResult, bool) {
	el, ok := l.byKey[string(key)]
	if !ok {
		return decideResult{}, false
	}
	l.adm.record(h)
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// admit decides whether a just-computed decision should enter the cache,
// recording the sighting either way. Below capacity everything is
// admitted (warm-up); at capacity a first-sighted key is turned away
// (the doorkeeper absorbs it — if it ever returns, it qualifies), and a
// re-sighted key must match the eviction victim's estimated frequency.
// The caller counts a false return as admission-rejected.
func (l *lru) admit(h uint64) bool {
	if l.cap <= 0 {
		return false
	}
	seen := l.adm.record(h)
	if l.order.Len() < l.cap {
		return true
	}
	if !seen {
		return false
	}
	victim := l.order.Back().Value.(*lruEntry)
	return l.adm.estimate(h) >= l.adm.estimate(victim.h)
}

// add inserts or updates a decision, evicting the least recently used
// entry when a new key arrives at capacity. A key that is already
// present is updated in place and marked most recently used — callers
// need not guarantee absence.
func (l *lru) add(key []byte, h uint64, q *decideQuery, res decideResult) {
	if l.cap <= 0 {
		return
	}
	if el, ok := l.byKey[string(key)]; ok {
		e := el.Value.(*lruEntry)
		e.q, e.res, e.h = q, res, h
		l.order.MoveToFront(el)
		return
	}
	if l.order.Len() >= l.cap {
		back := l.order.Back()
		delete(l.byKey, back.Value.(*lruEntry).key)
		l.order.Remove(back)
	}
	k := string(key) // the entry owns a stable copy of the key
	l.byKey[k] = l.order.PushFront(&lruEntry{key: k, h: h, q: q, res: res})
}

// each visits cached entries in Go's randomized map order — which is what
// gives the self-checker a free uniform-ish sample — stopping when fn
// returns false. Only the owning shard worker may call it.
func (l *lru) each(fn func(*lruEntry) bool) {
	for _, el := range l.byKey {
		if !fn(el.Value.(*lruEntry)) {
			return
		}
	}
}

// len returns the number of cached decisions.
func (l *lru) len() int { return l.order.Len() }

// admission is the doorkeeper + frequency-sketch pair (the TinyLFU
// construction): a bloom-filter doorkeeper absorbs the first sighting of
// every key, and a 4-bit count-min sketch estimates how often re-sighted
// keys recur. Both age by a periodic reset — after window recorded
// sightings the sketch counters are halved and the doorkeeper cleared —
// so the estimates track the recent access distribution, not all of
// history.
//
//qosrma:shardowned
type admission struct {
	door     []uint64 // doorkeeper bloom bits (2 probes)
	sketch   []uint64 // 4-bit counters, 16 per word (4 probes, count-min)
	doorMask uint32   // doorkeeper bit-index mask (power-of-two size)
	ctrMask  uint32   // sketch counter-index mask (power-of-two size)
	samples  int      // sightings since the last reset
	window   int      // reset period in sightings
}

// init sizes the filter for a cache of cap entries: 8 sketch counters
// per cache slot (sparse keeps count-min overestimates low), a
// doorkeeper of 4 bits per counter (it must absorb every distinct key of
// a sample window at a low false-positive rate, or scans would leak
// straight into the frequency comparison), and a sample window of ~8
// sightings per slot so the estimates track the recent distribution.
func (a *admission) init(cap int) {
	n := 1024
	for n < 8*cap {
		n <<= 1
	}
	a.ctrMask = uint32(n - 1)
	a.doorMask = uint32(4*n - 1)
	a.door = make([]uint64, 4*n/64)
	a.sketch = make([]uint64, n/16)
	a.samples = 0
	a.window = 8 * cap
	if a.window < 1024 {
		a.window = 1024
	}
}

// probe derives the i-th probe index from the key hash (double hashing:
// low word stepped by the odd-ified high word).
func (a *admission) probe(h uint64, i, mask uint32) uint32 {
	return (uint32(h) + i*(uint32(h>>32)|1)) & mask
}

// record notes one sighting of h, reporting whether the doorkeeper had
// already seen it. First sighting: set the doorkeeper bits. Re-sighting:
// bump the sketch counters (saturating at 15). Ages the filter when the
// sample window fills.
func (a *admission) record(h uint64) (seen bool) {
	if a.ctrMask == 0 {
		return false
	}
	a.samples++
	if a.samples >= a.window {
		a.reset()
	}
	seen = true
	for i := uint32(0); i < 2; i++ {
		p := a.probe(h, i, a.doorMask)
		w, b := p>>6, uint64(1)<<(p&63)
		if a.door[w]&b == 0 {
			a.door[w] |= b
			seen = false
		}
	}
	if !seen {
		return false
	}
	for i := uint32(0); i < 4; i++ {
		p := a.probe(h, 2+i, a.ctrMask)
		w, sh := p>>4, (p&15)*4
		if (a.sketch[w]>>sh)&0xf < 15 {
			a.sketch[w] += 1 << sh
		}
	}
	return true
}

// estimate returns the frequency estimate for h: the count-min minimum
// over the sketch probes, plus one if the doorkeeper holds a sighting.
func (a *admission) estimate(h uint64) int {
	if a.ctrMask == 0 {
		return 0
	}
	est := 15
	for i := uint32(0); i < 4; i++ {
		p := a.probe(h, 2+i, a.ctrMask)
		if c := int((a.sketch[p>>4] >> ((p & 15) * 4)) & 0xf); c < est {
			est = c
		}
	}
	door := 1
	for i := uint32(0); i < 2; i++ {
		p := a.probe(h, i, a.doorMask)
		if a.door[p>>6]&(uint64(1)<<(p&63)) == 0 {
			door = 0
			break
		}
	}
	return est + door
}

// reset ages the filter: sketch counters halve, the doorkeeper clears,
// and the sample clock rewinds halfway (the classic TinyLFU reset).
func (a *admission) reset() {
	const oddBits = 0x1111111111111111
	for i, w := range a.sketch {
		// Halve every 4-bit lane in parallel: shift, then clear the bit
		// that crossed each lane boundary.
		a.sketch[i] = (w >> 1) &^ (oddBits << 3)
	}
	for i := range a.door {
		a.door[i] = 0
	}
	a.samples /= 2
}
