package service

import "container/list"

// lruEntry is one cached decision. The resolved query is retained
// alongside the result so the self-checker can recompute a cached answer
// from scratch and compare.
type lruEntry struct {
	key string
	q   *decideQuery
	res decideResult
}

// lru is a plain least-recently-used map of decision results. It is not
// safe for concurrent use: every instance is owned by exactly one shard
// worker, which is what keeps the decide hot path lock-free.
type lru struct {
	cap   int
	order *list.List               // front = most recent
	byKey map[string]*list.Element // -> *lruEntry
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached decision and marks it most recently used.
func (l *lru) get(key string) (decideResult, bool) {
	el, ok := l.byKey[key]
	if !ok {
		return decideResult{}, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add inserts a decision, evicting the least recently used entry at
// capacity. The caller guarantees the key is not present.
func (l *lru) add(key string, q *decideQuery, res decideResult) {
	if l.cap <= 0 {
		return
	}
	if l.order.Len() >= l.cap {
		back := l.order.Back()
		delete(l.byKey, back.Value.(*lruEntry).key)
		l.order.Remove(back)
	}
	l.byKey[key] = l.order.PushFront(&lruEntry{key: key, q: q, res: res})
}

// each visits cached entries in Go's randomized map order — which is what
// gives the self-checker a free uniform-ish sample — stopping when fn
// returns false. Only the owning shard worker may call it.
func (l *lru) each(fn func(*lruEntry) bool) {
	for _, el := range l.byKey {
		if !fn(el.Value.(*lruEntry)) {
			return
		}
	}
}

// len returns the number of cached decisions.
func (l *lru) len() int { return l.order.Len() }
