// Decision path of the service: /v1/decide requests are parsed and
// validated on the handler goroutine against the current snapshot, then
// routed — one task per query — to a shard picked by hashing the query's
// canonical co-phase key. Each shard runs one worker goroutine that
// drains its queue in micro-batches and owns everything the hot path
// touches: the decision LRU, the per-configuration managers with their
// reusable curve buffers, and the per-core IntervalStats scratch. Nothing
// on the compute path locks or allocates beyond the response itself, and
// because every query's curves are rebuilt from its own statistics
// (core.Manager.DecideAll), answers are bit-identical to direct library
// calls regardless of shard count, batch size, cache state or arrival
// order — the service's central invariant, pinned by
// TestDecideMatchesLibrary and TestConcurrentDecideDeterministic, and
// continuously re-verified in production by the self-checker (audit.go).
//
// Hot-swap discipline: a task carries the snapshot its request resolved
// against. The worker adopts a newer snapshot the first time it sees one
// (dropping its LRU and manager pool, which were derived from the old
// database); a task older than the shard's snapshot — a request that
// resolved just before a swap landed — is answered correctly against its
// own snapshot, bypassing the cache, so mixed-generation traffic never
// mixes cached state.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/core"
	"qosrma/internal/power"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

// AppQuery names one core's occupant in a decide query: a benchmark and a
// phase of its SimPoint trace (the co-phase vector element).
type AppQuery struct {
	Bench string `json:"bench"`
	Phase int    `json:"phase"`
}

// DecideRequest is the wire form of /v1/decide. Either a single query
// (top-level fields) or a batch (Queries) may be supplied.
type DecideRequest struct {
	DecideQuery
	Queries []DecideQuery `json:"queries,omitempty"`
}

// DecideQuery asks for the coordinated per-core settings of one co-phase
// vector under one manager configuration.
type DecideQuery struct {
	// Scheme is the resource-management algorithm: static, dvfs, rm1, rm2,
	// rm3 or ucp (default rm2).
	Scheme string `json:"scheme,omitempty"`
	// Model is the analytical predictor: 1, 2 or 3; 0 picks the scheme
	// default (Model2, or Model3 for rm3).
	Model int `json:"model,omitempty"`
	// Slack is the uniform QoS relaxation; Slacks relaxes per core.
	Slack  float64   `json:"slack,omitempty"`
	Slacks []float64 `json:"slacks,omitempty"`
	// Apps is the co-phase vector, one entry per core.
	Apps []AppQuery `json:"apps"`
}

// SettingJSON is one core's resource allocation on the wire.
type SettingJSON struct {
	Size    string  `json:"size"`
	FreqIdx int     `json:"freq_idx"`
	FreqGHz float64 `json:"freq_ghz"`
	Ways    int     `json:"ways"`
}

// DecideAnswer is the service's answer for one query. Decided reports
// whether the manager produced a new allocation; when false (warm-up or no
// feasible allocation) Settings is the baseline the machine stays at.
type DecideAnswer struct {
	Decided  bool          `json:"decided"`
	Settings []SettingJSON `json:"settings"`
}

// DecideResponse is the wire form of a /v1/decide reply: Result for a
// single query, Results index-aligned with the request batch.
type DecideResponse struct {
	Result  *DecideAnswer  `json:"result,omitempty"`
	Results []DecideAnswer `json:"results,omitempty"`
}

// decideResult is the internal, wire-independent decision: what the
// library path returns and what the LRU caches.
type decideResult struct {
	decided  bool
	settings []arch.Setting // always numCores long
}

// equal reports bitwise equality — what the self-checker demands between
// a cached decision and a fresh library computation.
func (a decideResult) equal(b decideResult) bool {
	if a.decided != b.decided || len(a.settings) != len(b.settings) {
		return false
	}
	for i := range a.settings {
		if a.settings[i] != b.settings[i] {
			return false
		}
	}
	return true
}

// decideQuery is a validated, resolved query: benchmarks interned, the
// manager configuration canonicalized, and the routing/cache key built.
// The key is bytes, not a string, so the wire path can stage it in
// connection-owned scratch and the cache hit path never materializes a
// string (map lookups convert without allocating).
type decideQuery struct {
	cfg    managerKey
	slack  []float64 // nil for zero slack
	ids    []simdb.BenchID
	phases []int
	key    []byte
}

// clone deep-copies the query so it can outlive the buffers it was
// resolved into — what the cache does before retaining a wire-path query
// whose slices alias per-connection scratch. The key is not copied: a
// cached entry owns its key as a string.
func (q *decideQuery) clone() *decideQuery {
	c := &decideQuery{cfg: q.cfg}
	if q.slack != nil {
		c.slack = append([]float64(nil), q.slack...)
	}
	c.ids = append([]simdb.BenchID(nil), q.ids...)
	c.phases = append([]int(nil), q.phases...)
	return c
}

// managerKey identifies one manager configuration in a shard's pool.
type managerKey struct {
	scheme core.Scheme
	model  core.ModelKind
	// slackKey is the canonical rendering of the per-core slack vector
	// ("" when every core has zero slack), keeping the struct comparable.
	slackKey string
}

// task is one unit of work in flight through a shard: a decide query
// (q/res/wg set) or a self-audit request (audit set). ephemeral marks a
// query resolved into connection-owned scratch (the wire path): the
// worker must clone it before the cache may retain it.
type task struct {
	q         *decideQuery
	sn        *snapshot
	res       *decideResult
	wg        *sync.WaitGroup
	audit     *auditTask
	ephemeral bool
}

// shard owns a partition of the decision key space.
type shard struct {
	srv *Server
	ch  chan task

	// sn is the snapshot the shard-local state below was derived from;
	// only the worker touches it after construction.
	sn   *snapshot
	lru  *lru
	mgrs map[managerKey]*core.Manager

	// Reusable per-core statistics buffers; pointers alias the buffers and
	// are re-filled before every DecideAll (the manager retains them only
	// until the next call, exactly like the RMA simulator's per-core
	// buffers).
	stats    []core.IntervalStats
	statPtrs []*core.IntervalStats

	// Counters, read by healthz and /metrics concurrently with the worker.
	tasks      atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	admRejects atomic.Uint64
	batches    atomic.Uint64
}

// adopt rebuilds the shard-local derived state for a snapshot: a fresh
// LRU and manager pool (both encode database content) and statistics
// scratch sized to the system.
func (sh *shard) adopt(sn *snapshot) {
	n := sn.db.Sys.NumCores
	sh.sn = sn
	sh.lru = newLRU(sh.srv.opt.CacheSize)
	sh.mgrs = make(map[managerKey]*core.Manager, 8)
	sh.stats = make([]core.IntervalStats, n)
	sh.statPtrs = make([]*core.IntervalStats, n)
}

// parseScheme resolves the wire name of a scheme.
func parseScheme(name string) (core.Scheme, error) {
	switch strings.ToLower(name) {
	case "static":
		return core.SchemeStatic, nil
	case "dvfs", "dvfs-only":
		return core.SchemeDVFSOnly, nil
	case "rm1", "partition":
		return core.SchemePartitionOnly, nil
	case "", "rm2", "coord":
		return core.SchemeCoordDVFSCache, nil
	case "rm3", "core":
		return core.SchemeCoordCoreDVFSCache, nil
	case "ucp", "uncoordinated":
		return core.SchemeUCPDVFS, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want static, dvfs, rm1, rm2, rm3 or ucp)", name)
	}
}

// parseModel resolves the wire model number, applying the scheme default.
func parseModel(model int, scheme core.Scheme) (core.ModelKind, error) {
	switch model {
	case 0:
		if scheme == core.SchemeCoordCoreDVFSCache {
			return core.Model3, nil
		}
		return core.Model2, nil
	case 1:
		return core.Model1, nil
	case 2:
		return core.Model2, nil
	case 3:
		return core.Model3, nil
	default:
		return 0, fmt.Errorf("unknown model %d (want 1, 2 or 3, or 0 for the scheme default)", model)
	}
}

// resolveQuery validates one wire query against the snapshot's database
// and builds its canonical routing/cache key.
func resolveQuery(sn *snapshot, q *DecideQuery) (*decideQuery, error) {
	db := sn.db
	n := db.Sys.NumCores
	if len(q.Apps) != n {
		return nil, fmt.Errorf("co-phase vector needs %d apps (one per core), got %d", n, len(q.Apps))
	}
	scheme, err := parseScheme(q.Scheme)
	if err != nil {
		return nil, err
	}
	model, err := parseModel(q.Model, scheme)
	if err != nil {
		return nil, err
	}
	var slack []float64
	switch {
	case len(q.Slacks) > 0:
		if len(q.Slacks) != n {
			return nil, fmt.Errorf("slacks needs %d entries, got %d", n, len(q.Slacks))
		}
		slack = q.Slacks
	case q.Slack != 0:
		slack = make([]float64, n)
		for i := range slack {
			slack[i] = q.Slack
		}
	}
	for i, v := range slack {
		if v < 0 {
			return nil, fmt.Errorf("slack[%d] = %g is negative", i, v)
		}
	}

	rq := &decideQuery{
		slack:  slack,
		ids:    make([]simdb.BenchID, n),
		phases: make([]int, n),
	}
	for i, app := range q.Apps {
		id, ok := db.BenchIDOf(app.Bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", app.Bench)
		}
		np := db.Benches[id].Analysis.NumPhases
		if app.Phase < 0 || app.Phase >= np {
			return nil, fmt.Errorf("%s has phases 0..%d, got %d", app.Bench, np-1, app.Phase)
		}
		rq.ids[i] = id
		rq.phases[i] = app.Phase
	}
	rq.cfg = managerKey{scheme: scheme, model: model, slackKey: slackKeyOf(slack)}
	rq.key = appendQueryKey(make([]byte, 0, 64), rq.cfg, rq.ids, rq.phases)
	return rq, nil
}

// slackKeyOf renders the canonical slack-vector key ("" for all-zero) —
// one rendering shared by the JSON and wire paths, so both resolve to
// the same manager pool entries and cache keys.
func slackKeyOf(slack []float64) string {
	if slack == nil {
		return ""
	}
	parts := make([]string, len(slack))
	for i, v := range slack {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// appendQueryKey appends the canonical routing/cache key of one resolved
// query. JSON and wire queries with the same semantics produce the same
// bytes: that is what lets the two codecs share shard placement, cached
// decisions and audit coverage.
func appendQueryKey(dst []byte, cfg managerKey, ids []simdb.BenchID, phases []int) []byte {
	dst = strconv.AppendInt(dst, int64(cfg.scheme), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(cfg.model), 10)
	dst = append(dst, '/')
	dst = append(dst, cfg.slackKey...)
	for i, id := range ids {
		dst = append(dst, '|')
		dst = strconv.AppendInt(dst, int64(id), 10)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(phases[i]), 10)
	}
	return dst
}

// shardOf routes a canonical key to its owning shard. The inlined
// keyHash replaces the old hash.Hash32 construction, which allocated on
// every fan-out.
func (s *Server) shardOf(key []byte) *shard {
	return s.shards[uint32(keyHash(key))%uint32(len(s.shards))]
}

// FillOracleStats fills st with the perfect interval statistics of one
// (benchmark, phase) pair executing on coreID at the baseline setting —
// the co-phase decision point the RMA faces, built exactly as the
// simulator's oracle gatherStats path builds it. The profile slices alias
// the immutable database records.
func FillOracleStats(db *simdb.DB, id simdb.BenchID, phase, coreID int, st *core.IntervalStats) {
	rec := db.RecordAt(id, phase)
	pt := db.PerfAt(id, phase, db.BaselineIdx())
	*st = core.IntervalStats{
		Core:          coreID,
		Setting:       db.Sys.BaselineSetting(),
		Instr:         trace.SliceInstructions,
		Cycles:        pt.Cycles,
		LLCAccesses:   pt.LLCAccesses,
		BranchMisses:  rec.BranchMPKI * trace.SliceInstructions / 1000,
		TotalMisses:   pt.Misses,
		LeadingMisses: pt.Leading,
		ATDMisses:     rec.Misses,
		ATDLeading:    rec.Leading,
		IlpIPC:        rec.IlpIPC,
	}
}

// OracleStats is FillOracleStats returning a fresh struct (the reference
// the service's equivalence tests drive the library path with).
func OracleStats(db *simdb.DB, id simdb.BenchID, phase, coreID int) *core.IntervalStats {
	st := new(core.IntervalStats)
	FillOracleStats(db, id, phase, coreID, st)
	return st
}

// newManager builds a library manager for one configuration over a
// snapshot's database.
func newManager(sn *snapshot, q *decideQuery) *core.Manager {
	db := sn.db
	return core.NewManager(core.Config{
		Sys:    db.Sys,
		Power:  power.DefaultParams(db.Sys),
		Scheme: q.cfg.scheme,
		Model:  q.cfg.model,
		Slack:  append([]float64(nil), q.slack...),
	})
}

// manager returns the shard's manager for the configuration, building it
// on first use. Managers are retained: their per-core curve buffers are
// the shard-local reuse that keeps repeated decisions allocation-free.
func (sh *shard) manager(q *decideQuery) *core.Manager {
	m, ok := sh.mgrs[q.cfg]
	if !ok {
		m = newManager(sh.sn, q)
		sh.mgrs[q.cfg] = m
	}
	return m
}

// compute runs the library decision for one query against the shard's
// adopted snapshot, using the shard's reusable scratch.
//
//qosrma:noalloc
func (sh *shard) compute(q *decideQuery) decideResult {
	db := sh.sn.db
	n := db.Sys.NumCores
	for i := 0; i < n; i++ {
		FillOracleStats(db, q.ids[i], q.phases[i], i, &sh.stats[i])
		sh.statPtrs[i] = &sh.stats[i]
	}
	settings, ok := sh.manager(q).DecideAll(sh.statPtrs)
	if !ok {
		settings = baselineSettings(db)
	}
	return decideResult{decided: ok, settings: settings}
}

// computeFresh runs the library decision for one query with nothing
// pooled: a fresh manager and fresh statistics, all derived from the
// given snapshot. This is the slow, trusted path — it answers
// stale-generation tasks after a hot-swap and recomputes the reference
// answers the self-checker compares cached decisions against.
func computeFresh(sn *snapshot, q *decideQuery) decideResult {
	db := sn.db
	n := db.Sys.NumCores
	stats := make([]core.IntervalStats, n)
	ptrs := make([]*core.IntervalStats, n)
	for i := 0; i < n; i++ {
		FillOracleStats(db, q.ids[i], q.phases[i], i, &stats[i])
		ptrs[i] = &stats[i]
	}
	settings, ok := newManager(sn, q).DecideAll(ptrs)
	if !ok {
		settings = baselineSettings(db)
	}
	return decideResult{decided: ok, settings: settings}
}

// baselineSettings is the all-cores-at-baseline allocation vector.
func baselineSettings(db *simdb.DB) []arch.Setting {
	base := db.Sys.BaselineSetting()
	settings := make([]arch.Setting, db.Sys.NumCores)
	for i := range settings {
		settings[i] = base
	}
	return settings
}

// process answers one task: dispatching audits, adopting newer snapshots,
// and serving decide queries from the cache or by computing.
//
//qosrma:noalloc
func (sh *shard) process(t task) {
	if t.audit != nil {
		sh.runAudit(t.audit)
		return
	}
	sh.tasks.Add(1)
	if t.sn != sh.sn {
		if t.sn.gen > sh.sn.gen {
			sh.adopt(t.sn)
		} else {
			// The request resolved against a snapshot that was swapped out
			// while it queued. Its answer must still come from that snapshot
			// (no torn responses), so compute fresh and leave the cache —
			// which now encodes the newer database — untouched.
			*t.res = computeFresh(t.sn, t.q)
			t.wg.Done()
			return
		}
	}
	h := keyHash(t.q.key)
	if res, ok := sh.lru.get(t.q.key, h); ok {
		sh.hits.Add(1)
		*t.res = res
	} else {
		sh.misses.Add(1)
		res := sh.compute(t.q)
		if sh.lru.admit(h) {
			q := t.q
			if t.ephemeral {
				q = q.clone()
			}
			sh.lru.add(t.q.key, h, q, res)
		} else if sh.srv.opt.CacheSize > 0 {
			sh.admRejects.Add(1)
		}
		*t.res = res
	}
	t.wg.Done()
}

// run is the shard worker: it blocks for one task, then drains up to a
// micro-batch from the queue before blocking again, so a loaded shard
// amortizes channel wakeups across many decisions.
func (sh *shard) run() {
	for {
		select {
		case <-sh.srv.quit:
			return
		case t := <-sh.ch:
			sh.batches.Add(1)
			sh.process(t)
			for drained := 1; drained < sh.srv.opt.Batch; drained++ {
				select {
				case t2 := <-sh.ch:
					sh.process(t2)
				default:
					drained = sh.srv.opt.Batch
				}
			}
		}
	}
}

// decide answers a batch of resolved queries by fanning them out to their
// shards and awaiting completion. The read lock pairs with Close's write
// lock: while any decide holds it the workers cannot be stopped, so an
// accepted task is always drained and wg.Wait cannot strand the handler;
// after Close, requests fail fast instead of queueing into dead shards.
func (s *Server) decide(sn *snapshot, queries []*decideQuery) ([]decideResult, error) {
	results := make([]decideResult, len(queries))
	if err := s.decideInto(sn, queries, results, false); err != nil {
		return nil, err
	}
	return results, nil
}

// decideInto is decide with caller-owned result storage: results[i]
// receives the answer to queries[i]. The binary path calls it with
// per-connection scratch (and ephemeral=true, because those queries
// alias connection buffers the cache must not retain), which is what
// keeps a steady-state wire decision free of per-request allocation.
func (s *Server) decideInto(sn *snapshot, queries []*decideQuery, results []decideResult, ephemeral bool) error {
	start := time.Now()
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return errServerClosed
	}
	if s.draining.Load() {
		return errDraining
	}
	var wg sync.WaitGroup
	wg.Add(len(queries))
	for i, q := range queries {
		s.shardOf(q.key).ch <- task{q: q, sn: sn, res: &results[i], wg: &wg, ephemeral: ephemeral}
	}
	wg.Wait()
	s.metrics.decideSeconds.Observe(time.Since(start).Seconds())
	s.metrics.decideBatch.Observe(float64(len(queries)))
	return nil
}

// settingsJSON renders per-core settings on the wire, resolving frequency
// indices against the snapshot the decision was made on.
func (sn *snapshot) settingsJSON(settings []arch.Setting) []SettingJSON {
	out := make([]SettingJSON, len(settings))
	for i, st := range settings {
		out[i] = SettingJSON{
			Size:    st.Size.String(),
			FreqIdx: st.FreqIdx,
			FreqGHz: sn.db.Sys.DVFS[st.FreqIdx].FreqGHz,
			Ways:    st.Ways,
		}
	}
	return out
}

// handleDecide is POST /v1/decide.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if !s.gate.TryAcquire() {
		writeUnavailable(w, errOverloaded)
		return
	}
	defer s.gate.Release()
	sn := s.snap.Load()
	var req DecideRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	single := len(req.Queries) == 0
	wire := req.Queries
	if single {
		wire = []DecideQuery{req.DecideQuery}
	}
	if len(wire) > s.opt.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(wire), s.opt.MaxBatch))
		return
	}
	queries := make([]*decideQuery, len(wire))
	for i := range wire {
		q, err := resolveQuery(sn, &wire[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	results, err := s.decide(sn, queries)
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	var resp DecideResponse
	answers := make([]DecideAnswer, len(results))
	for i, res := range results {
		answers[i] = DecideAnswer{Decided: res.decided, Settings: sn.settingsJSON(res.settings)}
	}
	if single {
		resp.Result = &answers[0]
	} else {
		resp.Results = answers
	}
	writeJSON(w, http.StatusOK, &resp)
}
