// Metrics wiring: every series qosrmad exposes on GET /metrics. The hot
// path is untouched — per-shard counters are the same atomics healthz has
// always read, bridged as CounterFuncs and sampled at scrape time; the
// only instruments on a request path are two histograms observed once per
// decide fan-out (not per query) and one counter per score request. The
// catalog is documented for operators in docs/operations.md, which the
// docs-check CI target keeps in sync with this file.
package service

import (
	"strconv"
	"time"

	"qosrma/internal/ops"
)

// serverMetrics holds the instruments handlers write to; everything else
// is func-backed and reads server state at scrape time.
type serverMetrics struct {
	reg *ops.Registry

	reloads       *ops.Counter
	scoreRequests *ops.Counter
	auditPass     *ops.Counter
	auditFail     *ops.Counter

	decideSeconds *ops.Histogram
	decideBatch   *ops.Histogram
}

// initMetrics builds the registry. Called from New after the shards and
// job table exist; the checker-backed series are only scraped after New
// returns, so reading s.checker lazily is safe.
func (s *Server) initMetrics() {
	m := &s.metrics
	m.reg = ops.NewRegistry()
	r := m.reg

	r.GaugeFunc("qosrmad_uptime_seconds",
		"Seconds since the server started.", "",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("qosrmad_snapshot_generation",
		"Swap generation of the serving database (1 = the database the server started with).", "",
		func() float64 { return float64(s.snap.Load().gen) })
	r.InfoFunc("qosrmad_snapshot_info",
		"Content hash and source of the serving database (always 1; the payload is the labels).",
		func() string {
			sn := s.snap.Load()
			return ops.Labels("hash", sn.hash, "source", sn.source)
		})
	m.reloads = r.Counter("qosrmad_reloads_total",
		"Successful database hot-swaps since start.", "")
	r.GaugeFunc("qosrmad_draining",
		"1 while the server refuses new work for graceful shutdown, else 0.", "",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	for i := range s.shards {
		sh := s.shards[i]
		lbl := ops.Labels("shard", strconv.Itoa(i))
		r.CounterFunc("qosrmad_decide_queries_total",
			"Decide queries processed, per shard.", lbl,
			func() float64 { return float64(sh.tasks.Load()) })
		r.CounterFunc("qosrmad_decide_cache_hits_total",
			"Decide queries answered from the shard's LRU, per shard.", lbl,
			func() float64 { return float64(sh.hits.Load()) })
		r.CounterFunc("qosrmad_decide_cache_misses_total",
			"Decide queries computed because the shard's LRU missed, per shard.", lbl,
			func() float64 { return float64(sh.misses.Load()) })
		r.CounterFunc("qosrmad_decide_admission_rejected_total",
			"Computed decisions the TinyLFU admission filter kept out of the shard's LRU, per shard.", lbl,
			func() float64 { return float64(sh.admRejects.Load()) })
		r.CounterFunc("qosrmad_decide_batches_total",
			"Shard worker wakeups (micro-batches drained), per shard.", lbl,
			func() float64 { return float64(sh.batches.Load()) })
	}
	r.GaugeFunc("qosrmad_decide_cache_hit_ratio",
		"Fraction of all decide queries answered from cache (0 before any query).", "",
		func() float64 {
			var tasks, hits uint64
			for _, sh := range s.shards {
				tasks += sh.tasks.Load()
				hits += sh.hits.Load()
			}
			if tasks == 0 {
				return 0
			}
			return float64(hits) / float64(tasks)
		})
	m.decideSeconds = r.Histogram("qosrmad_decide_request_seconds",
		"Wall time of one decide fan-out (whole request batch).", "",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	m.decideBatch = r.Histogram("qosrmad_decide_batch_size",
		"Queries per decide request.", "",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})

	m.scoreRequests = r.Counter("qosrmad_score_requests_total",
		"Score requests served.", "")

	r.CounterFunc("qosrmad_wire_connections_total",
		"Binary-protocol connections accepted.", "",
		func() float64 { return float64(s.wire.conns.Load()) })
	r.GaugeFunc("qosrmad_wire_open_connections",
		"Binary-protocol connections currently open.", "",
		func() float64 { return float64(s.wire.open.Load()) })
	r.CounterFunc("qosrmad_wire_frames_total",
		"Binary-protocol frames decoded (any type).", "",
		func() float64 { return float64(s.wire.frames.Load()) })
	r.CounterFunc("qosrmad_wire_queries_total",
		"Decide queries answered over the binary protocol.", "",
		func() float64 { return float64(s.wire.queries.Load()) })
	r.CounterFunc("qosrmad_wire_decode_errors_total",
		"Malformed or unframeable binary-protocol input events.", "",
		func() float64 { return float64(s.wire.decodeErrs.Load()) })
	r.CounterFunc("qosrmad_wire_goaways_total",
		"Drain farewell (goaway) frames sent on binary-protocol connections.", "",
		func() float64 { return float64(s.wire.goaways.Load()) })

	r.GaugeFunc("qosrmad_inflight_requests",
		"Decide/score requests currently inside the load-shed gate.", "",
		func() float64 { return float64(s.gate.Inflight()) })
	r.GaugeFunc("qosrmad_inflight_limit",
		"Load-shed gate capacity (0 when the gate is disabled).", "",
		func() float64 { return float64(s.gate.Limit()) })
	r.CounterFunc("qosrmad_shed_total",
		"Decide/score requests refused with 503 by the load-shed gate.", "",
		func() float64 { return float64(s.gate.Shed()) })

	for _, state := range []string{"running", "done", "failed"} {
		state := state
		r.GaugeFunc("qosrmad_sweep_jobs",
			"Retained sweep jobs by state.", ops.Labels("state", state),
			func() float64 {
				running, done, failed := s.jobs.stateCounts()
				switch state {
				case "running":
					return float64(running)
				case "done":
					return float64(done)
				default:
					return float64(failed)
				}
			})
	}
	r.CounterFunc("qosrmad_sweep_cache_hits_total",
		"Sweep points answered from the engine's result cache.", "",
		func() float64 { h, _ := s.engine.Cache().Stats(); return float64(h) })
	r.CounterFunc("qosrmad_sweep_cache_misses_total",
		"Sweep points simulated because the result cache missed.", "",
		func() float64 { _, m := s.engine.Cache().Stats(); return float64(m) })

	m.auditPass = r.Counter("qosrmad_audit_total",
		"Self-checker audits by result.", ops.Labels("result", "pass"))
	m.auditFail = r.Counter("qosrmad_audit_total",
		"Self-checker audits by result.", ops.Labels("result", "fail"))
	r.GaugeFunc("qosrmad_audit_last_timestamp_seconds",
		"Unix time of the latest audit (0 before the first).", "",
		func() float64 {
			if rep, ok := s.checker.Last(); ok {
				return float64(rep.Time.Unix())
			}
			return 0
		})
	r.GaugeFunc("qosrmad_audit_last_mismatches",
		"Mismatches found by the latest audit.", "",
		func() float64 {
			if rep, ok := s.checker.Last(); ok {
				return float64(rep.Mismatches)
			}
			return 0
		})
}
