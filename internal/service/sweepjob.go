package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qosrma/internal/core"
	"qosrma/internal/sweep"
	"qosrma/internal/workload"
)

// SweepRequest is the wire form of POST /v1/sweep: a declarative scenario
// grid mirroring the public SweepSpec (the cartesian product of every
// non-empty axis in the engine's fixed order). The job executes
// asynchronously on the server's sweep engine, so overlapping grids share
// the engine's single-flight result cache and a point is never simulated
// twice per server.
type SweepRequest struct {
	Name string `json:"name,omitempty"`
	// Workloads are bare app lists, one benchmark per core.
	Workloads [][]string `json:"workloads"`
	// Schemes are wire scheme names (static, dvfs, rm1, rm2, rm3, ucp).
	Schemes []string `json:"schemes"`
	// Models are predictor numbers 1..3 (default {2}).
	Models           []int       `json:"models,omitempty"`
	Slacks           []float64   `json:"slacks,omitempty"`
	SlackVectors     [][]float64 `json:"slack_vectors,omitempty"`
	Oracle           []bool      `json:"oracle,omitempty"`
	BaselineFreqsGHz []float64   `json:"baseline_freqs_ghz,omitempty"`
	SwitchScales     []float64   `json:"switch_scales,omitempty"`
	BandwidthGBps    []float64   `json:"bandwidth_gbps,omitempty"`
	Feedback         []bool      `json:"feedback,omitempty"`
}

// SweepJobStatus is the wire form of a sweep job's state.
type SweepJobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"` // running | done | failed
	Points int    `json:"points"`
	Error  string `json:"error,omitempty"`
	// ElapsedSec is the run time so far (running) or total (done/failed).
	ElapsedSec float64 `json:"elapsed_sec"`
}

// sweepJob is one asynchronous sweep.
type sweepJob struct {
	id     string
	points int

	mu       sync.Mutex
	state    string
	err      error
	res      *sweep.Result
	started  time.Time
	finished time.Time
}

func (j *sweepJob) status() SweepJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepJobStatus{ID: j.id, State: j.state, Points: j.points}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	end := j.finished
	if j.state == "running" {
		end = time.Now()
	}
	st.ElapsedSec = end.Sub(j.started).Seconds()
	return st
}

// jobTable tracks the server's sweep jobs, bounded so a long-running
// daemon cannot be grown without limit through POST /v1/sweep: at the
// cap, the oldest finished job (and its retained result rows) is
// evicted; if every slot is still running, the submit is refused.
type jobTable struct {
	mu    sync.Mutex
	next  int
	max   int
	order []string // creation order, for eviction
	jobs  map[string]*sweepJob
}

func newJobTable(max int) *jobTable {
	return &jobTable{max: max, jobs: make(map[string]*sweepJob)}
}

// errJobsBusy is the submit answer when every retained job is running.
var errJobsBusy = errors.New("service: all sweep job slots are busy; retry later")

func (t *jobTable) create(points int) (*sweepJob, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.max {
		evicted := false
		for i, id := range t.order {
			j := t.jobs[id]
			j.mu.Lock()
			done := j.state != "running"
			j.mu.Unlock()
			if done {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, errJobsBusy
		}
	}
	t.next++
	j := &sweepJob{
		id:      "job-" + strconv.Itoa(t.next),
		points:  points,
		state:   "running",
		started: time.Now(),
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return j, nil
}

func (t *jobTable) get(id string) *sweepJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (t *jobTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// stateCounts tallies retained jobs by state, for the sweep_jobs{state}
// gauges.
func (t *jobTable) stateCounts() (running, done, failed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range t.jobs {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case "running":
			running++
		case "done":
			done++
		case "failed":
			failed++
		}
	}
	return running, done, failed
}

// compileSweep validates the request against the snapshot's database and
// builds the engine spec plus its compiled points. The spec captures the
// snapshot's database, so a job started before a hot-swap completes on
// the database it was submitted against (the engine's result cache keys
// include the database shape, so swapped results never alias).
func compileSweep(sn *snapshot, req *SweepRequest) (sweep.Spec, []sweep.RunSpec, error) {
	var spec sweep.Spec
	db := sn.db
	n := db.Sys.NumCores
	if len(req.Workloads) == 0 {
		return spec, nil, fmt.Errorf("sweep needs at least one workload")
	}
	for i, apps := range req.Workloads {
		if len(apps) != n {
			return spec, nil, fmt.Errorf("workload %d needs %d apps, got %d", i, n, len(apps))
		}
		for _, app := range apps {
			if _, ok := db.BenchIDOf(app); !ok {
				return spec, nil, fmt.Errorf("workload %d: unknown benchmark %q", i, app)
			}
		}
		spec.Mixes = append(spec.Mixes, workload.Mix{
			Name: fmt.Sprintf("workload%02d", i),
			Apps: append([]string(nil), apps...),
		})
	}
	if len(req.Schemes) == 0 {
		return spec, nil, fmt.Errorf("sweep needs at least one scheme")
	}
	for _, name := range req.Schemes {
		scheme, err := parseScheme(name)
		if err != nil {
			return spec, nil, err
		}
		spec.Schemes = append(spec.Schemes, scheme)
	}
	if len(req.Models) == 0 {
		spec.Models = []core.ModelKind{core.Model2}
	}
	for _, m := range req.Models {
		if m < 1 || m > 3 {
			return spec, nil, fmt.Errorf("unknown model %d (want 1, 2 or 3)", m)
		}
		kind, _ := parseModel(m, 0)
		spec.Models = append(spec.Models, kind)
	}
	for _, f := range req.BaselineFreqsGHz {
		spec.BaselineFreqIdxs = append(spec.BaselineFreqIdxs, db.Sys.DVFS.ClosestIndex(f))
	}
	for i, v := range req.Slacks {
		if v < 0 {
			return spec, nil, fmt.Errorf("slacks[%d] = %g is negative", i, v)
		}
	}
	for i, vec := range req.SlackVectors {
		if len(vec) != n {
			return spec, nil, fmt.Errorf("slack_vectors[%d] needs %d entries, got %d", i, n, len(vec))
		}
		for j, v := range vec {
			if v < 0 {
				return spec, nil, fmt.Errorf("slack_vectors[%d][%d] = %g is negative", i, j, v)
			}
		}
	}
	spec.Name = req.Name
	spec.DB = db
	spec.Slacks = req.Slacks
	spec.SlackVectors = req.SlackVectors
	spec.Oracle = req.Oracle
	spec.SwitchScales = req.SwitchScales
	spec.BandwidthGBps = req.BandwidthGBps
	spec.Feedback = req.Feedback
	points, err := spec.Compile()
	if err != nil {
		return spec, nil, err
	}
	return spec, points, nil
}

// handleSweepSubmit is POST /v1/sweep: validate, register a job, execute
// asynchronously, answer 202 with the job id.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	// Fast-path drain refusal; the authoritative, race-free check happens
	// again under jobMu below.
	if s.draining.Load() {
		writeUnavailable(w, errDraining)
		return
	}
	sn := s.snap.Load()
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	spec, points, err := compileSweep(sn, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Registration and the draining flag are serialized under jobMu, so
	// once Shutdown observes the flag set no further job can join the
	// WaitGroup it is about to wait on.
	s.jobMu.Lock()
	if s.draining.Load() {
		s.jobMu.Unlock()
		writeUnavailable(w, errDraining)
		return
	}
	job, err := s.jobs.create(len(points))
	if err != nil {
		s.jobMu.Unlock()
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.jobWG.Add(1)
	s.jobMu.Unlock()
	go func() {
		defer s.jobWG.Done()
		// One sweep executes at a time per server: the engine's worker
		// pool already saturates the cores, so serializing jobs bounds
		// memory and keeps decide latency steady under sweep load. The
		// recover is a second line of defense for this goroutine's own
		// panics — compileSweep's validation is what keeps bad grid
		// parameters out of the engine's pool goroutines, which no
		// recover here could reach.
		s.jobSem <- struct{}{}
		defer func() { <-s.jobSem }()
		defer func() {
			if r := recover(); r != nil {
				job.mu.Lock()
				defer job.mu.Unlock()
				job.finished = time.Now()
				job.state, job.err = "failed", fmt.Errorf("sweep panicked: %v", r)
			}
		}()
		results, err := s.engine.ExecuteAll(points, spec.Name)
		job.mu.Lock()
		defer job.mu.Unlock()
		job.finished = time.Now()
		if err != nil {
			job.state, job.err = "failed", err
			return
		}
		job.state = "done"
		job.res = &sweep.Result{Name: spec.Name, Points: points, Results: results}
	}()
	writeJSON(w, http.StatusAccepted, job.status())
}

// handleSweepStatus is GET /v1/sweep/{id}.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such sweep job"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

// handleSweepResult is GET /v1/sweep/{id}/result?format=csv|json: streams
// the completed job's rows in deterministic grid order.
func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such sweep job"))
		return
	}
	job.mu.Lock()
	state, res, jobErr := job.state, job.res, job.err
	job.mu.Unlock()
	switch state {
	case "running":
		writeError(w, http.StatusConflict, fmt.Errorf("sweep job still running"))
		return
	case "failed":
		writeError(w, http.StatusInternalServerError, fmt.Errorf("sweep job failed: %w", jobErr))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	rows := res.Rows()
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		sweep.WriteCSV(w, rows) //nolint:errcheck // client gone mid-stream
	case "json", "jsonl", "ndjson":
		w.Header().Set("Content-Type", "application/json")
		sweep.WriteJSON(w, rows) //nolint:errcheck // client gone mid-stream
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want csv or json)", format))
	}
}
