// Snapshot hot-swap: the server's entire serving state — the compiled
// database, the scorer memoized against it, and the version identifying
// both — lives behind one atomic pointer. A request loads the pointer
// once and carries the snapshot through resolution, shard fan-out and
// response rendering, so every answer is computed wholly against a single
// consistent state: a reload can never produce a torn response. In-flight
// requests finish on the snapshot they started with; requests arriving
// after the swap see the new one. Shard-local derived state (decision
// LRU, manager pool, statistics scratch) is keyed by snapshot generation
// and rebuilt by the owning worker the first time it sees a newer
// snapshot — no locks are added to the hot path.
package service

import (
	"errors"
	"strconv"
	"time"

	"qosrma/internal/simdb"
)

// snapshot is one immutable serving state.
type snapshot struct {
	// gen is the strictly increasing swap generation (1 = the database the
	// server was constructed over).
	gen uint64
	// db is the compiled simulation database.
	db *simdb.DB
	// scorer is the collocation scorer memoized against db.
	scorer *scoreState
	// hash is db.Fingerprint(): the content version served in /v1/meta,
	// /admin/status and the qosrmad_snapshot_info metric. hash64 is the
	// same fingerprint as the integer the binary protocol carries (wire
	// Meta frames advertise it; DecideRequest frames may pin it).
	hash   string
	hash64 uint64
	// source describes where the database came from ("built", a file
	// path, "reload", ...), for operators reading /admin/status.
	source string
	// loaded is when this snapshot became current.
	loaded time.Time
}

// errNoReloader answers /admin/reload when the server has no configured
// reload source and the request named no path.
var errNoReloader = errors.New("service: no reload source configured (pass {\"path\": ...} or set Options.Reloader)")

// newSnapshot assembles a snapshot and assigns it the next generation.
func (s *Server) newSnapshot(db *simdb.DB, source string) *snapshot {
	hash := db.Fingerprint()
	// Fingerprint renders a 64-bit FNV as %016x; recover the integer for
	// the binary protocol. The parse cannot fail on a well-formed
	// fingerprint, and a zero is simply never matched by clients.
	h64, _ := strconv.ParseUint(hash, 16, 64)
	return &snapshot{
		gen:    s.gen.Add(1),
		db:     db,
		scorer: newScoreState(db),
		hash:   hash,
		hash64: h64,
		source: source,
		loaded: time.Now(),
	}
}

// Swap atomically replaces the serving snapshot with a new one built over
// db. In-flight requests complete on the snapshot they resolved against;
// requests arriving after Swap returns see the new database. Each shard
// worker drops its decision LRU and manager pool the first time it
// processes a query of the new generation. Returns the new snapshot's
// content hash and generation.
func (s *Server) Swap(db *simdb.DB, source string) (hash string, gen uint64) {
	sn := s.newSnapshot(db, source)
	s.snap.Store(sn)
	s.metrics.reloads.Inc()
	return sn.hash, sn.gen
}

// Reload rebuilds or re-reads the database from the configured reloader
// (Options.Reloader) and swaps it in. This is what SIGHUP and a bodyless
// POST /admin/reload trigger.
func (s *Server) Reload() (hash string, gen uint64, err error) {
	if s.opt.Reloader == nil {
		return "", 0, errNoReloader
	}
	db, source, err := s.opt.Reloader()
	if err != nil {
		return "", 0, err
	}
	hash, gen = s.Swap(db, source)
	return hash, gen, nil
}

// Snapshot reports the current serving version: the database content
// hash, the swap generation, the source description and the load time.
func (s *Server) Snapshot() (hash string, gen uint64, source string, loaded time.Time) {
	sn := s.snap.Load()
	return sn.hash, sn.gen, sn.source, sn.loaded
}
