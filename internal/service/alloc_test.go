package service

import (
	"sync"
	"testing"
)

// Pins backing the //qosrma:noalloc annotations on the shard worker: a
// warm shard answers a repeated query without allocating (process, cache
// hit) and recomputes with exactly one allocation (compute — the
// defensive settings copy DecideAll returns).

func testShardQuery(t *testing.T) (*Server, *shard, *decideQuery) {
	t.Helper()
	db := testDB(t)
	srv := New(db, nil, Options{Shards: 1})
	t.Cleanup(func() { srv.Close() })
	sn := srv.snap.Load()
	apps := make([]AppQuery, db.Sys.NumCores)
	for i := range apps {
		apps[i] = AppQuery{Bench: db.BenchName(0), Phase: 0}
	}
	q, err := resolveQuery(sn, &DecideQuery{Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	return srv, srv.shards[0], q
}

func TestShardComputeSteadyStateAllocs(t *testing.T) {
	_, sh, q := testShardQuery(t)
	if res := sh.compute(q); !res.decided {
		t.Fatal("warm-up compute made no decision")
	}
	got := testing.AllocsPerRun(100, func() {
		sh.compute(q)
	})
	if got != 1 {
		t.Fatalf("shard.compute allocated %.0f times per call, want exactly 1 (DecideAll's settings copy)", got)
	}
}

func TestShardProcessHitSteadyStateAllocs(t *testing.T) {
	srv, sh, q := testShardQuery(t)
	sn := srv.snap.Load()
	var res decideResult
	var wg sync.WaitGroup
	wg.Add(1)
	sh.process(task{q: q, sn: sn, res: &res, wg: &wg}) // miss: computes and caches
	if !res.decided {
		t.Fatal("warm-up process made no decision")
	}
	got := testing.AllocsPerRun(100, func() {
		wg.Add(1)
		sh.process(task{q: q, sn: sn, res: &res, wg: &wg})
	})
	if got != 0 {
		t.Fatalf("shard.process allocated %.0f times per cached decision, want 0", got)
	}
}
