// Operator API: /admin/status (one page of everything an operator needs),
// /admin/reload (explicit hot-swap, same mechanism SIGHUP triggers) and
// /admin/check (on-demand self-audit). These routes mutate or inspect the
// process, not the model — keep them off any untrusted network, or front
// them with an authenticating proxy (see docs/operations.md).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"qosrma/internal/ops"
	"qosrma/internal/simdb"
)

// AdminShard is one shard's counters in the status payload.
type AdminShard struct {
	Tasks     uint64 `json:"tasks"`
	CacheHits uint64 `json:"cache_hits"`
	Batches   uint64 `json:"batches"`
}

// AdminSnapshot describes the serving database version.
type AdminSnapshot struct {
	Hash       string    `json:"hash"`
	Generation uint64    `json:"generation"`
	Source     string    `json:"source"`
	Loaded     time.Time `json:"loaded"`
}

// AdminStatus is the GET /admin/status payload.
type AdminStatus struct {
	Snapshot AdminSnapshot `json:"snapshot"`
	Reloads  uint64        `json:"reloads"`
	Draining bool          `json:"draining"`
	Shards   []AdminShard  `json:"shards"`
	// Checker is the latest self-audit (absent before the first).
	Checker   *ops.AuditReport `json:"checker,omitempty"`
	SweepJobs struct {
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
	} `json:"sweep_jobs"`
	Routes []string `json:"routes"`
}

// handleAdminStatus is GET /admin/status.
func (s *Server) handleAdminStatus(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	st := AdminStatus{
		Snapshot: AdminSnapshot{
			Hash:       sn.hash,
			Generation: sn.gen,
			Source:     sn.source,
			Loaded:     sn.loaded,
		},
		Reloads:  s.metrics.reloads.Value(),
		Draining: s.draining.Load(),
		Routes:   s.Routes(),
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, AdminShard{
			Tasks:     sh.tasks.Load(),
			CacheHits: sh.hits.Load(),
			Batches:   sh.batches.Load(),
		})
	}
	if rep, ok := s.checker.Last(); ok {
		st.Checker = &rep
	}
	st.SweepJobs.Running, st.SweepJobs.Done, st.SweepJobs.Failed = s.jobs.stateCounts()
	writeJSON(w, http.StatusOK, &st)
}

// ReloadRequest is the optional POST /admin/reload body. With Path set,
// the database is read from that file; with an empty body the configured
// reloader (Options.Reloader — what SIGHUP uses) runs instead.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the swapped-in version.
type ReloadResponse struct {
	Hash       string `json:"hash"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
}

// handleAdminReload is POST /admin/reload.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, errDraining)
		return
	}
	var req ReloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var (
		hash   string
		gen    uint64
		source string
	)
	if req.Path != "" {
		db, err := simdb.LoadFile(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("load %s: %w", req.Path, err))
			return
		}
		source = req.Path
		hash, gen = s.Swap(db, source)
	} else {
		var err error
		hash, gen, err = s.Reload()
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, errNoReloader) {
				code = http.StatusBadRequest
			}
			writeError(w, code, err)
			return
		}
		_, _, source, _ = s.Snapshot()
	}
	writeJSON(w, http.StatusOK, &ReloadResponse{Hash: hash, Generation: gen, Source: source})
}

// handleAdminCheck is POST /admin/check[?samples=N]: run a self-audit now
// and return its report — 200 when it passes, 503 when it found
// mismatches or failed to run (matching the healthz degradation it
// causes).
func (s *Server) handleAdminCheck(w http.ResponseWriter, r *http.Request) {
	samples := 0
	if v := r.URL.Query().Get("samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("samples must be a positive integer, got %q", v))
			return
		}
		samples = n
	}
	rep := s.checker.RunNow(samples)
	code := http.StatusOK
	if !rep.Pass() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, &rep)
}
