package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"net"
	"testing"
	"time"

	"qosrma/internal/arch"
	"qosrma/internal/stats"
	"qosrma/internal/wire"
)

// wireServer starts a Server with a binary listener and returns the
// server, its HTTP test URL and the wire address.
func wireServer(t testing.TB, opt Options) (*Server, string, string) {
	t.Helper()
	srv, ts := testServer(t, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln) //nolint:errcheck // exits nil on Close
	return srv, ts.URL, ln.Addr().String()
}

// wireClient is a test-side connection to the binary port.
type wireClient struct {
	c net.Conn
	r *wire.Reader
}

func dialWire(t testing.TB, addr string) *wireClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &wireClient{c: c, r: wire.NewReader(c)}
}

func (w *wireClient) send(t testing.TB, frame []byte) {
	t.Helper()
	if _, err := w.c.Write(frame); err != nil {
		t.Fatalf("write frame: %v", err)
	}
}

func (w *wireClient) next(t testing.TB) (byte, []byte) {
	t.Helper()
	typ, payload, err := w.r.Next()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return typ, payload
}

// wireTrace builds the deterministic cross-codec workload: count query
// batches drawn from the loadgen trace stream, cycling schemes and slack
// shapes so every manager-configuration path is crossed. Each batch is
// returned in both codecs' request forms, semantically identical.
func wireTrace(t testing.TB, srv *Server, seed uint64, count int) ([]DecideRequest, []wire.DecideRequest) {
	t.Helper()
	db := srv.snap.Load().db
	n := db.Sys.NumCores
	names := db.BenchNames()
	schemes := []string{"static", "dvfs", "rm1", "rm2", "rm3", "ucp"}
	rng := stats.NewRNG(stats.SeedFrom(seed, "loadgen/queries"))
	jsonReqs := make([]DecideRequest, count)
	wireReqs := make([]wire.DecideRequest, count)
	for i := range jsonReqs {
		scheme := schemes[i%len(schemes)]
		schemeID, err := parseScheme(scheme)
		if err != nil {
			t.Fatal(err)
		}
		slack := 0.0
		if i%3 == 1 {
			slack = 0.1
		}
		var slacks []float64
		if i%3 == 2 {
			slacks = make([]float64, n)
			for c := range slacks {
				slacks[c] = 0.05 * float64(c)
			}
		}
		batch := 1 + rng.Intn(4)
		jq := make([]DecideQuery, batch)
		var apps []wire.App
		for b := 0; b < batch; b++ {
			aq := make([]AppQuery, n)
			for c := 0; c < n; c++ {
				name := names[rng.Intn(len(names))]
				phase := rng.Intn(db.NumPhases(name))
				aq[c] = AppQuery{Bench: name, Phase: phase}
				id, ok := db.BenchIDOf(name)
				if !ok {
					t.Fatalf("unknown bench %q", name)
				}
				apps = append(apps, wire.App{Bench: uint16(id), Phase: uint16(phase)})
			}
			jq[b] = DecideQuery{Scheme: scheme, Slack: slack, Slacks: slacks, Apps: aq}
		}
		jsonReqs[i] = DecideRequest{Queries: jq}
		wr := wire.DecideRequest{
			Seq:    uint32(i),
			Scheme: uint8(schemeID),
			NCores: uint8(n),
			Apps:   apps,
		}
		switch {
		case slacks != nil:
			wr.Flags = wire.FlagSlackPerCore
			wr.Slacks = slacks
		case slack != 0:
			wr.Flags = wire.FlagSlackUniform
			wr.Slack = slack
		}
		wireReqs[i] = wr
	}
	return jsonReqs, wireReqs
}

// TestWireHelloMeta: the binary port is self-describing — Hello answers
// the serving database's integer fingerprint, core count and the explicit
// BenchID table (BenchNames order is alphabetical, so the IDs must be
// carried, not implied).
func TestWireHelloMeta(t *testing.T) {
	srv, _, addr := wireServer(t, Options{Shards: 2})
	w := dialWire(t, addr)
	w.send(t, wire.AppendHello(nil))
	typ, payload := w.next(t)
	if typ != wire.TypeMeta {
		t.Fatalf("Hello answered frame type %#x, want Meta", typ)
	}
	var m wire.Meta
	if err := wire.ParseMeta(payload, &m); err != nil {
		t.Fatal(err)
	}
	sn := srv.snap.Load()
	if m.DBHash != sn.hash64 || m.DBHash == 0 {
		t.Fatalf("meta hash %016x, want %016x (nonzero)", m.DBHash, sn.hash64)
	}
	db := sn.db
	if int(m.NCores) != db.Sys.NumCores {
		t.Fatalf("meta ncores %d, want %d", m.NCores, db.Sys.NumCores)
	}
	if len(m.Benches) != len(db.BenchNames()) {
		t.Fatalf("meta lists %d benches, want %d", len(m.Benches), len(db.BenchNames()))
	}
	for _, b := range m.Benches {
		id, ok := db.BenchIDOf(b.Name)
		if !ok || uint16(id) != b.ID {
			t.Fatalf("bench %q: meta id %d, database id %d (ok=%v)", b.Name, b.ID, id, ok)
		}
		if int(b.Phases) != db.NumPhases(b.Name) {
			t.Fatalf("bench %q: meta phases %d, database %d", b.Name, b.Phases, db.NumPhases(b.Name))
		}
	}
}

// TestWireMatchesJSON is the cross-codec equivalence wall: the same
// seeded loadgen-style trace answered over HTTP/JSON and over the binary
// protocol must produce identical decisions — same decided flags, same
// per-core (size, freq, ways) — because both paths feed the same shard
// channels and build the same canonical keys. The trace deliberately
// repeats configurations so wire answers are served from cache entries
// the JSON path populated (and vice versa).
func TestWireMatchesJSON(t *testing.T) {
	srv, url, addr := wireServer(t, Options{Shards: 3, CacheSize: 256})
	db := srv.snap.Load().db
	jsonReqs, wireReqs := wireTrace(t, srv, 1, 48)
	w := dialWire(t, addr)
	var resp wire.DecideResponse
	for i := range jsonReqs {
		var jr DecideResponse
		if code := postJSON(t, url+"/v1/decide", &jsonReqs[i], &jr); code != 200 {
			t.Fatalf("batch %d: JSON status %d", i, code)
		}
		w.send(t, wire.AppendDecideRequest(nil, &wireReqs[i]))
		typ, payload := w.next(t)
		if typ != wire.TypeDecideResponse {
			if typ == wire.TypeError {
				_, code, msg, _ := wire.ParseError(payload)
				t.Fatalf("batch %d: error frame code %d: %s", i, code, msg)
			}
			t.Fatalf("batch %d: frame type %#x", i, typ)
		}
		if err := wire.ParseDecideResponse(payload, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Seq != wireReqs[i].Seq {
			t.Fatalf("batch %d: seq %d echoed as %d", i, wireReqs[i].Seq, resp.Seq)
		}
		if len(resp.Decided) != len(jr.Results) {
			t.Fatalf("batch %d: %d wire results, %d JSON results", i, len(resp.Decided), len(jr.Results))
		}
		n := db.Sys.NumCores
		for q := range jr.Results {
			ja := jr.Results[q]
			if resp.Decided[q] != ja.Decided {
				t.Fatalf("batch %d query %d: wire decided=%v, JSON decided=%v", i, q, resp.Decided[q], ja.Decided)
			}
			for c := 0; c < n; c++ {
				ws := resp.Settings[q*n+c]
				js := ja.Settings[c]
				if js.Size != sizeName(ws.Size) || js.FreqIdx != int(ws.Freq) || js.Ways != int(ws.Ways) {
					t.Fatalf("batch %d query %d core %d: wire (%d,%d,%d) vs JSON (%s,%d,%d)",
						i, q, c, ws.Size, ws.Freq, ws.Ways, js.Size, js.FreqIdx, js.Ways)
				}
			}
		}
	}
}

// sizeName renders a wire core-size enum the way the JSON codec does.
func sizeName(size uint8) string {
	return arch.CoreSize(size).String()
}

// wireStreamHash replays the seeded trace against a fresh server and
// returns the FNV-64a of the concatenated binary response frames.
func wireStreamHash(t testing.TB, opt Options, seed uint64, count int) uint64 {
	t.Helper()
	srv, _, addr := wireServer(t, opt)
	_, wireReqs := wireTrace(t, srv, seed, count)
	w := dialWire(t, addr)
	h := fnv.New64a()
	for i := range wireReqs {
		w.send(t, wire.AppendDecideRequest(nil, &wireReqs[i]))
		typ, payload := w.next(t)
		if typ != wire.TypeDecideResponse {
			t.Fatalf("batch %d: frame type %#x", i, typ)
		}
		var hdr [wire.HeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
		hdr[4] = wire.Version
		hdr[5] = typ
		h.Write(hdr[:])
		h.Write(payload)
	}
	return h.Sum64()
}

// TestWireStreamDeterministic extends the byte-determinism wall to the
// binary protocol: the response stream for the seeded trace hashes
// identically across runs and across serving configurations (shard
// count, cache size, caching disabled) — framing included, so any codec
// or scheduling nondeterminism fails loudly.
func TestWireStreamDeterministic(t *testing.T) {
	const seed, count = 7, 32
	base := wireStreamHash(t, Options{Shards: 1, CacheSize: 64}, seed, count)
	for _, opt := range []Options{
		{Shards: 1, CacheSize: 64},
		{Shards: 4, CacheSize: 256},
		{Shards: 3, CacheSize: -1},
	} {
		if got := wireStreamHash(t, opt, seed, count); got != base {
			t.Fatalf("stream hash %016x under %+v, want %016x", got, opt, base)
		}
	}
}

// TestWireMalformedFrameKeepsConnection: every recoverable failure — an
// unparseable payload, a semantically invalid request, an unknown frame
// type — answers a typed Error frame and the connection keeps serving.
func TestWireMalformedFrameKeepsConnection(t *testing.T) {
	srv, _, addr := wireServer(t, Options{Shards: 2})
	db := srv.snap.Load().db
	n := db.Sys.NumCores
	good := wire.DecideRequest{
		Seq: 99, NCores: uint8(n),
		Apps: make([]wire.App, n),
	}
	w := dialWire(t, addr)

	expectError := func(step string, frame []byte, wantCode wire.ErrCode) {
		t.Helper()
		w.send(t, frame)
		typ, payload := w.next(t)
		if typ != wire.TypeError {
			t.Fatalf("%s: frame type %#x, want Error", step, typ)
		}
		_, code, msg, err := wire.ParseError(payload)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if code != wantCode {
			t.Fatalf("%s: error code %d (%s), want %d", step, code, msg, wantCode)
		}
	}

	// Truncated payload inside a well-formed frame.
	expectError("truncated", append(wire.AppendHeader(nil, wire.TypeDecideRequest, 3), 0, 0, 0), wire.ErrCodeMalformed)
	// Wrong core count.
	bad := good
	bad.NCores = uint8(n + 1)
	bad.Apps = make([]wire.App, n+1)
	expectError("ncores", wire.AppendDecideRequest(nil, &bad), wire.ErrCodeMalformed)
	// Unknown scheme ID.
	bad = good
	bad.Scheme = 200
	expectError("scheme", wire.AppendDecideRequest(nil, &bad), wire.ErrCodeMalformed)
	// Unknown benchmark ID.
	bad = good
	bad.Apps = make([]wire.App, n)
	bad.Apps[0].Bench = 60000
	expectError("bench", wire.AppendDecideRequest(nil, &bad), wire.ErrCodeMalformed)
	// Stale pinned database hash.
	bad = good
	bad.DBHash = 0xdeadbeef
	expectError("stale", wire.AppendDecideRequest(nil, &bad), wire.ErrCodeStaleDB)
	// Unknown frame type.
	expectError("type", wire.AppendHeader(nil, 0x7f, 0), wire.ErrCodeUnsupported)

	// The connection must still answer a valid request.
	w.send(t, wire.AppendDecideRequest(nil, &good))
	typ, payload := w.next(t)
	if typ != wire.TypeDecideResponse {
		t.Fatalf("after errors: frame type %#x, want DecideResponse", typ)
	}
	var resp wire.DecideResponse
	if err := wire.ParseDecideResponse(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != good.Seq {
		t.Fatalf("seq %d echoed as %d", good.Seq, resp.Seq)
	}
	if srv.wire.decodeErrs.Load() == 0 {
		t.Fatal("decode-error counter never moved")
	}
}

// TestWireFatalFrameClosesConnection: an unframeable stream (bad version,
// oversized declared payload) answers one Error frame and the server
// closes the connection — resynchronization is impossible.
func TestWireFatalFrameClosesConnection(t *testing.T) {
	_, _, addr := wireServer(t, Options{Shards: 1})
	cases := []struct {
		name  string
		frame []byte
		code  wire.ErrCode
	}{
		{"version", func() []byte {
			f := wire.AppendHello(nil)
			f[4] = 9
			return f
		}(), wire.ErrCodeUnsupported},
		{"oversized", wire.AppendHeader(nil, wire.TypeDecideRequest, wire.MaxPayload+1), wire.ErrCodeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := dialWire(t, addr)
			w.send(t, tc.frame)
			typ, payload := w.next(t)
			if typ != wire.TypeError {
				t.Fatalf("frame type %#x, want Error", typ)
			}
			_, code, _, err := wire.ParseError(payload)
			if err != nil {
				t.Fatal(err)
			}
			if code != tc.code {
				t.Fatalf("error code %d, want %d", code, tc.code)
			}
			w.c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, _, err := w.r.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("connection stayed open after fatal frame (err %v)", err)
			}
		})
	}
}

// TestWireCloseTerminatesServing: Close tears down the listener and every
// open connection, and ServeWire on a closed server refuses immediately.
func TestWireCloseTerminatesServing(t *testing.T) {
	srv := New(testDB(t), nil, Options{Shards: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeWire(ln) }()
	w := dialWire(t, ln.Addr().String())
	w.send(t, wire.AppendHello(nil))
	w.next(t) // connection is live
	srv.Close()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeWire returned %v after Close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWire did not return after Close")
	}
	w.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := w.r.Next(); err == nil {
		t.Fatal("connection survived Close")
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeWire(ln2); !errors.Is(err, errServerClosed) {
		t.Fatalf("ServeWire on closed server returned %v", err)
	}
	if _, err := net.Dial("tcp", ln2.Addr().String()); err == nil {
		t.Fatal("listener left open by refused ServeWire")
	}
}

// TestWireGarbageStream: raw garbage bytes on the socket must produce an
// orderly close (the codec rejects the stream), with the decode-error
// counter recording the event — the service-level echo of FuzzWireDecode.
func TestWireGarbageStream(t *testing.T) {
	srv, _, addr := wireServer(t, Options{Shards: 1})
	w := dialWire(t, addr)
	w.send(t, bytes.Repeat([]byte{0xff}, 256))
	w.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := w.r.Next(); err != nil {
			break
		}
	}
	// The server's read loop ends (fatal header) without panicking; the
	// next connection serves normally.
	w2 := dialWire(t, addr)
	w2.send(t, wire.AppendHello(nil))
	if typ, _ := w2.next(t); typ != wire.TypeMeta {
		t.Fatalf("fresh connection got frame %#x, want Meta", typ)
	}
	if srv.wire.decodeErrs.Load() == 0 {
		t.Fatal("garbage stream not counted as a decode error")
	}
}

// TestWireScratchReuseAcrossConfigs drives one connection through
// alternating manager configurations to cross the configuration-memo
// invalidation path: answers must match the JSON reference every time.
func TestWireScratchReuseAcrossConfigs(t *testing.T) {
	srv, url, addr := wireServer(t, Options{Shards: 2, CacheSize: 32})
	db := srv.snap.Load().db
	n := db.Sys.NumCores
	names := db.BenchNames()
	w := dialWire(t, addr)
	var resp wire.DecideResponse
	for i := 0; i < 12; i++ {
		scheme := []string{"rm2", "rm3"}[i%2]
		schemeID, _ := parseScheme(scheme)
		slack := []float64{0, 0.1, 0.25}[i%3]
		apps := make([]AppQuery, n)
		wapps := make([]wire.App, n)
		for c := 0; c < n; c++ {
			name := names[(i+c)%len(names)]
			id, _ := db.BenchIDOf(name)
			apps[c] = AppQuery{Bench: name, Phase: 0}
			wapps[c] = wire.App{Bench: uint16(id)}
		}
		var jr DecideResponse
		jreq := DecideRequest{DecideQuery: DecideQuery{Scheme: scheme, Slack: slack, Apps: apps}}
		if code := postJSON(t, url+"/v1/decide", &jreq, &jr); code != 200 {
			t.Fatalf("step %d: JSON status %d", i, code)
		}
		wreq := wire.DecideRequest{Seq: uint32(i), Scheme: uint8(schemeID), NCores: uint8(n), Apps: wapps}
		if slack != 0 {
			wreq.Flags = wire.FlagSlackUniform
			wreq.Slack = slack
		}
		w.send(t, wire.AppendDecideRequest(nil, &wreq))
		typ, payload := w.next(t)
		if typ != wire.TypeDecideResponse {
			t.Fatalf("step %d: frame type %#x", i, typ)
		}
		if err := wire.ParseDecideResponse(payload, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Decided[0] != jr.Result.Decided {
			t.Fatalf("step %d: wire decided=%v, JSON decided=%v", i, resp.Decided[0], jr.Result.Decided)
		}
		for c := 0; c < n; c++ {
			ws := resp.Settings[c]
			js := jr.Result.Settings[c]
			if int(ws.Freq) != js.FreqIdx || int(ws.Ways) != js.Ways {
				t.Fatalf("step %d core %d: wire (%d,%d) vs JSON (%d,%d)",
					i, c, ws.Freq, ws.Ways, js.FreqIdx, js.Ways)
			}
		}
	}
}
