package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"qosrma/internal/sched"
	"qosrma/internal/simdb"
)

// scoreState wraps the collocation scorer memoized against one snapshot's
// database (it lives inside the snapshot and is swapped with it). The
// scorer itself is safe for concurrent use and memoizes whole-program
// statistics and energy curves; the per-call curve slice comes from a
// pool of sched.ScoreBuf scratch buffers so concurrent score requests do
// not allocate per machine scored.
type scoreState struct {
	scorer *sched.Scorer
	bufs   sync.Pool
}

func newScoreState(db *simdb.DB) *scoreState {
	return &scoreState{
		scorer: sched.NewScorer(db),
		bufs:   sync.Pool{New: func() any { return new(sched.ScoreBuf) }},
	}
}

// score scores one machine's app list with pooled scratch.
func (st *scoreState) score(apps []string) (float64, error) {
	buf := st.bufs.Get().(*sched.ScoreBuf)
	defer st.bufs.Put(buf)
	return st.scorer.ScoreInto(apps, buf)
}

// ScoreRequest is the wire form of /v1/score. Exactly one of Apps or
// Machines must be set. With Candidate set, the request is a placement:
// the candidate is tentatively added to every machine with a free core
// and the best machine is reported.
type ScoreRequest struct {
	// Apps scores a single machine.
	Apps []string `json:"apps,omitempty"`
	// Machines scores several machines at once.
	Machines [][]string `json:"machines,omitempty"`
	// Candidate, with Machines, asks where to place one arriving job.
	Candidate string `json:"candidate,omitempty"`
}

// ScoreResponse is the wire form of a /v1/score reply.
type ScoreResponse struct {
	// Score is the single-machine answer.
	Score *float64 `json:"score,omitempty"`
	// Scores is the per-machine answer (placement: the score with the
	// candidate added; machines without a free core carry null).
	Scores []*float64 `json:"scores,omitempty"`
	// Best is the placement answer: the index of the machine where the
	// candidate scores highest (ties to the lowest index).
	Best *int `json:"best,omitempty"`
}

// handleScore is POST /v1/score.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, errDraining)
		return
	}
	if !s.gate.TryAcquire() {
		writeUnavailable(w, errOverloaded)
		return
	}
	defer s.gate.Release()
	s.metrics.scoreRequests.Inc()
	sn := s.snap.Load()
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	switch {
	case len(req.Apps) > 0 && len(req.Machines) > 0:
		writeError(w, http.StatusBadRequest, fmt.Errorf("set either apps or machines, not both"))
	case req.Candidate != "":
		s.handlePlacement(w, sn, &req)
	case len(req.Apps) > 0:
		v, err := sn.scorer.score(req.Apps)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, &ScoreResponse{Score: &v})
	case len(req.Machines) > 0:
		scores := make([]*float64, len(req.Machines))
		for i, m := range req.Machines {
			v, err := sn.scorer.score(m)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("machine %d: %w", i, err))
				return
			}
			scores[i] = &v
		}
		writeJSON(w, http.StatusOK, &ScoreResponse{Scores: scores})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty request: set apps, machines, or candidate+machines"))
	}
}

// handlePlacement scores the candidate on every machine with room; empty
// machines are allowed (the candidate would run alone).
func (s *Server) handlePlacement(w http.ResponseWriter, sn *snapshot, req *ScoreRequest) {
	if len(req.Machines) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("placement needs machines"))
		return
	}
	if _, ok := sn.db.BenchIDOf(req.Candidate); !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown benchmark %q", req.Candidate))
		return
	}
	n := sn.db.Sys.NumCores
	scores := make([]*float64, len(req.Machines))
	best := -1
	for i, m := range req.Machines {
		if len(m) >= n {
			continue // full machine: not a placement option
		}
		apps := make([]string, 0, len(m)+1)
		apps = append(apps, m...)
		apps = append(apps, req.Candidate)
		v, err := sn.scorer.score(apps)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("machine %d: %w", i, err))
			return
		}
		scores[i] = &v
		if best < 0 || v > *scores[best] {
			best = i
		}
	}
	if best < 0 {
		writeError(w, http.StatusConflict, fmt.Errorf("no machine has a free core"))
		return
	}
	writeJSON(w, http.StatusOK, &ScoreResponse{Scores: scores, Best: &best})
}
