package service

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzServer memoizes one server for the whole fuzz run; the handlers are
// safe for the concurrent calls the fuzz engine makes.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

func fuzzServer(t testing.TB) *Server {
	fuzzSrvOnce.Do(func() {
		fuzzSrv = New(testDB(t), nil, Options{Shards: 2, Batch: 4, CacheSize: 64})
	})
	return fuzzSrv
}

// FuzzDecideRequest pins the request-decoding hardening invariant: no
// body, however malformed, may crash the server or surface as a 5xx —
// malformed JSON, wrong arities, unknown benchmarks and out-of-range
// phases all answer 4xx, and well-formed queries answer 200. The seed
// corpus (testdata/fuzz/FuzzDecideRequest) covers both sides.
func FuzzDecideRequest(f *testing.F) {
	f.Add(`{"scheme":"rm2","slack":0.2,"apps":[{"bench":"mcf","phase":0},{"bench":"astar","phase":1},{"bench":"bzip2","phase":0},{"bench":"gcc","phase":2}]}`)
	f.Add(`{"queries":[{"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}]}`)
	f.Add(``)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"apps": 42}`)
	f.Add(`{"apps":[{"bench":"mcf","phase":-1}]}`)
	f.Add(`{"scheme":"rm9","apps":[]}`)
	f.Add(`{"model":99,"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`)
	f.Add(`{"slacks":[0.1,0.2],"apps":[{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0},{"bench":"mcf","phase":0}]}`)
	f.Add(`{"apps":[{"bench":"\u0000","phase":9999999999},{"bench":"mcf"},{"bench":"mcf"},{"bench":"mcf"}]}`)
	f.Add(strings.Repeat(`{"queries":[`, 50))

	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/decide", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q answered %d:\n%s", body, rec.Code, rec.Body.String())
		}
		if rec.Code != 200 && rec.Code != 400 {
			t.Fatalf("body %q answered unexpected status %d", body, rec.Code)
		}
	})
}

// FuzzScoreRequest: the same property for /v1/score (including the 409
// full-fleet placement answer).
func FuzzScoreRequest(f *testing.F) {
	f.Add(`{"apps":["mcf","astar"]}`)
	f.Add(`{"machines":[["mcf"],["astar","bzip2"]]}`)
	f.Add(`{"candidate":"mcf","machines":[["astar"]]}`)
	f.Add(`{"candidate":"nope","machines":[[]]}`)
	f.Add(`{"apps":[],"machines":[]}`)
	f.Add(`{"apps": {"x": 1}}`)
	f.Add(`null`)

	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/score", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q answered %d:\n%s", body, rec.Code, rec.Body.String())
		}
	})
}

// FuzzSweepRequest: sweep submissions must validate before spawning a
// job; malformed grids answer 4xx and never leave a running job behind.
func FuzzSweepRequest(f *testing.F) {
	f.Add(`{"workloads":[["mcf","astar","bzip2","gcc"]],"schemes":["rm2"]}`)
	f.Add(`{"workloads":[],"schemes":["rm2"]}`)
	f.Add(`{"workloads":[["mcf"]],"schemes":["rm2"]}`)
	f.Add(`{"workloads":[["mcf","astar","bzip2","gcc"]],"schemes":["bogus"]}`)
	f.Add(`{"workloads":[["mcf","astar","bzip2","gcc"]],"schemes":["rm2"],"models":[9]}`)
	f.Add(`{"workloads":[["mcf","astar","bzip2","gcc"]],"schemes":["rm2"],"slack_vectors":[[0.1,0.2]]}`)
	f.Add(`{"workloads":[["mcf","astar","bzip2","gcc"]],"schemes":["rm2"],"slacks":[-1]}`)
	f.Add(`{"workloads": "x"}`)

	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q answered %d:\n%s", body, rec.Code, rec.Body.String())
		}
	})
}
