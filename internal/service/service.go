// Package service implements qosrmad's long-running HTTP/JSON decision
// service over a compiled simulation database: per-machine RMA decisions
// for co-phase vectors (/v1/decide), collocation scoring and online
// placement (/v1/score), asynchronous scenario sweeps streaming CSV/JSON
// (/v1/sweep), and liveness/metadata endpoints (/v1/healthz, /v1/meta).
//
// The decision path is sharded: queries hash to one of N shards by their
// canonical co-phase key, and each shard's single worker owns its decision
// LRU, its per-configuration managers (with their reusable curve buffers)
// and its statistics scratch, so the hot path takes no locks and performs
// no allocation beyond the response. Batching, sharding and caching are
// answer-invariant: the service is bit-identical to direct library calls.
package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"time"

	"qosrma/internal/core"
	"qosrma/internal/simdb"
	"qosrma/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of decision shards (default GOMAXPROCS, capped
	// at 16: each shard is one worker goroutine plus its caches).
	Shards int
	// Batch is the micro-batch size: how many queued queries one shard
	// wakeup drains before blocking again (default 64).
	Batch int
	// CacheSize is the per-shard decision LRU capacity in entries
	// (0 = default 4096, negative disables caching).
	CacheSize int
	// QueueDepth is the per-shard queue capacity (default 4 x Batch).
	QueueDepth int
	// MaxBatch bounds the queries accepted in one HTTP request
	// (default 1024).
	MaxBatch int
	// MaxJobs bounds the retained sweep jobs (default 64): at the cap the
	// oldest finished job is evicted, and submits are refused with 429
	// while every slot is running.
	MaxJobs int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Batch
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	return o
}

// Server is the decision service: an http.Handler over a compiled
// database and a sweep engine. Construct with New, release with Close.
type Server struct {
	db     *simdb.DB
	engine *sweep.Engine
	opt    Options

	mux     *http.ServeMux
	shards  []*shard
	quit    chan struct{}
	started time.Time

	// stateMu orders decide fan-out against Close: decides hold the read
	// side while their tasks are in flight, Close takes the write side
	// before stopping the workers, so no accepted task is ever stranded.
	stateMu sync.RWMutex
	closed  bool

	scorer *scoreState
	jobs   *jobTable
	jobSem chan struct{} // serializes sweep-job execution
}

// errServerClosed is the fail-fast answer for requests after Close.
var errServerClosed = errors.New("service: server is closed")

// New builds a server over the database. The sweep engine carries the
// single-flight result cache /v1/sweep jobs share; pass nil for a private
// engine.
func New(db *simdb.DB, engine *sweep.Engine, opt Options) *Server {
	if engine == nil {
		engine = sweep.NewEngine()
	}
	s := &Server{
		db:      db,
		engine:  engine,
		opt:     opt.withDefaults(),
		mux:     http.NewServeMux(),
		quit:    make(chan struct{}),
		started: time.Now(),
		scorer:  newScoreState(db),
	}
	s.jobs = newJobTable(s.opt.MaxJobs)
	s.jobSem = make(chan struct{}, 1)
	s.shards = make([]*shard, s.opt.Shards)
	n := db.Sys.NumCores
	for i := range s.shards {
		sh := &shard{
			srv:      s,
			ch:       make(chan task, s.opt.QueueDepth),
			lru:      newLRU(s.opt.CacheSize),
			mgrs:     make(map[managerKey]*core.Manager),
			stats:    make([]core.IntervalStats, n),
			statPtrs: make([]*core.IntervalStats, n),
		}
		s.shards[i] = sh
		go sh.run()
	}

	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/meta", s.handleMeta)
	s.mux.HandleFunc("POST /v1/decide", s.handleDecide)
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweep/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweep/{id}/result", s.handleSweepResult)
	return s
}

// ServeHTTP dispatches to the versioned API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the shard workers. It waits for in-flight decide fan-outs
// to drain (their tasks are always processed), and later requests answer
// 503 instead of queueing into stopped shards. Close is idempotent.
func (s *Server) Close() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
}

// writeJSON renders a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report to
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeError renders a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// HealthStats is the /v1/healthz payload.
type HealthStats struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`

	Decide struct {
		Queries     uint64 `json:"queries"`
		CacheHits   uint64 `json:"cache_hits"`
		Batches     uint64 `json:"batches"`
		Shards      int    `json:"shards"`
		CacheBounds int    `json:"cache_capacity_per_shard"`
	} `json:"decide"`
	Score struct {
		Requests uint64 `json:"requests"`
	} `json:"score"`
	Sweep struct {
		Jobs        int   `json:"jobs"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	} `json:"sweep"`
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var h HealthStats
	h.Status = "ok"
	h.UptimeSec = time.Since(s.started).Seconds()
	for _, sh := range s.shards {
		h.Decide.Queries += sh.tasks.Load()
		h.Decide.CacheHits += sh.hits.Load()
		h.Decide.Batches += sh.batches.Load()
	}
	h.Decide.Shards = len(s.shards)
	h.Decide.CacheBounds = s.opt.CacheSize
	h.Score.Requests = s.scorer.requests.Load()
	h.Sweep.Jobs = s.jobs.count()
	h.Sweep.CacheHits, h.Sweep.CacheMisses = s.engine.Cache().Stats()
	writeJSON(w, http.StatusOK, &h)
}

// MetaBench describes one servable benchmark.
type MetaBench struct {
	Name   string `json:"name"`
	Phases int    `json:"phases"`
}

// Meta is the /v1/meta payload: everything a client (the load generator,
// a dashboard) needs to construct valid queries.
type Meta struct {
	NumCores int         `json:"num_cores"`
	LLCAssoc int         `json:"llc_assoc"`
	DVFSGHz  []float64   `json:"dvfs_ghz"`
	Schemes  []string    `json:"schemes"`
	Benches  []MetaBench `json:"benches"`
	Shards   int         `json:"shards"`
	Batch    int         `json:"batch"`
}

// handleMeta is GET /v1/meta.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	m := Meta{
		NumCores: s.db.Sys.NumCores,
		LLCAssoc: s.db.Sys.LLC.Assoc,
		Schemes:  []string{"static", "dvfs", "rm1", "rm2", "rm3", "ucp"},
		Shards:   len(s.shards),
		Batch:    s.opt.Batch,
	}
	for _, op := range s.db.Sys.DVFS {
		m.DVFSGHz = append(m.DVFSGHz, op.FreqGHz)
	}
	for _, name := range s.db.BenchNames() {
		id, _ := s.db.BenchIDOf(name)
		m.Benches = append(m.Benches, MetaBench{Name: name, Phases: s.db.Benches[id].Analysis.NumPhases})
	}
	writeJSON(w, http.StatusOK, &m)
}
